#!/usr/bin/env python
"""Architecture exploration: few large crossbars vs many small ones.

Reproduces the paper's Section V-C study (Fig. 6) on the digit-recognition
application: sweep the crossbar size, map with PSO at each point, and
report local/global/total synapse energy plus worst-case interconnect
latency.  The interesting output is the *sweet spot* — the intermediate
crossbar size minimizing total energy.

A second sweep extends the study beyond the paper: hold the platform at
the sweet spot and split its crossbars over 1, 2 and 4 chips joined by
bridge links, showing the latency/energy cliff of going off-chip and how
much the chip-aware placement pass claws back.

Run:  python examples/architecture_exploration.py
"""

from repro.apps import build_application
from repro.core import PSOConfig
from repro.framework import explore_architecture, explore_chips
from repro.hardware.presets import custom
from repro.utils.tables import format_table

CROSSBAR_SIZES = [90, 180, 360, 720, 1080, 1440]
CHIP_COUNTS = [1, 2, 4]


def main() -> None:
    print("Simulating digit recognition (Diehl & Cook, 784+250+250 neurons)...")
    graph = build_application(
        "digit_recognition", seed=3, duration_ms=200.0,
        n_training_samples=2, train_ms_per_sample=100.0,
    )
    print(graph.describe())

    base = custom(n_crossbars=4, neurons_per_crossbar=256,
                  interconnect="tree", name="explore")
    points = explore_architecture(
        graph, base, crossbar_sizes=CROSSBAR_SIZES, method="pso", seed=7,
        pso_config=PSOConfig(n_particles=40, n_iterations=30),
    )

    rows = [
        (
            p.neurons_per_crossbar,
            p.n_crossbars,
            f"{p.local_energy_uj:.2f}",
            f"{p.global_energy_uj:.2f}",
            f"{p.total_energy_uj:.2f}",
            p.max_latency_cycles,
        )
        for p in points
    ]
    print()
    print(format_table(
        ["neurons/xbar", "crossbars", "local uJ", "global uJ", "total uJ",
         "max latency (cy)"],
        rows,
    ))

    best = min(points, key=lambda p: p.total_energy_uj)
    print()
    print(
        f"Sweet spot: {best.neurons_per_crossbar} neurons/crossbar "
        f"({best.n_crossbars} crossbars) at {best.total_energy_uj:.2f} uJ total"
    )

    # -- multi-chip sweep: the sweet-spot platform split across chips ------
    print()
    print(f"Splitting {best.n_crossbars}x{best.neurons_per_crossbar} over "
          f"{CHIP_COUNTS} mesh chips (bridge latency 4)...")
    board = custom(n_crossbars=max(best.n_crossbars, max(CHIP_COUNTS)),
                   neurons_per_crossbar=best.neurons_per_crossbar,
                   interconnect="mesh", bridge_latency=4, name="board")
    chip_points = explore_chips(
        graph, board, chip_counts=CHIP_COUNTS, method="pso", seed=7,
        pso_config=PSOConfig(n_particles=40, n_iterations=30),
    )
    rows = [
        (
            p.n_chips,
            p.n_bridges,
            f"{p.global_energy_uj:.2f}",
            f"{p.total_energy_uj:.2f}",
            p.inter_chip_hops,
            p.bridge_crossings,
            p.max_latency_cycles,
        )
        for p in chip_points
    ]
    print()
    print(format_table(
        ["chips", "bridges", "global uJ", "total uJ", "inter-chip hops",
         "crossings", "max latency (cy)"],
        rows,
    ))


if __name__ == "__main__":
    main()
