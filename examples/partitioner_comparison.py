#!/usr/bin/env python
"""Compare every partitioner on every application (Fig. 5 style).

Runs NEUTRAMS, PACMAN, greedy, simulated annealing and the proposed PSO on
the paper's four realistic applications plus two synthetic topologies, and
prints interconnect spike counts and normalized energy per (app, method) —
the data behind the paper's Fig. 5 bar chart.

Run:  python examples/partitioner_comparison.py
"""

from repro.apps import build_application
from repro.core import PSOConfig, compare_methods
from repro.framework.exploration import estimate_interconnect_energy_pj
from repro.hardware.presets import architecture_for
from repro.utils.tables import format_table

WORKLOADS = [
    ("synth_1x80", dict(duration_ms=400.0)),
    ("synth_2x80", dict(duration_ms=400.0)),
    ("hello_world", dict(duration_ms=400.0)),
    ("heartbeat", dict(duration_ms=3000.0)),
]
METHODS = ("neutrams", "pacman", "greedy", "annealing", "pso")


def main() -> None:
    rows = []
    for name, kwargs in WORKLOADS:
        graph = build_application(name, seed=13, **kwargs)
        arch = architecture_for(
            graph.n_neurons, neurons_per_crossbar=max(16, graph.n_neurons // 6),
            interconnect="tree", name=name,
        )
        results = compare_methods(
            graph, arch, methods=METHODS, seed=5,
            pso_config=PSOConfig(n_particles=100, n_iterations=50),
        )
        energies = {
            m: estimate_interconnect_energy_pj(graph, r.assignment, arch)
            for m, r in results.items()
        }
        reference = energies["neutrams"] or 1.0
        for method in METHODS:
            rows.append((
                name,
                method,
                f"{results[method].global_spikes:.0f}",
                f"{energies[method] / reference:.3f}",
            ))
        rows.append(("", "", "", ""))

    print(format_table(
        ["workload", "method", "interconnect spikes",
         "energy (norm. to NEUTRAMS)"],
        rows,
    ))
    print()
    print("Lower is better; the proposed PSO should sit at or below every")
    print("baseline, with the largest margins on sparse topologies.")


if __name__ == "__main__":
    main()
