#!/usr/bin/env python
"""Temporal coding case study: why ISI distortion matters.

The heartbeat-estimation LSM encodes heart rate in inter-spike intervals,
so congestion-induced ISI distortion on the global synapse interconnect
directly corrupts the application's output (paper Section V-B: a 20%
ISI-distortion reduction improved estimation accuracy by over 5%).

This example:

1. generates a synthetic ECG and runs the LSM;
2. maps the network two ways (traffic-blind random vs PSO);
3. simulates the interconnect and compares ISI distortion;
4. re-estimates the heart rate from the *delivered* spike timing to show
   the accuracy difference end to end.

Run:  python examples/temporal_coding_heartbeat.py
"""

import numpy as np

from repro.apps import build_application
from repro.apps.heartbeat import estimate_rr_from_spikes, heart_rate_accuracy
from repro.core import PSOConfig
from repro.framework import run_pipeline
from repro.hardware.presets import custom

MEAN_RR_MS = 800.0


def delivered_spike_times(result, cycles_per_ms: float) -> np.ndarray:
    """Pool the delivery times (ms) of all spikes that crossed the NoC."""
    return np.asarray(
        [r.delivered_cycle / cycles_per_ms for r in result.noc_stats.deliveries]
    )


def main() -> None:
    print("Generating synthetic ECG and running the 64-neuron liquid...")
    graph = build_application(
        "heartbeat", seed=21, duration_ms=8000.0, mean_rr_ms=MEAN_RR_MS
    )
    print(graph.describe())

    # Small crossbars + slow NoC clock make congestion visible.
    arch = custom(n_crossbars=8, neurons_per_crossbar=16,
                  interconnect="tree", cycles_per_ms=5.0, name="wearable")

    print()
    for method in ("random", "pso"):
        result = run_pipeline(
            graph, arch, method=method, seed=4,
            pso_config=PSOConfig(n_particles=80, n_iterations=40),
        )
        report = result.report
        delivered = delivered_spike_times(result, arch.cycles_per_ms)
        rr = estimate_rr_from_spikes(delivered) if delivered.size else float("nan")
        accuracy = heart_rate_accuracy(MEAN_RR_MS, rr)
        print(
            f"{method:8s}  global spikes = {report.global_spikes:8.0f}   "
            f"ISI distortion = {report.isi_distortion_cycles:6.2f} cy   "
            f"disorder = {report.disorder_percent:5.2f}%   "
            f"RR estimate from delivered spikes = {rr:7.1f} ms "
            f"(accuracy {accuracy:.1%})"
        )

    print()
    print("PSO keeps beat-locked flows local, so the delivered spike")
    print("timing preserves the inter-beat intervals the readout decodes.")


if __name__ == "__main__":
    main()
