#!/usr/bin/env python
"""Fault injection and resilient runtime remapping.

Crossbar fabrics in the field lose links and whole compute arrays to
defects and aging.  This example degrades a mapped fabric in two ways:

1. **Dead links** — `run_fault_sweep` re-simulates one fixed mapping at
   rising link-fault counts; routing detours around the damage and the
   degradation curve shows what the detours cost in latency and energy.
2. **A faulty crossbar** — a `FaultEvent` marks one crossbar's compute
   array dead mid-run; the `RuntimeRemapper` evacuates its neurons onto
   healthy crossbars a few migrations per epoch.

Run:  python examples/fault_tolerance.py
"""

from repro.apps import build_application
from repro.core import map_snn
from repro.core.runtime import FaultEvent, RuntimeRemapper
from repro.framework.pipeline import run_fault_sweep
from repro.hardware.presets import custom
from repro.noc.interconnect import NocConfig

SEED = 2018


def main() -> None:
    graph = build_application("hello_world", seed=SEED, duration_ms=500.0)
    # One spare crossbar's worth of slack so a crossbar fault is absorbable.
    arch = custom(n_crossbars=9,
                  neurons_per_crossbar=max(16, -(-graph.n_neurons // 8)),
                  interconnect="mesh", name="field-unit")
    mapping = map_snn(graph, arch, method="pacman")

    print(f"Degrading the {arch.name} fabric link by link...")
    curve = run_fault_sweep(
        graph, arch,
        fault_counts=(0, 1, 2, 4),
        fault_seed=SEED,
        noc_config=NocConfig(backend="fast"),
        mapping=mapping,
    )
    print(curve.table())
    worst = curve.points[-1]
    print(f"With {worst.n_faults} dead links every packet still delivers; "
          f"mean latency is x{curve.latency_overhead(worst):.2f} the "
          f"healthy fabric's.")

    print()
    print("Now a whole crossbar's compute array fails mid-run...")
    remapper = RuntimeRemapper(
        graph,
        n_clusters=arch.n_crossbars,
        capacity=arch.neurons_per_crossbar,
        assignment=mapping.assignment,
        migration_budget=4,
    )
    victim = max(range(arch.n_crossbars),
                 key=lambda c: len(remapper.neurons_on(c)))
    stranded = len(remapper.neurons_on(victim))
    remapper.apply_fault(FaultEvent(crossbar=victim, time=120.0,
                                    description="compute array fault"))
    epochs = 0
    while not remapper.evacuated(victim):
        epoch = remapper.remap_epoch()
        epochs += 1
        print(f"  epoch {epochs}: {epoch.n_migrations} migrations, "
              f"{len(remapper.neurons_on(victim))} neurons still stranded")
    print(f"Crossbar {victim} evacuated: {stranded} neurons moved in "
          f"{epochs} epochs ({remapper.total_migrations()} migrations at "
          f"budget 4/epoch).")


if __name__ == "__main__":
    main()
