#!/usr/bin/env python
"""Fault injection, campaigns and resilient runtime remapping.

Crossbar fabrics in the field lose links and whole compute arrays to
defects and aging.  This example degrades a mapped fabric four ways:

1. **Dead links** — `run_fault_sweep` re-simulates one fixed mapping at
   rising link-fault counts; routing detours around the damage and the
   degradation curve shows what the detours cost in latency and energy.
2. **A faulty crossbar** — a `FaultEvent` marks one crossbar's compute
   array dead mid-run; the `RuntimeRemapper` evacuates its neurons onto
   healthy crossbars a few migrations per epoch.
3. **A transient fault** — a `FaultTimeline` schedules a crossbar fault
   that later *heals*; `run_fault_timeline` evacuates at the arrive
   edge and re-admits the crossbar at the clear edge, all under the
   same migration budget.
4. **A Monte-Carlo campaign** — `run_fault_campaign` replays many
   seeded fault draws against two mappings of the same PSO seed, with
   and without `spare_capacity` headroom, and shows what the
   fault-aware mapping buys in survival and tail latency.

Run:  python examples/fault_tolerance.py
"""

from repro.apps import build_application
from repro.core import map_snn
from repro.core.runtime import (
    FaultEvent,
    RuntimeRemapper,
    run_fault_timeline,
)
from repro.framework.pipeline import run_fault_campaign, run_fault_sweep
from repro.hardware.presets import custom
from repro.noc.faults import FaultSet, FaultTimeline, FaultWindow
from repro.noc.interconnect import NocConfig

SEED = 2018


def main() -> None:
    graph = build_application("hello_world", seed=SEED, duration_ms=500.0)
    # One spare crossbar's worth of slack so a crossbar fault is absorbable.
    arch = custom(n_crossbars=9,
                  neurons_per_crossbar=max(16, -(-graph.n_neurons // 8)),
                  interconnect="mesh", name="field-unit")
    mapping = map_snn(graph, arch, method="pacman")

    print(f"Degrading the {arch.name} fabric link by link...")
    curve = run_fault_sweep(
        graph, arch,
        fault_counts=(0, 1, 2, 4),
        fault_seed=SEED,
        noc_config=NocConfig(backend="fast"),
        mapping=mapping,
    )
    print(curve.table())
    worst = curve.points[-1]
    print(f"With {worst.n_faults} dead links every packet still delivers; "
          f"mean latency is x{curve.latency_overhead(worst):.2f} the "
          f"healthy fabric's.")

    print()
    print("Now a whole crossbar's compute array fails mid-run...")
    remapper = RuntimeRemapper(
        graph,
        n_clusters=arch.n_crossbars,
        capacity=arch.neurons_per_crossbar,
        assignment=mapping.assignment,
        migration_budget=4,
    )
    victim = max(range(arch.n_crossbars),
                 key=lambda c: len(remapper.neurons_on(c)))
    stranded = len(remapper.neurons_on(victim))
    remapper.apply_fault(FaultEvent(crossbar=victim, time=120.0,
                                    description="compute array fault"))
    epochs = 0
    while not remapper.evacuated(victim):
        epoch = remapper.remap_epoch()
        epochs += 1
        print(f"  epoch {epochs}: {epoch.n_migrations} migrations, "
              f"{len(remapper.neurons_on(victim))} neurons still stranded")
    print(f"Crossbar {victim} evacuated: {stranded} neurons moved in "
          f"{epochs} epochs ({remapper.total_migrations()} migrations at "
          f"budget 4/epoch).")

    print()
    print("Now the fault is transient: it arrives at t=100 and heals "
          "at t=400...")
    timeline = FaultTimeline([
        FaultWindow(FaultSet(faulty_crossbars=[victim]),
                    arrive=100.0, clear=400.0),
    ])
    remapper = RuntimeRemapper(
        graph,
        n_clusters=arch.n_crossbars,
        capacity=arch.neurons_per_crossbar,
        assignment=mapping.assignment,
        migration_budget=8,
    )
    for step in run_fault_timeline(remapper, timeline, epochs_per_edge=2):
        what = (f"arrived on {list(step.arrived)}" if step.arrived
                else f"cleared on {list(step.cleared)}")
        moved = sum(e.n_migrations for e in step.epochs)
        print(f"  t={step.time:.0f}: fault {what}; {moved} migrations, "
              f"{len(remapper.neurons_on(victim))} neurons on crossbar "
              f"{victim}")
    print(f"Healed: crossbar {victim} is a first-class citizen again "
          f"({len(remapper.heal_log)} heal events audited).")

    print()
    print("Finally, a Monte-Carlo campaign: fault-aware vs. baseline "
          "mapping...")
    roomy = custom(12, 16, interconnect="mesh", name="roomy-unit")
    baseline = map_snn(graph, roomy, method="pso", seed=SEED)
    fault_aware = map_snn(graph, roomy, method="pso", seed=SEED,
                          spare_capacity=0.15)
    print(f"  baseline:    fitness {baseline.fitness:.0f} "
          f"(crossbars packed full)")
    print(f"  fault-aware: fitness {fault_aware.fitness:.0f} "
          f"(15% of every crossbar held in reserve)")
    summary = run_fault_campaign(
        graph, roomy,
        mappings={"baseline": baseline, "fault-aware": fault_aware},
        fault_levels=(0, 2, 4),
        draws=8,
        campaign_seed=SEED,
        noc_config=NocConfig(backend="fast"),
        workers=4,
    )
    print(summary.table())
    deepest = max(summary.levels)
    base_stats = summary.level_stats("baseline", deepest)
    fa_stats = summary.level_stats("fault-aware", deepest)
    print(f"At {deepest} faults the fault-aware mapping's p95 latency "
          f"overhead is x{fa_stats.p95_latency_overhead:.3f} vs "
          f"x{base_stats.p95_latency_overhead:.3f} for the packed "
          f"baseline — headroom pays for itself once the fabric "
          f"degrades.")


if __name__ == "__main__":
    main()
