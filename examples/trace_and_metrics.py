#!/usr/bin/env python
"""Tracing and metrics across the mapping/serving stack (repro.obs).

Observability is off by default and bit-neutral: nothing about a run
changes when it is on except that you can see inside it.  This example
tours the three surfaces:

1. a traced end-to-end ``run_pipeline`` — nested wall-clock spans down
   to PSO iterations and the NoC engine (including the threaded batch
   kernel's ``noc.simulate_batch`` span with its thread count, here
   requested via ``threads=2`` — the CLI knob is ``--threads``),
   summarized as a tree and exported as a JSONL trace;
2. the Prometheus-style metrics snapshot the same run accumulated
   (simulation counts per backend, packets, cache traffic, ...);
3. live service counters from a coalesced ``MappingService`` batch.

Run:  python examples/trace_and_metrics.py
"""

from repro.apps import build_application
from repro.core import PSOConfig
from repro.framework.pipeline import run_pipeline
from repro.framework.service import MapRequest, MappingService
from repro.hardware.presets import architecture_for
from repro.noc.interconnect import NocConfig
from repro.obs import (
    observe,
    prometheus_text,
    read_trace_jsonl,
    span_tree_summary,
    write_trace_jsonl,
)

TRACE_PATH = "trace.jsonl"
METRICS_PATH = "metrics.prom"


def main() -> None:
    graph = build_application("hello_world", seed=1)
    arch = architecture_for(graph.n_neurons, neurons_per_crossbar=16,
                            interconnect="mesh", name="obs-demo")
    pso = PSOConfig(n_particles=8, n_iterations=6)
    ncfg = NocConfig(backend="fast")

    # -- 1. a traced pipeline run -----------------------------------------
    # threads=2 routes swarm scoring through the threaded batch kernel
    # (one GIL-free C call per generation, bit-identical to serial);
    # its noc.simulate_batch spans appear in the trace below.
    with observe() as obs:
        result = run_pipeline(graph, arch, method="pso", seed=1,
                              pso_config=pso, objective="noc",
                              noc_config=ncfg, threads=2)
    print(result.mapping.describe())
    print()
    print("Span tree (wall-clock breakdown):")
    print(span_tree_summary(obs.tracer, max_depth=4))

    n_spans = write_trace_jsonl(obs.tracer, TRACE_PATH)
    rows = read_trace_jsonl(TRACE_PATH)
    deepest = max(rows, key=lambda r: r["id"])
    print(f"\nwrote {n_spans} spans -> {TRACE_PATH} "
          f"(last: {deepest['name']!r}, {deepest['duration_s'] * 1e3:.2f}ms)")

    # -- 2. the metrics the same run accumulated --------------------------
    print("\nCounters:")
    for flat, value in obs.metrics.counters().items():
        print(f"  {flat} = {value:g}")
    with open(METRICS_PATH, "w") as fh:
        fh.write(prometheus_text(obs.metrics))
    print(f"Prometheus snapshot -> {METRICS_PATH}")

    # -- 3. live counters from a coalesced serving batch -------------------
    service = MappingService()
    service.serve_batch([
        MapRequest(graph=graph, architecture=arch, seed=s, pso_config=pso,
                   objective="noc", noc_config=ncfg)
        for s in (1, 2)
    ])
    print(f"\nservice: requests_served={service.requests_served}")
    print(f"service: coalescer {service.coalescer_stats}")


if __name__ == "__main__":
    main()
