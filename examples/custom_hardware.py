#!/usr/bin/env python
"""Custom platforms: config files, interconnect families, link faults.

Three platform-engineering workflows on one application:

1. define a platform in a config file (the paper's Noxim "external
   loaded YAML" workflow) and map onto it;
2. compare interconnect families (CxQuad's NoC-tree vs a TrueNorth-style
   NoC-mesh vs a star) for the same mapped network;
3. inject link faults into the mesh and measure the latency cost of
   rerouted traffic — the robustness margin of the mapping.

Run:  python examples/custom_hardware.py
"""

import tempfile
from pathlib import Path

from repro.apps import build_application
from repro.core import PSOConfig, map_snn
from repro.framework import run_pipeline
from repro.hardware.config import load_architecture, save_architecture
from repro.hardware.presets import custom
from repro.metrics.congestion import congestion_report
from repro.noc.faults import inject_random_faults
from repro.noc.fastsim import build_interconnect
from repro.noc.interconnect import NocConfig
from repro.noc.routing import shortest_path_routing
from repro.noc.traffic import build_injections
from repro.utils.tables import format_table

CONFIG_TEXT = """\
# An 8-tile experimental platform.
name: octa
n_crossbars: 8
neurons_per_crossbar: 16
interconnect: mesh
cycles_per_ms: 5.0
energy:
  e_local_event_pj: 1.2
  reference_crossbar_size: 128
  e_router_pj: 6.0
  e_link_pj: 3.0
  e_encode_pj: 2.0
  e_decode_pj: 2.0
"""


def main() -> None:
    # 1. Platform from a config file.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "octa.yaml"
        path.write_text(CONFIG_TEXT, encoding="utf-8")
        arch = load_architecture(path)
        print(f"Loaded platform from config: {arch.describe()}")
        # Round-trip: the file regenerates from the object.
        save_architecture(arch, path)

    graph = build_application("heartbeat", seed=8, duration_ms=4000.0)
    print(graph.describe())

    # 2. Interconnect family comparison for the same workload.
    print()
    rows = []
    for family in ("tree", "mesh", "star"):
        fam_arch = custom(8, 16, interconnect=family,
                          cycles_per_ms=5.0, name=family)
        result = run_pipeline(
            graph, fam_arch, method="pso", seed=3,
            pso_config=PSOConfig(n_particles=60, n_iterations=30),
        )
        report = congestion_report(result.noc_stats,
                                   fam_arch.build_topology())
        rows.append((
            family,
            result.report.max_latency_cycles,
            f"{result.report.global_energy_pj * 1e-6:.4f}",
            report.max_link_load,
            f"{report.gini:.2f}",
        ))
    print(format_table(
        ["interconnect", "max latency (cy)", "energy (uJ)",
         "peak link load", "load gini"],
        rows,
    ))

    # 3. Fault injection on the mesh.
    print()
    mesh_arch = custom(8, 16, interconnect="mesh", cycles_per_ms=5.0,
                       name="mesh")
    mapping = map_snn(graph, mesh_arch, method="pso", seed=3,
                      pso_config=PSOConfig(n_particles=60, n_iterations=30))
    topology = mesh_arch.build_topology()
    schedule = build_injections(graph, mapping.assignment, topology,
                                cycles_per_ms=mesh_arch.cycles_per_ms)
    rows = []
    for n_faults in (0, 1, 2, 3):
        if n_faults == 0:
            topo, faults = topology, []
        else:
            topo, faults = inject_random_faults(topology, n_faults, seed=4)
        stats = build_interconnect(
            topo, routing=shortest_path_routing(topo),
            config=NocConfig(backend="fast"),
        ).simulate(schedule.injections)
        rows.append((
            n_faults,
            str(faults) if faults else "-",
            stats.max_latency(),
            f"{stats.mean_latency():.1f}",
            stats.undelivered_count,
        ))
    print(format_table(
        ["link faults", "failed links", "max latency (cy)",
         "mean latency (cy)", "undelivered"],
        rows,
    ))
    print()
    print("The mesh reroutes around every injected fault (0 undelivered);")
    print("latency grows as detours lengthen paths and concentrate load.")


if __name__ == "__main__":
    main()
