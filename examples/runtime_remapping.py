#!/usr/bin/env python
"""Run-time remapping under spike-statistics drift.

The paper leaves run-time SNN mapping as future work; this example shows
the library's incremental remapper handling it.  Scenario: a heartbeat
LSM is mapped at design time for a resting heart rate, then the wearer
starts exercising — beat frequency doubles, the liquid's hot synapses
shift, and the design-time partition slowly bleeds energy.  A
:class:`~repro.core.runtime.RuntimeRemapper` repairs the mapping a few
neuron migrations at a time (migrations are expensive: each one
reprograms a crossbar row).

Run:  python examples/runtime_remapping.py
"""

from repro.apps.heartbeat import (
    build_heartbeat_network,
    level_crossing_encode,
    synthetic_ecg,
)
from repro.core import PSOConfig, map_snn
from repro.core.runtime import RuntimeRemapper
from repro.hardware.presets import custom
from repro.snn.generators import ScheduledSource
from repro.snn.graph import SpikeGraph
from repro.snn.simulator import Simulation
from repro.utils.tables import format_table

DURATION_MS = 6000.0


def ecg_stimulus(mean_rr_ms: float, seed: int):
    t, signal, _ = synthetic_ecg(DURATION_MS, mean_rr_ms=mean_rr_ms,
                                 seed=seed)
    return ScheduledSource(level_crossing_encode(t, signal))


def profile(net, name: str, seed: int) -> SpikeGraph:
    result = Simulation(net, seed=seed).run(DURATION_MS)
    graph = SpikeGraph.from_simulation(net, result, name=name,
                                       coding="temporal")
    return graph


def main() -> None:
    print("Design time: map the LSM for a resting heart (RR = 900 ms)...")
    # One fixed liquid wiring; the *stimulus* is what will drift.
    net = build_heartbeat_network(
        ecg_stimulus(mean_rr_ms=900.0, seed=33).spike_times, seed=7
    )
    resting = profile(net, "heartbeat@rest", seed=11)
    arch = custom(n_crossbars=8, neurons_per_crossbar=16,
                  interconnect="tree", name="wearable")
    design = map_snn(resting, arch, method="pso", seed=2,
                     pso_config=PSOConfig(n_particles=80, n_iterations=40))
    print(design.describe())

    print()
    print("Deployment: the wearer starts exercising (RR = 450 ms)...")
    net.population("ecg").source = ecg_stimulus(mean_rr_ms=450.0, seed=34)
    exercising = profile(net, "heartbeat@exercise", seed=12)
    # Same synapse list (same network), new per-synapse spike counts.
    remapper = RuntimeRemapper(
        resting,
        n_clusters=arch.n_crossbars,
        capacity=arch.neurons_per_crossbar,
        assignment=design.assignment,
        migration_budget=4,
    )
    remapper.observe_traffic(exercising.traffic)

    rows = [("design-time mapping", f"{remapper.fitness():.0f}", 0)]
    for epoch_idx in range(6):
        epoch = remapper.remap_epoch()
        rows.append((
            f"after epoch {epoch_idx + 1}",
            f"{epoch.fitness_after:.0f}",
            remapper.total_migrations(),
        ))
        if epoch.n_migrations == 0:
            break

    print(format_table(
        ["state", "interconnect spikes", "total migrations"], rows
    ))
    baseline = float(rows[0][1])
    final = float(rows[-1][1])
    if baseline > 0:
        print()
        print(f"Recovered {1 - final / baseline:.1%} of the drift-induced "
              f"traffic with {rows[-1][2]} neuron migrations "
              f"(full PSO re-run would migrate most of the "
              f"{resting.n_neurons} neurons).")


if __name__ == "__main__":
    main()
