#!/usr/bin/env python
"""Quickstart: map one SNN onto CxQuad-like hardware and measure it.

This walks the paper's Fig. 4 flow end to end in ~30 lines of API:

1. build + simulate an application SNN (the CARLsim stage);
2. partition it into local and global synapses with PSO (the contribution);
3. replay the global traffic on a cycle-accurate NoC (the Noxim++ stage);
4. read off energy, latency, throughput, ISI distortion and disorder.

Run:  python examples/quickstart.py
"""

from repro.apps import build_application
from repro.core import PSOConfig
from repro.framework import run_pipeline
from repro.hardware.presets import custom


def main() -> None:
    # 1. Application -> spike graph (hello world: 117 inputs -> 9 outputs).
    graph = build_application("hello_world", seed=42, duration_ms=500.0)
    print(graph.describe())

    # 2. A platform small enough that the network must be split: four
    #    40-neuron crossbars on a NoC-tree (CxQuad topology family).
    arch = custom(n_crossbars=4, neurons_per_crossbar=40,
                  interconnect="tree", name="mini-cxquad")
    print(arch.describe())

    # 3-4. Map with PSO and simulate the interconnect.
    result = run_pipeline(
        graph,
        arch,
        method="pso",
        seed=1,
        pso_config=PSOConfig(n_particles=100, n_iterations=50),
    )

    print()
    print(result.mapping.describe())
    throughput = result.mapping.extras.get("particle_iterations_per_s")
    if throughput:
        print(f"Swarm throughput: {throughput:,.0f} particle-iterations/s "
              f"({result.mapping.extras['n_evaluations']} evaluations)")
    print(result.noc_stats.describe())
    print()
    print(result.report.table())

    # Compare against the PACMAN baseline in one more call.
    baseline = run_pipeline(graph, arch, method="pacman")
    saved = 1.0 - (result.report.global_energy_pj
                   / baseline.report.global_energy_pj)
    print()
    print(f"Interconnect energy saved vs PACMAN: {saved:.1%}")


if __name__ == "__main__":
    main()
