"""Ablation: interconnect family and fault robustness.

Part of the paper's architecture discussion (Section II lists NoC-tree
for CxQuad and NoC-mesh for TrueNorth/HiCANN).  For a fixed mapped
application this bench compares tree / mesh / star fabrics on latency,
energy and congestion balance, then injects link faults into the mesh
(the only family with redundant paths) and measures the rerouting cost.

Expected shapes:

- every family delivers all traffic (deterministic routing is complete);
- the star concentrates load on hub links (highest load imbalance);
- the mesh survives link faults with zero loss and non-decreasing
  worst-case latency.
"""

from __future__ import annotations

from repro.core import PSOConfig, map_snn
from repro.hardware.presets import custom
from repro.metrics.congestion import congestion_report
from repro.noc.faults import inject_random_faults
from repro.noc.interconnect import Interconnect
from repro.noc.routing import shortest_path_routing
from repro.noc.traffic import build_injections
from repro.utils.tables import format_table

PSO_CFG = PSOConfig(n_particles=50, n_iterations=30)
N_CROSSBARS = 8
CAPACITY = 16


def _run(graph):
    results = {}
    for family in ("tree", "mesh", "star"):
        arch = custom(N_CROSSBARS, CAPACITY, interconnect=family,
                      cycles_per_ms=5.0, name=family)
        mapping = map_snn(graph, arch, method="pso", seed=7,
                          pso_config=PSO_CFG)
        topology = arch.build_topology()
        schedule = build_injections(graph, mapping.assignment, topology,
                                    cycles_per_ms=arch.cycles_per_ms)
        stats = Interconnect(topology).simulate(schedule.injections)
        results[family] = {
            "stats": stats,
            "energy_pj": arch.energy.global_energy_pj(stats),
            "congestion": congestion_report(stats, topology),
            "schedule": schedule,
            "topology": topology,
        }
    # Fault sweep on the mesh.
    mesh = results["mesh"]
    fault_rows = []
    for n_faults in (1, 2, 3):
        topo, _ = inject_random_faults(mesh["topology"], n_faults, seed=3)
        stats = Interconnect(
            topo, routing=shortest_path_routing(topo)
        ).simulate(mesh["schedule"].injections)
        fault_rows.append((n_faults, stats))
    return results, fault_rows


def test_interconnect_family_and_faults(benchmark, heartbeat_graph):
    results, fault_rows = benchmark.pedantic(
        _run, args=(heartbeat_graph,), rounds=1, iterations=1
    )

    rows = [
        (
            family,
            r["stats"].max_latency(),
            f"{r['stats'].mean_latency():.1f}",
            f"{r['energy_pj'] * 1e-6:.4f}",
            r["congestion"].max_link_load,
            f"{r['congestion'].gini:.2f}",
        )
        for family, r in results.items()
    ]
    print()
    print("Ablation — interconnect families (heartbeat, 8 crossbars)")
    print(format_table(
        ["family", "max lat (cy)", "mean lat (cy)", "energy (uJ)",
         "peak link load", "load gini"],
        rows,
    ))

    f_rows = [
        (n, s.max_latency(), f"{s.mean_latency():.1f}", s.undelivered_count)
        for n, s in fault_rows
    ]
    print()
    print("Fault sweep on the mesh")
    print(format_table(
        ["faults", "max lat (cy)", "mean lat (cy)", "undelivered"], f_rows
    ))

    # All families deliver everything.
    for family, r in results.items():
        assert r["stats"].undelivered_count == 0, family

    # The star's hub funnels everything: its load imbalance tops the tree's
    # leaf-distributed links and the mesh's many alternatives.
    assert (results["star"]["congestion"].gini
            >= results["mesh"]["congestion"].gini)

    # Faulted mesh still delivers everything.
    for n, stats in fault_rows:
        assert stats.undelivered_count == 0, f"{n} faults lost packets"
