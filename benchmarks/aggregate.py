"""Merge per-leg benchmark JSON reports into one ``BENCH_summary.json``.

CI's tier-1 matrix uploads one artifact per (python, kernel) leg, each
holding the JSON reports its bench steps wrote (``FASTSIM_REPORT_PATH``
and friends).  The ``bench-aggregate`` job downloads them all and runs::

    python benchmarks/aggregate.py --input-dir bench-artifacts \
        --output BENCH_summary.json

The summary groups every report by leg name, keeps each run alongside
its source path (so per-leg regressions stay attributable), and lists
the legs that produced no report at all — a missing leg is a pipeline
problem worth seeing, not something to silently drop.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Report files every full CI run is expected to produce, one per bench
#: leg (the file names are fixed by the workflow's *_REPORT_PATH envs).
EXPECTED_LEGS = (
    "fastsim_speedup",
    "parallel_speedup",
    "multichip_smoke",
    "large_mesh",
    "frontend_speedup",
    "fault_tolerance",
    "fault_campaign",
    "service_bench",
    "obs_overhead",
    "threaded_batch",
)


def find_reports(input_dirs):
    """Yield (leg, source_path) for every expected report file found."""
    wanted = {f"{leg}.json": leg for leg in EXPECTED_LEGS}
    for root_dir in input_dirs:
        for dirpath, _dirnames, filenames in sorted(os.walk(root_dir)):
            for name in sorted(filenames):
                leg = wanted.get(name)
                if leg is not None:
                    yield leg, os.path.join(dirpath, name)


def aggregate(input_dirs, output_path):
    legs = {}
    unreadable = []
    for leg, path in find_reports(input_dirs):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            unreadable.append({"source": path, "error": str(exc)})
            continue
        legs.setdefault(leg, {"runs": []})["runs"].append(
            {"source": path, "data": data}
        )
    missing = [leg for leg in EXPECTED_LEGS if leg not in legs]
    summary = {
        "legs": legs,
        "missing": missing,
        "unreadable": unreadable,
        "n_legs_found": len(legs),
        "n_runs": sum(len(v["runs"]) for v in legs.values()),
    }
    with open(output_path, "w") as fh:
        json.dump(summary, fh, indent=2)
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--input-dir", action="append", required=True,
        help="directory to scan recursively for leg reports (repeatable)",
    )
    parser.add_argument(
        "--output", default="BENCH_summary.json",
        help="where to write the merged summary",
    )
    args = parser.parse_args(argv)
    summary = aggregate(args.input_dir, args.output)
    print(
        f"aggregated {summary['n_runs']} runs across "
        f"{summary['n_legs_found']}/{len(EXPECTED_LEGS)} legs "
        f"-> {args.output}"
    )
    if summary["missing"]:
        print(f"missing legs: {', '.join(summary['missing'])}")
    if summary["unreadable"]:
        print(f"unreadable reports: {len(summary['unreadable'])}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
