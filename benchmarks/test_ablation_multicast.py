"""Ablation: multicast (Noxim++ extension #3) versus unicast delivery.

The paper extends Noxim with multicast so one AER packet reaches a subset
of crossbars.  This bench maps an application once, then replays the same
injection schedule with multicast on and off.  Expected shape: multicast
never increases link traversals (it shares trunk links), so interconnect
energy drops; delivered spike sets are identical either way.
"""

from __future__ import annotations

import pytest

from repro.core import PSOConfig, map_snn
from repro.hardware.presets import architecture_for
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.traffic import build_injections
from repro.utils.tables import format_table

PSO_CFG = PSOConfig(n_particles=50, n_iterations=30)


def _run(graph):
    per_xbar = max(16, -(-graph.n_neurons // 8))  # more crossbars -> fanout
    arch = architecture_for(graph.n_neurons, neurons_per_crossbar=per_xbar,
                            interconnect="tree", name=graph.name)
    mapping = map_snn(graph, arch, method="pso", seed=7, pso_config=PSO_CFG)
    topology = arch.build_topology()
    schedule = build_injections(graph, mapping.assignment, topology,
                                cycles_per_ms=arch.cycles_per_ms)
    out = {}
    for multicast in (True, False):
        ic = Interconnect(topology, config=NocConfig(multicast=multicast))
        stats = ic.simulate(schedule.injections)
        assert stats.undelivered_count == 0
        out[multicast] = {
            "hops": stats.total_hops(),
            "energy_pj": arch.energy.global_energy_pj(stats),
            "max_latency": stats.max_latency(),
            "delivered": {(r.uid, r.dst_node) for r in stats.deliveries},
        }
    return out


def _run_all(workloads):
    return {name: _run(g) for name, g in workloads.items()}


@pytest.fixture(scope="module")
def multicast_workloads(hello_world_graph, heartbeat_graph):
    return {"hello_world": hello_world_graph, "heartbeat": heartbeat_graph}


def test_multicast_ablation(benchmark, multicast_workloads):
    results = benchmark.pedantic(
        _run_all, args=(multicast_workloads,), rounds=1, iterations=1
    )

    rows = []
    for name, r in results.items():
        for mode, label in ((True, "multicast"), (False, "unicast")):
            rows.append((
                name, label, r[mode]["hops"],
                f"{r[mode]['energy_pj'] * 1e-6:.4f}",
                r[mode]["max_latency"],
            ))
        rows.append(("", "", "", "", ""))
    print()
    print("Ablation — multicast vs unicast on the global interconnect")
    print(format_table(
        ["workload", "mode", "link hops", "energy (uJ)", "max latency (cy)"],
        rows,
    ))

    for name, r in results.items():
        # Same spikes reach the same destinations either way.
        assert r[True]["delivered"] == r[False]["delivered"], name
        # Multicast shares trunks: hop count and energy can only drop.
        assert r[True]["hops"] <= r[False]["hops"], name
        assert r[True]["energy_pj"] <= r[False]["energy_pj"], name
