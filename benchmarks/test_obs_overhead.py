"""Observability overhead on the Fig. 5 workloads.

Runs the instrumented hot path — injection-schedule building plus the
fast NoC backend — bare and under a live ``repro.obs.observe()``
session (tracing *and* metrics on), and checks:

- bit-identical delivery records, cycle counts and link loads with
  observability on vs off (the neutrality contract, at bench scale);
- the observed run costs < 5% extra wall time in aggregate
  (min-of-repeats on both sides, so scheduler noise cancels).

Set ``OBS_REPORT_PATH`` to also write the measurements as JSON
(uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import timeit
from typing import Dict

from repro.core.mapper import map_snn
from repro.hardware.presets import architecture_for
from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import NocConfig
from repro.noc.traffic import build_injections
from repro.obs import observe
from repro.utils.tables import format_table

#: Acceptance ceiling: observability may cost at most this fraction.
MAX_OVERHEAD = 0.05


def _workload_for(graph):
    """The Fig. 5 platform sizing (mirrors the fastsim bench)."""
    per_xbar = max(16, -(-graph.n_neurons // 6))
    arch = architecture_for(
        graph.n_neurons, neurons_per_crossbar=per_xbar,
        interconnect="tree", name=graph.name,
    )
    mapping = map_snn(graph, arch, method="greedy", seed=7)
    topology = arch.build_topology()
    return arch, mapping, topology


def _records(stats):
    return [
        (r.uid, r.src_neuron, r.src_node, r.dst_node, r.injected_cycle,
         r.delivered_cycle, r.hops)
        for r in stats.deliveries
    ]


def test_obs_overhead_under_5_percent(benchmark, synthetic_graphs,
                                      hello_world_graph):
    workloads = dict(synthetic_graphs)
    workloads["HW"] = hello_world_graph
    prepared = {
        name: _workload_for(graph) for name, graph in workloads.items()
    }
    graphs = workloads

    def run_all():
        """One rep of the instrumented hot path over every workload."""
        out = []
        for name, (arch, mapping, topology) in prepared.items():
            schedule = build_injections(
                graphs[name], mapping.assignment, topology,
                cycles_per_ms=arch.cycles_per_ms,
            )
            sim = FastInterconnect(topology, config=NocConfig(backend="fast"))
            out.append(sim.simulate(schedule))
        return out

    def run_all_observed():
        # A fresh observe() per rep: span/metric recording is inside the
        # measured region, exactly as a traced production run pays it.
        with observe():
            return run_all()

    # Neutrality at bench scale: every delivery record bit-identical.
    bare_stats = run_all()
    obs_stats = run_all_observed()
    for name, a, b in zip(prepared, bare_stats, obs_stats):
        assert _records(a) == _records(b), (
            f"{name}: results diverged with observability enabled"
        )
        assert a.cycles_run == b.cycles_run
        assert a.link_loads == b.link_loads

    # Interleave the two sides so load/frequency drift hits both alike;
    # min-of-reps then discards everything but the cleanest pass each.
    bare_times, obs_times = [], []
    for _ in range(7):
        bare_times.append(timeit.timeit(run_all, number=1))
        obs_times.append(timeit.timeit(run_all_observed, number=1))
    t_bare = min(bare_times)
    t_obs = min(obs_times)
    overhead = t_obs / t_bare - 1.0

    print()
    print("Observability overhead (Fig. 5 workloads, fast backend)")
    print(format_table(
        ["", "bare (ms)", "observed (ms)", "overhead"],
        [("TOTAL", f"{t_bare * 1e3:.2f}", f"{t_obs * 1e3:.2f}",
          f"{overhead * 100:+.2f}%")],
    ))

    results: Dict[str, float] = {
        "bare_s": t_bare,
        "observed_s": t_obs,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "n_workloads": len(prepared),
    }
    report_path = os.environ.get("OBS_REPORT_PATH")
    if report_path:
        with open(report_path, "w") as fh:
            json.dump(results, fh, indent=2)

    assert overhead < MAX_OVERHEAD, (
        f"observability costs {overhead * 100:.1f}% on the Fig. 5 hot path "
        f"(acceptance ceiling is {MAX_OVERHEAD * 100:.0f}%)"
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["overhead_fraction"] = overhead
    benchmark.extra_info["bare_s"] = t_bare
    benchmark.extra_info["observed_s"] = t_obs
