"""Shared benchmark fixtures: application spike graphs, built once.

Durations are bench-tuned (shorter than the examples) so the whole
harness finishes in minutes while keeping enough spikes for stable
statistics.  Every graph is session-scoped: the SNN simulation (the
CARLsim stage) runs once per app regardless of how many benches use it.
"""

from __future__ import annotations

import pytest

from repro.apps import build_application

BENCH_SEED = 2018  # the paper's year; fixed for reproducibility


@pytest.fixture(scope="session")
def hello_world_graph():
    return build_application("hello_world", seed=BENCH_SEED,
                             duration_ms=500.0)


@pytest.fixture(scope="session")
def image_smoothing_graph():
    return build_application("image_smoothing", seed=BENCH_SEED,
                             duration_ms=150.0)


@pytest.fixture(scope="session")
def digit_recognition_graph():
    return build_application(
        "digit_recognition", seed=BENCH_SEED, duration_ms=150.0,
        n_training_samples=2, train_ms_per_sample=80.0,
    )


@pytest.fixture(scope="session")
def heartbeat_graph():
    return build_application("heartbeat", seed=BENCH_SEED,
                             duration_ms=3000.0)


@pytest.fixture(scope="session")
def synthetic_graphs():
    """The paper's plotted synthetic topologies: 1x200, 1x600, 3x200, 4x200."""
    shapes = [(1, 200), (1, 600), (3, 200), (4, 200)]
    return {
        f"synth_{m}x{n}": build_application(
            f"synth_{m}x{n}", seed=BENCH_SEED, duration_ms=400.0
        )
        for m, n in shapes
    }
