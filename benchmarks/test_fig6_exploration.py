"""Fig. 6: architecture exploration on digit recognition.

Sweep the crossbar size from 90 to 1440 neurons (as the paper does),
mapping with PSO at each point and measuring on the NoC.  Expected shape
(paper Section V-C):

- global synapse energy *decreases* with crossbar size (more synapses fit
  locally);
- local synapse energy *increases* (wordlines get longer and more events
  stay on-tile);
- worst-case global latency decreases (less congestion);
- total energy has its minimum at an intermediate size.
"""

from __future__ import annotations

from repro.core import PSOConfig
from repro.framework.exploration import explore_architecture
from repro.hardware.presets import custom
from repro.utils.tables import format_table

CROSSBAR_SIZES = [90, 180, 360, 720, 1080, 1440]
PSO_BENCH = PSOConfig(n_particles=50, n_iterations=30)


def _run_sweep(graph):
    base = custom(n_crossbars=4, neurons_per_crossbar=256,
                  interconnect="tree", name="fig6")
    return explore_architecture(
        graph, base, crossbar_sizes=CROSSBAR_SIZES, method="pso", seed=7,
        pso_config=PSO_BENCH,
    )


def test_fig6_architecture_exploration(benchmark, digit_recognition_graph):
    points = benchmark.pedantic(
        _run_sweep, args=(digit_recognition_graph,), rounds=1, iterations=1
    )

    rows = [
        (p.neurons_per_crossbar, p.n_crossbars, f"{p.local_energy_uj:.3f}",
         f"{p.global_energy_uj:.3f}", f"{p.total_energy_uj:.3f}",
         p.max_latency_cycles)
        for p in points
    ]
    print()
    print("Fig. 6 — architecture exploration (digit recognition)")
    print(format_table(
        ["neurons/xbar", "crossbars", "local uJ", "global uJ", "total uJ",
         "latency (cy)"],
        rows,
    ))

    first, last = points[0], points[-1]

    # Global energy falls as crossbars grow.
    assert last.global_energy_uj < first.global_energy_uj

    # Local energy rises as crossbars grow.
    assert last.local_energy_uj > first.local_energy_uj

    # Worst-case interconnect latency falls (less congestion).
    assert last.max_latency_cycles <= first.max_latency_cycles

    # Global spike count is monotone non-increasing across the sweep
    # (each size step only adds mapping freedom).
    globals_ = [p.global_spikes for p in points]
    for a, b in zip(globals_, globals_[1:]):
        assert b <= a * 1.10, "global traffic should trend down with size"

    # The largest crossbar hosts everything: traffic goes to zero.
    assert last.global_spikes == 0.0
