"""Fast backend vs reference loop on the Fig. 5 workloads.

Builds the same AER injection schedules the Fig. 5 energy evaluation
flows through (the paper's plotted synthetic topologies plus the
hello_world app, mapped onto CxQuad-style tree platforms), simulates
each schedule with both backends, and checks:

- bit-identical delivery records, cycle counts and link loads (the
  deterministic-routing equivalence contract);
- the fast backend is >= 10x faster in aggregate.  The compiled kernel
  (loaded automatically when a C compiler is available; see
  ``repro/noc/_ckernel.py``) measures 30-50x here.  Without a compiler
  the pure-Python engine measures ~5x, so the 10x acceptance assertion
  only runs when the kernel is active and a relaxed 2.5x floor guards
  the fallback.

Set ``FASTSIM_REPORT_PATH`` to also write the measurements as JSON
(uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import timeit
from typing import Dict

from repro.core.mapper import map_snn
from repro.hardware.presets import architecture_for
from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.traffic import build_injections
from repro.utils.tables import format_table


def _schedule_for(graph):
    """The Fig. 5 platform sizing: every workload needs 4-8 crossbars."""
    per_xbar = max(16, -(-graph.n_neurons // 6))
    arch = architecture_for(
        graph.n_neurons, neurons_per_crossbar=per_xbar,
        interconnect="tree", name=graph.name,
    )
    mapping = map_snn(graph, arch, method="greedy", seed=7)
    topology = arch.build_topology()
    return topology, build_injections(
        graph, mapping.assignment, topology,
        cycles_per_ms=arch.cycles_per_ms,
    )


def _records(stats):
    return [
        (r.uid, r.src_neuron, r.src_node, r.dst_node, r.injected_cycle,
         r.delivered_cycle, r.hops)
        for r in stats.deliveries
    ]


def test_fastsim_speedup_on_fig5_workloads(benchmark, synthetic_graphs,
                                           hello_world_graph):
    workloads = dict(synthetic_graphs)
    workloads["HW"] = hello_world_graph

    results: Dict[str, Dict[str, float]] = {}
    kernel_active = True
    for name, graph in workloads.items():
        topology, schedule = _schedule_for(graph)
        fast = FastInterconnect(topology, config=NocConfig(backend="fast"))
        kernel_active = kernel_active and fast._ck is not None

        ref_stats = Interconnect(topology).simulate(schedule.injections)
        fast_stats = fast.simulate(schedule.injections)
        assert _records(ref_stats) == _records(fast_stats), (
            f"{name}: fast backend diverged from the reference oracle"
        )
        assert ref_stats.cycles_run == fast_stats.cycles_run
        assert ref_stats.link_loads == fast_stats.link_loads

        t_ref = min(timeit.repeat(
            lambda: Interconnect(topology).simulate(schedule.injections),
            number=1, repeat=2,
        ))
        t_fast = min(timeit.repeat(
            lambda: fast.simulate(schedule.injections),
            number=1, repeat=3,
        ))
        results[name] = {
            "ref_s": t_ref,
            "fast_s": t_fast,
            "speedup": t_ref / t_fast,
            "deliveries": ref_stats.delivered_count,
            "cycles": ref_stats.cycles_run,
        }

    total_ref = sum(r["ref_s"] for r in results.values())
    total_fast = sum(r["fast_s"] for r in results.values())
    aggregate = total_ref / total_fast

    print()
    print("Fast backend vs reference loop (Fig. 5 workloads)"
          + ("" if kernel_active else " — pure-Python engine, no C kernel"))
    print(format_table(
        ["workload", "reference (ms)", "fast (ms)", "speedup"],
        [
            (name, f"{r['ref_s'] * 1e3:.1f}", f"{r['fast_s'] * 1e3:.2f}",
             f"{r['speedup']:.1f}x")
            for name, r in results.items()
        ] + [("TOTAL", f"{total_ref * 1e3:.1f}", f"{total_fast * 1e3:.2f}",
              f"{aggregate:.1f}x")],
    ))

    report_path = os.environ.get("FASTSIM_REPORT_PATH")
    if report_path:
        with open(report_path, "w") as fh:
            json.dump(
                {
                    "kernel_active": kernel_active,
                    "aggregate_speedup": aggregate,
                    "workloads": results,
                },
                fh,
                indent=2,
            )

    if kernel_active:
        assert aggregate >= 10.0, (
            f"fast backend only {aggregate:.1f}x faster than the reference "
            "loop on the Fig. 5 workload (acceptance floor is 10x)"
        )
    else:
        assert aggregate >= 2.5, (
            f"pure-Python fast engine only {aggregate:.1f}x faster than "
            "the reference loop (fallback floor is 2.5x)"
        )

    # Record something in pytest-benchmark's output for trend tracking.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["aggregate_speedup"] = aggregate
    benchmark.extra_info["kernel_active"] = kernel_active
