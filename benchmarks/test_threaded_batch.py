"""Threaded batch kernel vs serial per-schedule kernel calls.

Scores one fig-5-scale swarm batch — hello_world mapped onto a
CxQuad-style tree with random assignments, each expanded to its AER
injection schedule — twice through the compiled kernel: once as a
Python loop of single-schedule ``simulate`` calls, once as a single
``simulate_many`` batch call running the schedules on an OpenMP team.
Checks:

- the batch results are **bit-identical** to the serial loop (same
  summaries, link loads and buffer high-water marks) — asserted
  unconditionally, on every runner;
- on a machine with 4+ cores and an OpenMP build, the one-C-call batch
  at 4 threads is at least 2x faster than the serial kernel loop.

Set ``THREADED_REPORT_PATH`` to also write the measurements as JSON
(uploaded as a CI artifact).  ``BATCH_THREADS`` overrides the thread
count (default: 4, clamped to the core count for the measurement).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.hardware.presets import architecture_for
from repro.noc._ckernel import has_batch, load_kernel, openmp_enabled
from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import NocConfig
from repro.noc.parallel import summarize
from repro.noc.traffic import build_injections

N_SCHEDULES = 48
#: Tight link buffers congest the fabric, so each schedule spends real
#: cycles in arbitration and backpressure — the regime swarm scoring
#: actually lives in, and where threading the batch pays.
NOC_CONFIG = NocConfig(backend="fast", buffer_capacity=2)


def _swarm_workload(graph):
    """A swarm of random feasible placements, expanded to schedules."""
    per_xbar = max(16, -(-graph.n_neurons // 6))
    arch = architecture_for(
        graph.n_neurons,
        neurons_per_crossbar=per_xbar,
        interconnect="tree",
        name=graph.name,
    )
    topology = arch.build_topology()
    rng = np.random.default_rng(2018)
    schedules = [
        build_injections(
            graph,
            rng.integers(0, topology.n_attach_points, size=graph.n_neurons),
            topology,
            cycles_per_ms=arch.cycles_per_ms,
        ).injections
        for _ in range(N_SCHEDULES)
    ]
    return topology, schedules


def _fingerprint(stats):
    return (
        summarize(stats),
        dict(stats.link_loads),
        stats.peak_buffer_occupancy,
        stats.cycles_run,
    )


def test_threaded_batch_speedup(benchmark, hello_world_graph):
    lib = load_kernel()
    if not has_batch(lib):
        pytest.skip("compiled batch kernel unavailable")
    topology, schedules = _swarm_workload(hello_world_graph)
    cpu_count = os.cpu_count() or 1
    openmp = openmp_enabled(lib)
    threads = int(os.environ.get("BATCH_THREADS", 4))

    sim = FastInterconnect(topology, config=NOC_CONFIG)

    # Serial baseline: the pre-batch hot path — one C call per schedule,
    # GIL held between calls.
    t0 = time.perf_counter()
    serial = [_fingerprint(sim.simulate(s)) for s in schedules]
    serial_s = time.perf_counter() - t0

    # One GIL-free C call for the whole batch (warm once so the first
    # call's lazy marshalling does not bill the steady-state number).
    warm = [
        _fingerprint(s) for s in sim.simulate_many(schedules[:4], threads=threads)
    ]
    t0 = time.perf_counter()
    batch = [_fingerprint(s) for s in sim.simulate_many(schedules, threads=threads)]
    batch_s = time.perf_counter() - t0

    assert warm == serial[:4]
    assert batch == serial, "threaded batch diverged from the serial kernel"
    speedup = serial_s / batch_s if batch_s else float("inf")

    suffix = "" if openmp else ", serial build (no OpenMP)"
    print()
    print(
        f"swarm batch, {N_SCHEDULES} schedules: "
        f"serial kernel loop {serial_s * 1e3:.0f}ms, "
        f"batch at {threads} threads {batch_s * 1e3:.0f}ms "
        f"({speedup:.2f}x, {cpu_count} CPUs{suffix})"
    )

    report_path = os.environ.get("THREADED_REPORT_PATH")
    if report_path:
        with open(report_path, "w") as fh:
            json.dump(
                {
                    "n_schedules": N_SCHEDULES,
                    "threads": threads,
                    "cpu_count": cpu_count,
                    "openmp": openmp,
                    "serial_s": serial_s,
                    "batch_s": batch_s,
                    "speedup": speedup,
                    "bit_identical": batch == serial,
                },
                fh,
                indent=2,
            )

    # The scaling claim needs real cores and a parallel build; smaller
    # runners (and no-OpenMP builds) only check equivalence above.
    if openmp and cpu_count >= 4 and threads >= 4:
        assert speedup >= 2.0, (
            f"threaded batch only {speedup:.2f}x faster at {threads} "
            f"threads on {cpu_count} CPUs (acceptance floor is 2x)"
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["threads"] = threads
    benchmark.extra_info["cpu_count"] = cpu_count
    benchmark.extra_info["openmp"] = openmp
