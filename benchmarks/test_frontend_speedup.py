"""Front-end hot paths: batched swarm repair/decode + columnar SNN engine.

PRs 1-4 made the *scoring* side of the optimization loop fast (compiled
NoC kernel, columnar schedules, process-parallel sharding); this bench
pins the two front-end contracts that make the rest of a paper-scale
``map_snn`` run equally fast:

- ``repair_batch`` + the ``put_along_axis`` one-hot decode handle a
  paper-scale generation (1000 particles x 320 neurons) >= 5x faster
  than the per-particle ``repair_assignment_reference`` loop + the
  repeat/tile one-hot build they replaced, with bit-identical repaired
  assignments (deterministic ``move_cost`` path) and attractor matrices;
- the columnar SNN engine simulates a heartbeat-scale liquid-state
  stack (ECG level-crossing input, four 32-neuron liquid columns with
  recurrent + cross-column wiring, per-column readouts) >= 5x faster
  than the reference per-tick loop, with bit-identical spike trains.

Set ``FRONTEND_REPORT_PATH`` to also write the measurements as JSON
(uploaded as a CI artifact next to the other speedup reports).
"""

from __future__ import annotations

import json
import os
import time
import timeit

import numpy as np
import pytest

from repro.apps.heartbeat import level_crossing_encode, synthetic_ecg
from repro.core.partition import (
    repair_assignment_reference,
    repair_batch,
)
from repro.snn.generators import ScheduledSource
from repro.snn.network import Network
from repro.snn.neuron import LIFModel
from repro.snn.simulator import Simulation
from repro.snn.synapse import distance_dependent

BENCH_SEED = 2018

# Paper scale (Section V-D): 1000 particles; 320 neurons packed tightly
# onto 8 crossbars (95% utilization, the regime where repair does real
# work every generation).
SWARM_P, SWARM_N, SWARM_C, SWARM_CAP = 1000, 320, 8, 42

LSM_COLUMNS = 4
LSM_COLUMN_SIZE = 32
LSM_READOUT_SIZE = 8
LSM_DURATION_MS = 2500.0


def _write_report(section: str, payload: dict) -> None:
    report_path = os.environ.get("FRONTEND_REPORT_PATH")
    if not report_path:
        return
    existing = {}
    if os.path.exists(report_path):
        with open(report_path) as fh:
            existing = json.load(fh)
    existing[section] = payload
    with open(report_path, "w") as fh:
        json.dump(existing, fh, indent=2)


def test_batched_swarm_repair_and_decode_speedup(benchmark):
    rng = np.random.default_rng(BENCH_SEED)
    swarm = rng.integers(0, SWARM_C, size=(SWARM_P, SWARM_N))
    move_cost = rng.uniform(0.0, 5.0, SWARM_N)
    half = 5.0  # x_max / 2 attractor magnitude

    def legacy_generation():
        """The pre-refactor per-iteration path: per-particle argmin-scan
        repair plus the repeat/tile one-hot build."""
        out = swarm.copy()
        for i in range(SWARM_P):
            if np.bincount(out[i], minlength=SWARM_C).max() > SWARM_CAP:
                out[i] = repair_assignment_reference(
                    out[i], SWARM_C, SWARM_CAP, move_cost=move_cost
                )
        onehot = np.zeros((SWARM_P, SWARM_N, SWARM_C))
        idx_p = np.repeat(np.arange(SWARM_P), SWARM_N)
        idx_n = np.tile(np.arange(SWARM_N), SWARM_P)
        onehot[idx_p, idx_n, out.ravel()] = 1.0
        return out, (onehot * 2.0 - 1.0) * half

    buf = np.empty((SWARM_P, SWARM_N, SWARM_C))
    buf.fill(-half)
    prev = [None]

    def batched_generation():
        """The new per-iteration path: vectorized batch repair plus the
        incremental put_along_axis one-hot (erase previous positions, put
        the new ones — BinaryPSO._one_hot's strategy)."""
        out = repair_batch(swarm, SWARM_C, SWARM_CAP, move_cost=move_cost)
        if prev[0] is not None:
            np.put_along_axis(buf, prev[0][:, :, None], -half, axis=2)
        np.put_along_axis(buf, out[:, :, None], half, axis=2)
        prev[0] = out
        return out, buf

    legacy_out, legacy_onehot = legacy_generation()
    batched_out, batched_onehot = batched_generation()
    assert np.array_equal(batched_out, legacy_out), (
        "repair_batch diverged from the per-particle repair loop"
    )
    assert np.array_equal(batched_onehot, legacy_onehot), (
        "put_along_axis one-hot diverged from the repeat/tile build"
    )

    t_legacy = min(timeit.repeat(legacy_generation, number=1, repeat=3))
    t_batched = min(timeit.repeat(batched_generation, number=3, repeat=3)) / 3
    speedup = t_legacy / t_batched

    _write_report(
        "swarm_generation",
        {
            "n_particles": SWARM_P,
            "n_neurons": SWARM_N,
            "n_clusters": SWARM_C,
            "capacity": SWARM_CAP,
            "per_particle_s": t_legacy,
            "batched_s": t_batched,
            "speedup": speedup,
        },
    )
    print(
        f"\nswarm generation ({SWARM_P}x{SWARM_N}): per-particle "
        f"{t_legacy * 1e3:.0f} ms, batched {t_batched * 1e3:.1f} ms "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"batched repair+decode only {speedup:.1f}x faster than the "
        "per-particle loop (acceptance floor is 5x)"
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["swarm_generation_speedup"] = speedup


@pytest.fixture(scope="module")
def heartbeat_scale_network():
    """Heartbeat-scale LSM stack: the Das et al. front end, multi-column.

    A synthetic ECG is level-crossing encoded onto 16 channels driving
    four 32-neuron liquid columns (distance-dependent recurrence, 80/20
    excitatory/inhibitory, ring-coupled cross-column wiring) with one
    8-neuron readout per column — 176 neurons across 9 populations, the
    population-heavy regime the fused LIF stepper exists for.
    """
    rng = np.random.default_rng(BENCH_SEED)
    t, signal, _ = synthetic_ecg(LSM_DURATION_MS, seed=rng)
    trains = level_crossing_encode(t, signal)
    net = Network("heartbeat-lsm-stack")
    net.add_source("ecg", ScheduledSource(trains), layer=0)
    depth = max(1, LSM_COLUMN_SIZE // 16)
    grid = np.array(
        [(x, y, z) for x in range(4) for y in range(4) for z in range(depth)],
        dtype=np.float64,
    )
    model = LIFModel(tau_m=30.0, t_ref=3.0)
    columns = []
    for k in range(LSM_COLUMNS):
        name = f"liquid{k}"
        columns.append(name)
        net.add_population(name, LSM_COLUMN_SIZE, model, layer=1)
        w_in = np.where(rng.random((16, LSM_COLUMN_SIZE)) < 0.4, 260.0, 0.0)
        net.connect("ecg", name, weights=w_in, name=f"ecg->{name}")
        w_rec = distance_dependent(
            grid, grid, lambda_=2.0, max_weight=70.0, probability_scale=0.45, seed=rng
        )
        np.fill_diagonal(w_rec, 0.0)
        w_rec[rng.random(LSM_COLUMN_SIZE) < 0.2, :] *= -1.5
        net.connect(name, name, weights=w_rec, delay_ms=2.0, name=f"{name}-rec")
    for k in range(LSM_COLUMNS):
        nxt = columns[(k + 1) % LSM_COLUMNS]
        w_x = np.where(rng.random((LSM_COLUMN_SIZE, LSM_COLUMN_SIZE)) < 0.1, 40.0, 0.0)
        net.connect(
            columns[k], nxt, weights=w_x, delay_ms=1.0, name=f"{columns[k]}->{nxt}"
        )
    for k, column in enumerate(columns):
        readout = f"readout{k}"
        net.add_population(readout, LSM_READOUT_SIZE, LIFModel(), layer=2)
        net.connect(
            column,
            readout,
            weights=rng.uniform(15.0, 45.0, (LSM_COLUMN_SIZE, LSM_READOUT_SIZE)),
            name=f"{column}->{readout}",
        )
    return net


def test_columnar_snn_engine_speedup(benchmark, heartbeat_scale_network):
    net = heartbeat_scale_network

    def run(engine, repeats):
        best, result = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = Simulation(net, seed=7, engine=engine).run(LSM_DURATION_MS)
            best = min(best, time.perf_counter() - t0)
        return best, result

    t_ref, ref = run("reference", 2)
    t_col, col = run("columnar", 3)
    for gid, (a, b) in enumerate(zip(ref.spike_times, col.spike_times)):
        assert np.array_equal(a, b), (
            f"columnar engine diverged from the reference at neuron {gid}"
        )
    speedup = t_ref / t_col

    _write_report(
        "snn_engine",
        {
            "n_neurons": net.n_neurons,
            "n_populations": len(net.populations),
            "n_projections": len(net.projections),
            "duration_ms": LSM_DURATION_MS,
            "total_spikes": col.total_spikes(),
            "reference_s": t_ref,
            "columnar_s": t_col,
            "speedup": speedup,
        },
    )
    print(
        f"\nSNN engine ({net.n_neurons} neurons, "
        f"{len(net.populations)} populations, {col.total_spikes()} spikes): "
        f"reference {t_ref * 1e3:.0f} ms, columnar {t_col * 1e3:.0f} ms "
        f"-> {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"columnar SNN engine only {speedup:.1f}x faster than the "
        "reference loop (acceptance floor is 5x)"
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["snn_engine_speedup"] = speedup
    benchmark.extra_info["total_spikes"] = col.total_spikes()
