"""Ablation: PSO vs simulated annealing vs greedy at matched budgets.

The paper argues for PSO over SA/GA on convergence speed (Section III).
This bench fixes a fitness-evaluation budget and compares the three
optimizer families on the same workloads, reporting solution quality and
wall time.  Expected shape: PSO and SA are competitive on quality (both
well ahead of the traffic-blind baselines); greedy is fast but weaker on
irregular graphs; PSO reaches its quality in less wall time than SA needs
for the same neighborhood coverage on larger graphs.
"""

from __future__ import annotations

import pytest

from repro.core import PSOConfig, map_snn
from repro.core.baselines import AnnealingConfig
from repro.hardware.presets import architecture_for
from repro.utils.tables import format_table

# Matched budgets: PSO 60 particles x 40 iterations = 2400 evaluations;
# GA 60 individuals x 40 generations = 2400 evaluations; SA gets 2400
# accepted-or-rejected proposal steps.
PSO_CFG = PSOConfig(n_particles=60, n_iterations=40)
SA_CFG = AnnealingConfig(n_steps=2400)


def _compare(graph):
    from repro.core.baselines import GAConfig

    per_xbar = max(16, -(-graph.n_neurons // 6))
    arch = architecture_for(graph.n_neurons, neurons_per_crossbar=per_xbar,
                            interconnect="tree", name=graph.name)
    out = {}
    out["greedy"] = map_snn(graph, arch, method="greedy")
    out["annealing"] = map_snn(graph, arch, method="annealing", seed=7,
                               config=SA_CFG)
    # All optimizers target the identical Eq. 8 per-synapse objective so
    # solution quality is directly comparable (greedy, SA and GA are
    # per-synapse; the packet objective is ablated separately).
    out["genetic"] = map_snn(
        graph, arch, method="genetic", seed=7, objective="spikes",
        config=GAConfig(population=60, generations=40),
    )
    out["pso"] = map_snn(graph, arch, method="pso", seed=7,
                         pso_config=PSO_CFG, objective="spikes")
    out["random"] = map_snn(graph, arch, method="random", seed=7)
    return out


def _run_all(workloads):
    return {name: _compare(g) for name, g in workloads.items()}


@pytest.fixture(scope="module")
def ablation_workloads(hello_world_graph, heartbeat_graph, synthetic_graphs):
    return {
        "hello_world": hello_world_graph,
        "heartbeat": heartbeat_graph,
        "synth_1x200": synthetic_graphs["synth_1x200"],
        "synth_3x200": synthetic_graphs["synth_3x200"],
    }


def test_optimizer_ablation(benchmark, ablation_workloads):
    results = benchmark.pedantic(
        _run_all, args=(ablation_workloads,), rounds=1, iterations=1
    )

    rows = []
    for name, methods in results.items():
        for m in ("random", "greedy", "genetic", "annealing", "pso"):
            r = methods[m]
            rows.append((name, m, f"{r.fitness:.0f}",
                         f"{r.wall_time_s:.2f}"))
        rows.append(("", "", "", ""))
    print()
    print("Ablation — optimizer families at matched evaluation budgets")
    print(format_table(
        ["workload", "optimizer", "interconnect spikes", "wall time (s)"],
        rows,
    ))

    for name, methods in results.items():
        # Every metaheuristic must beat random placement.
        assert methods["pso"].fitness <= methods["random"].fitness
        assert methods["annealing"].fitness <= methods["random"].fitness
        assert methods["genetic"].fitness <= methods["random"].fitness * 1.02
        # PSO within 15% of the best optimizer on every workload.
        best = min(m.fitness for m in methods.values())
        if best > 0:
            assert methods["pso"].fitness <= best * 1.15, (
                f"{name}: PSO strayed too far from the best optimizer"
            )
