"""TrueNorth-scale mesh: the multi-word compiled path + batched building.

The 30-70x compiled kernel used to stop at 63 routers (one uint64
destination mask); a 16x16 ``truenorth_like`` mesh silently fell back to
pure Python.  This bench pins the two acceptance contracts of the
columnar injection pipeline on a fig-5-style workload (the paper's
4x200 synthetic topology mapped onto a 256-crossbar NoC-mesh):

- the 256-router workload runs through the compiled **multi-word**
  kernel bit-identically to the reference backend, >= 10x faster (the
  pure-Python engine leg — ``REPRO_NO_CKERNEL=1`` in CI — guards a
  relaxed 2.5x floor instead);
- ``build_injections_batch`` builds a 32-particle swarm's schedules
  >= 3x faster than the per-particle row-oriented loop it replaced.

Set ``LARGE_MESH_REPORT_PATH`` to also write the measurements as JSON
(uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import time
import timeit

import numpy as np
import pytest

from repro.apps import build_application
from repro.hardware.presets import truenorth_like
from repro.noc._ckernel import kernel_disabled
from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.traffic import (
    build_injections,
    build_injections_batch,
    build_injections_reference,
)

BENCH_SEED = 2018
SWARM_SIZE = 32


@pytest.fixture(scope="module")
def large_mesh_case():
    """Fig-5-style workload on a 16x16 TrueNorth-like mesh.

    A seeded uniform assignment stands in for a full mapper run (a
    256-crossbar optimization would dominate the bench wall-clock) —
    spreading every layer across the whole mesh maximizes global
    traffic, which is exactly the regime the multi-word kernel exists
    for.
    """
    graph = build_application("synth_4x200", seed=BENCH_SEED, duration_ms=100.0)
    arch = truenorth_like(n_crossbars=256, neurons_per_crossbar=8)
    rng = np.random.default_rng(BENCH_SEED)
    assignment = rng.integers(0, arch.n_crossbars, graph.n_neurons)
    topology = arch.build_topology()
    return graph, arch, assignment, topology


def _records(stats):
    return [
        (
            r.uid,
            r.src_neuron,
            r.src_node,
            r.dst_node,
            r.injected_cycle,
            r.delivered_cycle,
            r.hops,
        )
        for r in stats.deliveries
    ]


def test_multiword_kernel_speedup_on_16x16_mesh(benchmark, large_mesh_case):
    graph, arch, assignment, topology = large_mesh_case
    assert topology.n_routers == 256

    schedule = build_injections(
        graph, assignment, topology, cycles_per_ms=arch.cycles_per_ms
    )
    fast = FastInterconnect(topology, config=NocConfig(backend="fast"))
    kernel_active = fast._ck is not None
    assert fast._n_words == 4  # 256 routers -> four uint64 words
    if not kernel_disabled():
        # The point of the multi-word variant: with a compiler present,
        # TrueNorth-scale fabrics must engage the compiled path instead
        # of silently dropping to pure Python.
        assert kernel_active

    t0 = time.perf_counter()
    ref_stats = Interconnect(topology).simulate(schedule.injections)
    t_ref = time.perf_counter() - t0
    t_fast = min(timeit.repeat(lambda: fast.simulate(schedule), number=1, repeat=3))

    assert _records(ref_stats) == _records(fast.simulate(schedule)), (
        "multi-word fast backend diverged from the reference oracle"
    )
    assert ref_stats.undelivered_count == 0
    speedup = t_ref / t_fast

    report_path = os.environ.get("LARGE_MESH_REPORT_PATH")
    if report_path:
        payload = {
            "kernel_active": kernel_active,
            "n_routers": topology.n_routers,
            "n_mask_words": fast._n_words,
            "n_packets": schedule.n_packets,
            "expected_deliveries": int(schedule.destination_counts().sum()),
            "reference_s": t_ref,
            "fast_s": t_fast,
            "speedup": speedup,
        }
        existing = {}
        if os.path.exists(report_path):
            with open(report_path) as fh:
                existing = json.load(fh)
        existing["simulation"] = payload
        with open(report_path, "w") as fh:
            json.dump(existing, fh, indent=2)

    print(
        f"\n16x16 mesh: reference {t_ref * 1e3:.0f} ms, "
        f"fast {t_fast * 1e3:.1f} ms -> {speedup:.1f}x "
        f"({'multi-word C kernel' if kernel_active else 'pure-Python engine'})"
    )
    if kernel_active:
        assert speedup >= 10.0, (
            f"multi-word kernel only {speedup:.1f}x faster than the "
            "reference loop (acceptance floor is 10x)"
        )
    else:
        assert speedup >= 2.5, (
            f"pure-Python engine only {speedup:.1f}x faster than the "
            "reference loop (fallback floor is 2.5x)"
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["kernel_active"] = kernel_active


def test_batched_schedule_building_speedup(benchmark, large_mesh_case):
    graph, arch, _, topology = large_mesh_case
    rng = np.random.default_rng(BENCH_SEED)
    swarm = rng.integers(0, topology.n_attach_points, (SWARM_SIZE, graph.n_neurons))
    cpm = arch.cycles_per_ms

    t0 = time.perf_counter()
    batch = build_injections_batch(graph, swarm, topology, cycles_per_ms=cpm)
    t_batch = time.perf_counter() - t0
    t0 = time.perf_counter()
    legacy = [
        build_injections_reference(graph, row, topology, cycles_per_ms=cpm)
        for row in swarm
    ]
    t_legacy = time.perf_counter() - t0

    # The batch is a drop-in replacement: identical injection streams.
    assert batch[0].injections == legacy[0].injections
    assert [s.n_packets for s in batch] == [s.n_packets for s in legacy]
    speedup = t_legacy / t_batch

    report_path = os.environ.get("LARGE_MESH_REPORT_PATH")
    if report_path:
        payload = {
            "swarm_size": SWARM_SIZE,
            "per_particle_s": t_legacy,
            "batched_s": t_batch,
            "speedup": speedup,
        }
        existing = {}
        if os.path.exists(report_path):
            with open(report_path) as fh:
                existing = json.load(fh)
        existing["schedule_building"] = payload
        with open(report_path, "w") as fh:
            json.dump(existing, fh, indent=2)

    print(
        f"\n{SWARM_SIZE}-particle swarm: per-particle {t_legacy * 1e3:.0f} ms, "
        f"batched {t_batch * 1e3:.0f} ms -> {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"batched schedule building only {speedup:.1f}x faster than the "
        "per-particle loop (acceptance floor is 3x)"
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["build_speedup"] = speedup
