"""Multi-chip interconnect smoke benchmark (`repro.noc.multichip`).

Maps hello_world onto a 2-chip mesh board and checks the three
multi-chip contracts end to end on a realistic workload:

- **backend equivalence** — fast and reference backends produce
  bit-identical ``ScheduleSummary`` values on the bridged fabric under
  deterministic routing (bridges are relay-router chains, so the fast
  tables and the C-kernel mask path need no special casing);
- **chip-aware placement** — the hierarchical pack-then-place pass
  yields no more simulated inter-chip hops than naive identity
  placement, and strictly fewer bridge crossings of traffic;
- **bridge accounting** — inter-chip hops equal bridge crossings times
  bridge latency, and the energy model's bridge term is charged.

Set ``MULTICHIP_REPORT_PATH`` to also write the measurements as JSON
(uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.mapper import map_snn
from repro.core.placement import inter_chip_traffic
from repro.core.traffic_matrix import cluster_traffic
from repro.hardware.presets import custom
from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.parallel import summarize
from repro.noc.traffic import build_injections

N_CHIPS = 2
BRIDGE_LATENCY = 4


def _board_for(graph):
    per_xbar = max(16, -(-graph.n_neurons // 8))
    return custom(
        8,
        per_xbar,
        interconnect="mesh",
        name="bench-board",
        n_chips=N_CHIPS,
        bridge_latency=BRIDGE_LATENCY,
    )


def test_multichip_smoke(benchmark, hello_world_graph):
    graph = hello_world_graph
    arch = _board_for(graph)
    topology = arch.build_topology()

    # Chip-aware mapping (pacman + hierarchical placement) vs the same
    # partition placed naively (identity permutation).
    t0 = time.perf_counter()
    mapping = map_snn(graph, arch, method="pacman")
    map_s = time.perf_counter() - t0
    naive = map_snn(graph, arch, method="pacman", placement=False)

    traffic = cluster_traffic(graph, naive.assignment, arch.n_crossbars)
    perm = mapping.extras["placement"]
    crossing_placed = inter_chip_traffic(traffic, perm, topology)
    crossing_naive = inter_chip_traffic(traffic, np.arange(arch.n_crossbars), topology)
    assert crossing_placed <= crossing_naive

    def simulate(assignment, sim):
        schedule = build_injections(
            graph, assignment, topology, cycles_per_ms=arch.cycles_per_ms
        )
        stats = sim.simulate(schedule.injections)
        return stats, summarize(stats, topology)

    fast_sim = FastInterconnect(topology, config=NocConfig(backend="fast"))
    ref_sim = Interconnect(topology)

    t0 = time.perf_counter()
    placed_stats, placed = simulate(mapping.assignment, fast_sim)
    fast_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    _, placed_ref = simulate(mapping.assignment, ref_sim)
    ref_s = time.perf_counter() - t0
    _, naive_summary = simulate(naive.assignment, fast_sim)

    # Backend equivalence on the bridged fabric, summary-exact.
    assert placed == placed_ref, "backends diverged on the multi-chip fabric"
    # Chip-aware placement beats (or ties) naive placement where the
    # workload allows; hello_world has real community structure, so the
    # strict closed-form reduction above implies fewer simulated
    # crossings here too.
    assert placed.inter_chip_hops <= naive_summary.inter_chip_hops
    # Bridge bookkeeping is self-consistent, and every crossing is
    # charged the bridge energy term on top of the flat accounting.
    assert placed.inter_chip_hops == placed.bridge_crossings * BRIDGE_LATENCY
    energy_pj = arch.energy.global_energy_pj(placed_stats, topology)
    assert energy_pj == arch.energy.global_energy_pj(placed_stats) + (
        placed.bridge_crossings * arch.energy.e_bridge_pj
    )

    print()
    print(
        f"multichip smoke: {N_CHIPS} chips, bridge latency {BRIDGE_LATENCY}, "
        f"map {map_s * 1e3:.0f}ms, fast sim {fast_s * 1e3:.0f}ms, "
        f"ref sim {ref_s * 1e3:.0f}ms; inter-chip hops "
        f"{placed.inter_chip_hops} placed vs {naive_summary.inter_chip_hops} "
        f"naive ({placed.bridge_crossings} crossings)"
    )

    report_path = os.environ.get("MULTICHIP_REPORT_PATH")
    if report_path:
        with open(report_path, "w") as fh:
            json.dump(
                {
                    "n_chips": N_CHIPS,
                    "bridge_latency": BRIDGE_LATENCY,
                    "kernel_active": fast_sim._ck is not None,
                    "map_s": map_s,
                    "fast_sim_s": fast_s,
                    "ref_sim_s": ref_s,
                    "bit_identical": placed == placed_ref,
                    "inter_chip_hops_placed": placed.inter_chip_hops,
                    "inter_chip_hops_naive": naive_summary.inter_chip_hops,
                    "bridge_crossings": placed.bridge_crossings,
                    "crossing_traffic_placed": crossing_placed,
                    "crossing_traffic_naive": crossing_naive,
                    "global_energy_pj": energy_pj,
                },
                fh,
                indent=2,
            )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["inter_chip_hops_placed"] = placed.inter_chip_hops
    benchmark.extra_info["inter_chip_hops_naive"] = naive_summary.inter_chip_hops
    benchmark.extra_info["bit_identical"] = placed == placed_ref
