"""Table II: SNN metrics on the global synapse interconnect.

For each realistic application, map with PACMAN and with the proposed
PSO, replay the global traffic on the cycle-accurate NoC, and report the
paper's four rows: ISI distortion (cycles), disorder count (%),
throughput (AER/ms), max latency (cycles).

Expected shape (paper Section V-B):

- PSO lowers ISI distortion (paper: avg −37%), disorder (−63%) and
  latency (−22%) versus PACMAN;
- PACMAN's *throughput* is usually higher — it pushes more spikes onto
  the interconnect, not a virtue.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core import PSOConfig
from repro.framework import run_pipeline
from repro.hardware.presets import architecture_for
from repro.utils.tables import format_table

PSO_BENCH = PSOConfig(n_particles=80, n_iterations=40)


def _arch_for(graph, cycles_per_ms=10.0):
    per_xbar = max(16, -(-graph.n_neurons // 6))
    return architecture_for(graph.n_neurons, neurons_per_crossbar=per_xbar,
                            interconnect="tree", cycles_per_ms=cycles_per_ms,
                            name=graph.name)


def _measure(graph) -> Dict[str, Dict[str, float]]:
    arch = _arch_for(graph)
    out = {}
    for method in ("pacman", "pso"):
        result = run_pipeline(graph, arch, method=method, seed=7,
                              pso_config=PSO_BENCH)
        report = result.report
        assert report.undelivered_packets == 0
        out[method] = {
            "isi": report.isi_distortion_cycles,
            "disorder_pct": report.disorder_percent,
            "throughput": report.throughput_aer_per_ms,
            "latency": report.max_latency_cycles,
            "energy_pj": report.global_energy_pj,
        }
    return out


def _run_all(workloads):
    return {name: _measure(graph) for name, graph in workloads.items()}


@pytest.fixture(scope="module")
def table2_workloads(hello_world_graph, image_smoothing_graph,
                     digit_recognition_graph, heartbeat_graph):
    return {
        "hello_world": hello_world_graph,
        "image_smoothing": image_smoothing_graph,
        "digit_recog.": digit_recognition_graph,
        "heartbeat_est.": heartbeat_graph,
    }


def test_table2_metric_evaluation(benchmark, table2_workloads):
    results = benchmark.pedantic(
        _run_all, args=(table2_workloads,), rounds=1, iterations=1
    )

    rows = []
    for name, r in results.items():
        for metric, fmt in [("isi", "{:.2f}"), ("disorder_pct", "{:.3f}"),
                            ("throughput", "{:.2f}"), ("latency", "{:.0f}")]:
            rows.append((
                name,
                {"isi": "ISI Distortion (cycles)",
                 "disorder_pct": "Disorder count (%)",
                 "throughput": "Throughput (AER/ms)",
                 "latency": "Latency (cycles)"}[metric],
                fmt.format(r["pacman"][metric]),
                fmt.format(r["pso"][metric]),
            ))
        rows.append(("", "", "", ""))
    print()
    print("Table II — metric evaluation for realistic applications")
    print(format_table(["application", "metric", "PACMAN", "Proposed"], rows))

    # Shape assertions per application.
    for name, r in results.items():
        assert r["pso"]["isi"] <= r["pacman"]["isi"] * 1.05, (
            f"{name}: PSO should reduce ISI distortion"
        )
        assert r["pso"]["disorder_pct"] <= r["pacman"]["disorder_pct"] + 0.5, (
            f"{name}: PSO should not increase disorder"
        )
        assert r["pso"]["latency"] <= r["pacman"]["latency"] * 1.05, (
            f"{name}: PSO should not increase worst-case latency"
        )
        assert r["pso"]["energy_pj"] <= r["pacman"]["energy_pj"] * 1.001, (
            f"{name}: PSO should not increase interconnect energy"
        )

    # Aggregate direction (paper's headline averages).
    mean_isi_gain = sum(
        1.0 - r["pso"]["isi"] / r["pacman"]["isi"]
        for r in results.values() if r["pacman"]["isi"] > 0
    ) / len(results)
    assert mean_isi_gain >= 0.0, "average ISI distortion must not regress"

    # Throughput: PACMAN pushes at least as many AER packets per ms on
    # average (it maps more synapses globally).
    pacman_thr = sum(r["pacman"]["throughput"] for r in results.values())
    pso_thr = sum(r["pso"]["throughput"] for r in results.values())
    assert pacman_thr >= pso_thr * 0.95
