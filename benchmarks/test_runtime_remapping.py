"""Bench: run-time remapping under spike-statistics drift.

The paper's stated future work, implemented and measured: a heartbeat LSM
mapped at design time for a resting heart rate is exposed to exercising
traffic (beat frequency doubles).  The incremental remapper repairs the
mapping a few migrations per epoch.  Expected shapes:

- drifted traffic costs more than the design point (drift is real);
- every epoch is non-increasing in interconnect traffic;
- a handful of migrations recovers a meaningful share of the drift
  penalty without a full re-mapping.
"""

from __future__ import annotations

from repro.apps.heartbeat import (
    build_heartbeat_network,
    level_crossing_encode,
    synthetic_ecg,
)
from repro.core import PSOConfig, map_snn
from repro.core.runtime import RuntimeRemapper
from repro.hardware.presets import custom
from repro.snn.generators import ScheduledSource
from repro.snn.graph import SpikeGraph
from repro.snn.simulator import Simulation
from repro.utils.tables import format_table

DURATION_MS = 5000.0


def _stimulus(mean_rr_ms: float, seed: int) -> ScheduledSource:
    t, signal, _ = synthetic_ecg(DURATION_MS, mean_rr_ms=mean_rr_ms,
                                 seed=seed)
    return ScheduledSource(level_crossing_encode(t, signal))


def _run():
    net = build_heartbeat_network(
        _stimulus(mean_rr_ms=900.0, seed=33).spike_times, seed=7
    )
    resting = SpikeGraph.from_simulation(
        net, Simulation(net, seed=11).run(DURATION_MS), coding="temporal"
    )
    arch = custom(8, 16, interconnect="tree", name="wearable")
    design = map_snn(resting, arch, method="pso", seed=2,
                     pso_config=PSOConfig(n_particles=60, n_iterations=30))

    # Drift: exercising heart, same wiring.
    net.population("ecg").source = _stimulus(mean_rr_ms=450.0, seed=34)
    exercising = SpikeGraph.from_simulation(
        net, Simulation(net, seed=12).run(DURATION_MS), coding="temporal"
    )
    remapper = RuntimeRemapper(
        resting, n_clusters=arch.n_crossbars,
        capacity=arch.neurons_per_crossbar,
        assignment=design.assignment, migration_budget=4,
    )
    remapper.observe_traffic(exercising.traffic)
    drifted_fitness = remapper.fitness()
    epochs = []
    migrations = []
    for _ in range(8):
        epochs.append(remapper.remap_epoch())
        migrations.append(remapper.total_migrations())

    # Reference: what a full re-map of the drifted traffic achieves on
    # the same per-synapse objective the remapper optimizes.
    full = map_snn(exercising, arch, method="pso", seed=2,
                   pso_config=PSOConfig(n_particles=60, n_iterations=30),
                   objective="spikes")
    return drifted_fitness, epochs, migrations, full


def test_runtime_remapping(benchmark):
    drifted, epochs, migrations, full = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    rows = [("drifted (no repair)", f"{drifted:.0f}", 0)]
    for i, (epoch, migrated) in enumerate(zip(epochs, migrations), start=1):
        rows.append((f"epoch {i}", f"{epoch.fitness_after:.0f}", migrated))
    rows.append(("full PSO re-map", f"{full.global_spikes:.0f}", "-"))
    print()
    print("Run-time remapping under drift (heartbeat, 8 crossbars)")
    print(format_table(
        ["state", "interconnect spikes", "migrations so far"], rows
    ))

    # Epochs never regress.
    fitness_series = [drifted] + [e.fitness_after for e in epochs]
    for before, after in zip(fitness_series, fitness_series[1:]):
        assert after <= before + 1e-9

    # The bounded repair recovers a meaningful share of the gap between
    # the drifted mapping and a full re-map.
    gap = drifted - full.global_spikes
    if gap > 0:
        recovered = drifted - fitness_series[-1]
        assert recovered >= 0.3 * gap, (
            f"remapper recovered only {recovered / gap:.0%} of the drift gap"
        )

    # And it did so with far fewer migrations than a full re-map implies.
    assert migrations[-1] <= 8 * 4  # budget x epochs
