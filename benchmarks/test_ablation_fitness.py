"""Ablation: fitness-definition and binarization design choices.

Two knobs DESIGN.md calls out:

1. **Objective**: the paper's Eq. 8 counts every crossing *synapse*
   spike; with in-network multicast the hardware actually pays per
   (neuron, destination-crossbar) *packet*.  This bench optimizes under
   both objectives and measures real NoC packets of the results.
2. **Binarization**: the paper's stochastic sigmoid rule (Eqs. 2-3)
   versus a deterministic argmax decode.

Expected shapes: packet-objective mappings never produce *more* NoC
packets than synapse-objective mappings on the same workload; both
binarizations land within a few percent of each other (the constraint
repair dominates decode noise).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import BinaryPSO, InterconnectFitness, PSOConfig
from repro.hardware.presets import architecture_for
from repro.noc.traffic import build_injections
from repro.utils.tables import format_table

PSO_CFG = PSOConfig(n_particles=60, n_iterations=40)


def _noc_packets(graph, assignment, arch) -> int:
    topology = arch.build_topology()
    schedule = build_injections(graph, assignment, topology,
                                cycles_per_ms=arch.cycles_per_ms)
    return schedule.n_packets


def _optimize(graph, arch, count_packets: bool, binarization: str):
    fitness = InterconnectFitness(graph, count_packets=count_packets)
    pso = BinaryPSO(
        fitness,
        n_neurons=graph.n_neurons,
        n_clusters=arch.n_crossbars,
        capacity=arch.neurons_per_crossbar,
        config=replace(PSO_CFG, binarization=binarization),
        seed=7,
    )
    return pso.optimize()


def _run(graph):
    per_xbar = max(16, -(-graph.n_neurons // 6))
    arch = architecture_for(graph.n_neurons, neurons_per_crossbar=per_xbar,
                            interconnect="tree", name=graph.name)
    results = {}
    for objective in ("synapse", "packet"):
        res = _optimize(graph, arch, objective == "packet", "stochastic")
        results[objective] = {
            "fitness": res.best_fitness,
            "noc_packets": _noc_packets(graph, res.best_assignment, arch),
        }
    res_argmax = _optimize(graph, arch, False, "argmax")
    results["argmax"] = {
        "fitness": res_argmax.best_fitness,
        "noc_packets": _noc_packets(graph, res_argmax.best_assignment, arch),
    }
    return results


def _run_all(workloads):
    return {name: _run(g) for name, g in workloads.items()}


@pytest.fixture(scope="module")
def fitness_workloads(hello_world_graph, heartbeat_graph):
    return {"hello_world": hello_world_graph, "heartbeat": heartbeat_graph}


def test_fitness_ablation(benchmark, fitness_workloads):
    results = benchmark.pedantic(
        _run_all, args=(fitness_workloads,), rounds=1, iterations=1
    )

    rows = []
    for name, r in results.items():
        for variant in ("synapse", "packet", "argmax"):
            rows.append((name, variant, f"{r[variant]['fitness']:.0f}",
                         r[variant]["noc_packets"]))
        rows.append(("", "", "", ""))
    print()
    print("Ablation — fitness objective and binarization rule")
    print(format_table(
        ["workload", "variant", "objective value", "actual NoC packets"],
        rows,
    ))

    for name, r in results.items():
        # Optimizing the packet objective should not *hurt* real packets.
        assert (r["packet"]["noc_packets"]
                <= r["synapse"]["noc_packets"] * 1.10), name
        # Binarization choice is second-order: within 25% on objective.
        if r["synapse"]["fitness"] > 0:
            ratio = r["argmax"]["fitness"] / r["synapse"]["fitness"]
            assert 0.6 <= ratio <= 1.67, (
                f"{name}: binarization changed solution quality "
                f"unexpectedly (ratio {ratio:.2f})"
            )
