"""Fig. 7: PSO solution quality versus swarm size.

The paper sweeps swarm size 10..1000 at 100 iterations for four
applications (hello_world, heartbeat estimation, synth_1x800,
synth_2x200) and plots interconnect energy normalized to the
per-application minimum.  Expected shape (paper Section V-D): larger
swarms find better (or equal) energy, saturating by ~1000 particles.

The bench uses 30 iterations (the trend is identical; 100 iterations just
scales wall time) and the paper's swarm-size endpoints.
"""

from __future__ import annotations

import pytest

from repro.apps import build_application
from repro.framework.exploration import explore_swarm_size, normalized_energies
from repro.hardware.presets import architecture_for
from repro.utils.tables import format_table

SWARM_SIZES = [10, 50, 200, 1000]
N_ITERATIONS = 30


@pytest.fixture(scope="module")
def fig7_workloads(hello_world_graph, heartbeat_graph):
    return {
        "hello_world": hello_world_graph,
        "heartbeat": heartbeat_graph,
        "synth_1x800": build_application("synth_1x800", seed=2018,
                                         duration_ms=300.0),
        "synth_2x200": build_application("synth_2x200", seed=2018,
                                         duration_ms=300.0),
    }


def _run_sweeps(workloads):
    sweeps = {}
    for name, graph in workloads.items():
        per_xbar = max(16, -(-graph.n_neurons // 6))
        arch = architecture_for(graph.n_neurons,
                                neurons_per_crossbar=per_xbar,
                                interconnect="tree", name=name)
        sweeps[name] = explore_swarm_size(
            graph, arch, swarm_sizes=SWARM_SIZES,
            n_iterations=N_ITERATIONS, seed=7,
        )
    return sweeps


def test_fig7_swarm_size_exploration(benchmark, fig7_workloads):
    sweeps = benchmark.pedantic(
        _run_sweeps, args=(fig7_workloads,), rounds=1, iterations=1
    )

    rows = []
    for name, points in sweeps.items():
        norm = normalized_energies(points)
        for p, e in zip(points, norm):
            rows.append((name, p.swarm_size, f"{e:.3f}",
                         f"{p.wall_time_s:.2f}",
                         f"{p.particle_iterations_per_s:,.0f}"))
        rows.append(("", "", "", "", ""))
    print()
    print(f"Fig. 7 — normalized energy vs swarm size "
          f"({N_ITERATIONS} iterations)")
    print(format_table(
        ["application", "swarm size", "normalized energy", "wall time (s)",
         "particle-iters/s"],
        rows,
    ))

    # Swarm throughput must be reported for every sweep point: a front-end
    # regression (repair, decode, buffer churn) shows up here directly.
    for name, points in sweeps.items():
        for p in points:
            assert p.particle_iterations_per_s > 0, (
                f"{name}: swarm throughput missing for size {p.swarm_size}"
            )

    for name, points in sweeps.items():
        energies = [p.interconnect_energy_pj for p in points]
        # The paper's trend: the largest swarm is at (or within 2% of) the
        # sweep minimum, and strictly better than the smallest swarm
        # unless the problem is already saturated.
        assert energies[-1] <= min(energies) * 1.02, (
            f"{name}: 1000-particle swarm should reach the sweep minimum"
        )
        assert energies[-1] <= energies[0] * 1.001, (
            f"{name}: largest swarm must not lose to the smallest"
        )
