"""Sharded vs serial swarm scoring (`repro.noc.parallel`).

Scores the same swarm of candidate placements — hello_world mapped onto
a CxQuad-style tree with random assignments, each expanded to its AER
injection schedule — twice: serially through
``FastInterconnect.simulate_many`` and sharded across a process pool
through ``ParallelNocSimulator.summarize_many``.  Checks:

- the sharded summaries are **bit-identical** to serial execution (the
  reassembly-by-index contract);
- on a machine with 4+ cores running 4+ workers, sharded scoring is at
  least 2x faster in steady state (pool warmed; the paper-scale use
  case is PSO calling this every generation, so startup amortizes away).

Worker count comes from ``PARALLEL_WORKERS`` (default: one per CPU,
capped at 4; always at least 2 so the pool path is exercised even on
small runners).  Set ``PARALLEL_REPORT_PATH`` to also write the
measurements as JSON (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.hardware.presets import architecture_for
from repro.noc.fastsim import FastInterconnect
from repro.noc.interconnect import NocConfig
from repro.noc.parallel import ParallelNocSimulator, summarize
from repro.noc.traffic import build_injections

N_SCHEDULES = 48
#: Tight link buffers congest the fabric, so each schedule simulates for
#: much longer than it takes to pickle — the regime where sharding wins.
NOC_CONFIG = NocConfig(backend="fast", buffer_capacity=2)


def _swarm_workload(graph):
    """A swarm of random feasible placements, expanded to schedules."""
    per_xbar = max(16, -(-graph.n_neurons // 6))
    arch = architecture_for(
        graph.n_neurons,
        neurons_per_crossbar=per_xbar,
        interconnect="tree",
        name=graph.name,
    )
    topology = arch.build_topology()
    rng = np.random.default_rng(2018)
    schedules = [
        build_injections(
            graph,
            rng.integers(0, topology.n_attach_points, size=graph.n_neurons),
            topology,
            cycles_per_ms=arch.cycles_per_ms,
        ).injections
        for _ in range(N_SCHEDULES)
    ]
    return topology, schedules


def test_parallel_speedup_on_swarm_scoring(benchmark, hello_world_graph):
    topology, schedules = _swarm_workload(hello_world_graph)
    cpu_count = os.cpu_count() or 1
    workers = int(os.environ.get("PARALLEL_WORKERS", max(2, min(4, cpu_count))))
    workers = max(2, workers)

    serial_sim = FastInterconnect(topology, config=NOC_CONFIG)
    t0 = time.perf_counter()
    serial = [summarize(s) for s in serial_sim.simulate_many(schedules)]
    serial_s = time.perf_counter() - t0

    with ParallelNocSimulator(serial_sim, workers=workers) as sharded_sim:
        # Warm the pool (process startup + per-worker table build), then
        # measure steady-state scoring: the PSO loop re-scores a swarm
        # every generation against a long-lived pool.
        t0 = time.perf_counter()
        warmup = sharded_sim.summarize_many(schedules[:workers])
        startup_s = time.perf_counter() - t0
        pool_started = sharded_sim._pool is not None

        t0 = time.perf_counter()
        sharded = sharded_sim.summarize_many(schedules)
        parallel_s = time.perf_counter() - t0

    assert warmup == serial[:workers]
    assert sharded == serial, "sharded swarm scoring diverged from serial execution"
    speedup = serial_s / parallel_s if parallel_s else float("inf")

    suffix = "" if pool_started else ", pool unavailable -> serial fallback"
    print()
    print(
        f"swarm scoring, {N_SCHEDULES} schedules: "
        f"serial {serial_s * 1e3:.0f}ms, "
        f"{workers} workers {parallel_s * 1e3:.0f}ms "
        f"({speedup:.2f}x, pool startup {startup_s * 1e3:.0f}ms, "
        f"{cpu_count} CPUs{suffix})"
    )

    report_path = os.environ.get("PARALLEL_REPORT_PATH")
    if report_path:
        with open(report_path, "w") as fh:
            json.dump(
                {
                    "n_schedules": N_SCHEDULES,
                    "workers": workers,
                    "cpu_count": cpu_count,
                    "kernel_active": serial_sim._ck is not None,
                    "pool_started": pool_started,
                    "serial_s": serial_s,
                    "parallel_s": parallel_s,
                    "startup_s": startup_s,
                    "speedup": speedup,
                    "bit_identical": sharded == serial,
                },
                fh,
                indent=2,
            )

    # The scaling claim needs real cores to stand on; smaller runners
    # (and the serial-fallback path) only check equivalence above.
    if pool_started and cpu_count >= 4 and workers >= 4:
        assert speedup >= 2.0, (
            f"sharded scoring only {speedup:.2f}x faster with {workers} "
            f"workers on {cpu_count} CPUs (acceptance floor is 2x)"
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cpu_count"] = cpu_count
