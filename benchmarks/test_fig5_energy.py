"""Fig. 5: normalized interconnect energy, NEUTRAMS vs PACMAN vs PSO.

The paper evaluates 8 synthetic topologies (plotting 1x200, 1x600, 3x200,
4x200) plus the four realistic applications, normalizing each workload's
interconnect energy to NEUTRAMS.  Expected shape (paper Section V-A):

- PSO achieves the minimum energy of the three on every workload;
- improvements shrink as synapse density grows (4x200 is nearly a tie,
  1x200 shows the largest gain).

Energy uses the paper-literal per-synapse accounting (Eq. 7-8: every
crossing synapse spike pays hop + endpoint energy independently) and the
PSO optimizes the paper's literal Eq. 8 spike objective — this bench
reproduces the paper's own cost model.  The multicast-aware packet
accounting is exercised by Table II (full NoC simulation) and the fitness
ablation bench.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core import PSOConfig, map_snn
from repro.framework.exploration import estimate_synapse_energy_pj
from repro.hardware.presets import architecture_for
from repro.utils.tables import format_table

PSO_BENCH = PSOConfig(n_particles=80, n_iterations=40)
METHODS = ("neutrams", "pacman", "pso")


def _arch_for(graph):
    """Platform sized so every workload needs 4-8 crossbars (as on CxQuad)."""
    per_xbar = max(16, -(-graph.n_neurons // 6))
    return architecture_for(graph.n_neurons, neurons_per_crossbar=per_xbar,
                            interconnect="tree", name=graph.name)


def _energies(graph) -> Dict[str, float]:
    arch = _arch_for(graph)
    out = {}
    for method in METHODS:
        result = map_snn(graph, arch, method=method, seed=7,
                         pso_config=PSO_BENCH, objective="spikes")
        out[method] = estimate_synapse_energy_pj(
            graph, result.assignment, arch
        )
    return out


def _run_all(workloads) -> Dict[str, Dict[str, float]]:
    return {name: _energies(graph) for name, graph in workloads.items()}


@pytest.fixture(scope="module")
def fig5_workloads(synthetic_graphs, hello_world_graph, image_smoothing_graph,
                   digit_recognition_graph, heartbeat_graph):
    workloads = dict(synthetic_graphs)
    workloads["HW"] = hello_world_graph
    workloads["IS"] = image_smoothing_graph
    workloads["HD"] = digit_recognition_graph
    workloads["HE"] = heartbeat_graph
    return workloads


def test_fig5_energy_comparison(benchmark, fig5_workloads):
    results = benchmark.pedantic(
        _run_all, args=(fig5_workloads,), rounds=1, iterations=1
    )

    rows = []
    for name, energies in results.items():
        ref = energies["neutrams"] or 1.0
        rows.append((
            name,
            f"{energies['neutrams'] / ref:.3f}",
            f"{energies['pacman'] / ref:.3f}",
            f"{energies['pso'] / ref:.3f}",
        ))
    print()
    print("Fig. 5 — normalized energy on the global synapse interconnect")
    print(format_table(
        ["workload", "NEUTRAMS", "PACMAN", "Proposed PSO"], rows
    ))

    # Shape assertions (paper Section V-A).  The 5% slack mirrors the
    # paper's own finding that the three approaches become "comparable"
    # on dense topologies (4x200: gains below 2%): PSO's objective is
    # the spike count, while the reported energy additionally weights
    # spikes by routed hops, so a small inversion within slack is noise.
    for name, energies in results.items():
        assert energies["pso"] <= energies["neutrams"] * 1.05, (
            f"{name}: PSO must not lose to NEUTRAMS"
        )
        assert energies["pso"] <= energies["pacman"] * 1.05, (
            f"{name}: PSO must not lose to PACMAN"
        )

    # Aggregate dominance: over all workloads PSO is the best of the
    # three on average (the paper reports 17-33% average gains).
    mean_norm = {
        m: sum(e[m] / (e["neutrams"] or 1.0) for e in results.values())
        / len(results)
        for m in METHODS
    }
    assert mean_norm["pso"] <= mean_norm["pacman"]
    assert mean_norm["pso"] <= mean_norm["neutrams"]

    # Sparse synthetic (1x200) gains more than dense (4x200).
    def gain(name):
        e = results[name]
        return 1.0 - e["pso"] / e["neutrams"]

    assert gain("synth_1x200") >= gain("synth_4x200") - 0.02, (
        "sparse topologies should benefit at least as much as dense ones"
    )
