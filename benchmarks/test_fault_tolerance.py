"""Bench: fault injection and resilient runtime remapping end to end.

Maps hello_world onto a 3x3 single-chip mesh and exercises the fault
subsystem on a realistic workload:

- **degradation curve** — the same mapping simulated at rising link
  fault counts (`repro.framework.pipeline.run_fault_sweep`); every
  packet must still deliver over the shortest-path detours, and
  latency/energy may only grow relative to the healthy fabric;
- **backend equivalence** — the most-degraded fabric produces
  bit-identical ``ScheduleSummary`` values on the reference and fast
  backends (the C-kernel mask path needs no special casing for
  degraded topologies);
- **live crossbar fault** — a ``FaultEvent`` marks one crossbar faulty
  mid-run and the ``RuntimeRemapper`` migrates every neuron off it
  under the migration budget, keeping the assignment feasible.

Set ``FAULT_REPORT_PATH`` to also write the degradation curve and the
evacuation audit as JSON (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.mapper import map_snn
from repro.core.partition import is_feasible
from repro.core.runtime import FaultEvent, RuntimeRemapper
from repro.framework.pipeline import run_fault_sweep
from repro.hardware.presets import custom
from repro.noc.fastsim import FastInterconnect
from repro.noc.faults import inject_random_faults
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.parallel import summarize
from repro.noc.traffic import build_injections

FAULT_COUNTS = (0, 1, 2, 4)
FAULT_SEED = 2018
MIGRATION_BUDGET = 6


def _platform_for(graph):
    # One spare crossbar's worth of slack: 9 crossbars sized for 8, so
    # a single crossbar fault is always fully absorbable.
    per_xbar = max(16, -(-graph.n_neurons // 8))
    return custom(9, per_xbar, interconnect="mesh", name="fault-bench")


def test_fault_tolerance(benchmark, hello_world_graph):
    graph = hello_world_graph
    arch = _platform_for(graph)
    mapping = map_snn(graph, arch, method="pacman")

    # Degradation curve: one mapping, rising fault counts.
    t0 = time.perf_counter()
    curve = run_fault_sweep(
        graph,
        arch,
        fault_counts=FAULT_COUNTS,
        fault_seed=FAULT_SEED,
        noc_config=NocConfig(backend="fast"),
        mapping=mapping,
    )
    sweep_s = time.perf_counter() - t0
    healthy = curve.healthy
    for point in curve.points:
        assert point.undelivered_packets == 0, (
            f"{point.n_faults} faults dropped packets"
        )
        assert point.mean_latency_cycles >= healthy.mean_latency_cycles
        assert point.global_energy_pj >= healthy.global_energy_pj
    worst = curve.points[-1]

    # Cross-backend equivalence on the most-degraded fabric.
    topology = arch.build_topology()
    degraded, _ = inject_random_faults(topology, max(FAULT_COUNTS), seed=FAULT_SEED)
    schedule = build_injections(
        graph,
        mapping.assignment,
        degraded,
        cycles_per_ms=arch.cycles_per_ms,
    )
    fast_sim = FastInterconnect(degraded, config=NocConfig(backend="fast"))
    ref_summary = summarize(
        Interconnect(degraded).simulate(schedule.injections), degraded
    )
    fast_summary = summarize(fast_sim.simulate(schedule), degraded)
    assert ref_summary == fast_summary, "backends diverged on degraded fabric"

    # Live fault: one crossbar dies mid-run; the remapper evacuates it.
    remapper = RuntimeRemapper(
        graph,
        n_clusters=arch.n_crossbars,
        capacity=arch.neurons_per_crossbar,
        assignment=mapping.assignment,
        migration_budget=MIGRATION_BUDGET,
    )
    victim = max(range(arch.n_crossbars), key=lambda c: len(remapper.neurons_on(c)))
    stranded = len(remapper.neurons_on(victim))
    assert stranded > 0
    remapper.apply_fault(
        FaultEvent(crossbar=victim, time=0.0, description="bench fault")
    )
    epochs = 0
    while not remapper.evacuated(victim):
        epoch = remapper.remap_epoch()
        epochs += 1
        assert all(m.to_cluster != victim for m in epoch.moves)
        assert epochs <= 2 * arch.n_crossbars, "evacuation did not converge"
    assert remapper.neurons_on(victim) == []
    assert is_feasible(
        remapper.assignment, arch.n_crossbars, arch.neurons_per_crossbar
    )
    evacuation_migrations = remapper.total_migrations()

    print()
    print(curve.table())
    print(
        f"fault sweep {sweep_s * 1e3:.0f}ms; worst fabric "
        f"({worst.n_faults} faults) latency x"
        f"{curve.latency_overhead(worst):.2f}; crossbar {victim} "
        f"evacuated {stranded} neurons in {epochs} epochs "
        f"({evacuation_migrations} migrations, budget "
        f"{MIGRATION_BUDGET}/epoch)"
    )

    report_path = os.environ.get("FAULT_REPORT_PATH")
    if report_path:
        with open(report_path, "w") as fh:
            json.dump(
                {
                    "degradation_curve": curve.to_dict(),
                    "latency_overhead_worst": curve.latency_overhead(worst),
                    "bit_identical": ref_summary == fast_summary,
                    "kernel_active": fast_sim._ck is not None,
                    "sweep_s": sweep_s,
                    "evacuation": {
                        "crossbar": victim,
                        "neurons": stranded,
                        "epochs": epochs,
                        "migrations": evacuation_migrations,
                        "migration_budget": MIGRATION_BUDGET,
                        "evacuated": remapper.evacuated(victim),
                    },
                },
                fh,
                indent=2,
            )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["latency_overhead_worst"] = curve.latency_overhead(worst)
    benchmark.extra_info["bit_identical"] = ref_summary == fast_summary
    benchmark.extra_info["evacuation_migrations"] = evacuation_migrations
