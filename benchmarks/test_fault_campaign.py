"""Bench: Monte-Carlo fault campaign and fault-aware mapping payoff.

Maps hello_world onto a 12x16 mesh twice with the same PSO seed — once
with ``spare_capacity=0`` (the paper's mapping) and once fault-aware —
then replays the *same* seeded fault draws against both through
``run_fault_campaign``:

- **parallel bit-identity** — the draw grid run on a thread pool
  (``workers=4``, batched through the threaded C kernel) produces the
  exact ``CampaignDraw`` list of the serial run;
- **fault-aware payoff** — at comparable healthy-fabric fitness
  (asserted within 10%), the fault-aware mapping must beat the
  baseline on survival rate or p95 latency overhead at the deepest
  fault level.

Set ``CAMPAIGN_REPORT_PATH`` to also write the campaign summary and
the comparison verdict as JSON (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.mapper import map_snn
from repro.core.pso import PSOConfig
from repro.framework.pipeline import run_fault_campaign
from repro.hardware.presets import custom
from repro.noc.interconnect import NocConfig

FAULT_LEVELS = (0, 2, 4)
DRAWS = 8
CAMPAIGN_SEED = 2018
SPARE_CAPACITY = 0.15
MAP_SEED = 1
FITNESS_SLACK = 1.10  # fault-aware may pay <= 10% healthy fitness


def test_fault_campaign(benchmark, hello_world_graph):
    graph = hello_world_graph
    # 12x16 = 192 slots for ~126 neurons: enough headroom that the
    # fault-aware reservation stays feasible while the baseline can
    # still pack crossbars full.
    arch = custom(12, 16, interconnect="mesh", name="campaign-bench")
    pso = PSOConfig(n_particles=20, n_iterations=30)
    noc = NocConfig(backend="fast")

    base = map_snn(graph, arch, method="pso", seed=MAP_SEED,
                   pso_config=pso)
    fa = map_snn(graph, arch, method="pso", seed=MAP_SEED,
                 pso_config=pso, spare_capacity=SPARE_CAPACITY)
    fitness_ratio = fa.fitness / base.fitness
    assert fitness_ratio <= FITNESS_SLACK, (
        f"fault-aware mapping paid {fitness_ratio:.3f}x healthy fitness; "
        f"comparison would be apples to oranges"
    )
    mappings = {"baseline": base, "fault-aware": fa}

    t0 = time.perf_counter()
    serial = run_fault_campaign(
        graph, arch, mappings=mappings, fault_levels=FAULT_LEVELS,
        draws=DRAWS, campaign_seed=CAMPAIGN_SEED, noc_config=noc,
    )
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    threaded = run_fault_campaign(
        graph, arch, mappings=mappings, fault_levels=FAULT_LEVELS,
        draws=DRAWS, campaign_seed=CAMPAIGN_SEED, noc_config=noc,
        workers=4,
    )
    parallel_s = time.perf_counter() - t0
    assert serial.draws == threaded.draws, (
        "parallel campaign diverged from the serial draw grid"
    )
    assert serial.healthy == threaded.healthy

    deepest = max(FAULT_LEVELS)
    base_stats = serial.level_stats("baseline", deepest)
    fa_stats = serial.level_stats("fault-aware", deepest)
    survival_win = fa_stats.survival_rate > base_stats.survival_rate
    p95_win = fa_stats.p95_latency_overhead < base_stats.p95_latency_overhead
    assert survival_win or p95_win, (
        f"fault-aware mapping shows no resilience payoff at level "
        f"{deepest}: survival {fa_stats.survival_rate:.2f} vs "
        f"{base_stats.survival_rate:.2f}, p95 overhead "
        f"{fa_stats.p95_latency_overhead:.4f} vs "
        f"{base_stats.p95_latency_overhead:.4f}"
    )
    # Survival never regresses at any level.
    for level in FAULT_LEVELS:
        assert (serial.level_stats("fault-aware", level).survival_rate
                >= serial.level_stats("baseline", level).survival_rate)

    print()
    print(serial.table())
    print(
        f"campaign {len(serial.draws)} draws: serial {serial_s * 1e3:.0f}ms, "
        f"4 workers {parallel_s * 1e3:.0f}ms (bit-identical); "
        f"fault-aware paid {fitness_ratio:.3f}x fitness, level-{deepest} "
        f"p95 overhead {fa_stats.p95_latency_overhead:.4f} vs "
        f"{base_stats.p95_latency_overhead:.4f}"
    )

    report_path = os.environ.get("CAMPAIGN_REPORT_PATH")
    if report_path:
        with open(report_path, "w") as fh:
            json.dump(
                {
                    "campaign": serial.to_dict(),
                    "fitness_ratio": fitness_ratio,
                    "bit_identical_parallel": serial.draws == threaded.draws,
                    "serial_s": serial_s,
                    "parallel_s": parallel_s,
                    "deepest_level": deepest,
                    "survival_win": survival_win,
                    "p95_win": p95_win,
                    "baseline_p95": base_stats.p95_latency_overhead,
                    "fault_aware_p95": fa_stats.p95_latency_overhead,
                    "spare_capacity": SPARE_CAPACITY,
                },
                fh,
                indent=2,
            )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["fitness_ratio"] = fitness_ratio
    benchmark.extra_info["p95_win"] = p95_win
    benchmark.extra_info["survival_win"] = survival_win
    benchmark.extra_info["bit_identical_parallel"] = (
        serial.draws == threaded.draws
    )
