"""Bench: the mapping service — cache-hit speedup and coalescing identity.

Serves hello_world mapping requests through ``MappingService`` and
measures the serving layer's two contracts:

- **cache-hit speedup** — a repeat of a deterministic request must be
  answered from the content-addressed artifact cache at least 3x faster
  than the cold computation, and bit-identically to it;
- **coalesced identity** — concurrent NoC-in-the-loop requests on the
  same fabric share swarm-scoring batches (``merged_flushes > 0``) and
  still return results bit-identical to serial one-shot runs.

Set ``SERVICE_REPORT_PATH`` to also write the measurements as JSON
(uploaded as a CI artifact and merged into ``BENCH_summary.json``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.pso import PSOConfig
from repro.framework.pipeline import run_pipeline
from repro.framework.service import MappingService, MapRequest
from repro.hardware.presets import architecture_for
from repro.noc.interconnect import NocConfig

#: Swarm sized so the cold request does real work (the cache-hit
#: speedup floor is meaningless against a trivial baseline).
PSO = PSOConfig(n_particles=20, n_iterations=15)
NOC_PSO = PSOConfig(n_particles=8, n_iterations=6)
MIN_CACHE_HIT_SPEEDUP = 3.0


def test_service(benchmark, hello_world_graph):
    graph = hello_world_graph
    arch = architecture_for(
        graph.n_neurons, neurons_per_crossbar=16,
        interconnect="mesh", name="service-bench",
    )
    noc_config = NocConfig(backend="fast")
    service = MappingService()

    # -- cache-hit speedup on a repeat request ------------------------------
    request = MapRequest(
        graph=graph, architecture=arch, seed=2018, pso_config=PSO,
        noc_config=noc_config,
    )
    t0 = time.perf_counter()
    cold = service.serve(request)
    t_cold = time.perf_counter() - t0
    t1 = time.perf_counter()
    warm = service.serve(request)
    t_warm = time.perf_counter() - t1
    cache_hit_speedup = t_cold / t_warm if t_warm > 0 else float("inf")

    assert np.array_equal(cold.mapping.assignment, warm.mapping.assignment)
    assert cold.schedule == warm.schedule
    assert cold.report.total_energy_pj == warm.report.total_energy_pj
    assert cache_hit_speedup >= MIN_CACHE_HIT_SPEEDUP, (
        f"cache-hit repeat only {cache_hit_speedup:.1f}x faster "
        f"({t_cold * 1e3:.0f}ms cold vs {t_warm * 1e3:.0f}ms warm); "
        f"floor is {MIN_CACHE_HIT_SPEEDUP}x"
    )

    # -- coalesced vs serial bit-identity -----------------------------------
    seeds = (1, 2, 3)
    t2 = time.perf_counter()
    serial = [
        run_pipeline(
            graph, arch, seed=s, pso_config=NOC_PSO,
            noc_config=noc_config, objective="noc",
        )
        for s in seeds
    ]
    t_serial = time.perf_counter() - t2
    coalescing = MappingService()  # fresh cache: no memo shortcuts
    t3 = time.perf_counter()
    coalesced = coalescing.serve_batch(
        [
            MapRequest(
                graph=graph, architecture=arch, seed=s,
                pso_config=NOC_PSO, noc_config=noc_config, objective="noc",
            )
            for s in seeds
        ]
    )
    t_coalesced = time.perf_counter() - t3

    for a, b in zip(serial, coalesced):
        assert np.array_equal(a.mapping.assignment, b.mapping.assignment), (
            "coalesced request diverged from the one-shot path"
        )
        assert a.schedule == b.schedule
        assert a.noc_stats.total_hops() == b.noc_stats.total_hops()
        assert a.report.total_energy_pj == b.report.total_energy_pj
    stats = coalescing.coalescer_stats
    assert stats["merged_flushes"] > 0, "requests never shared a batch"
    assert stats["member_batches"] > stats["flushes"]

    print()
    print(
        f"cache hit: {t_cold * 1e3:.0f}ms cold -> {t_warm * 1e3:.1f}ms warm "
        f"(x{cache_hit_speedup:.0f}); coalesced 3 noc-swarms in "
        f"{t_coalesced * 1e3:.0f}ms vs {t_serial * 1e3:.0f}ms serial "
        f"({stats['merged_flushes']}/{stats['flushes']} flushes merged, "
        f"{stats['rows']} rows)"
    )

    report_path = os.environ.get("SERVICE_REPORT_PATH")
    if report_path:
        with open(report_path, "w") as fh:
            json.dump(
                {
                    "cache_hit_speedup": cache_hit_speedup,
                    "t_cold_s": t_cold,
                    "t_warm_s": t_warm,
                    "coalesced_bit_identical": True,
                    "t_serial_s": t_serial,
                    "t_coalesced_s": t_coalesced,
                    "coalescer": dict(stats),
                    "cache": dict(service.cache.stats),
                },
                fh,
                indent=2,
            )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["cache_hit_speedup"] = cache_hit_speedup
    benchmark.extra_info["merged_flushes"] = stats["merged_flushes"]
    benchmark.extra_info["coalesced_bit_identical"] = True
