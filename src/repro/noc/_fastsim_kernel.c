/* C kernel for the deterministic fast NoC backend.
 *
 * This is a mechanical transcription of the cycle-accurate reference
 * loop in repro/noc/interconnect.py (and of the pure-Python engine in
 * repro/noc/fastsim.py) restricted to deterministic routing.  Two entry
 * points share the semantics:
 *
 *   - nocsim_run    — at most 63 routers; a packet's remaining
 *                     destination set is one uint64 bitmask;
 *   - nocsim_run_mw — multi-word masks (n_words uint64 per packet /
 *                     per next-hop table entry), opening the compiled
 *                     path to TrueNorth-scale fabrics (16x16 meshes,
 *                     large multichip boards).
 *
 * Semantics reproduced bit for bit:
 *   - routers arbitrate in ascending index order each cycle;
 *   - input ports are scanned round-robin, rotated by the cycle number;
 *   - a head packet splits into at most one eject group (this router's
 *     bit) plus one group per output port (precomputed next-hop masks);
 *   - at most `ej_max` ejections per router per cycle, one packet per
 *     output port per cycle, credit-based backpressure against the
 *     downstream input buffer's current occupancy;
 *   - forwards land downstream at end of cycle (one-cycle link latency);
 *   - idle gaps between injection bursts are skipped; the run stops at
 *     `deadline`, leaving undelivered packets in place.
 *
 * The host passes flattened tables (port layout, next-hop masks, edge
 * ids) and the packet pool columns; the kernel returns the delivery
 * log (meta index, destination router, cycle, hop count), per-edge
 * link loads, per-port peak occupancies and the cycle count.
 *
 * Batch entry points (nocsim_run_batch / nocsim_run_batch_mw) take the
 * shared network tables once plus concatenated per-schedule packet and
 * bucket arrays (CSR-style offsets) and run every schedule of a
 * simulate_many batch in one call — parallel over independent
 * schedules with OpenMP when compiled with -fopenmp, a plain serial
 * loop otherwise.  Each schedule writes into its own Result slab and
 * its own link_counts/peaks slices, so the output is bit-identical to
 * the serial per-schedule path regardless of thread count.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#ifdef _OPENMP
#include <omp.h>
#endif

typedef struct {
    int32_t *a;
    int32_t head;
    int32_t len;
    int32_t cap;
} Fifo;

static int fifo_push(Fifo *f, int32_t v) {
    if (f->head + f->len == f->cap) {
        if (f->head > 0) {
            memmove(f->a, f->a + f->head, (size_t)f->len * sizeof(int32_t));
            f->head = 0;
        } else {
            int32_t ncap = f->cap ? f->cap * 2 : 8;
            int32_t *na = (int32_t *)realloc(f->a, (size_t)ncap * sizeof(int32_t));
            if (!na) return -1;
            f->a = na;
            f->cap = ncap;
        }
    }
    f->a[f->head + f->len] = v;
    f->len++;
    return 0;
}

static inline int32_t fifo_pop(Fifo *f) {
    int32_t v = f->a[f->head];
    f->head++;
    f->len--;
    if (f->len == 0) f->head = 0;
    return v;
}

typedef struct {
    uint64_t *mask; /* remaining destinations, bit = router index */
    int32_t *hops;
    int32_t *meta;  /* index of the originating injection packet */
    int64_t len;
    int64_t cap;
} Pool;

static int pool_push(Pool *p, uint64_t mask, int32_t hops, int32_t meta) {
    if (p->len == p->cap) {
        int64_t ncap = p->cap * 2;
        uint64_t *nm = (uint64_t *)realloc(p->mask, (size_t)ncap * sizeof(uint64_t));
        int32_t *nh = (int32_t *)realloc(p->hops, (size_t)ncap * sizeof(int32_t));
        int32_t *nt = (int32_t *)realloc(p->meta, (size_t)ncap * sizeof(int32_t));
        if (!nm || !nh || !nt) {
            /* realloc may have succeeded partially; keep the larger
             * blocks so the final free() remains valid. */
            if (nm) p->mask = nm;
            if (nh) p->hops = nh;
            if (nt) p->meta = nt;
            return -1;
        }
        p->mask = nm; p->hops = nh; p->meta = nt;
        p->cap = ncap;
    }
    p->mask[p->len] = mask;
    p->hops[p->len] = hops;
    p->meta[p->len] = meta;
    p->len++;
    return 0;
}

typedef struct {
    int32_t *meta;
    int32_t *dst;
    int64_t *cycle;
    int32_t *hops;
    int64_t len;
    int64_t cap;
} Log;

static int log_push(Log *g, int32_t meta, int32_t dst, int64_t cycle, int32_t hops) {
    if (g->len == g->cap) {
        int64_t ncap = g->cap ? g->cap * 2 : 64;
        int32_t *nm = (int32_t *)realloc(g->meta, (size_t)ncap * sizeof(int32_t));
        int32_t *nd = (int32_t *)realloc(g->dst, (size_t)ncap * sizeof(int32_t));
        int64_t *nc = (int64_t *)realloc(g->cycle, (size_t)ncap * sizeof(int64_t));
        int32_t *nh = (int32_t *)realloc(g->hops, (size_t)ncap * sizeof(int32_t));
        if (nm) g->meta = nm;
        if (nd) g->dst = nd;
        if (nc) g->cycle = nc;
        if (nh) g->hops = nh;
        if (!nm || !nd || !nc || !nh) return -1;
        g->cap = ncap;
    }
    g->meta[g->len] = meta;
    g->dst[g->len] = dst;
    g->cycle[g->len] = cycle;
    g->hops[g->len] = hops;
    g->len++;
    return 0;
}

/* Result handle: the host reads the arrays, then calls nocsim_free. */
typedef struct {
    int32_t *d_meta;
    int32_t *d_dst;
    int64_t *d_cycle;
    int32_t *d_hops;
    int64_t d_len;
    int64_t cycles_run;
    int32_t status; /* 0 ok, 1 allocation failure */
} Result;

void nocsim_free(Result *res) {
    if (!res) return;
    free(res->d_meta);
    free(res->d_dst);
    free(res->d_cycle);
    free(res->d_hops);
    free(res);
}

/* Staged forward: lands downstream at end of cycle. */
typedef struct {
    int32_t gp;
    int32_t pid;
} Staged;

/* One schedule, single-word masks.  Fills a caller-provided zeroed
 * Result; shared tables are read-only so concurrent calls on disjoint
 * Results/outputs are safe. */
static void run_single(
    Result *res,
    /* topology tables */
    int32_t n_routers,
    int32_t n_flat_ports,
    const int32_t *port_base,   /* [n_routers] */
    const int32_t *nports,      /* [n_routers] 1 + degree */
    const int32_t *deg_off,     /* [n_routers+1] offsets into per-neighbor tables */
    const int32_t *nbr,         /* [deg_total] neighbor router index */
    const uint64_t *out_mask,   /* [deg_total] dst mask routed via this neighbor */
    const int32_t *out_gp,      /* [deg_total] downstream global port */
    const int32_t *out_eidx,    /* [deg_total] directed edge id */
    /* config */
    int32_t capacity,
    int32_t ej_max,
    int64_t deadline,
    /* initial packets (pool prefix; meta[i] == i) */
    int64_t n_packets,
    const uint64_t *pk_mask,
    const int32_t *pk_srcgp,    /* local injection port of the source */
    /* injection schedule: buckets of pool indices per cycle */
    int64_t n_buckets,
    const int64_t *bucket_cycle,
    const int64_t *bucket_off,  /* [n_buckets+1] */
    const int32_t *bucket_pid,  /* [n_packets] */
    /* outputs (host-allocated) */
    int64_t *link_counts,       /* [n_edges], zeroed by host */
    int32_t *peaks              /* [n_flat_ports], zeroed by host */
) {
    Fifo *bufs = (Fifo *)calloc((size_t)n_flat_ports, sizeof(Fifo));
    int32_t *qcount = (int32_t *)calloc((size_t)n_routers, sizeof(int32_t));
    int32_t *gp_owner = (int32_t *)malloc((size_t)n_flat_ports * sizeof(int32_t));
    Pool pool = {0};
    Log dlog = {0};
    Staged *staged = NULL;
    int64_t staged_cap = 256, staged_len = 0;
    staged = (Staged *)malloc((size_t)staged_cap * sizeof(Staged));

    pool.cap = n_packets > 16 ? n_packets * 2 : 64;
    pool.mask = (uint64_t *)malloc((size_t)pool.cap * sizeof(uint64_t));
    pool.hops = (int32_t *)malloc((size_t)pool.cap * sizeof(int32_t));
    pool.meta = (int32_t *)malloc((size_t)pool.cap * sizeof(int32_t));

    if (!bufs || !qcount || !gp_owner || !staged || !pool.mask || !pool.hops || !pool.meta) {
        res->status = 1;
        goto cleanup;
    }
    for (int32_t i = 0; i < n_routers; i++) {
        int32_t np = nports[i];
        for (int32_t s = 0; s < np; s++) gp_owner[port_base[i] + s] = i;
    }
    for (int64_t k = 0; k < n_packets; k++) {
        pool.mask[k] = pk_mask[k];
        pool.hops[k] = 0;
        pool.meta[k] = (int32_t)k;
    }
    pool.len = n_packets;

    int64_t in_flight = 0;
    int64_t pos = 0;
    int64_t cycle = 0;
    uint64_t busy = 0; /* routers with queued packets */

    while (cycle <= deadline) {
        if (pos < n_buckets && bucket_cycle[pos] == cycle) {
            for (int64_t b = bucket_off[pos]; b < bucket_off[pos + 1]; b++) {
                int32_t pid = bucket_pid[b];
                int32_t gp = pk_srcgp[pid];
                if (fifo_push(&bufs[gp], pid)) { res->status = 1; goto cleanup; }
                int32_t r = gp_owner[gp];
                qcount[r]++;
                busy |= 1ULL << r;
                in_flight++;
            }
            pos++;
        }
        if (!in_flight) {
            if (pos >= n_buckets) break;
            cycle = bucket_cycle[pos]; /* skip idle gap */
            continue;
        }

        staged_len = 0;
        uint64_t scan = busy;
        while (scan) {
            int32_t i = (int32_t)__builtin_ctzll(scan);
            scan &= scan - 1;
            int32_t np = nports[i];
            int32_t base = port_base[i];
            int32_t start = (int32_t)(cycle % np);
            uint64_t ibit = 1ULL << i;
            uint64_t outputs_used = 0;
            int32_t ejections = 0;
            int32_t d0 = deg_off[i];
            for (int32_t k = 0; k < np; k++) {
                int32_t slot = start + k;
                if (slot >= np) slot -= np;
                Fifo *dq = &bufs[base + slot];
                if (!dq->len) continue;
                int32_t pid = dq->a[dq->head];
                uint64_t mask = pool.mask[pid];
                uint64_t progressed = 0;

                if (mask & ibit) {
                    if (ejections < ej_max) {
                        ejections++;
                        if (log_push(&dlog, pool.meta[pid], i, cycle, pool.hops[pid])) {
                            res->status = 1; goto cleanup;
                        }
                        progressed = ibit;
                    }
                    if (mask == ibit) {
                        if (progressed) {
                            fifo_pop(dq);
                            qcount[i]--;
                            in_flight--;
                            if (!qcount[i]) busy &= ~ibit;
                        }
                        continue;
                    }
                }

                int moved_whole = 0;
                int32_t dend = deg_off[i + 1];
                for (int32_t q = d0; q < dend; q++) {
                    uint64_t g = mask & out_mask[q];
                    if (!g) continue;
                    int32_t nb = nbr[q];
                    if ((outputs_used >> nb) & 1) continue;
                    int32_t gp2 = out_gp[q];
                    if (bufs[gp2].len >= capacity) continue; /* backpressure */
                    int32_t npid;
                    if (g == mask) {
                        pool.hops[pid]++;
                        npid = pid;
                        moved_whole = 1;
                    } else {
                        npid = (int32_t)pool.len;
                        if (pool_push(&pool, g, pool.hops[pid] + 1, pool.meta[pid])) {
                            res->status = 1; goto cleanup;
                        }
                    }
                    if (staged_len == staged_cap) {
                        staged_cap *= 2;
                        Staged *ns = (Staged *)realloc(staged, (size_t)staged_cap * sizeof(Staged));
                        if (!ns) { res->status = 1; goto cleanup; }
                        staged = ns;
                    }
                    staged[staged_len].gp = gp2;
                    staged[staged_len].pid = npid;
                    staged_len++;
                    outputs_used |= 1ULL << nb;
                    link_counts[out_eidx[q]]++;
                    progressed |= g;
                }
                if (moved_whole) {
                    fifo_pop(dq);
                    qcount[i]--;
                    in_flight--;
                    if (!qcount[i]) busy &= ~ibit;
                } else if (progressed) {
                    uint64_t remaining = mask & ~progressed;
                    if (remaining) {
                        pool.mask[pid] = remaining;
                    } else {
                        fifo_pop(dq);
                        qcount[i]--;
                        in_flight--;
                        if (!qcount[i]) busy &= ~ibit;
                    }
                }
            }
        }

        for (int64_t s = 0; s < staged_len; s++) {
            int32_t gp = staged[s].gp;
            if (fifo_push(&bufs[gp], staged[s].pid)) { res->status = 1; goto cleanup; }
            if (bufs[gp].len > peaks[gp]) peaks[gp] = bufs[gp].len;
            int32_t r = gp_owner[gp];
            qcount[r]++;
            busy |= 1ULL << r;
            in_flight++;
        }
        cycle++;
    }

    res->cycles_run = cycle;
    res->d_meta = dlog.meta;
    res->d_dst = dlog.dst;
    res->d_cycle = dlog.cycle;
    res->d_hops = dlog.hops;
    res->d_len = dlog.len;
    dlog.meta = NULL; dlog.dst = NULL; dlog.cycle = NULL; dlog.hops = NULL;

cleanup:
    if (bufs) {
        for (int32_t g = 0; g < n_flat_ports; g++) free(bufs[g].a);
        free(bufs);
    }
    free(qcount);
    free(gp_owner);
    free(pool.mask);
    free(pool.hops);
    free(pool.meta);
    free(staged);
    free(dlog.meta);
    free(dlog.dst);
    free(dlog.cycle);
    free(dlog.hops);
}

Result *nocsim_run(
    int32_t n_routers,
    int32_t n_flat_ports,
    const int32_t *port_base,
    const int32_t *nports,
    const int32_t *deg_off,
    const int32_t *nbr,
    const uint64_t *out_mask,
    const int32_t *out_gp,
    const int32_t *out_eidx,
    int32_t capacity,
    int32_t ej_max,
    int64_t deadline,
    int64_t n_packets,
    const uint64_t *pk_mask,
    const int32_t *pk_srcgp,
    int64_t n_buckets,
    const int64_t *bucket_cycle,
    const int64_t *bucket_off,
    const int32_t *bucket_pid,
    int64_t *link_counts,
    int32_t *peaks
) {
    Result *res = (Result *)calloc(1, sizeof(Result));
    if (!res) return NULL;
    run_single(res, n_routers, n_flat_ports, port_base, nports, deg_off,
               nbr, out_mask, out_gp, out_eidx, capacity, ej_max, deadline,
               n_packets, pk_mask, pk_srcgp, n_buckets, bucket_cycle,
               bucket_off, bucket_pid, link_counts, peaks);
    return res;
}

/* ------------------------------------------------------------------ */
/* Multi-word variant: destination masks are n_words uint64 each.     */
/* ------------------------------------------------------------------ */

typedef struct {
    uint64_t *mask; /* len * nw words, packet i at mask + i * nw */
    int32_t *hops;
    int32_t *meta;
    int64_t len;
    int64_t cap;
} PoolMW;

static int pool_mw_push(PoolMW *p, int32_t nw, const uint64_t *mask,
                        int32_t hops, int32_t meta) {
    if (p->len == p->cap) {
        int64_t ncap = p->cap * 2;
        uint64_t *nm = (uint64_t *)realloc(
            p->mask, (size_t)ncap * nw * sizeof(uint64_t));
        int32_t *nh = (int32_t *)realloc(p->hops, (size_t)ncap * sizeof(int32_t));
        int32_t *nt = (int32_t *)realloc(p->meta, (size_t)ncap * sizeof(int32_t));
        if (nm) p->mask = nm;
        if (nh) p->hops = nh;
        if (nt) p->meta = nt;
        if (!nm || !nh || !nt) return -1;
        p->cap = ncap;
    }
    memcpy(p->mask + p->len * nw, mask, (size_t)nw * sizeof(uint64_t));
    p->hops[p->len] = hops;
    p->meta[p->len] = meta;
    p->len++;
    return 0;
}

/* One schedule, multi-word masks.  Same contract as run_single. */
static void run_single_mw(
    Result *res,
    /* topology tables */
    int32_t n_routers,
    int32_t n_words,
    int32_t n_flat_ports,
    const int32_t *port_base,   /* [n_routers] */
    const int32_t *nports,      /* [n_routers] 1 + degree */
    const int32_t *deg_off,     /* [n_routers+1] offsets into per-neighbor tables */
    const int32_t *nbr,         /* [deg_total] neighbor router index */
    const uint64_t *out_mask,   /* [deg_total * n_words] dst mask via this neighbor */
    const int32_t *out_gp,      /* [deg_total] downstream global port */
    const int32_t *out_eidx,    /* [deg_total] directed edge id */
    /* config */
    int32_t capacity,
    int32_t ej_max,
    int64_t deadline,
    /* initial packets (pool prefix; meta[i] == i) */
    int64_t n_packets,
    const uint64_t *pk_mask,    /* [n_packets * n_words] */
    const int32_t *pk_srcgp,    /* local injection port of the source */
    /* injection schedule: buckets of pool indices per cycle */
    int64_t n_buckets,
    const int64_t *bucket_cycle,
    const int64_t *bucket_off,  /* [n_buckets+1] */
    const int32_t *bucket_pid,  /* [n_packets] */
    /* outputs (host-allocated) */
    int64_t *link_counts,       /* [n_edges], zeroed by host */
    int32_t *peaks              /* [n_flat_ports], zeroed by host */
) {
    const int32_t nw = n_words;
    (void)nbr; /* output-port claims go through out_stamp, not neighbor ids */

    int32_t deg_total = deg_off[n_routers];
    int32_t nbw = (n_routers + 63) >> 6; /* busy-mask words over routers */

    Fifo *bufs = (Fifo *)calloc((size_t)n_flat_ports, sizeof(Fifo));
    int32_t *qcount = (int32_t *)calloc((size_t)n_routers, sizeof(int32_t));
    int32_t *gp_owner = (int32_t *)malloc((size_t)n_flat_ports * sizeof(int32_t));
    uint64_t *busy = (uint64_t *)calloc((size_t)nbw, sizeof(uint64_t));
    /* Per-(router, neighbor-slot) output claim: slot q is used this
     * cycle iff out_stamp[q] == cycle (replaces the single-word
     * kernel's outputs_used bitmask, which cannot index >63 routers). */
    int64_t *out_stamp = (int64_t *)malloc((size_t)deg_total * sizeof(int64_t));
    uint64_t *hm = (uint64_t *)malloc((size_t)nw * sizeof(uint64_t));
    uint64_t *gr = (uint64_t *)malloc((size_t)nw * sizeof(uint64_t));
    uint64_t *prog = (uint64_t *)malloc((size_t)nw * sizeof(uint64_t));
    PoolMW pool = {0};
    Log dlog = {0};
    Staged *staged = NULL;
    int64_t staged_cap = 256, staged_len = 0;
    staged = (Staged *)malloc((size_t)staged_cap * sizeof(Staged));

    pool.cap = n_packets > 16 ? n_packets * 2 : 64;
    pool.mask = (uint64_t *)malloc((size_t)pool.cap * nw * sizeof(uint64_t));
    pool.hops = (int32_t *)malloc((size_t)pool.cap * sizeof(int32_t));
    pool.meta = (int32_t *)malloc((size_t)pool.cap * sizeof(int32_t));

    if (!bufs || !qcount || !gp_owner || !busy || !out_stamp || !hm || !gr ||
        !prog || !staged || !pool.mask || !pool.hops || !pool.meta) {
        res->status = 1;
        goto cleanup;
    }
    for (int32_t i = 0; i < n_routers; i++) {
        int32_t np = nports[i];
        for (int32_t s = 0; s < np; s++) gp_owner[port_base[i] + s] = i;
    }
    for (int32_t q = 0; q < deg_total; q++) out_stamp[q] = -1;
    memcpy(pool.mask, pk_mask, (size_t)n_packets * nw * sizeof(uint64_t));
    for (int64_t k = 0; k < n_packets; k++) {
        pool.hops[k] = 0;
        pool.meta[k] = (int32_t)k;
    }
    pool.len = n_packets;

    int64_t in_flight = 0;
    int64_t pos = 0;
    int64_t cycle = 0;

    while (cycle <= deadline) {
        if (pos < n_buckets && bucket_cycle[pos] == cycle) {
            for (int64_t b = bucket_off[pos]; b < bucket_off[pos + 1]; b++) {
                int32_t pid = bucket_pid[b];
                int32_t gp = pk_srcgp[pid];
                if (fifo_push(&bufs[gp], pid)) { res->status = 1; goto cleanup; }
                int32_t r = gp_owner[gp];
                qcount[r]++;
                busy[r >> 6] |= 1ULL << (r & 63);
                in_flight++;
            }
            pos++;
        }
        if (!in_flight) {
            if (pos >= n_buckets) break;
            cycle = bucket_cycle[pos]; /* skip idle gap */
            continue;
        }

        staged_len = 0;
        for (int32_t bw = 0; bw < nbw; bw++) {
            uint64_t scan = busy[bw];
            while (scan) {
                int32_t i = (bw << 6) + (int32_t)__builtin_ctzll(scan);
                scan &= scan - 1;
                int32_t np = nports[i];
                int32_t base = port_base[i];
                int32_t start = (int32_t)(cycle % np);
                int32_t iw = i >> 6;
                uint64_t ib = 1ULL << (i & 63);
                int32_t ejections = 0;
                int32_t d0 = deg_off[i];
                int32_t dend = deg_off[i + 1];
                for (int32_t k = 0; k < np; k++) {
                    int32_t slot = start + k;
                    if (slot >= np) slot -= np;
                    Fifo *dq = &bufs[base + slot];
                    if (!dq->len) continue;
                    int32_t pid = dq->a[dq->head];
                    /* Snapshot the head mask: pool forks may realloc. */
                    memcpy(hm, pool.mask + (int64_t)pid * nw,
                           (size_t)nw * sizeof(uint64_t));
                    for (int32_t w = 0; w < nw; w++) prog[w] = 0;
                    int has_prog = 0;

                    if (hm[iw] & ib) {
                        if (ejections < ej_max) {
                            ejections++;
                            if (log_push(&dlog, pool.meta[pid], i, cycle,
                                         pool.hops[pid])) {
                                res->status = 1; goto cleanup;
                            }
                            prog[iw] = ib;
                            has_prog = 1;
                        }
                        int only = 1;
                        for (int32_t w = 0; w < nw; w++) {
                            uint64_t want = (w == iw) ? ib : 0;
                            if (hm[w] != want) { only = 0; break; }
                        }
                        if (only) {
                            if (has_prog) {
                                fifo_pop(dq);
                                qcount[i]--;
                                in_flight--;
                                if (!qcount[i])
                                    busy[bw] &= ~(1ULL << (i & 63));
                            }
                            continue;
                        }
                    }

                    int moved_whole = 0;
                    for (int32_t q = d0; q < dend; q++) {
                        const uint64_t *om = out_mask + (int64_t)q * nw;
                        uint64_t any = 0;
                        for (int32_t w = 0; w < nw; w++) {
                            gr[w] = hm[w] & om[w];
                            any |= gr[w];
                        }
                        if (!any) continue;
                        if (out_stamp[q] == cycle) continue;
                        int32_t gp2 = out_gp[q];
                        if (bufs[gp2].len >= capacity) continue; /* backpressure */
                        int whole = 1;
                        for (int32_t w = 0; w < nw; w++) {
                            if (gr[w] != hm[w]) { whole = 0; break; }
                        }
                        int32_t npid;
                        if (whole) {
                            pool.hops[pid]++;
                            npid = pid;
                            moved_whole = 1;
                        } else {
                            npid = (int32_t)pool.len;
                            if (pool_mw_push(&pool, nw, gr,
                                             pool.hops[pid] + 1,
                                             pool.meta[pid])) {
                                res->status = 1; goto cleanup;
                            }
                        }
                        if (staged_len == staged_cap) {
                            staged_cap *= 2;
                            Staged *ns = (Staged *)realloc(
                                staged, (size_t)staged_cap * sizeof(Staged));
                            if (!ns) { res->status = 1; goto cleanup; }
                            staged = ns;
                        }
                        staged[staged_len].gp = gp2;
                        staged[staged_len].pid = npid;
                        staged_len++;
                        out_stamp[q] = cycle;
                        link_counts[out_eidx[q]]++;
                        for (int32_t w = 0; w < nw; w++) prog[w] |= gr[w];
                        has_prog = 1;
                    }
                    if (moved_whole) {
                        fifo_pop(dq);
                        qcount[i]--;
                        in_flight--;
                        if (!qcount[i]) busy[bw] &= ~(1ULL << (i & 63));
                    } else if (has_prog) {
                        uint64_t *pm = pool.mask + (int64_t)pid * nw;
                        uint64_t rem = 0;
                        for (int32_t w = 0; w < nw; w++) {
                            pm[w] = hm[w] & ~prog[w];
                            rem |= pm[w];
                        }
                        if (!rem) {
                            fifo_pop(dq);
                            qcount[i]--;
                            in_flight--;
                            if (!qcount[i]) busy[bw] &= ~(1ULL << (i & 63));
                        }
                    }
                }
            }
        }

        for (int64_t s = 0; s < staged_len; s++) {
            int32_t gp = staged[s].gp;
            if (fifo_push(&bufs[gp], staged[s].pid)) { res->status = 1; goto cleanup; }
            if (bufs[gp].len > peaks[gp]) peaks[gp] = bufs[gp].len;
            int32_t r = gp_owner[gp];
            qcount[r]++;
            busy[r >> 6] |= 1ULL << (r & 63);
            in_flight++;
        }
        cycle++;
    }

    res->cycles_run = cycle;
    res->d_meta = dlog.meta;
    res->d_dst = dlog.dst;
    res->d_cycle = dlog.cycle;
    res->d_hops = dlog.hops;
    res->d_len = dlog.len;
    dlog.meta = NULL; dlog.dst = NULL; dlog.cycle = NULL; dlog.hops = NULL;

cleanup:
    if (bufs) {
        for (int32_t g = 0; g < n_flat_ports; g++) free(bufs[g].a);
        free(bufs);
    }
    free(qcount);
    free(gp_owner);
    free(busy);
    free(out_stamp);
    free(hm);
    free(gr);
    free(prog);
    free(pool.mask);
    free(pool.hops);
    free(pool.meta);
    free(staged);
    free(dlog.meta);
    free(dlog.dst);
    free(dlog.cycle);
    free(dlog.hops);
}

Result *nocsim_run_mw(
    int32_t n_routers,
    int32_t n_words,
    int32_t n_flat_ports,
    const int32_t *port_base,
    const int32_t *nports,
    const int32_t *deg_off,
    const int32_t *nbr,
    const uint64_t *out_mask,
    const int32_t *out_gp,
    const int32_t *out_eidx,
    int32_t capacity,
    int32_t ej_max,
    int64_t deadline,
    int64_t n_packets,
    const uint64_t *pk_mask,
    const int32_t *pk_srcgp,
    int64_t n_buckets,
    const int64_t *bucket_cycle,
    const int64_t *bucket_off,
    const int32_t *bucket_pid,
    int64_t *link_counts,
    int32_t *peaks
) {
    Result *res = (Result *)calloc(1, sizeof(Result));
    if (!res) return NULL;
    run_single_mw(res, n_routers, n_words, n_flat_ports, port_base, nports,
                  deg_off, nbr, out_mask, out_gp, out_eidx, capacity, ej_max,
                  deadline, n_packets, pk_mask, pk_srcgp, n_buckets,
                  bucket_cycle, bucket_off, bucket_pid, link_counts, peaks);
    return res;
}

/* ------------------------------------------------------------------ */
/* Batch entry points: all schedules of a simulate_many batch in one  */
/* call, parallel over schedules with OpenMP when available.          */
/* ------------------------------------------------------------------ */

/* 1 when the loaded kernel was compiled with OpenMP support. */
int32_t nocsim_openmp(void) {
#ifdef _OPENMP
    return 1;
#else
    return 0;
#endif
}

void nocsim_free_batch(Result *arr, int64_t n_schedules) {
    if (!arr) return;
    for (int64_t s = 0; s < n_schedules; s++) {
        free(arr[s].d_meta);
        free(arr[s].d_dst);
        free(arr[s].d_cycle);
        free(arr[s].d_hops);
    }
    free(arr);
}

/* Shared tables are passed once; per-schedule arrays are concatenated
 * with CSR-style offsets:
 *
 *   pk_off[S+1]   — schedule s's packets occupy [pk_off[s], pk_off[s+1])
 *                   of pk_mask (x n_words for the mw variant), pk_srcgp
 *                   and bucket_pid (pids are schedule-local);
 *   bk_off[S+1]   — schedule s's buckets occupy [bk_off[s], bk_off[s+1])
 *                   of bucket_cycle; its bucket_off slice (length
 *                   n_buckets_s + 1, values schedule-local) starts at
 *                   bucket_off + bk_off[s] + s;
 *   deadline[S]   — per-schedule stop cycle;
 *   link_counts   — [S * n_edges] slab, zeroed by the host;
 *   peaks         — [S * n_flat_ports] slab, zeroed by the host.
 *
 * n_threads > 0 caps the OpenMP team size; <= 0 uses the runtime
 * default.  Returns an array of S Result structs (free with
 * nocsim_free_batch), or NULL on allocation failure. */
Result *nocsim_run_batch(
    int32_t n_routers,
    int32_t n_flat_ports,
    const int32_t *port_base,
    const int32_t *nports,
    const int32_t *deg_off,
    const int32_t *nbr,
    const uint64_t *out_mask,
    const int32_t *out_gp,
    const int32_t *out_eidx,
    int32_t capacity,
    int32_t ej_max,
    int32_t n_edges,
    int64_t n_schedules,
    const int64_t *pk_off,
    const uint64_t *pk_mask,
    const int32_t *pk_srcgp,
    const int64_t *bk_off,
    const int64_t *bucket_cycle,
    const int64_t *bucket_off,
    const int32_t *bucket_pid,
    const int64_t *deadline,
    int32_t n_threads,
    int64_t *link_counts,
    int32_t *peaks
) {
    Result *arr = (Result *)calloc((size_t)n_schedules, sizeof(Result));
    if (!arr) return NULL;
#ifdef _OPENMP
    int nt = n_threads > 0 ? n_threads : omp_get_max_threads();
    #pragma omp parallel for schedule(dynamic) num_threads(nt)
#else
    (void)n_threads;
#endif
    for (int64_t s = 0; s < n_schedules; s++) {
        int64_t p0 = pk_off[s];
        int64_t b0 = bk_off[s];
        run_single(&arr[s], n_routers, n_flat_ports, port_base, nports,
                   deg_off, nbr, out_mask, out_gp, out_eidx, capacity,
                   ej_max, deadline[s], pk_off[s + 1] - p0, pk_mask + p0,
                   pk_srcgp + p0, bk_off[s + 1] - b0, bucket_cycle + b0,
                   bucket_off + b0 + s, bucket_pid + p0,
                   link_counts + s * n_edges,
                   peaks + s * n_flat_ports);
    }
    return arr;
}

Result *nocsim_run_batch_mw(
    int32_t n_routers,
    int32_t n_words,
    int32_t n_flat_ports,
    const int32_t *port_base,
    const int32_t *nports,
    const int32_t *deg_off,
    const int32_t *nbr,
    const uint64_t *out_mask,
    const int32_t *out_gp,
    const int32_t *out_eidx,
    int32_t capacity,
    int32_t ej_max,
    int32_t n_edges,
    int64_t n_schedules,
    const int64_t *pk_off,
    const uint64_t *pk_mask,    /* [pk_off[S] * n_words] */
    const int32_t *pk_srcgp,
    const int64_t *bk_off,
    const int64_t *bucket_cycle,
    const int64_t *bucket_off,
    const int32_t *bucket_pid,
    const int64_t *deadline,
    int32_t n_threads,
    int64_t *link_counts,
    int32_t *peaks
) {
    Result *arr = (Result *)calloc((size_t)n_schedules, sizeof(Result));
    if (!arr) return NULL;
#ifdef _OPENMP
    int nt = n_threads > 0 ? n_threads : omp_get_max_threads();
    #pragma omp parallel for schedule(dynamic) num_threads(nt)
#else
    (void)n_threads;
#endif
    for (int64_t s = 0; s < n_schedules; s++) {
        int64_t p0 = pk_off[s];
        int64_t b0 = bk_off[s];
        run_single_mw(&arr[s], n_routers, n_words, n_flat_ports, port_base,
                      nports, deg_off, nbr, out_mask, out_gp, out_eidx,
                      capacity, ej_max, deadline[s], pk_off[s + 1] - p0,
                      pk_mask + p0 * n_words, pk_srcgp + p0,
                      bk_off[s + 1] - b0, bucket_cycle + b0,
                      bucket_off + b0 + s, bucket_pid + p0,
                      link_counts + s * n_edges,
                      peaks + s * n_flat_ports);
    }
    return arr;
}
