/* C kernel for the deterministic fast NoC backend.
 *
 * This is a mechanical transcription of the cycle-accurate reference
 * loop in repro/noc/interconnect.py (and of the pure-Python engine in
 * repro/noc/fastsim.py) restricted to the common case the kernel is
 * allowed to handle: deterministic routing and at most 63 routers, so
 * a packet's remaining destination set is one uint64 bitmask.
 *
 * Semantics reproduced bit for bit:
 *   - routers arbitrate in ascending index order each cycle;
 *   - input ports are scanned round-robin, rotated by the cycle number;
 *   - a head packet splits into at most one eject group (this router's
 *     bit) plus one group per output port (precomputed next-hop masks);
 *   - at most `ej_max` ejections per router per cycle, one packet per
 *     output port per cycle, credit-based backpressure against the
 *     downstream input buffer's current occupancy;
 *   - forwards land downstream at end of cycle (one-cycle link latency);
 *   - idle gaps between injection bursts are skipped; the run stops at
 *     `deadline`, leaving undelivered packets in place.
 *
 * The host passes flattened tables (port layout, next-hop masks, edge
 * ids) and the packet pool columns; the kernel returns the delivery
 * log (meta index, destination router, cycle, hop count), per-edge
 * link loads, per-port peak occupancies and the cycle count.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef struct {
    int32_t *a;
    int32_t head;
    int32_t len;
    int32_t cap;
} Fifo;

static int fifo_push(Fifo *f, int32_t v) {
    if (f->head + f->len == f->cap) {
        if (f->head > 0) {
            memmove(f->a, f->a + f->head, (size_t)f->len * sizeof(int32_t));
            f->head = 0;
        } else {
            int32_t ncap = f->cap ? f->cap * 2 : 8;
            int32_t *na = (int32_t *)realloc(f->a, (size_t)ncap * sizeof(int32_t));
            if (!na) return -1;
            f->a = na;
            f->cap = ncap;
        }
    }
    f->a[f->head + f->len] = v;
    f->len++;
    return 0;
}

static inline int32_t fifo_pop(Fifo *f) {
    int32_t v = f->a[f->head];
    f->head++;
    f->len--;
    if (f->len == 0) f->head = 0;
    return v;
}

typedef struct {
    uint64_t *mask; /* remaining destinations, bit = router index */
    int32_t *hops;
    int32_t *meta;  /* index of the originating injection packet */
    int64_t len;
    int64_t cap;
} Pool;

static int pool_push(Pool *p, uint64_t mask, int32_t hops, int32_t meta) {
    if (p->len == p->cap) {
        int64_t ncap = p->cap * 2;
        uint64_t *nm = (uint64_t *)realloc(p->mask, (size_t)ncap * sizeof(uint64_t));
        int32_t *nh = (int32_t *)realloc(p->hops, (size_t)ncap * sizeof(int32_t));
        int32_t *nt = (int32_t *)realloc(p->meta, (size_t)ncap * sizeof(int32_t));
        if (!nm || !nh || !nt) {
            /* realloc may have succeeded partially; keep the larger
             * blocks so the final free() remains valid. */
            if (nm) p->mask = nm;
            if (nh) p->hops = nh;
            if (nt) p->meta = nt;
            return -1;
        }
        p->mask = nm; p->hops = nh; p->meta = nt;
        p->cap = ncap;
    }
    p->mask[p->len] = mask;
    p->hops[p->len] = hops;
    p->meta[p->len] = meta;
    p->len++;
    return 0;
}

typedef struct {
    int32_t *meta;
    int32_t *dst;
    int64_t *cycle;
    int32_t *hops;
    int64_t len;
    int64_t cap;
} Log;

static int log_push(Log *g, int32_t meta, int32_t dst, int64_t cycle, int32_t hops) {
    if (g->len == g->cap) {
        int64_t ncap = g->cap ? g->cap * 2 : 64;
        int32_t *nm = (int32_t *)realloc(g->meta, (size_t)ncap * sizeof(int32_t));
        int32_t *nd = (int32_t *)realloc(g->dst, (size_t)ncap * sizeof(int32_t));
        int64_t *nc = (int64_t *)realloc(g->cycle, (size_t)ncap * sizeof(int64_t));
        int32_t *nh = (int32_t *)realloc(g->hops, (size_t)ncap * sizeof(int32_t));
        if (nm) g->meta = nm;
        if (nd) g->dst = nd;
        if (nc) g->cycle = nc;
        if (nh) g->hops = nh;
        if (!nm || !nd || !nc || !nh) return -1;
        g->cap = ncap;
    }
    g->meta[g->len] = meta;
    g->dst[g->len] = dst;
    g->cycle[g->len] = cycle;
    g->hops[g->len] = hops;
    g->len++;
    return 0;
}

/* Result handle: the host reads the arrays, then calls nocsim_free. */
typedef struct {
    int32_t *d_meta;
    int32_t *d_dst;
    int64_t *d_cycle;
    int32_t *d_hops;
    int64_t d_len;
    int64_t cycles_run;
    int32_t status; /* 0 ok, 1 allocation failure */
} Result;

void nocsim_free(Result *res) {
    if (!res) return;
    free(res->d_meta);
    free(res->d_dst);
    free(res->d_cycle);
    free(res->d_hops);
    free(res);
}

/* Staged forward: lands downstream at end of cycle. */
typedef struct {
    int32_t gp;
    int32_t pid;
} Staged;

Result *nocsim_run(
    /* topology tables */
    int32_t n_routers,
    int32_t n_flat_ports,
    const int32_t *port_base,   /* [n_routers] */
    const int32_t *nports,      /* [n_routers] 1 + degree */
    const int32_t *deg_off,     /* [n_routers+1] offsets into per-neighbor tables */
    const int32_t *nbr,         /* [deg_total] neighbor router index */
    const uint64_t *out_mask,   /* [deg_total] dst mask routed via this neighbor */
    const int32_t *out_gp,      /* [deg_total] downstream global port */
    const int32_t *out_eidx,    /* [deg_total] directed edge id */
    /* config */
    int32_t capacity,
    int32_t ej_max,
    int64_t deadline,
    /* initial packets (pool prefix; meta[i] == i) */
    int64_t n_packets,
    const uint64_t *pk_mask,
    const int32_t *pk_srcgp,    /* local injection port of the source */
    /* injection schedule: buckets of pool indices per cycle */
    int64_t n_buckets,
    const int64_t *bucket_cycle,
    const int64_t *bucket_off,  /* [n_buckets+1] */
    const int32_t *bucket_pid,  /* [n_packets] */
    /* outputs (host-allocated) */
    int64_t *link_counts,       /* [n_edges], zeroed by host */
    int32_t *peaks              /* [n_flat_ports], zeroed by host */
) {
    Result *res = (Result *)calloc(1, sizeof(Result));
    if (!res) return NULL;

    Fifo *bufs = (Fifo *)calloc((size_t)n_flat_ports, sizeof(Fifo));
    int32_t *qcount = (int32_t *)calloc((size_t)n_routers, sizeof(int32_t));
    int32_t *gp_owner = (int32_t *)malloc((size_t)n_flat_ports * sizeof(int32_t));
    Pool pool = {0};
    Log dlog = {0};
    Staged *staged = NULL;
    int64_t staged_cap = 256, staged_len = 0;
    staged = (Staged *)malloc((size_t)staged_cap * sizeof(Staged));

    pool.cap = n_packets > 16 ? n_packets * 2 : 64;
    pool.mask = (uint64_t *)malloc((size_t)pool.cap * sizeof(uint64_t));
    pool.hops = (int32_t *)malloc((size_t)pool.cap * sizeof(int32_t));
    pool.meta = (int32_t *)malloc((size_t)pool.cap * sizeof(int32_t));

    if (!bufs || !qcount || !gp_owner || !staged || !pool.mask || !pool.hops || !pool.meta) {
        res->status = 1;
        goto cleanup;
    }
    for (int32_t i = 0; i < n_routers; i++) {
        int32_t np = nports[i];
        for (int32_t s = 0; s < np; s++) gp_owner[port_base[i] + s] = i;
    }
    for (int64_t k = 0; k < n_packets; k++) {
        pool.mask[k] = pk_mask[k];
        pool.hops[k] = 0;
        pool.meta[k] = (int32_t)k;
    }
    pool.len = n_packets;

    int64_t in_flight = 0;
    int64_t pos = 0;
    int64_t cycle = 0;
    uint64_t busy = 0; /* routers with queued packets */

    while (cycle <= deadline) {
        if (pos < n_buckets && bucket_cycle[pos] == cycle) {
            for (int64_t b = bucket_off[pos]; b < bucket_off[pos + 1]; b++) {
                int32_t pid = bucket_pid[b];
                int32_t gp = pk_srcgp[pid];
                if (fifo_push(&bufs[gp], pid)) { res->status = 1; goto cleanup; }
                int32_t r = gp_owner[gp];
                qcount[r]++;
                busy |= 1ULL << r;
                in_flight++;
            }
            pos++;
        }
        if (!in_flight) {
            if (pos >= n_buckets) break;
            cycle = bucket_cycle[pos]; /* skip idle gap */
            continue;
        }

        staged_len = 0;
        uint64_t scan = busy;
        while (scan) {
            int32_t i = (int32_t)__builtin_ctzll(scan);
            scan &= scan - 1;
            int32_t np = nports[i];
            int32_t base = port_base[i];
            int32_t start = (int32_t)(cycle % np);
            uint64_t ibit = 1ULL << i;
            uint64_t outputs_used = 0;
            int32_t ejections = 0;
            int32_t d0 = deg_off[i];
            for (int32_t k = 0; k < np; k++) {
                int32_t slot = start + k;
                if (slot >= np) slot -= np;
                Fifo *dq = &bufs[base + slot];
                if (!dq->len) continue;
                int32_t pid = dq->a[dq->head];
                uint64_t mask = pool.mask[pid];
                uint64_t progressed = 0;

                if (mask & ibit) {
                    if (ejections < ej_max) {
                        ejections++;
                        if (log_push(&dlog, pool.meta[pid], i, cycle, pool.hops[pid])) {
                            res->status = 1; goto cleanup;
                        }
                        progressed = ibit;
                    }
                    if (mask == ibit) {
                        if (progressed) {
                            fifo_pop(dq);
                            qcount[i]--;
                            in_flight--;
                            if (!qcount[i]) busy &= ~ibit;
                        }
                        continue;
                    }
                }

                int moved_whole = 0;
                int32_t dend = deg_off[i + 1];
                for (int32_t q = d0; q < dend; q++) {
                    uint64_t g = mask & out_mask[q];
                    if (!g) continue;
                    int32_t nb = nbr[q];
                    if ((outputs_used >> nb) & 1) continue;
                    int32_t gp2 = out_gp[q];
                    if (bufs[gp2].len >= capacity) continue; /* backpressure */
                    int32_t npid;
                    if (g == mask) {
                        pool.hops[pid]++;
                        npid = pid;
                        moved_whole = 1;
                    } else {
                        npid = (int32_t)pool.len;
                        if (pool_push(&pool, g, pool.hops[pid] + 1, pool.meta[pid])) {
                            res->status = 1; goto cleanup;
                        }
                    }
                    if (staged_len == staged_cap) {
                        staged_cap *= 2;
                        Staged *ns = (Staged *)realloc(staged, (size_t)staged_cap * sizeof(Staged));
                        if (!ns) { res->status = 1; goto cleanup; }
                        staged = ns;
                    }
                    staged[staged_len].gp = gp2;
                    staged[staged_len].pid = npid;
                    staged_len++;
                    outputs_used |= 1ULL << nb;
                    link_counts[out_eidx[q]]++;
                    progressed |= g;
                }
                if (moved_whole) {
                    fifo_pop(dq);
                    qcount[i]--;
                    in_flight--;
                    if (!qcount[i]) busy &= ~ibit;
                } else if (progressed) {
                    uint64_t remaining = mask & ~progressed;
                    if (remaining) {
                        pool.mask[pid] = remaining;
                    } else {
                        fifo_pop(dq);
                        qcount[i]--;
                        in_flight--;
                        if (!qcount[i]) busy &= ~ibit;
                    }
                }
            }
        }

        for (int64_t s = 0; s < staged_len; s++) {
            int32_t gp = staged[s].gp;
            if (fifo_push(&bufs[gp], staged[s].pid)) { res->status = 1; goto cleanup; }
            if (bufs[gp].len > peaks[gp]) peaks[gp] = bufs[gp].len;
            int32_t r = gp_owner[gp];
            qcount[r]++;
            busy |= 1ULL << r;
            in_flight++;
        }
        cycle++;
    }

    res->cycles_run = cycle;
    res->d_meta = dlog.meta;
    res->d_dst = dlog.dst;
    res->d_cycle = dlog.cycle;
    res->d_hops = dlog.hops;
    res->d_len = dlog.len;
    dlog.meta = NULL; dlog.dst = NULL; dlog.cycle = NULL; dlog.hops = NULL;

cleanup:
    if (bufs) {
        for (int32_t g = 0; g < n_flat_ports; g++) free(bufs[g].a);
        free(bufs);
    }
    free(qcount);
    free(gp_owner);
    free(pool.mask);
    free(pool.hops);
    free(pool.meta);
    free(staged);
    free(dlog.meta);
    free(dlog.dst);
    free(dlog.cycle);
    free(dlog.hops);
    return res;
}
