"""AER spike packets.

An Address-Event-Representation packet identifies the spike's source neuron
and carries an injection timestamp (Fig. 2 of the paper); the interconnect
time-multiplexes these packets between crossbars.  One packet is one flit:
an AER event is a few bytes (source address + timestamp), well under any
realistic flit width, so the simulator does not model multi-flit wormhole
segmentation.

A packet may carry multiple destination routers (multicast — Noxim++
extension #3).  Routers *fork* a multicast packet when its destinations
diverge onto different output ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple


@dataclass
class SpikePacket:
    """One AER spike event in flight on the interconnect.

    Attributes
    ----------
    uid:
        Unique id of the spike event (shared by all forked copies so
        multicast deliveries can be traced back to one injection).
    src_neuron:
        Global id of the neuron that fired (the AER source address).
    src_node:
        Router where the packet entered the network.
    dst_nodes:
        Remaining destination routers this copy must reach.
    injected_cycle:
        Cycle at which the spike was offered to the network (encoder
        output time).
    hops:
        Router-to-router link traversals so far (forked copies inherit the
        parent's count).
    """

    uid: int
    src_neuron: int
    src_node: int
    dst_nodes: FrozenSet[int]
    injected_cycle: int
    hops: int = 0

    def __post_init__(self) -> None:
        if not self.dst_nodes:
            raise ValueError(f"packet {self.uid} has no destinations")
        if self.injected_cycle < 0:
            raise ValueError(
                f"packet {self.uid} has negative injection cycle "
                f"{self.injected_cycle}"
            )

    def fork(self, subset: FrozenSet[int]) -> "SpikePacket":
        """Create a copy of this packet covering ``subset`` destinations."""
        if not subset <= self.dst_nodes:
            raise ValueError("fork subset must be within remaining destinations")
        return SpikePacket(
            uid=self.uid,
            src_neuron=self.src_neuron,
            src_node=self.src_node,
            dst_nodes=subset,
            injected_cycle=self.injected_cycle,
            hops=self.hops,
        )


@dataclass(frozen=True)
class Injection:
    """A scheduled packet awaiting its injection cycle."""

    cycle: int
    src_node: int
    dst_nodes: Tuple[int, ...]
    src_neuron: int
    uid: int = field(default=-1)
