"""Cycle-accurate network-on-chip simulation substrate (Noxim++ substitute).

The paper extends the Noxim NoC simulator with (1) interconnect models for
neuromorphic hardware (NoC-tree for CxQuad, NoC-mesh for TrueNorth-like
chips), (2) SNN-related metrics (spike disorder, ISI distortion), and
(3) multicast spike delivery.  This package implements the same simulator
surface:

- :mod:`repro.noc.topology` — mesh / tree / star / torus builders with
  crossbar attach points;
- :mod:`repro.noc.multichip` — multi-chip fabrics: per-chip topologies
  joined by bridge links with configurable latency/energy, plus the
  per-chip / inter-chip statistics breakdown;
- :mod:`repro.noc.routing` — deterministic XY and shortest-path next-hop
  tables;
- :mod:`repro.noc.interconnect` — the cycle-accurate, input-buffered,
  round-robin-arbitrated simulation loop with multicast forking;
- :mod:`repro.noc.fastsim` — the table-driven vectorized backend
  (``NocConfig(backend="fast")``), bit-identical to the reference loop
  under deterministic routing and batched via ``simulate_many``;
- :mod:`repro.noc.parallel` — shards ``simulate_many`` batches across a
  process pool (``ParallelNocSimulator``), returning compact columnar
  ``ScheduleSummary`` results that are bit-identical to serial runs;
- :mod:`repro.noc.traffic` — converts a mapped spike graph into AER packet
  injection schedules, built columnar (``ColumnarSchedule`` arrays the
  fast backend consumes directly, with a lazy legacy ``Injection`` view)
  and batched across whole swarms via ``build_injections_batch``;
- :mod:`repro.noc.stats` — per-packet delivery records and link utilization
  from which latency / throughput / energy / disorder / ISI metrics derive.
"""

from repro.noc.packet import SpikePacket
from repro.noc.topology import Topology, build_topology, mesh, star, torus, tree
from repro.noc.multichip import (
    ChipBreakdown,
    MultiChipTopology,
    chip_breakdown,
    multichip,
)
from repro.noc.routing import (
    RoutingTable,
    WestFirstRouting,
    shortest_path_routing,
    west_first_routing,
    xy_routing,
)
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.fastsim import FastInterconnect, build_interconnect, simulate_many
from repro.noc.parallel import (
    ParallelNocSimulator,
    ScheduleSummary,
    parallel_simulate_many,
    resolve_workers,
    summarize,
)
from repro.noc.stats import DeliveryRecord, NocStats
from repro.noc.traffic import (
    ColumnarSchedule,
    InjectionSchedule,
    build_injections,
    build_injections_batch,
)
from repro.noc.faults import (
    FaultSet,
    FaultTimeline,
    FaultWindow,
    apply_faults,
    bridge_chains,
    degrade_topology,
    inject_random_faults,
    survivable_links,
)

__all__ = [
    "SpikePacket",
    "Topology",
    "build_topology",
    "mesh",
    "tree",
    "star",
    "torus",
    "MultiChipTopology",
    "ChipBreakdown",
    "chip_breakdown",
    "multichip",
    "RoutingTable",
    "WestFirstRouting",
    "xy_routing",
    "west_first_routing",
    "shortest_path_routing",
    "FaultSet",
    "FaultTimeline",
    "FaultWindow",
    "apply_faults",
    "bridge_chains",
    "degrade_topology",
    "inject_random_faults",
    "survivable_links",
    "Interconnect",
    "FastInterconnect",
    "build_interconnect",
    "simulate_many",
    "ParallelNocSimulator",
    "ScheduleSummary",
    "parallel_simulate_many",
    "resolve_workers",
    "summarize",
    "NocConfig",
    "NocStats",
    "DeliveryRecord",
    "ColumnarSchedule",
    "InjectionSchedule",
    "build_injections",
    "build_injections_batch",
]
