"""The cycle-accurate interconnect simulation loop.

Per cycle, in order:

1. packets scheduled for this cycle enter their source router's local
   injection queue (AER encoder output);
2. every occupied router arbitrates round-robin over its input ports.  The
   head packet of a port either (a) forks, if multicast destinations
   diverge onto different output ports, (b) ejects, if this router is a
   destination (one ejection per router per cycle), or (c) forwards to its
   next-hop router if that output port is free this cycle and the
   downstream channel buffer has space (credit-based backpressure);
3. staged forwards land in downstream buffers, becoming visible next cycle
   (one-cycle link latency).

The loop runs until every expected delivery has happened or a safety cap
is reached; the cap manifests as ``NocStats.undelivered_count > 0`` so a
deadlocked configuration fails loudly in tests rather than spinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.noc.packet import Injection, SpikePacket
from repro.noc.router import LOCAL_PORT, Router
from repro.noc.routing import RoutingTable, routing_for
from repro.noc.stats import DeliveryRecord, NocStats
from repro.noc.topology import Topology
from repro.obs import get_observer


@dataclass(frozen=True)
class NocConfig:
    """Tunable interconnect parameters (Noxim's configuration surface).

    ``buffer_capacity`` is packets per channel buffer; ``ejections_per_cycle``
    models decoder bandwidth at each tile; ``multicast`` toggles Noxim++
    extension #3 (single packet forked in-network) versus plain unicast
    replication at the source; ``selection`` picks among the next-hop
    candidates an *adaptive* routing algorithm offers ("bufferlevel" =
    least-occupied downstream buffer, Noxim's default; "first" =
    deterministic first candidate) — it is inert under deterministic
    routing; ``max_extra_cycles`` bounds post-injection drain time before
    the simulation declares itself stuck; ``backend`` selects the
    simulation engine — "reference" is the object-per-packet oracle loop
    in this module, "fast" is the table-driven vectorized engine in
    :mod:`repro.noc.fastsim` (bit-identical under deterministic routing).
    """

    buffer_capacity: int = 8
    ejections_per_cycle: int = 1
    multicast: bool = True
    selection: str = "bufferlevel"
    max_extra_cycles: int = 200_000
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        if self.ejections_per_cycle < 1:
            raise ValueError("ejections_per_cycle must be >= 1")
        if self.selection not in ("bufferlevel", "first"):
            raise ValueError(
                f"unknown selection strategy {self.selection!r}; "
                "use 'bufferlevel' or 'first'"
            )
        if self.max_extra_cycles < 1:
            raise ValueError("max_extra_cycles must be >= 1")
        if self.backend not in ("reference", "fast"):
            raise ValueError(
                f"unknown backend {self.backend!r}; use 'reference' or 'fast'"
            )


def build_packet_schedule(
    injections: Sequence[Injection], multicast: bool, stats: NocStats
) -> Dict[int, List[SpikePacket]]:
    """Expand injections into per-cycle packet lists (both backends).

    Self-destinations are dropped; a multicast injection becomes one
    packet carrying the whole destination set, a unicast one becomes one
    packet per destination.  Injections without an explicit uid are
    numbered after the largest uid seen so far, and ``stats`` gains the
    injected/expected counters as a side effect.
    """
    schedule: Dict[int, List[SpikePacket]] = {}
    next_uid = 0
    for inj in injections:
        dsts = frozenset(d for d in inj.dst_nodes if d != inj.src_node)
        if not dsts:
            continue
        uid = inj.uid if inj.uid >= 0 else next_uid
        next_uid = max(next_uid, uid) + 1
        if multicast:
            packets = [
                SpikePacket(
                    uid=uid,
                    src_neuron=inj.src_neuron,
                    src_node=inj.src_node,
                    dst_nodes=dsts,
                    injected_cycle=inj.cycle,
                )
            ]
        else:
            packets = [
                SpikePacket(
                    uid=uid,
                    src_neuron=inj.src_neuron,
                    src_node=inj.src_node,
                    dst_nodes=frozenset([d]),
                    injected_cycle=inj.cycle,
                )
                for d in sorted(dsts)
            ]
        stats.n_injected += 1
        stats.n_expected_deliveries += len(dsts)
        schedule.setdefault(inj.cycle, []).extend(packets)
    return schedule


class Interconnect:
    """Simulate AER traffic over a topology with deterministic routing."""

    def __init__(
        self,
        topology: Topology,
        routing: Optional[RoutingTable] = None,
        config: Optional[NocConfig] = None,
    ) -> None:
        self.topology = topology
        self.routing = routing if routing is not None else routing_for(topology)
        self.config = config if config is not None else NocConfig()
        self.routers: Dict[int, Router] = {
            node: Router(node, topology.graph.neighbors(node), self.config.buffer_capacity)
            for node in topology.graph.nodes
        }

    # -- public API ----------------------------------------------------------

    def simulate(self, injections) -> NocStats:
        """Run the network until all traffic drains; return statistics.

        Accepts a sequence of :class:`Injection` objects or any schedule
        object exposing an ``.injections`` list (``InjectionSchedule``,
        or the columnar schedule's lazily materialized legacy view).
        """
        obs = get_observer()
        if not obs.enabled:
            return self._simulate_impl(injections)
        with obs.span(
            "noc.simulate",
            backend="reference",
            routers=len(self.routers),
        ) as span:
            stats = self._simulate_impl(injections)
            span.set(
                n_packets=stats.n_injected,
                delivered=stats.delivered_count,
                cycles=stats.cycles_run,
            )
        obs.inc("noc.simulations", backend="reference")
        obs.inc("noc.packets_injected", stats.n_injected)
        obs.inc("noc.deliveries", stats.delivered_count)
        return stats

    def _simulate_impl(self, injections) -> NocStats:
        if hasattr(injections, "injections"):
            injections = injections.injections
        stats = NocStats()
        schedule = self._build_schedule(injections, stats)
        if not schedule:
            return stats

        last_injection = max(schedule)
        deadline = last_injection + self.config.max_extra_cycles
        active: set = set()
        cycle = 0
        while cycle <= deadline:
            if cycle in schedule:
                for pkt in schedule.pop(cycle):
                    self.routers[pkt.src_node].accept(LOCAL_PORT, pkt)
                    active.add(pkt.src_node)
            if not active and not schedule:
                break
            if active:
                self._step(cycle, active, stats)
            elif schedule:
                # Fast-forward idle gaps between injection bursts.
                cycle = min(schedule)
                continue
            cycle += 1
        stats.cycles_run = cycle
        stats.peak_buffer_occupancy = max(
            (r.peak_link_occupancy() for r in self.routers.values()), default=0
        )
        return stats

    # -- internals -------------------------------------------------------------

    def _build_schedule(
        self, injections: Sequence[Injection], stats: NocStats
    ) -> Dict[int, List[SpikePacket]]:
        return build_packet_schedule(injections, self.config.multicast, stats)

    def _step(self, cycle: int, active: set, stats: NocStats) -> None:
        staged: List[Tuple[int, int, SpikePacket]] = []  # (dst_router, from_node, pkt)
        staged_counts: Dict[Tuple[int, int], int] = {}

        for node in sorted(active):
            router = self.routers[node]
            outputs_used: set = set()
            ejections = 0
            for port in router.ports_in_arbitration_order(cycle):
                buf = router.buffers[port]
                if not buf:
                    continue
                pkt = buf.head()

                # Split destinations into eject-here vs per-output groups.
                # A multicast packet is forked *combinationally* inside the
                # router crossbar: each divergent group can leave through
                # its own output this same cycle.  Groups that cannot make
                # progress (busy output, full downstream buffer, decoder
                # budget spent) stay in the head packet for later cycles —
                # the buffer never grows from a fork.
                groups = self._route_groups(node, pkt)
                progressed: set = set()
                for direction, dst_group in groups.items():
                    if direction == "eject":
                        if ejections >= self.config.ejections_per_cycle:
                            continue
                        ejections += 1
                        stats.record(
                            DeliveryRecord(
                                uid=pkt.uid,
                                src_neuron=pkt.src_neuron,
                                src_node=pkt.src_node,
                                dst_node=node,
                                injected_cycle=pkt.injected_cycle,
                                delivered_cycle=cycle,
                                hops=pkt.hops,
                            )
                        )
                        progressed.update(dst_group)
                        continue
                    nxt = direction
                    if nxt in outputs_used:
                        continue
                    key = (nxt, node)
                    extra = staged_counts.get(key, 0)
                    if not self.routers[nxt].buffers[node].has_space(extra):
                        continue  # backpressure: downstream channel is full
                    forwarded = SpikePacket(
                        uid=pkt.uid,
                        src_neuron=pkt.src_neuron,
                        src_node=pkt.src_node,
                        dst_nodes=frozenset(dst_group),
                        injected_cycle=pkt.injected_cycle,
                        hops=pkt.hops + 1,
                    )
                    staged.append((nxt, node, forwarded))
                    staged_counts[key] = extra + 1
                    outputs_used.add(nxt)
                    stats.count_link(node, nxt)
                    progressed.update(dst_group)

                if progressed:
                    remaining = pkt.dst_nodes - progressed
                    if remaining:
                        buf.replace_head([pkt.fork(remaining)])
                    else:
                        buf.pop()

        for dst_router, from_node, pkt in staged:
            self.routers[dst_router].accept(from_node, pkt)
            active.add(dst_router)

        # Drop routers that went idle.
        for node in [n for n in active if not self.routers[n].occupied()]:
            active.discard(node)

    def _select_next_hop(self, node: int, dst: int) -> int:
        """Choose among the routing algorithm's admissible next hops.

        Deterministic tables offer one candidate; adaptive ones several,
        resolved by the configured selection strategy.  "bufferlevel"
        prefers the neighbor whose input buffer (for the link from this
        router) is least occupied, breaking ties toward the lowest id so
        runs stay reproducible.
        """
        candidates = self.routing.candidates(node, dst)
        if len(candidates) == 1 or self.config.selection == "first":
            return candidates[0]
        return min(
            candidates,
            key=lambda nxt: (len(self.routers[nxt].buffers[node]), nxt),
        )

    def _route_groups(self, node: int, pkt: SpikePacket) -> Dict[object, List[int]]:
        """Group a packet's destinations by required action at ``node``.

        Key "eject" collects destinations equal to ``node``; integer keys
        are next-hop routers (selection-resolved under adaptive routing).
        """
        groups: Dict[object, List[int]] = {}
        for dst in sorted(pkt.dst_nodes):
            key: object = (
                "eject" if dst == node else self._select_next_hop(node, dst)
            )
            groups.setdefault(key, []).append(dst)
        return groups
