"""Multi-chip interconnect: hierarchical topologies with bridge links.

The paper's reference platforms are physically multi-chip systems —
TrueNorth tiles 4096-core chips into boards, HiCANN wafers talk through
off-wafer FPGAs — and chip-to-chip links dominate both latency and
energy there.  This module composes N single-chip fabrics (mesh / tree /
star / torus per chip) into one :class:`MultiChipTopology` joined by
explicit **bridge links**, while presenting the ordinary
:class:`~repro.noc.topology.Topology` interface (global router ids,
``attach_points``, ``positions``, ``kind="multichip"``) so routing,
traffic expansion and both simulation backends work unchanged.

Bridge modeling
---------------
A bridge with ``bridge_latency = L`` is expanded into a chain of ``L``
link segments through ``L - 1`` dedicated *relay routers* (SerDes /
repeater stages).  Crossing the bridge therefore costs exactly ``L``
cycles of link latency in both the reference and the fast backend —
including the compiled C kernel — without either engine learning
anything about chips: relays are plain degree-2 routers that never host
crossbars, so destination masks never target them and the precomputed
next-hop port tables route through them like any other hop.  This is
what keeps the cross-backend bit-identical contract intact on
multi-chip fabrics (``tests/noc/test_multichip_topology.py`` pins it).

Energy accounting splits the same way: relay hops pay the ordinary
router+link energy per hop, and each bridge *crossing* additionally
pays :attr:`~repro.hardware.energy_model.EnergyModel.e_bridge_pj`
(counted on the first segment of the chain in each direction).

Hierarchy bookkeeping
---------------------
Beyond the flat interface the topology records which chip owns every
router and crossbar (relays belong to no chip: chip id ``-1``), the set
of expanded bridge segments, and the directed *entry* segments used to
count crossings.  The chip-aware placement pass
(:func:`repro.core.placement.place_clusters`), the per-chip statistics
breakdown (:func:`chip_breakdown`,
:func:`repro.noc.parallel.summarize`) and the bridge energy term all
read these.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.utils.validation import check_positive

from repro.noc.topology import Topology

#: Chip id reported for bridge relay routers, which belong to no chip.
RELAY_CHIP = -1


@dataclass
class MultiChipTopology(Topology):
    """A hierarchical topology: per-chip fabrics joined by bridge links.

    Attributes (beyond :class:`~repro.noc.topology.Topology`)
    ----------
    n_chips:
        Number of chips composed into the fabric.
    chip_kind:
        Topology family of each chip ("mesh", "tree", "star", "torus").
    bridge_latency:
        Cycles (= expanded hops) to cross one chip-to-chip bridge.
    chip_of_router:
        Owning chip per router id; bridge relays map to
        :data:`RELAY_CHIP` (``-1``).
    chip_of_crossbar:
        Owning chip per crossbar index (parallel to ``attach_points``).
    bridge_links:
        Every expanded bridge segment, as directed ``(u, v)`` pairs in
        both directions — any link load on one of these is an
        inter-chip hop.
    bridge_entry_links:
        One directed segment per (bridge, direction): the first hop of
        the relay chain.  Loads on these count bridge *crossings*.
    n_bridges:
        Number of chip-to-chip bridges (undirected).
    """

    n_chips: int = 1
    chip_kind: str = "mesh"
    bridge_latency: int = 1
    chip_of_router: Dict[int, int] = field(default_factory=dict)
    chip_of_crossbar: List[int] = field(default_factory=list)
    bridge_links: FrozenSet[Tuple[int, int]] = frozenset()
    bridge_entry_links: FrozenSet[Tuple[int, int]] = frozenset()
    n_bridges: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive("n_chips", self.n_chips)
        check_positive("bridge_latency", self.bridge_latency)
        if len(self.chip_of_crossbar) != len(self.attach_points):
            raise ValueError(
                f"chip_of_crossbar covers {len(self.chip_of_crossbar)} "
                f"crossbars, attach_points has {len(self.attach_points)}"
            )
        missing = [n for n in self.graph.nodes if n not in self.chip_of_router]
        if missing:
            raise ValueError(f"routers {missing} have no chip assignment")

    def _signature_fields(self) -> tuple:
        """Extend the content signature with the chip/bridge bookkeeping.

        The router graph alone already encodes relay chains, but the
        chip ownership maps decide inter-chip accounting in
        :func:`~repro.noc.parallel.summarize`, so fabrics that differ
        only there must not share cached artifacts.
        """
        return super()._signature_fields() + (
            self.n_chips,
            self.chip_kind,
            self.bridge_latency,
            tuple(sorted(self.chip_of_router.items())),
            tuple(self.chip_of_crossbar),
            tuple(sorted(self.bridge_links)),
            tuple(sorted(self.bridge_entry_links)),
            self.n_bridges,
        )

    # -- hierarchy queries ---------------------------------------------------

    def chip_of(self, node: int) -> int:
        """Owning chip of a router (:data:`RELAY_CHIP` for relays)."""
        return self.chip_of_router[node]

    def is_bridge_link(self, u: int, v: int) -> bool:
        """Whether directed link ``(u, v)`` is a bridge segment."""
        return (u, v) in self.bridge_links

    def routers_of_chip(self, chip: int) -> List[int]:
        """Router ids owned by ``chip``, ascending."""
        return sorted(n for n, c in self.chip_of_router.items() if c == chip)

    def crossbars_of_chip(self, chip: int) -> List[int]:
        """Crossbar indices hosted on ``chip``, ascending."""
        return [k for k, c in enumerate(self.chip_of_crossbar) if c == chip]

    # -- load classification -------------------------------------------------

    def inter_chip_hops(self, link_loads: Dict[Tuple[int, int], int]) -> int:
        """Total traversals of bridge segments in a load map."""
        return sum(
            count
            for link, count in link_loads.items()
            if link in self.bridge_links
        )

    def bridge_crossings(self, link_loads: Dict[Tuple[int, int], int]) -> int:
        """Complete chip-to-chip crossings in a load map.

        Each crossing traverses every segment of one relay chain, so
        counting only the chain's entry segment counts each crossing
        exactly once regardless of ``bridge_latency``.
        """
        return sum(
            count
            for link, count in link_loads.items()
            if link in self.bridge_entry_links
        )

    def bridge_crossings_on_route(self, routing, src: int, dst: int) -> int:
        """Bridges crossed by the deterministic routed path ``src→dst``.

        Walks the next-hop chain, counting entry segments.  Used by the
        analytic energy estimators so they price bridge crossings the
        same way the simulator's link loads do.
        """
        count = 0
        here = src
        while here != dst:
            nxt = routing.next_hop(here, dst)
            if (here, nxt) in self.bridge_entry_links:
                count += 1
            here = nxt
        return count

    def per_chip_hops(
        self, link_loads: Dict[Tuple[int, int], int]
    ) -> Dict[int, int]:
        """Intra-chip traversals per chip (bridge hops excluded)."""
        hops = {chip: 0 for chip in range(self.n_chips)}
        for (u, v), count in link_loads.items():
            if (u, v) in self.bridge_links:
                continue
            chip = self.chip_of_router[u]
            if chip == self.chip_of_router[v] and chip != RELAY_CHIP:
                hops[chip] += count
        return hops

    def describe(self) -> str:
        return (
            f"multichip topology: {self.n_chips} x {self.chip_kind} chips, "
            f"{self.n_routers} routers, {self.n_attach_points} crossbars, "
            f"{self.n_bridges} bridges (latency {self.bridge_latency})"
        )


@dataclass(frozen=True)
class ChipBreakdown:
    """Per-chip and inter-chip view of one simulation's statistics."""

    n_chips: int
    per_chip_hops: Dict[int, int]
    inter_chip_hops: int
    bridge_crossings: int
    intra_chip_deliveries: int
    inter_chip_deliveries: int
    intra_chip_latency_sum: int
    inter_chip_latency_sum: int

    @property
    def total_hops(self) -> int:
        return sum(self.per_chip_hops.values()) + self.inter_chip_hops

    @property
    def mean_intra_latency(self) -> float:
        if self.intra_chip_deliveries == 0:
            return 0.0
        return self.intra_chip_latency_sum / self.intra_chip_deliveries

    @property
    def mean_inter_latency(self) -> float:
        if self.inter_chip_deliveries == 0:
            return 0.0
        return self.inter_chip_latency_sum / self.inter_chip_deliveries

    def table_rows(self) -> List[Tuple[str, str]]:
        """(label, value) rows for report tables."""
        rows: List[Tuple[str, str]] = [
            (
                f"chip {chip} hops",
                str(self.per_chip_hops.get(chip, 0)),
            )
            for chip in range(self.n_chips)
        ]
        rows.append(("inter-chip hops", str(self.inter_chip_hops)))
        rows.append(("bridge crossings", str(self.bridge_crossings)))
        rows.append(("mean intra-chip latency", f"{self.mean_intra_latency:.1f}"))
        rows.append(("mean inter-chip latency", f"{self.mean_inter_latency:.1f}"))
        return rows


def chip_breakdown(stats, topology: MultiChipTopology) -> ChipBreakdown:
    """Split a :class:`~repro.noc.stats.NocStats` along chip boundaries.

    Hops are classified from ``link_loads`` (bridge segments are
    inter-chip); deliveries from their endpoints' owning chips.  Works
    on both backends — the fast backend answers from its lazy columns
    without materializing delivery records.
    """
    chip_of = topology.chip_of_router
    intra_n = inter_n = 0
    intra_lat = inter_lat = 0
    for src, dst, latency in stats.delivery_endpoints():
        if chip_of[src] == chip_of[dst]:
            intra_n += 1
            intra_lat += latency
        else:
            inter_n += 1
            inter_lat += latency
    return ChipBreakdown(
        n_chips=topology.n_chips,
        per_chip_hops=topology.per_chip_hops(stats.link_loads),
        inter_chip_hops=topology.inter_chip_hops(stats.link_loads),
        bridge_crossings=topology.bridge_crossings(stats.link_loads),
        intra_chip_deliveries=intra_n,
        inter_chip_deliveries=inter_n,
        intra_chip_latency_sum=intra_lat,
        inter_chip_latency_sum=inter_lat,
    )


# -- construction -------------------------------------------------------------


def _chip_grid(n_chips: int) -> Tuple[int, int]:
    """Near-square arrangement of chips on the board."""
    width = int(math.ceil(math.sqrt(n_chips)))
    height = int(math.ceil(n_chips / width))
    return width, height


def _split_crossbars(n_crossbars: int, n_chips: int) -> List[int]:
    """Crossbars per chip, as even as possible, earlier chips larger."""
    base, extra = divmod(n_crossbars, n_chips)
    return [base + (1 if i < extra else 0) for i in range(n_chips)]


def _gateway(
    nodes: Sequence[int],
    positions: Dict[int, Tuple[int, int]],
    side: str,
) -> int:
    """Deterministic boundary router of one chip facing ``side``.

    Positioned chips use the middle router of the facing edge; chips
    without positions (tree, star) use their highest-numbered router,
    which both builders create last: the tree root / star hub.
    """
    if not positions:
        return max(nodes)
    xs = [positions[n][0] for n in nodes]
    ys = [positions[n][1] for n in nodes]
    if side == "east":
        edge = [n for n in nodes if positions[n][0] == max(xs)]
    elif side == "west":
        edge = [n for n in nodes if positions[n][0] == min(xs)]
    elif side == "south":
        edge = [n for n in nodes if positions[n][1] == max(ys)]
    else:  # north
        edge = [n for n in nodes if positions[n][1] == min(ys)]
    axis = 1 if side in ("east", "west") else 0
    mid = (
        min(positions[n][axis] for n in edge)
        + max(positions[n][axis] for n in edge)
    ) / 2.0
    return min(edge, key=lambda n: (abs(positions[n][axis] - mid), n))


def multichip(
    n_crossbars: int,
    n_chips: int = 2,
    chip_kind: str = "mesh",
    bridge_latency: int = 1,
    **chip_kwargs,
) -> MultiChipTopology:
    """Compose ``n_chips`` single-chip fabrics into one bridged topology.

    Crossbars are split across chips as evenly as possible (earlier
    chips take the remainder); each chip is built with the ordinary
    single-chip builder for ``chip_kind`` and renumbered into a global
    id space.  Chips sit on a near-square grid and every grid-adjacent
    pair is joined by one bridge whose ``bridge_latency`` cycles are
    expanded into a chain of relay routers (see the module docstring).

    ``chip_kwargs`` are forwarded to the per-chip builder (e.g.
    ``arity`` for trees).
    """
    from repro.noc.topology import build_topology

    check_positive("n_crossbars", n_crossbars)
    check_positive("n_chips", n_chips)
    check_positive("bridge_latency", bridge_latency)
    if chip_kind == "multichip":
        raise ValueError("chips cannot themselves be multichip fabrics")
    if n_chips > n_crossbars:
        raise ValueError(
            f"{n_chips} chips need at least one crossbar each; "
            f"only {n_crossbars} crossbars requested"
        )

    counts = _split_crossbars(n_crossbars, n_chips)
    grid_w, _ = _chip_grid(n_chips)

    # Build every chip, renumbered into the global id space.
    import networkx as nx

    graph = nx.Graph()
    positions: Dict[int, Tuple[int, int]] = {}
    attach_points: List[int] = []
    chip_of_router: Dict[int, int] = {}
    chip_of_crossbar: List[int] = []
    chip_nodes: List[List[int]] = []
    chip_positions: List[Dict[int, Tuple[int, int]]] = []
    offset = 0
    spans: List[Tuple[int, int]] = []  # (width, height) per chip, local
    for chip, count in enumerate(counts):
        sub = build_topology(chip_kind, count, **chip_kwargs)
        relabel = {node: node + offset for node in sub.graph.nodes}
        graph.add_nodes_from(relabel.values())
        graph.add_edges_from((relabel[u], relabel[v]) for u, v in sub.graph.edges)
        nodes = sorted(relabel.values())
        chip_nodes.append(nodes)
        for node in nodes:
            chip_of_router[node] = chip
        attach_points.extend(relabel[n] for n in sub.attach_points)
        chip_of_crossbar.extend([chip] * len(sub.attach_points))
        local_pos = {relabel[n]: xy for n, xy in sub.positions.items()}
        chip_positions.append(local_pos)
        if local_pos:
            spans.append(
                (
                    max(x for x, _ in local_pos.values()) + 1,
                    max(y for _, y in local_pos.values()) + 1,
                )
            )
        else:
            spans.append((1, 1))
        offset += sub.n_routers

    # Global positions: chips tile a board grid with a gap wide enough
    # to hold the bridge relay chain (for plotting; multichip routing is
    # shortest-path, never XY, so gaps in the grid are harmless).
    gap = bridge_latency + 1
    cell_w = max(w for w, _ in spans) + gap
    cell_h = max(h for _, h in spans) + gap
    have_positions = all(p for p in chip_positions) and chip_positions
    if have_positions:
        for chip, local_pos in enumerate(chip_positions):
            cx, cy = chip % grid_w, chip // grid_w
            for node, (x, y) in local_pos.items():
                positions[node] = (x + cx * cell_w, y + cy * cell_h)

    # Bridges between grid-adjacent chips, each expanded into a relay
    # chain of bridge_latency segments.
    next_id = offset
    bridge_links: set = set()
    bridge_entries: set = set()
    n_bridges = 0
    for chip in range(n_chips):
        cx, cy = chip % grid_w, chip // grid_w
        for other, sides in (
            (chip + 1, ("east", "west")),
            (chip + grid_w, ("south", "north")),
        ):
            if other >= n_chips:
                continue
            if other == chip + 1 and other % grid_w == 0:
                continue  # row wrap: not grid-adjacent
            a = _gateway(chip_nodes[chip], chip_positions[chip], sides[0])
            b = _gateway(chip_nodes[other], chip_positions[other], sides[1])
            chain = [a]
            for step in range(bridge_latency - 1):
                relay = next_id
                next_id += 1
                graph.add_node(relay)
                chip_of_router[relay] = RELAY_CHIP
                if have_positions:
                    ax, ay = positions[a]
                    bx, by = positions[b]
                    frac = (step + 1) / bridge_latency
                    positions[relay] = (
                        ax + round((bx - ax) * frac),
                        ay + round((by - ay) * frac),
                    )
                chain.append(relay)
            chain.append(b)
            for u, v in zip(chain, chain[1:]):
                graph.add_edge(u, v)
                bridge_links.add((u, v))
                bridge_links.add((v, u))
            bridge_entries.add((chain[0], chain[1]))
            bridge_entries.add((chain[-1], chain[-2]))
            n_bridges += 1

    return MultiChipTopology(
        graph=graph,
        attach_points=attach_points,
        kind="multichip",
        positions=positions,
        n_chips=n_chips,
        chip_kind=chip_kind,
        bridge_latency=bridge_latency,
        chip_of_router=chip_of_router,
        chip_of_crossbar=chip_of_crossbar,
        bridge_links=frozenset(bridge_links),
        bridge_entry_links=frozenset(bridge_entries),
        n_bridges=n_bridges,
    )


def chip_distance_matrix(topology: MultiChipTopology, routing=None):
    """Chip-to-chip distance: minimum routed hops between attach points.

    Used by the chip-packing level of hierarchical placement to price
    moving traffic between any two chips (diagonal chips route over two
    bridges and cost accordingly).
    """
    import numpy as np

    dist = topology.crossbar_hop_matrix(routing)
    chips = topology.chip_of_crossbar
    n = topology.n_chips
    out = np.zeros((n, n), dtype=np.float64)
    for a in range(n):
        rows = [k for k, c in enumerate(chips) if c == a]
        for b in range(n):
            if a == b:
                continue
            cols = [k for k, c in enumerate(chips) if c == b]
            out[a, b] = float(dist[np.ix_(rows, cols)].min())
    return out
