"""Interconnect topologies with crossbar attach points.

A :class:`Topology` is an undirected router graph plus the ordered list of
*attach points*: the routers where crossbars (tiles) connect.  The paper's
reference platforms differ exactly here — CxQuad uses a NoC-tree whose
leaves host crossbars, TrueNorth/HiCANN use a NoC-mesh with one crossbar
per router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.utils.validation import check_positive


@dataclass
class Topology:
    """Router graph + crossbar attach points.

    Attributes
    ----------
    graph:
        Undirected :class:`networkx.Graph` of routers; nodes are ints.
    attach_points:
        ``attach_points[k]`` is the router hosting crossbar ``k``.
    kind:
        Topology family name ("mesh", "tree", ...), used by routing
        selection and reports.
    positions:
        Optional (x, y) grid coordinates per router; required by XY routing.
    """

    graph: nx.Graph
    attach_points: List[int]
    kind: str
    positions: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [n for n in self.attach_points if n not in self.graph]
        if missing:
            raise ValueError(f"attach points {missing} are not routers in the graph")
        if len(set(self.attach_points)) != len(self.attach_points):
            raise ValueError("attach points must be distinct routers")
        if not nx.is_connected(self.graph):
            raise ValueError("topology graph must be connected")
        # Lazily filled caches (plain attributes, not dataclass fields):
        # fitness and placement both need the same derived quantities on
        # the same topology instance, repeatedly.  Valid as long as the
        # graph is not mutated after first use — builders that derive
        # one topology from another always construct a fresh instance.
        self._diameter: Optional[int] = None
        self._hop_matrices: Dict[str, "object"] = {}
        self._content_signature: Optional[tuple] = None

    @property
    def n_routers(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_attach_points(self) -> int:
        return len(self.attach_points)

    def node_of_crossbar(self, k: int) -> int:
        """Router hosting crossbar ``k``."""
        if not 0 <= k < len(self.attach_points):
            raise IndexError(
                f"crossbar index {k} out of range "
                f"[0, {len(self.attach_points)})"
            )
        return self.attach_points[k]

    def content_signature(self) -> tuple:
        """Canonical structure token of this fabric (cached).

        Two topology instances with equal signatures are interchangeable
        for routing, hop matrices and simulation: the signature covers
        the router graph (sorted undirected edge list), attach points,
        kind, grid positions and the concrete subclass.  The serving
        layer's content-addressed :class:`~repro.framework.artifacts
        .ArtifactCache` keys derived artifacts by it, so sweeps that
        rebuild the same fabric per point share one set of artifacts.
        """
        if self._content_signature is None:
            self._content_signature = self._signature_fields()
        return self._content_signature

    def _signature_fields(self) -> tuple:
        """Hook for subclasses to extend the content signature."""
        edges = tuple(
            sorted((u, v) if u <= v else (v, u) for u, v in self.graph.edges)
        )
        return (
            type(self).__name__,
            self.kind,
            self.n_routers,
            tuple(self.attach_points),
            edges,
            tuple(sorted(self.positions.items())),
        )

    def diameter(self) -> int:
        """Longest shortest-path (hops) between any two routers (cached)."""
        if self._diameter is None:
            self._diameter = nx.diameter(self.graph)
        return self._diameter

    def crossbar_hop_matrix(self, routing=None):
        """All-pairs routed hop distances between attach points, cached.

        ``matrix[k1, k2]`` is the routed hop count from crossbar ``k1``'s
        router to crossbar ``k2``'s.  Fitness evaluation and placement
        both consume this matrix, often many times per run on the same
        topology, so it is computed once per (topology instance, routing
        algorithm) and returned read-only.  Pass a routing table to
        price a non-default algorithm; distinct table instances of the
        same algorithm share one cache entry (keyed by ``routing.name``)
        because they produce identical distances.
        """
        import numpy as np

        if routing is None:
            from repro.noc.routing import routing_for

            routing = routing_for(self)
        cached = self._hop_matrices.get(routing.name)
        if cached is None:
            c = self.n_attach_points
            matrix = np.zeros((c, c), dtype=np.float64)
            nodes = self.attach_points
            for k1 in range(c):
                for k2 in range(c):
                    if k1 != k2:
                        matrix[k1, k2] = routing.distance(
                            nodes[k1], nodes[k2]
                        )
            matrix.flags.writeable = False
            self._hop_matrices[routing.name] = matrix
            cached = matrix
        return cached

    def describe(self) -> str:
        return (
            f"{self.kind} topology: {self.n_routers} routers, "
            f"{self.graph.number_of_edges()} links, "
            f"{self.n_attach_points} crossbar attach points"
        )


def mesh(width: int, height: Optional[int] = None) -> Topology:
    """2D mesh with one crossbar attach point per router (TrueNorth-style).

    Routers are numbered row-major; router (x, y) has id ``y * width + x``.
    """
    check_positive("width", width)
    if height is None:
        height = width
    check_positive("height", height)
    g = nx.Graph()
    positions: Dict[int, Tuple[int, int]] = {}
    for y in range(height):
        for x in range(width):
            node = y * width + x
            g.add_node(node)
            positions[node] = (x, y)
            if x > 0:
                g.add_edge(node, node - 1)
            if y > 0:
                g.add_edge(node, node - width)
    return Topology(
        graph=g,
        attach_points=list(range(width * height)),
        kind="mesh",
        positions=positions,
    )


def tree(n_leaves: int, arity: int = 2) -> Topology:
    """Balanced routing tree with crossbars on the leaves (CxQuad-style).

    Internal routers switch traffic only; leaf routers host crossbars.  The
    tree is as balanced as possible for the requested leaf count: leaves are
    grouped ``arity`` at a time under parent routers until one root remains.
    A single leaf degenerates to one router that is both root and leaf.
    """
    check_positive("n_leaves", n_leaves)
    if arity < 2:
        raise ValueError(f"tree arity must be >= 2, got {arity}")
    g = nx.Graph()
    leaves = list(range(n_leaves))
    g.add_nodes_from(leaves)
    next_id = n_leaves
    frontier = leaves[:]
    while len(frontier) > 1:
        parents = []
        for i in range(0, len(frontier), arity):
            group = frontier[i : i + arity]
            if len(group) == 1 and parents:
                # Attach a trailing singleton to the previous parent rather
                # than creating a chain of unary routers.
                g.add_edge(parents[-1], group[0])
                continue
            parent = next_id
            next_id += 1
            g.add_node(parent)
            for child in group:
                g.add_edge(parent, child)
            parents.append(parent)
        frontier = parents
    return Topology(graph=g, attach_points=leaves, kind="tree")


def star(n_crossbars: int) -> Topology:
    """All crossbars attached around a single hub router."""
    check_positive("n_crossbars", n_crossbars)
    g = nx.Graph()
    hub = n_crossbars
    g.add_node(hub)
    for k in range(n_crossbars):
        g.add_edge(hub, k)
    if n_crossbars == 1:
        # A lone crossbar still needs a connected two-node graph so routing
        # tables are well formed; hub-leaf link is never used.
        pass
    return Topology(graph=g, attach_points=list(range(n_crossbars)), kind="star")


def torus(width: int, height: Optional[int] = None) -> Topology:
    """2D torus (mesh with wraparound links), one crossbar per router."""
    check_positive("width", width)
    if height is None:
        height = width
    check_positive("height", height)
    base = mesh(width, height)
    g = base.graph
    if width > 2:
        for y in range(height):
            g.add_edge(y * width, y * width + width - 1)
    if height > 2:
        for x in range(width):
            g.add_edge(x, (height - 1) * width + x)
    return Topology(
        graph=g,
        attach_points=list(base.attach_points),
        kind="torus",
        positions=dict(base.positions),
    )


def mesh_for(n_crossbars: int) -> Topology:
    """Smallest near-square mesh with at least ``n_crossbars`` routers.

    Attach points are the first ``n_crossbars`` routers in row-major order.
    """
    check_positive("n_crossbars", n_crossbars)
    import math

    width = int(math.ceil(math.sqrt(n_crossbars)))
    height = int(math.ceil(n_crossbars / width))
    topo = mesh(width, height)
    return Topology(
        graph=topo.graph,
        attach_points=list(range(n_crossbars)),
        kind="mesh",
        positions=topo.positions,
    )


def _multichip_for(n_crossbars: int, **kwargs) -> Topology:
    from repro.noc.multichip import multichip

    return multichip(
        n_crossbars,
        n_chips=kwargs.get("n_chips", 2),
        chip_kind=kwargs.get("chip_kind", "mesh"),
        bridge_latency=kwargs.get("bridge_latency", 1),
        arity=kwargs.get("arity", 2),
    )


def build_topology(kind: str, n_crossbars: int, **kwargs) -> Topology:
    """Topology factory keyed by family name.

    Single-chip families are "tree", "mesh", "star" and "torus";
    "multichip" composes several single-chip fabrics with bridge links
    (see :mod:`repro.noc.multichip`) and accepts ``n_chips``,
    ``chip_kind`` and ``bridge_latency`` keywords.  Unknown kinds raise
    a ``ValueError`` naming every known option.
    """
    builders = {
        "tree": lambda: tree(n_crossbars, arity=kwargs.get("arity", 2)),
        "mesh": lambda: mesh_for(n_crossbars),
        "star": lambda: star(n_crossbars),
        "torus": lambda: _torus_for(n_crossbars),
        "multichip": lambda: _multichip_for(n_crossbars, **kwargs),
    }
    if kind not in builders:
        raise ValueError(f"unknown topology kind {kind!r}; options: {sorted(builders)}")
    return builders[kind]()


def _torus_for(n_crossbars: int) -> Topology:
    import math

    width = int(math.ceil(math.sqrt(n_crossbars)))
    height = int(math.ceil(n_crossbars / width))
    topo = torus(width, height)
    return Topology(
        graph=topo.graph,
        attach_points=list(range(n_crossbars)),
        kind="torus",
        positions=dict(topo.positions),
    )
