"""Fast table-driven NoC simulation backend.

This module re-implements the cycle-accurate loop of
:mod:`repro.noc.interconnect` on flat arrays instead of per-router
objects.  It is selected with ``NocConfig(backend="fast")`` (or the
:func:`build_interconnect` factory) and is the engine behind the batch
:meth:`FastInterconnect.simulate_many` API used for swarm-scale
NoC-in-the-loop fitness evaluation.

Design
------
Routers are renumbered to dense indices; every per-cycle quantity lives
in a preallocated flat structure:

- **destination sets as bitmasks** — a packet's remaining destinations
  are one integer bitmask over router indices, so multicast fork /
  eject / progress bookkeeping are single AND/OR operations instead of
  frozenset algebra; for the compiled kernel the masks are laid out as
  ``(n_packets, n_words)`` uint64 words, one word on fabrics up to 63
  routers and multi-word beyond (TrueNorth-scale meshes), selecting the
  matching kernel entry point;
- **columnar schedules in, columns out** — a
  :class:`~repro.noc.traffic.ColumnarSchedule` is adopted directly as
  the packet plan (mask words, source indices and bucket offsets are
  array slices, not per-packet conversions), and deliveries come back
  as flat columns;
- **precomputed next-hop port masks** — for deterministic routing the
  whole routing table collapses into per-router ``(dst_mask, neighbor,
  downstream_port, ...)`` triples: grouping a head packet's
  destinations by output port (the router crossbar fork) is one AND
  per port, and the downstream credit check is one deque length
  comparison;
- **occupancy-indexed arbitration tables** — which input ports a
  router scans, in round-robin rotation, is a precomputed lookup keyed
  by (cycle offset, occupied-port bitmask), so empty ports cost
  nothing;
- **struct-of-arrays packet pool** — the immutable packet fields (uid,
  source neuron/router, injection cycle) are one shared tuple per
  injection; forked copies append only a mask and a hop count, and a
  packet that moves whole through a router allocates nothing;
- **columnar, lazily materialized statistics** — the fast backend
  returns a :class:`FastNocStats` whose per-delivery
  :class:`~repro.noc.stats.DeliveryRecord` objects are only built when
  the ``deliveries`` list is first touched; aggregate queries
  (latencies, counts) come straight from the columns.

Equivalence contract
--------------------
Under deterministic routing (XY, shortest-path, or any configuration
with ``selection="first"``) the fast backend reproduces the reference
loop **bit for bit**: identical delivery records, cycle counts, link
loads and peak buffer occupancies.  This holds because the reference
cycle order is replicated exactly — routers arbitrate in ascending
order, input ports rotate round-robin by cycle, and the groups of one
head packet never interact with each other (distinct output ports, at
most one eject group), so the only orderings that matter are across
ports and across routers, both of which are preserved.  Under adaptive
routing with ``selection="bufferlevel"`` the same tie-breaking rules
are applied to live buffer lengths, so runs are reproducible and
statistically equivalent to the reference.

``tests/noc/test_backend_equivalence.py`` enforces the contract over
mesh/torus topologies, unicast/multicast traffic and tight/roomy
buffers, and property tests assert the fast backend always drains
feasible schedules.
"""

from __future__ import annotations

import ctypes
import dataclasses
import itertools
import os
from collections import deque
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.noc._ckernel import (
    has_batch,
    load_kernel,
    openmp_enabled,
    resolve_threads,
)
from repro.noc.interconnect import Interconnect, NocConfig
from repro.noc.packet import Injection
from repro.noc.routing import RoutingTable, routing_for
from repro.noc.stats import DeliveryRecord, NocStats
from repro.noc.topology import Topology
from repro.noc.traffic import ColumnarSchedule, unpack_destination_bits
from repro.obs import get_observer

#: Anything ``simulate`` accepts: a row-oriented injection sequence (or
#: an ``InjectionSchedule`` exposing ``.injections``) or the columnar
#: schedule the traffic builders produce.
ScheduleLike = Union[Sequence[Injection], ColumnarSchedule]

# Occupancy-indexed arbitration tables grow as n_ports * 2**n_ports per
# router; beyond this port count (e.g. a big star hub) the engine falls
# back to scanning the full rotation and skipping empty deques.
_MAX_TABLE_PORTS = 8


class _MetaColumns:
    """Columnar packet metadata: the struct-of-arrays twin of the
    per-packet ``(uid, src_neuron, src_node, cycle, src_idx)`` tuples the
    row-oriented plan carries.  ``__getitem__`` yields that tuple so the
    lazy record builder works unchanged; the latency path reads the
    ``cycle`` column directly."""

    __slots__ = ("uid", "src_neuron", "src_node", "cycle", "src_idx")

    def __init__(self, uid, src_neuron, src_node, cycle, src_idx) -> None:
        self.uid = uid
        self.src_neuron = src_neuron
        self.src_node = src_node
        self.cycle = cycle
        self.src_idx = src_idx

    def __len__(self) -> int:
        return int(self.uid.shape[0])

    def __getitem__(self, pid) -> Tuple[int, int, int, int, int]:
        return (
            int(self.uid[pid]),
            int(self.src_neuron[pid]),
            int(self.src_node[pid]),
            int(self.cycle[pid]),
            int(self.src_idx[pid]),
        )


class _ColumnarPlan(NamedTuple):
    """Array-native packet plan (packet ``pid`` sits in bucket order, so
    the implicit bucket pid list is ``arange(n_packets)``)."""

    bucket_cycle: np.ndarray  # int64 (n_buckets,) ascending
    bucket_off: np.ndarray    # int64 (n_buckets + 1,)
    mask_words: np.ndarray    # uint64 (n_packets, n_words)
    src_idx: np.ndarray       # int64 (n_packets,) dense source index
    meta: _MetaColumns


class FastNocStats(NocStats):
    """:class:`NocStats` with columnar, lazily materialized deliveries.

    The engine records deliveries as flat ``(packet, router, cycle,
    hops)`` tuples; full :class:`DeliveryRecord` objects are only
    constructed when ``deliveries`` is first accessed.  Aggregate
    queries (counts, latencies) are answered from the columns directly,
    so swarm scoring that only reads ``total_hops`` or ``mean_latency``
    never pays for record construction.
    """

    def _attach(self, delivered, p_meta, node_ids, needs_sort) -> None:
        self._delivered = delivered
        self._p_meta = p_meta
        self._node_ids = node_ids
        self._needs_sort = needs_sort
        self._records: Optional[List[DeliveryRecord]] = None

    def _columns(self):
        # The C kernel hands back four flat arrays; widen them into the
        # tuple rows the record builder expects, once, on first access.
        if isinstance(self._delivered, tuple):
            meta, dst, at, hops = self._delivered
            self._delivered = list(
                zip(meta.tolist(), dst.tolist(), at.tolist(), hops.tolist())
            )
        # Lazily replayed router drains append out of chronological
        # order; restore the reference order (cycle, then router) once,
        # on first access.  Entries of one router within one cycle stay
        # in arbitration order because the sort is stable.
        if self._needs_sort:
            self._delivered.sort(key=lambda t: (t[2], t[1]))
            self._needs_sort = False
        return self._delivered

    @property
    def deliveries(self) -> List[DeliveryRecord]:
        if getattr(self, "_delivered", None) is None:
            return self._eager_deliveries
        if self._records is None:
            p_meta = self._p_meta
            node_ids = self._node_ids
            self._records = [
                DeliveryRecord(
                    uid=p_meta[pid][0],
                    src_neuron=p_meta[pid][1],
                    src_node=p_meta[pid][2],
                    dst_node=node_ids[dst],
                    injected_cycle=p_meta[pid][3],
                    delivered_cycle=at,
                    hops=hops,
                )
                for pid, dst, at, hops in self._columns()
            ]
        return self._records

    @deliveries.setter
    def deliveries(self, value: List[DeliveryRecord]) -> None:
        self._eager_deliveries = value
        self._delivered = None

    @property
    def delivered_count(self) -> int:
        if getattr(self, "_delivered", None) is None:
            return len(self._eager_deliveries)
        if isinstance(self._delivered, tuple):
            return len(self._delivered[0])
        return len(self._delivered)

    def latencies(self) -> np.ndarray:
        if getattr(self, "_delivered", None) is None:
            return super().latencies()
        p_meta = self._p_meta
        if (
            isinstance(self._delivered, tuple)
            and isinstance(p_meta, _MetaColumns)
            and not self._needs_sort
        ):
            # Columnar plan + kernel columns: one gather, no Python loop.
            meta_idx, _, at, _ = self._delivered
            return (at - p_meta.cycle[meta_idx]).astype(np.int64)
        return np.asarray(
            [at - p_meta[pid][3] for pid, _, at, _ in self._columns()],
            dtype=np.int64,
        )

    def delivery_endpoints(self):
        if getattr(self, "_delivered", None) is None:
            yield from super().delivery_endpoints()
            return
        p_meta = self._p_meta
        node_ids = self._node_ids
        for pid, dst, at, _ in self._columns():
            meta = p_meta[pid]
            yield meta[2], node_ids[dst], at - meta[3]


class FastInterconnect:
    """Vectorized drop-in replacement for :class:`Interconnect`.

    Construction precomputes the routing/port tables, so one instance
    amortizes that cost over arbitrarily many :meth:`simulate` /
    :meth:`simulate_many` calls (the swarm-scoring hot path).
    """

    def __init__(
        self,
        topology: Topology,
        routing: Optional[RoutingTable] = None,
        config: Optional[NocConfig] = None,
    ) -> None:
        self.topology = topology
        self.routing = routing if routing is not None else routing_for(topology)
        self.config = config if config is not None else NocConfig()
        self._build_tables()

    def __reduce__(self):
        """Pickle as the (topology, routing, config) spec.

        The derived tables — and especially the ctypes kernel handle,
        which cannot cross process boundaries — are rebuilt on
        unpickling.  This is what lets :mod:`repro.noc.parallel` seed
        each worker process with one compact payload.  ``type(self)``
        (not the base class) so subclasses survive the round trip.
        """
        return (type(self), (self.topology, self.routing, self.config))

    # -- precomputed tables --------------------------------------------------

    def _build_tables(self) -> None:
        nodes = sorted(self.topology.graph.nodes)
        self._nodes: List[int] = nodes  # dense index -> node id
        self._idx: Dict[int, int] = {node: i for i, node in enumerate(nodes)}
        idx = self._idx
        n = len(nodes)
        self._n = n

        # Port layout: slot 0 is the local injection queue, slots 1..k
        # are the bounded channel buffers from sorted neighbors — the
        # same canonical order the reference router arbitrates over.
        self._nbrs: List[List[int]] = []
        self._in_slot: List[Dict[int, int]] = []  # upstream idx -> slot
        self._port_base: List[int] = []
        base = 0
        for node in nodes:
            nbrs = [idx[v] for v in sorted(self.topology.graph.neighbors(node))]
            self._nbrs.append(nbrs)
            self._in_slot.append({u: s + 1 for s, u in enumerate(nbrs)})
            self._port_base.append(base)
            base += 1 + len(nbrs)
        self._n_flat_ports = base

        self._nports = [1 + len(self._nbrs[i]) for i in range(n)]
        self._one_port = [(gp,) for gp in range(self._n_flat_ports)]

        # Arbitration tables: _arb[i][cycle % n_ports][occupied_mask]
        # lists this router's occupied global port ids in round-robin
        # order.  None for very-high-degree routers (table too big).
        self._arb: List[Optional[List[List[Tuple[int, ...]]]]] = []
        self._rot: List[List[Tuple[int, ...]]] = []
        for i in range(n):
            k = 1 + len(self._nbrs[i])
            ports = tuple(self._port_base[i] + s for s in range(k))
            rotations = [ports[start:] + ports[:start] for start in range(k)]
            self._rot.append(rotations)
            if k > _MAX_TABLE_PORTS:
                self._arb.append(None)
                continue
            self._arb.append(
                [
                    [
                        tuple(
                            gp
                            for gp in rotation
                            if (occ >> (gp - ports[0])) & 1
                        )
                        for occ in range(1 << k)
                    ]
                    for rotation in rotations
                ]
            )

        # Candidate next hops per (here, dst), as dense index tuples.
        # ``selection="first"`` always takes the first candidate, which
        # makes even an adaptive table behave deterministically, so the
        # bitmask fast path applies there too.
        cand: List[List[Tuple[int, ...]]] = []
        deterministic = True
        for i, here in enumerate(nodes):
            row: List[Tuple[int, ...]] = []
            for dst in nodes:
                if dst == here:
                    row.append(())
                    continue
                options = tuple(
                    idx[v] for v in self.routing.candidates(here, dst)
                )
                if len(options) > 1:
                    deterministic = False
                row.append(options)
            cand.append(row)
        self._cand = cand
        self._deterministic = deterministic or self.config.selection == "first"

        # Directed links in a fixed order; loads accumulate in a flat
        # counter list indexed by these ids.
        self._edges: List[Tuple[int, int]] = []  # edge id -> (u_id, v_id)
        edge_id: Dict[Tuple[int, int], int] = {}
        for i in range(n):
            for nb in self._nbrs[i]:
                edge_id[(i, nb)] = len(self._edges)
                self._edges.append((nodes[i], nodes[nb]))

        # Output stage per router: (dst_mask, neighbor, downstream port,
        # downstream slot bit, edge id) per neighbor.  dst_mask is only
        # meaningful under deterministic routing (bit d set iff
        # destination d leaves through this neighbor); adaptive runs
        # index this table by neighbor for the shared fields.
        self._fwd: List[Tuple[Tuple[int, int, int, int, int], ...]] = []
        self._fwd_of: List[Dict[int, Tuple[int, int, int, int, int]]] = []
        for i in range(n):
            masks = {nb: 0 for nb in self._nbrs[i]}
            if self._deterministic:
                for d in range(n):
                    if d != i:
                        masks[cand[i][d][0]] |= 1 << d
            entries = tuple(
                (
                    masks[nb],
                    nb,
                    self._port_base[nb] + self._in_slot[nb][i],
                    1 << self._in_slot[nb][i],
                    edge_id[(i, nb)],
                )
                for nb in self._nbrs[i]
            )
            self._fwd.append(entries)
            self._fwd_of.append({e[1]: e for e in entries})

        self._node_arr = np.asarray(nodes, dtype=np.int64)
        self._port_base_arr = np.asarray(self._port_base, dtype=np.int32)
        # Destination masks span this many uint64 words.  The original
        # single-word layout (and its kernel) keeps the <=63-router
        # boundary; anything larger goes multi-word.
        self._n_words = 1 if n <= 63 else -(-n // 64)

        # Compiled kernel (optional): deterministic routing runs in C
        # when a compiler is available — the single-word kernel for <=63
        # routers, the multi-word variant beyond that.  Adaptive
        # selection (and no-compiler hosts) use the pure-Python engine.
        self._ck = None
        if self._deterministic:
            lib = load_kernel()
            if lib is not None:
                deg = [len(self._nbrs[i]) for i in range(n)]
                entries = [e for i in range(n) for e in self._fwd[i]]
                out_mask = self._pack_mask_words([e[0] for e in entries])
                self._ck = lib
                self._ck_tables = (
                    self._port_base_arr,
                    np.asarray(self._nports, dtype=np.int32),
                    np.asarray([0] + list(np.cumsum(deg)), dtype=np.int32),
                    np.asarray([e[1] for e in entries], dtype=np.int32),
                    out_mask,
                    np.asarray([e[2] for e in entries], dtype=np.int32),
                    np.asarray([e[4] for e in entries], dtype=np.int32),
                )

        # Unicast shortcut (deterministic only): one direct lookup
        # (router, destination) -> (neighbor, downstream port, slot bit,
        # edge id, arrives-home flag) replaces the per-neighbor scan for
        # single-destination packets — the bulk of in-flight traffic
        # once multicast forks have diverged.
        self._route1: List[List[Optional[Tuple[int, int, int, int, bool]]]] = []
        if self._deterministic:
            for i in range(n):
                row: List[Optional[Tuple[int, int, int, int, bool]]] = []
                for d in range(n):
                    if d == i:
                        row.append(None)
                        continue
                    nb = cand[i][d][0]
                    row.append(
                        (
                            nb,
                            self._port_base[nb] + self._in_slot[nb][i],
                            1 << self._in_slot[nb][i],
                            edge_id[(i, nb)],
                            d == nb,
                        )
                    )
                self._route1.append(row)

    # -- public API ----------------------------------------------------------

    def simulate(self, injections: ScheduleLike) -> NocStats:
        """Run the network until all traffic drains; return statistics.

        Accepts a sequence of :class:`Injection` objects, an
        ``InjectionSchedule`` (its ``.injections`` list is used), or a
        :class:`~repro.noc.traffic.ColumnarSchedule` — for the latter
        the packet plan is adopted straight from the schedule's arrays
        (no per-packet Python conversion).
        """
        obs = get_observer()
        if not obs.enabled:
            return self._simulate_impl(injections)
        with obs.span("noc.simulate", backend="fast", routers=self._n) as span:
            stats = self._simulate_impl(injections)
            span.set(
                n_packets=stats.n_injected,
                delivered=stats.delivered_count,
                cycles=stats.cycles_run,
            )
        obs.inc("noc.simulations", backend="fast")
        obs.inc("noc.packets_injected", stats.n_injected)
        obs.inc("noc.deliveries", stats.delivered_count)
        return stats

    def _simulate_impl(self, injections: ScheduleLike) -> NocStats:
        stats = FastNocStats()
        if isinstance(injections, ColumnarSchedule):
            plan = self._columnar_plan(injections, stats)
        else:
            if hasattr(injections, "injections"):
                injections = injections.injections
            plan = self._build_pool_schedule(injections, stats)
        if plan is None:
            return stats
        if self._ck is not None:
            return self._run_c(plan, stats)
        return self._run(plan, stats)

    def simulate_many(
        self,
        schedules: Sequence[ScheduleLike],
        threads: Optional[int] = None,
    ) -> List[NocStats]:
        """Simulate a batch of injection schedules on this network.

        The routing/port tables are built once per instance, so scoring
        a whole swarm of candidate placements costs one table build plus
        one lean simulation per schedule.

        When the compiled kernel exposes the batch entry points, the
        whole batch runs in **one** C call (the ctypes call releases
        the GIL) with OpenMP parallelism across independent schedules —
        bit-identical to the serial per-schedule path for any thread
        count, because each schedule runs the same single-schedule
        algorithm into its own result slab.  ``threads`` caps the team
        (``None`` defers to ``REPRO_NOC_THREADS``, then one per core;
        ``0`` disables the batch path).

        An explicit ``threads`` argument always takes the batch path
        (tests pin its single-thread behavior that way); on auto it is
        only taken when it can actually parallelize (OpenMP build, more
        than one effective thread) — a 1-thread batch call pays the
        concatenation and result-slab overhead with nothing to buy it
        back.
        """
        schedules = list(schedules)
        if len(schedules) > 1 and has_batch(self._ck):
            n_threads = resolve_threads(threads)
            if n_threads != 0 and (
                threads is not None or self.batch_threads(threads) > 1
            ):
                out = self._simulate_many_c(schedules, n_threads)
                if out is not None:
                    return out
        return [self.simulate(injections) for injections in schedules]

    def batch_threads(self, requested: Optional[int] = None) -> int:
        """Effective parallelism of the threaded batch kernel.

        ``0`` when the batch path is unavailable or disabled; ``1``
        when it runs but cannot parallelize (no OpenMP); otherwise the
        thread count capped by the core count.  Callers use this to
        decide between the in-process threaded kernel and the process
        pool.
        """
        if not has_batch(self._ck):
            return 0
        n_threads = resolve_threads(requested)
        if n_threads == 0:
            return 0
        if not openmp_enabled(self._ck):
            return 1
        return max(1, min(n_threads, os.cpu_count() or 1))

    # -- schedule expansion --------------------------------------------------

    def _columnar_plan(
        self, schedule: ColumnarSchedule, stats: FastNocStats
    ) -> Optional[_ColumnarPlan]:
        """Adopt a columnar schedule as the packet plan.

        The schedule's mask words already use this network's dense
        router numbering (both sides derive it from sorted node ids), so
        plan building reduces to bucket-boundary discovery — except
        under unicast, where multicast rows are expanded into one
        single-bit row per destination (ascending bit order, matching
        the reference's sorted split).  Builders guarantee no
        self-destinations and explicit uids.
        """
        if not np.array_equal(schedule.node_ids, self._node_arr):
            raise ValueError(
                "columnar schedule was built for a different topology "
                "(router id mismatch)"
            )
        words = schedule.dst_words
        n_pk = words.shape[0]
        if n_pk == 0:
            stats.n_injected = 0
            stats.n_expected_deliveries = 0
            return None
        # Bucket discovery below assumes the sorted-ascending,
        # non-negative cycle column every builder produces; a hand-built
        # schedule violating that must fail loudly (the reference view
        # would raise or reorder, breaking bit-identity silently here).
        if int(schedule.cycle[0]) < 0:
            raise ValueError(
                f"negative injection cycle {int(schedule.cycle[0])}"
            )
        if n_pk > 1 and np.any(np.diff(schedule.cycle) < 0):
            raise ValueError(
                "columnar schedule cycle column must be sorted ascending"
            )
        src_idx = np.searchsorted(self._node_arr, schedule.src_node)
        cycle = schedule.cycle
        uid = schedule.uid
        src_neuron = schedule.src_neuron
        src_node = schedule.src_node
        # The traffic builders never emit self-destinations or empty
        # masks, but hand-built schedules might; apply the reference's
        # sanitization (strip the source bit, drop empty rows) so both
        # backends stay bit-identical on any input.
        rows = np.arange(n_pk)
        src_word = src_idx >> 6
        src_bit = np.left_shift(np.uint64(1), (src_idx & 63).astype(np.uint64))
        has_self = (words[rows, src_word] & src_bit) != 0
        if has_self.any():
            words = words.copy()
            words[rows[has_self], src_word[has_self]] &= ~src_bit[has_self]
        per_packet = np.bitwise_count(words).sum(axis=1)
        keep = per_packet != 0
        if not keep.all():
            words = words[keep]
            cycle = cycle[keep]
            uid = uid[keep]
            src_neuron = src_neuron[keep]
            src_node = src_node[keep]
            src_idx = src_idx[keep]
            per_packet = per_packet[keep]
        stats.n_injected = int(words.shape[0])
        stats.n_expected_deliveries = int(per_packet.sum())
        if words.shape[0] == 0:
            return None
        if not self.config.multicast:
            rows, cols = unpack_destination_bits(words)
            n_new = rows.shape[0]
            split = np.zeros((n_new, words.shape[1]), dtype=np.uint64)
            split[np.arange(n_new), cols >> 6] = np.left_shift(
                np.uint64(1), (cols & 63).astype(np.uint64)
            )
            words = split
            cycle = cycle[rows]
            uid = uid[rows]
            src_neuron = src_neuron[rows]
            src_node = src_node[rows]
            src_idx = src_idx[rows]
        bounds = np.flatnonzero(np.diff(cycle)) + 1
        starts = np.concatenate(([0], bounds))
        return _ColumnarPlan(
            bucket_cycle=cycle[starts],
            bucket_off=np.concatenate(
                (starts, [cycle.shape[0]])
            ).astype(np.int64),
            mask_words=words,
            src_idx=src_idx,
            meta=_MetaColumns(uid, src_neuron, src_node, cycle, src_idx),
        )

    def _legacy_plan(self, plan: _ColumnarPlan):
        """Row-oriented plan from a columnar one (pure-Python engine
        input: appendable lists, arbitrary-precision int masks)."""
        bucket_cycle = plan.bucket_cycle.tolist()
        off = plan.bucket_off.tolist()
        buckets = [
            list(range(off[b], off[b + 1]))
            for b in range(len(bucket_cycle))
        ]
        meta = plan.meta
        p_meta = list(
            zip(
                meta.uid.tolist(),
                meta.src_neuron.tolist(),
                meta.src_node.tolist(),
                meta.cycle.tolist(),
                meta.src_idx.tolist(),
            )
        )
        words = plan.mask_words
        p_mask = words[:, 0].tolist()
        for w in range(1, words.shape[1]):
            shift = 64 * w
            p_mask = [
                m | (c << shift)
                for m, c in zip(p_mask, words[:, w].tolist())
            ]
        return (bucket_cycle, buckets, p_meta, [0] * len(p_meta), p_mask)

    def _build_pool_schedule(self, injections, stats):
        """Expand injections straight into the packet pool.

        Mirrors :func:`~repro.noc.interconnect.build_packet_schedule`
        (same uid numbering, self-destination dropping and multicast/
        unicast splitting) without materializing ``SpikePacket``
        objects.  Unicast split order is ascending node id, which is
        ascending bit order because indices follow sorted node ids.
        """
        idx = self._idx
        multicast = self.config.multicast
        buckets: Dict[int, List[int]] = {}
        p_meta: List[Tuple[int, int, int, int, int]] = []
        p_hops: List[int] = []
        p_mask: List[int] = []
        next_uid = 0
        n_injected = 0
        n_expected = 0
        for inj in injections:
            src = inj.src_node
            mask = 0
            for d in inj.dst_nodes:
                if d != src:
                    mask |= 1 << idx[d]
            if not mask:
                continue
            uid = inj.uid if inj.uid >= 0 else next_uid
            next_uid = max(next_uid, uid) + 1
            n_injected += 1
            n_expected += mask.bit_count()
            meta = (uid, inj.src_neuron, src, inj.cycle, idx[src])
            bucket = buckets.setdefault(inj.cycle, [])
            if multicast:
                bucket.append(len(p_hops))
                p_meta.append(meta)
                p_hops.append(0)
                p_mask.append(mask)
            else:
                m = mask
                while m:
                    low = m & -m
                    m ^= low
                    bucket.append(len(p_hops))
                    p_meta.append(meta)
                    p_hops.append(0)
                    p_mask.append(low)
        stats.n_injected = n_injected
        stats.n_expected_deliveries = n_expected
        if not buckets:
            return None
        inject_cycles = sorted(buckets)
        return (
            inject_cycles,
            [buckets[c] for c in inject_cycles],
            p_meta,
            p_hops,
            p_mask,
        )

    # -- the engines ---------------------------------------------------------

    def _pack_mask_words(self, p_mask) -> np.ndarray:
        """Arbitrary-precision int masks -> (n_packets, n_words) words."""
        nw = self._n_words
        n_packets = len(p_mask)
        if nw == 1:
            return np.array(p_mask, dtype=np.uint64).reshape(n_packets, 1)
        words = np.zeros((n_packets, nw), dtype=np.uint64)
        for i, m in enumerate(p_mask):
            w = 0
            while m:
                words[i, w] = m & 0xFFFFFFFFFFFFFFFF
                m >>= 64
                w += 1
        return words

    def _marshal_plan(self, plan):
        """Kernel-ready arrays for one plan (shared by the single-
        schedule and batch paths, so both feed the C code identical
        inputs — the root of the batch bit-identity guarantee).

        Returns ``(p_meta, n_packets, mask_words, pk_srcgp,
        bucket_cycle, bucket_off, bucket_pid, n_buckets, deadline)``.
        """
        if isinstance(plan, _ColumnarPlan):
            p_meta = plan.meta
            n_packets = plan.mask_words.shape[0]
            mask_words = np.ascontiguousarray(plan.mask_words)
            pk_srcgp = np.ascontiguousarray(
                self._port_base_arr[plan.src_idx]
            )
            bucket_cycle = np.ascontiguousarray(plan.bucket_cycle)
            bucket_off = np.ascontiguousarray(plan.bucket_off)
            bucket_pid = np.arange(n_packets, dtype=np.int32)
            n_buckets = len(bucket_cycle)
            deadline = int(bucket_cycle[-1]) + self.config.max_extra_cycles
        else:
            inject_cycles, buckets, p_meta, p_hops, p_mask = plan
            port_base = self._port_base
            n_packets = len(p_mask)
            mask_words = self._pack_mask_words(p_mask)
            pk_srcgp = np.fromiter(
                (port_base[m[4]] for m in p_meta),
                dtype=np.int32,
                count=n_packets,
            )
            bucket_cycle = np.asarray(inject_cycles, dtype=np.int64)
            bucket_off = np.zeros(len(buckets) + 1, dtype=np.int64)
            np.cumsum([len(b) for b in buckets], out=bucket_off[1:])
            bucket_pid = np.fromiter(
                itertools.chain.from_iterable(buckets),
                dtype=np.int32,
                count=n_packets,
            )
            n_buckets = len(buckets)
            deadline = inject_cycles[-1] + self.config.max_extra_cycles
        return (
            p_meta,
            n_packets,
            mask_words,
            pk_srcgp,
            bucket_cycle,
            bucket_off,
            bucket_pid,
            n_buckets,
            deadline,
        )

    def _run_c(self, plan, stats: FastNocStats) -> FastNocStats:
        """Hand the cycle loop to the compiled kernel (same semantics)."""
        (
            p_meta,
            n_packets,
            mask_words,
            pk_srcgp,
            bucket_cycle,
            bucket_off,
            bucket_pid,
            n_buckets,
            deadline,
        ) = self._marshal_plan(plan)
        link_counts = np.zeros(len(self._edges), dtype=np.int64)
        peaks = np.zeros(self._n_flat_ports, dtype=np.int32)
        tb = self._ck_tables

        def ptr(a, ctype):
            return a.ctypes.data_as(ctypes.POINTER(ctype))

        common_args = (
            ptr(tb[0], ctypes.c_int32),
            ptr(tb[1], ctypes.c_int32),
            ptr(tb[2], ctypes.c_int32),
            ptr(tb[3], ctypes.c_int32),
            ptr(tb[4], ctypes.c_uint64),
            ptr(tb[5], ctypes.c_int32),
            ptr(tb[6], ctypes.c_int32),
            self.config.buffer_capacity,
            self.config.ejections_per_cycle,
            deadline,
            n_packets,
            ptr(mask_words, ctypes.c_uint64),
            ptr(pk_srcgp, ctypes.c_int32),
            n_buckets,
            ptr(bucket_cycle, ctypes.c_int64),
            ptr(bucket_off, ctypes.c_int64),
            ptr(bucket_pid, ctypes.c_int32),
            ptr(link_counts, ctypes.c_int64),
            ptr(peaks, ctypes.c_int32),
        )
        if self._n <= 63:
            res_p = self._ck.nocsim_run(
                self._n, self._n_flat_ports, *common_args
            )
        else:
            res_p = self._ck.nocsim_run_mw(
                self._n, self._n_words, self._n_flat_ports, *common_args
            )
        if not res_p:
            return self._run(plan, stats)
        try:
            res = res_p.contents
            if res.status != 0:
                return self._run(plan, stats)
            d_len = res.d_len
            if d_len:
                d_meta = np.ctypeslib.as_array(res.d_meta, shape=(d_len,)).copy()
                d_dst = np.ctypeslib.as_array(res.d_dst, shape=(d_len,)).copy()
                d_cycle = np.ctypeslib.as_array(res.d_cycle, shape=(d_len,)).copy()
                d_hops = np.ctypeslib.as_array(res.d_hops, shape=(d_len,)).copy()
            else:
                d_meta = np.empty(0, dtype=np.int32)
                d_dst = np.empty(0, dtype=np.int32)
                d_cycle = np.empty(0, dtype=np.int64)
                d_hops = np.empty(0, dtype=np.int32)
            cycles_run = res.cycles_run
        finally:
            self._ck.nocsim_free(res_p)

        stats.cycles_run = int(cycles_run)
        counts = link_counts.tolist()
        stats.link_loads = {
            edge: count for edge, count in zip(self._edges, counts) if count
        }
        stats.peak_buffer_occupancy = int(peaks.max()) if peaks.size else 0
        stats._attach(
            (d_meta, d_dst, d_cycle, d_hops), p_meta, self._nodes, False
        )
        obs = get_observer()
        if obs.enabled:
            obs.inc(
                "noc.engine_runs", engine="c" if self._n <= 63 else "c-mw"
            )
        return stats

    def _simulate_many_c(
        self, schedules: Sequence[ScheduleLike], n_threads: int
    ) -> Optional[List[NocStats]]:
        """Score the whole batch in one threaded kernel call.

        Returns ``None`` when the kernel reports a failure, making the
        caller fall back to the serial per-schedule path (which has its
        own per-schedule Python fallback).
        """
        results: List[FastNocStats] = []
        live: List[Tuple[FastNocStats, tuple]] = []
        for injections in schedules:
            stats = FastNocStats()
            if isinstance(injections, ColumnarSchedule):
                plan = self._columnar_plan(injections, stats)
            else:
                if hasattr(injections, "injections"):
                    injections = injections.injections
                plan = self._build_pool_schedule(injections, stats)
            if plan is not None:
                live.append((stats, self._marshal_plan(plan)))
            results.append(stats)

        obs = get_observer()
        if live:
            if obs.enabled:
                with obs.span(
                    "noc.simulate_batch",
                    backend="fast",
                    routers=self._n,
                    n_schedules=len(schedules),
                    threads=n_threads,
                ):
                    ok = self._dispatch_batch(live, n_threads)
            else:
                ok = self._dispatch_batch(live, n_threads)
            if not ok:
                return None
        if obs.enabled:
            obs.inc("noc.engine_runs", len(live), engine="c-batch")
            obs.inc("noc.simulations", len(results), backend="fast")
            obs.inc(
                "noc.packets_injected",
                sum(s.n_injected for s in results),
            )
            obs.inc(
                "noc.deliveries",
                sum(s.delivered_count for s in results),
            )
        return results

    def _dispatch_batch(
        self, live: List[Tuple[FastNocStats, tuple]], n_threads: int
    ) -> bool:
        """Concatenate marshalled plans CSR-style, run the batch entry
        point once, and attach each schedule's result slab.  ``False``
        on any kernel failure (caller falls back)."""
        n_live = len(live)
        plans = [m for _, m in live]
        pk_off = np.zeros(n_live + 1, dtype=np.int64)
        np.cumsum([m[1] for m in plans], out=pk_off[1:])
        bk_off = np.zeros(n_live + 1, dtype=np.int64)
        np.cumsum([m[7] for m in plans], out=bk_off[1:])
        pk_mask = np.ascontiguousarray(
            np.concatenate([m[2] for m in plans])
        )
        pk_srcgp = np.ascontiguousarray(
            np.concatenate([m[3] for m in plans])
        )
        bucket_cycle = np.ascontiguousarray(
            np.concatenate([m[4] for m in plans])
        )
        # Schedule s's bucket_off slice (length n_buckets_s + 1, local
        # offsets) lives at bk_off[s] + s in the concatenation — the
        # layout the C batch entry expects.
        bucket_off = np.ascontiguousarray(
            np.concatenate([m[5] for m in plans])
        )
        bucket_pid = np.ascontiguousarray(
            np.concatenate([m[6] for m in plans])
        )
        deadlines = np.asarray([m[8] for m in plans], dtype=np.int64)
        n_edges = len(self._edges)
        link_counts = np.zeros(n_live * n_edges, dtype=np.int64)
        peaks = np.zeros(n_live * self._n_flat_ports, dtype=np.int32)
        tb = self._ck_tables

        def ptr(a, ctype):
            return a.ctypes.data_as(ctypes.POINTER(ctype))

        common_args = (
            ptr(tb[0], ctypes.c_int32),
            ptr(tb[1], ctypes.c_int32),
            ptr(tb[2], ctypes.c_int32),
            ptr(tb[3], ctypes.c_int32),
            ptr(tb[4], ctypes.c_uint64),
            ptr(tb[5], ctypes.c_int32),
            ptr(tb[6], ctypes.c_int32),
            self.config.buffer_capacity,
            self.config.ejections_per_cycle,
            n_edges,
            n_live,
            ptr(pk_off, ctypes.c_int64),
            ptr(pk_mask, ctypes.c_uint64),
            ptr(pk_srcgp, ctypes.c_int32),
            ptr(bk_off, ctypes.c_int64),
            ptr(bucket_cycle, ctypes.c_int64),
            ptr(bucket_off, ctypes.c_int64),
            ptr(bucket_pid, ctypes.c_int32),
            ptr(deadlines, ctypes.c_int64),
            n_threads,
            ptr(link_counts, ctypes.c_int64),
            ptr(peaks, ctypes.c_int32),
        )
        # One ctypes call for the whole batch; ctypes releases the GIL
        # for the duration, so the OpenMP team runs truly in parallel.
        if self._n <= 63:
            res_p = self._ck.nocsim_run_batch(
                self._n, self._n_flat_ports, *common_args
            )
        else:
            res_p = self._ck.nocsim_run_batch_mw(
                self._n, self._n_words, self._n_flat_ports, *common_args
            )
        if not res_p:
            return False
        try:
            extracted = []
            for s in range(n_live):
                res = res_p[s]
                if res.status != 0:
                    return False
                d_len = res.d_len
                if d_len:
                    cols = (
                        np.ctypeslib.as_array(
                            res.d_meta, shape=(d_len,)
                        ).copy(),
                        np.ctypeslib.as_array(
                            res.d_dst, shape=(d_len,)
                        ).copy(),
                        np.ctypeslib.as_array(
                            res.d_cycle, shape=(d_len,)
                        ).copy(),
                        np.ctypeslib.as_array(
                            res.d_hops, shape=(d_len,)
                        ).copy(),
                    )
                else:
                    cols = (
                        np.empty(0, dtype=np.int32),
                        np.empty(0, dtype=np.int32),
                        np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.int32),
                    )
                extracted.append((cols, res.cycles_run))
        finally:
            self._ck.nocsim_free_batch(res_p, n_live)

        for s, (stats, m) in enumerate(live):
            cols, cycles_run = extracted[s]
            stats.cycles_run = int(cycles_run)
            counts = link_counts[s * n_edges:(s + 1) * n_edges].tolist()
            stats.link_loads = {
                edge: count
                for edge, count in zip(self._edges, counts)
                if count
            }
            pk = peaks[
                s * self._n_flat_ports:(s + 1) * self._n_flat_ports
            ]
            stats.peak_buffer_occupancy = int(pk.max()) if pk.size else 0
            stats._attach(cols, m[0], self._nodes, False)
        return True

    def _run(self, plan, stats: FastNocStats) -> FastNocStats:
        obs = get_observer()
        if obs.enabled:
            obs.inc("noc.engine_runs", engine="python")
        if isinstance(plan, _ColumnarPlan):
            plan = self._legacy_plan(plan)
        inject_cycles, buckets, p_meta, p_hops, p_mask = plan
        cfg = self.config
        node_ids = self._nodes
        port_base = self._port_base
        in_slot = self._in_slot
        arb = self._arb
        rot = self._rot
        nports = self._nports
        one_port = self._one_port
        deterministic = self._deterministic
        fwd = self._fwd
        fwd_of = self._fwd_of
        route1 = self._route1
        cand = self._cand
        capacity = cfg.buffer_capacity
        ej_max = cfg.ejections_per_cycle
        bufferlevel = cfg.selection == "bufferlevel"

        # Flat per-port FIFOs of packet ids, occupancy bitmasks, queued
        # counts, and the set of live routers as one bitmask.
        bufs: List[deque] = [deque() for _ in range(self._n_flat_ports)]
        peaks = [0] * self._n_flat_ports
        occ = [0] * self._n
        qcount = [0] * self._n
        busy = 0
        # Sink-only routers (every queued packet waits for this router's
        # decoder) get *parked*: dropped from the per-cycle scan, their
        # pending decoder drain replayed lazily — per event, not per
        # cycle — the moment anything touches them again (a credit
        # check, an arrival, an injection, or the end of the run).
        parked = 0
        since = [0] * self._n  # first un-replayed cycle per parked router
        ns = [0] * self._n     # queued packets with somewhere left to go

        # (pid, dst_idx, cycle, hops) per delivery — hops snapshot taken
        # eagerly because a pool entry reused for whole-packet
        # forwarding keeps counting afterwards.
        delivered: List[Tuple[int, int, int, int]] = []
        link_counts = [0] * len(self._edges)
        # Forwards staged this cycle, landing downstream next cycle
        # (one-cycle link latency): (port, slot bit, router idx, pid).
        staged: List[Tuple[int, int, int, int]] = []

        deadline = inject_cycles[-1] + cfg.max_extra_cycles
        n_buckets = len(inject_cycles)
        pos = 0
        cycle = 0
        parked_used = False

        def replay(i: int, upto: int) -> int:
            """Materialize parked router ``i``'s ejects through ``upto``.

            One head leaves per occupied port per cycle in rotation
            order, at most ``ej_max`` per cycle — exactly what full
            arbitration would have done for a router whose packets can
            only eject.  A single-queue drain needs no rotation at all.
            Returns one past the last cycle that ejected.
            """
            c = since[i]
            since[i] = upto + 1
            if c > upto or not qcount[i]:
                return c
            o = occ[i]
            base_i = port_base[i]
            if not (o & (o - 1)):
                gp = base_i + o.bit_length() - 1
                dq = bufs[gp]
                k = len(dq)
                if upto - c + 1 < k:
                    k = upto - c + 1
                qcount[i] -= k
                for _ in range(k):
                    pid = dq.popleft()
                    delivered.append((pid, i, c, p_hops[pid]))
                    c += 1
                if not dq:
                    occ[i] = 0
                return c
            np_i = nports[i]
            arb_i = arb[i]
            rot_i = rot[i]
            while qcount[i] and c <= upto:
                if arb_i is not None:
                    ports = arb_i[c % np_i][occ[i]]
                else:
                    ports = rot_i[c % np_i]
                ej = 0
                for gp in ports:
                    dq = bufs[gp]
                    if not dq:
                        continue
                    pid = dq.popleft()
                    delivered.append((pid, i, c, p_hops[pid]))
                    qcount[i] -= 1
                    if not dq:
                        occ[i] ^= 1 << (gp - base_i)
                    ej += 1
                    if ej >= ej_max or not qcount[i]:
                        break
                c += 1
            return c

        while cycle <= deadline:
            if pos < n_buckets and inject_cycles[pos] == cycle:
                for pid in buckets[pos]:
                    src = p_meta[pid][4]
                    sbit_r = 1 << src
                    if parked & sbit_r:
                        # Injections enter before arbitration, so the
                        # parked drain runs through the previous cycle.
                        replay(src, cycle - 1)
                        parked ^= sbit_r
                    bufs[port_base[src]].append(pid)
                    qcount[src] += 1
                    occ[src] |= 1
                    ns[src] += 1  # a source is never its own destination
                    busy |= sbit_r
                pos += 1
            if not busy:
                if pos >= n_buckets:
                    break
                # Fast-forward idle gaps between injection bursts (any
                # parked drains are materialized on later contact).
                cycle = inject_cycles[pos]
                continue

            # -- one cycle: arbitrate live routers in ascending order
            # (reproduces the reference's sorted(active) walk: pops by
            # low-index routers free downstream space that higher-index
            # upstream routers may use this same cycle) --
            scan = busy
            while scan:
                low_r = scan & -scan
                i = low_r.bit_length() - 1
                scan ^= low_r
                if deterministic and not ns[i]:
                    # Sink-only: nothing but ejections left here.
                    parked |= low_r
                    since[i] = cycle
                    busy ^= low_r
                    parked_used = True
                    continue
                o = occ[i]
                base_i = port_base[i]
                if not (o & (o - 1)):
                    # Single occupied port: rotation is irrelevant.
                    ports = one_port[base_i + o.bit_length() - 1]
                else:
                    arb_i = arb[i]
                    if arb_i is not None:
                        ports = arb_i[cycle % nports[i]][o]
                    else:
                        ports = rot[i][cycle % nports[i]]
                ibit = 1 << i
                route1_i = route1[i] if deterministic else None
                outputs_used = 0
                ejections = 0
                for gp in ports:
                    dq = bufs[gp]
                    if not dq:
                        continue
                    pid = dq[0]
                    mask = p_mask[pid]

                    if deterministic and not (mask & (mask - 1)):
                        # Single destination: either this router (pure
                        # sink — ejection is all it can do) or one
                        # precomputed output hop.
                        if mask == ibit:
                            if ejections < ej_max:
                                ejections += 1
                                delivered.append(
                                    (pid, i, cycle, p_hops[pid])
                                )
                                dq.popleft()
                                qcount[i] -= 1
                                if not dq:
                                    occ[i] ^= 1 << (gp - base_i)
                                    if not qcount[i]:
                                        busy ^= low_r
                            continue
                        nb, gp2, sbit, eidx, home = route1_i[
                            mask.bit_length() - 1
                        ]
                        if (outputs_used >> nb) & 1:
                            continue
                        if (parked >> nb) & 1:
                            # The downstream decoder has been draining
                            # unobserved; materialize before the credit
                            # check (its pops this cycle are visible
                            # only if it arbitrates before this router).
                            replay(nb, cycle if nb < i else cycle - 1)
                        if len(bufs[gp2]) >= capacity:
                            continue  # backpressure: downstream full
                        p_hops[pid] += 1
                        staged.append((gp2, sbit, nb, pid))
                        outputs_used |= 1 << nb
                        link_counts[eidx] += 1
                        ns[i] -= 1
                        dq.popleft()
                        qcount[i] -= 1
                        if not dq:
                            occ[i] ^= 1 << (gp - base_i)
                            if not qcount[i]:
                                busy ^= low_r
                        continue

                    if mask == ibit:
                        # Pure sink head under adaptive routing.
                        if ejections < ej_max:
                            ejections += 1
                            delivered.append((pid, i, cycle, p_hops[pid]))
                            dq.popleft()
                            qcount[i] -= 1
                            if not dq:
                                occ[i] ^= 1 << (gp - base_i)
                                if not qcount[i]:
                                    busy ^= low_r
                        continue

                    progressed = 0
                    # Eject group: decoder bandwidth is shared across
                    # this router's input ports.  A head packet has at
                    # most one eject group, and its output groups go to
                    # distinct ports, so group order within one packet
                    # cannot change the outcome.
                    if mask & ibit and ejections < ej_max:
                        ejections += 1
                        delivered.append((pid, i, cycle, p_hops[pid]))
                        progressed = ibit

                    if deterministic:
                        moved_whole = False
                        for om, nb, gp2, sbit, eidx in fwd[i]:
                            g = mask & om
                            if not g:
                                continue
                            if (outputs_used >> nb) & 1:
                                continue
                            if (parked >> nb) & 1:
                                replay(nb, cycle if nb < i else cycle - 1)
                            if len(bufs[gp2]) >= capacity:
                                continue  # backpressure: downstream full
                            # At most one packet per link per cycle (the
                            # output-port exclusivity above), so no
                            # staged-arrival credit adjustment is needed.
                            if g == mask:
                                # Whole packet moves: reuse the entry.
                                p_hops[pid] += 1
                                npid = pid
                                moved_whole = True
                            else:
                                npid = len(p_hops)
                                p_meta.append(p_meta[pid])
                                p_hops.append(p_hops[pid] + 1)
                                p_mask.append(g)
                            staged.append((gp2, sbit, nb, npid))
                            outputs_used |= 1 << nb
                            link_counts[eidx] += 1
                            progressed |= g
                        if moved_whole:
                            ns[i] -= 1
                            dq.popleft()
                            qcount[i] -= 1
                            if not dq:
                                occ[i] ^= 1 << (gp - base_i)
                                if not qcount[i]:
                                    busy ^= low_r
                        elif progressed:
                            remaining = mask & ~progressed
                            if remaining:
                                p_mask[pid] = remaining
                                if remaining == ibit:
                                    ns[i] -= 1  # only ejection left
                            else:
                                ns[i] -= 1
                                dq.popleft()
                                qcount[i] -= 1
                                if not dq:
                                    occ[i] ^= 1 << (gp - base_i)
                                    if not qcount[i]:
                                        busy ^= low_r
                        continue

                    # Adaptive routing: resolve each destination's port
                    # with the reference's tie-breaking (least-occupied
                    # downstream buffer, lowest index), scanning
                    # destinations in ascending order.  (Parking is
                    # deterministic-only, so buffer lengths read here
                    # are always live.)
                    groups: Dict[int, int] = {}
                    m = mask & ~ibit
                    while m:
                        low = m & -m
                        d = low.bit_length() - 1
                        m ^= low
                        options = cand[i][d]
                        if len(options) == 1 or not bufferlevel:
                            key = options[0]
                        else:
                            key = min(
                                options,
                                key=lambda x: (
                                    len(bufs[port_base[x] + in_slot[x][i]]),
                                    x,
                                ),
                            )
                        groups[key] = groups.get(key, 0) | low
                    moved_whole = False
                    for nb, g in groups.items():
                        if (outputs_used >> nb) & 1:
                            continue
                        _, _, gp2, sbit, eidx = fwd_of[i][nb]
                        if len(bufs[gp2]) >= capacity:
                            continue
                        if g == mask:
                            p_hops[pid] += 1
                            npid = pid
                            moved_whole = True
                        else:
                            npid = len(p_hops)
                            p_meta.append(p_meta[pid])
                            p_hops.append(p_hops[pid] + 1)
                            p_mask.append(g)
                        staged.append((gp2, sbit, nb, npid))
                        outputs_used |= 1 << nb
                        link_counts[eidx] += 1
                        progressed |= g
                    if moved_whole:
                        ns[i] -= 1
                        dq.popleft()
                        qcount[i] -= 1
                        if not dq:
                            occ[i] ^= 1 << (gp - base_i)
                            if not qcount[i]:
                                busy ^= low_r
                    elif progressed:
                        remaining = mask & ~progressed
                        if remaining:
                            p_mask[pid] = remaining
                            if remaining == ibit:
                                ns[i] -= 1
                        else:
                            ns[i] -= 1
                            dq.popleft()
                            qcount[i] -= 1
                            if not dq:
                                occ[i] ^= 1 << (gp - base_i)
                                if not qcount[i]:
                                    busy ^= low_r

            if staged:
                for gp, sbit, nb, npid in staged:
                    home = p_mask[npid] == 1 << nb
                    if (parked >> nb) & 1:
                        # Arrivals land after every router arbitrated,
                        # so the parked drain runs through this cycle.
                        replay(nb, cycle)
                        if not home:
                            parked ^= 1 << nb
                            busy |= 1 << nb
                    else:
                        busy |= 1 << nb
                    if not home:
                        ns[nb] += 1
                    dq = bufs[gp]
                    dq.append(npid)
                    if len(dq) > peaks[gp]:
                        peaks[gp] = len(dq)
                    occ[nb] |= sbit
                    qcount[nb] += 1
                staged.clear()
            cycle += 1

        # Materialize whatever parked drains never got touched again.
        last = cycle
        pk = parked
        while pk:
            low_r = pk & -pk
            i = low_r.bit_length() - 1
            pk ^= low_r
            e = replay(i, deadline)
            if qcount[i]:
                last = deadline + 1
            elif e > last:
                last = e

        stats.cycles_run = last
        stats.link_loads = {
            edge: count
            for edge, count in zip(self._edges, link_counts)
            if count
        }
        # Peak over bounded (link) buffers only; staged arrivals only
        # ever land on link ports, so local-queue peaks stay zero.
        stats.peak_buffer_occupancy = max(peaks, default=0)
        stats._attach(delivered, p_meta, node_ids, parked_used)
        return stats


def build_interconnect(
    topology: Topology,
    routing: Optional[RoutingTable] = None,
    config: Optional[NocConfig] = None,
):
    """Instantiate the simulation backend selected by ``config.backend``.

    Returns the reference :class:`~repro.noc.interconnect.Interconnect`
    oracle for ``backend="reference"`` (the default) and
    :class:`FastInterconnect` for ``backend="fast"``.  Both expose the
    same ``simulate`` surface and produce the same :class:`NocStats`.
    """
    cfg = config if config is not None else NocConfig()
    if cfg.backend == "fast":
        return FastInterconnect(topology, routing, cfg)
    return Interconnect(topology, routing, cfg)


def simulate_many(
    topology: Topology,
    schedules: Sequence[ScheduleLike],
    routing: Optional[RoutingTable] = None,
    config: Optional[NocConfig] = None,
    threads: Optional[int] = None,
) -> List[NocStats]:
    """Score many injection schedules over one network in a single call.

    Convenience wrapper that always uses the fast backend (that is the
    point of batching); the routing tables are built once and shared
    across all schedules.  ``threads`` caps the threaded batch kernel
    (``None`` defers to ``REPRO_NOC_THREADS``).
    """
    cfg = config if config is not None else NocConfig()
    if cfg.backend != "fast":
        cfg = dataclasses.replace(cfg, backend="fast")
    return FastInterconnect(topology, routing, cfg).simulate_many(
        schedules, threads=threads
    )
