"""Bounded FIFO channel buffers.

Each router input port owns one :class:`ChannelBuffer`.  Link buffers are
bounded (Noxim's ``buffer_size`` parameter); injection queues are unbounded
because the encoder side of a crossbar can always hold spikes awaiting
network admission (Noxim models the source queue the same way).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional

from repro.noc.packet import SpikePacket


class ChannelBuffer:
    """FIFO of packets with optional capacity.

    ``capacity=None`` means unbounded (injection queues).  ``peak`` tracks
    the high-water mark for congestion reporting.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: Deque[SpikePacket] = deque()
        self.peak = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def has_space(self, extra: int = 0) -> bool:
        """Whether one more packet fits, given ``extra`` already-staged arrivals."""
        if self.capacity is None:
            return True
        return len(self._items) + extra < self.capacity

    def push(self, packet: SpikePacket) -> None:
        if not self.has_space():
            raise OverflowError("push to a full channel buffer")
        self._items.append(packet)
        self.peak = max(self.peak, len(self._items))

    def head(self) -> SpikePacket:
        return self._items[0]

    def pop(self) -> SpikePacket:
        return self._items.popleft()

    def replace_head(self, replacements: Iterable[SpikePacket]) -> None:
        """Swap the head packet for one or more packets (multicast fork).

        The replacements keep the head position in order, so forking does
        not reorder traffic behind the forked packet.  Forking may
        transiently exceed capacity; this mirrors a fork inside the router
        crossbar rather than in the channel, so it does not consume
        downstream credit.
        """
        self._items.popleft()
        for pkt in reversed(list(replacements)):
            self._items.appendleft(pkt)
        self.peak = max(self.peak, len(self._items))
