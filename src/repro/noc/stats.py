"""Delivery records and aggregate interconnect statistics.

The simulator produces one :class:`DeliveryRecord` per (packet, destination
router) delivery.  Everything the paper reports about the interconnect —
latency (cycles), throughput (AER/ms), energy (via the hardware energy
model), spike disorder and ISI distortion — is derived from these records,
so the metrics layer never needs to re-run the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class DeliveryRecord:
    """One spike delivered to one destination router."""

    uid: int
    src_neuron: int
    src_node: int
    dst_node: int
    injected_cycle: int
    delivered_cycle: int
    hops: int


@dataclass
class NocStats:
    """Aggregate outcome of one interconnect simulation.

    Attributes
    ----------
    deliveries:
        All per-destination delivery records.
    n_injected:
        Unique spike events offered to the network.
    n_expected_deliveries:
        Total (packet, destination) pairs that should be delivered.
    cycles_run:
        Cycles simulated until the network drained (or the safety cap hit).
    link_loads:
        Packet traversals per directed link ``(u, v)``.
    peak_buffer_occupancy:
        High-water mark over all bounded channel buffers.
    """

    deliveries: List[DeliveryRecord] = field(default_factory=list)
    n_injected: int = 0
    n_expected_deliveries: int = 0
    cycles_run: int = 0
    link_loads: Dict[Tuple[int, int], int] = field(default_factory=dict)
    peak_buffer_occupancy: int = 0

    # -- bookkeeping used by the simulator ---------------------------------

    def record(self, rec: DeliveryRecord) -> None:
        self.deliveries.append(rec)

    def count_link(self, u: int, v: int) -> None:
        self.link_loads[(u, v)] = self.link_loads.get((u, v), 0) + 1

    # -- derived quantities -------------------------------------------------

    @property
    def delivered_count(self) -> int:
        return len(self.deliveries)

    @property
    def undelivered_count(self) -> int:
        return self.n_expected_deliveries - self.delivered_count

    def latencies(self) -> np.ndarray:
        """Per-delivery latency in cycles (decoder receive - encoder send)."""
        return np.asarray(
            [r.delivered_cycle - r.injected_cycle for r in self.deliveries],
            dtype=np.int64,
        )

    def delivery_endpoints(self):
        """Yield ``(src_node, dst_node, latency)`` per delivery.

        The chip-breakdown path classifies deliveries by their
        endpoints' owning chips; this accessor exists so the fast
        backend can answer from its lazy columns without materializing
        :class:`DeliveryRecord` objects.  Iteration order is
        unspecified (consumers aggregate).
        """
        for r in self.deliveries:
            yield (
                r.src_node,
                r.dst_node,
                r.delivered_cycle - r.injected_cycle,
            )

    def max_latency(self) -> int:
        """Worst-case spike latency on the interconnect (paper Table II row)."""
        lat = self.latencies()
        return int(lat.max()) if lat.size else 0

    def mean_latency(self) -> float:
        lat = self.latencies()
        return float(lat.mean()) if lat.size else 0.0

    def total_hops(self) -> int:
        """Total link traversals — the energy-proportional event count."""
        return int(sum(self.link_loads.values()))

    def throughput_packets_per_cycle(self) -> float:
        if self.cycles_run == 0:
            return 0.0
        return self.delivered_count / self.cycles_run

    def throughput_aer_per_ms(self, cycles_per_ms: float) -> float:
        """AER packets delivered per millisecond (paper Table II row)."""
        if self.cycles_run == 0:
            return 0.0
        duration_ms = self.cycles_run / cycles_per_ms
        return self.delivered_count / duration_ms

    def hottest_links(self, top: int = 5) -> List[Tuple[Tuple[int, int], int]]:
        """The ``top`` most-loaded directed links, for congestion reports."""
        return sorted(self.link_loads.items(), key=lambda kv: -kv[1])[:top]

    def records_by_destination(self) -> Dict[int, List[DeliveryRecord]]:
        """Deliveries grouped by destination router, each in delivery order."""
        grouped: Dict[int, List[DeliveryRecord]] = {}
        for rec in self.deliveries:
            grouped.setdefault(rec.dst_node, []).append(rec)
        for recs in grouped.values():
            recs.sort(key=lambda r: (r.delivered_cycle, r.uid))
        return grouped

    def records_by_flow(self) -> Dict[Tuple[int, int], List[DeliveryRecord]]:
        """Deliveries grouped by (source neuron, destination router) flow."""
        grouped: Dict[Tuple[int, int], List[DeliveryRecord]] = {}
        for rec in self.deliveries:
            grouped.setdefault((rec.src_neuron, rec.dst_node), []).append(rec)
        for recs in grouped.values():
            recs.sort(key=lambda r: (r.delivered_cycle, r.uid))
        return grouped

    def describe(self) -> str:
        return (
            f"NocStats: {self.delivered_count}/{self.n_expected_deliveries} "
            f"deliveries over {self.cycles_run} cycles, "
            f"max latency {self.max_latency()} cy, "
            f"mean latency {self.mean_latency():.1f} cy, "
            f"{self.total_hops()} link hops"
        )
