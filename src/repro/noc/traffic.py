"""Convert a mapped spike graph into an AER injection schedule.

Given the neuron→crossbar assignment chosen by a partitioner, every spike
of every neuron that has at least one *global* synapse (a post-synaptic
target on a different crossbar) becomes one AER packet, injected at the
crossbar hosting the neuron and destined for the set of crossbars hosting
its remote targets.  Spike times (ms, from the SNN simulation) are mapped
to interconnect cycles through ``cycles_per_ms`` — the ratio between the
NoC clock and biological real time.

The schedule representation is *columnar*: :class:`ColumnarSchedule`
holds one flat array per packet field (injection cycle, source router,
source neuron, uid) plus a ``(n_packets, n_words)`` uint64 matrix of
destination-router bitmasks over the topology's dense router indices
(``sorted(graph.nodes)`` order — the same renumbering the fast backend
uses, so :class:`~repro.noc.fastsim.FastInterconnect` consumes the
arrays without any per-packet conversion).  The legacy ``Injection``
list stays available as a lazily materialized view
(:attr:`ColumnarSchedule.injections`) for the reference backend and for
any consumer that wants objects.

:func:`build_injections_batch` builds a whole swarm's schedules in one
pass: the spike-event columns (times → cycles) and the deduplicated
synapse endpoint pairs are computed once, and only the per-particle
destination sets are re-derived (one ``np.unique`` over encoded
``(src, dst_cluster)`` pairs per particle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.noc.packet import Injection
from repro.noc.topology import Topology
from repro.obs import get_observer
from repro.snn.graph import SpikeGraph
from repro.utils.validation import check_positive

#: Bits per destination-mask word.
WORD_BITS = 64


def unpack_destination_bits(words: np.ndarray):
    """Set-bit coordinates of a ``(n, n_words)`` uint64 mask matrix.

    Returns ``(rows, cols)`` in row-major order, so each row's columns
    come out ascending — ascending dense router index.  The ``"<u8"``
    view is a no-op on little-endian hosts and a byte-swapped copy on
    big-endian ones, keeping unpacked bit ``k`` equal to dense index
    ``k`` on any platform.  Shared by the legacy-view materializer and
    the fast backend's unicast split so the mapping lives in one place.
    """
    bits = np.unpackbits(
        words.astype("<u8", copy=False).view(np.uint8),
        axis=1,
        bitorder="little",
    )
    return np.nonzero(bits)


@dataclass
class InjectionSchedule:
    """A ready-to-simulate packet schedule plus its provenance.

    The legacy row-oriented container (one :class:`Injection` object per
    packet); synthetic traffic generators still produce it directly.
    Graph-derived schedules are built columnar — see
    :class:`ColumnarSchedule`, which exposes the same surface.
    """

    injections: List[Injection]
    cycles_per_ms: float
    n_source_neurons: int
    n_spike_events: int
    _duration: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n_packets(self) -> int:
        return len(self.injections)

    def duration_cycles(self) -> int:
        """One past the last injection cycle (cached after first call)."""
        if self._duration is None:
            if not self.injections:
                self._duration = 0
            else:
                cycles = np.fromiter(
                    (i.cycle for i in self.injections),
                    dtype=np.int64,
                    count=len(self.injections),
                )
                self._duration = int(cycles.max()) + 1
        return self._duration


@dataclass(eq=False)
class ColumnarSchedule:
    """Columnar AER injection schedule (struct-of-arrays).

    Attributes
    ----------
    cycle:
        int64 ``(n_packets,)`` injection cycles, sorted ascending.
    src_node:
        int64 ``(n_packets,)`` source router node ids.
    src_neuron:
        int64 ``(n_packets,)`` AER source addresses.
    uid:
        int64 ``(n_packets,)`` unique packet ids (ascending within one
        injection cycle — the reference sort order).
    dst_words:
        uint64 ``(n_packets, n_words)`` destination bitmasks.  Bit ``d``
        of the concatenated words marks dense router index ``d``, where
        dense indices follow ``node_ids`` (sorted router ids — the fast
        backend's renumbering).  Builders never set the source router's
        own bit.
    node_ids:
        int64 ``(n_routers,)`` sorted router ids giving each mask bit
        its meaning.
    cycles_per_ms, n_source_neurons, n_spike_events:
        Provenance, as on :class:`InjectionSchedule`.
    """

    cycle: np.ndarray
    src_node: np.ndarray
    src_neuron: np.ndarray
    uid: np.ndarray
    dst_words: np.ndarray
    node_ids: np.ndarray
    cycles_per_ms: float
    n_source_neurons: int
    n_spike_events: int

    def __post_init__(self) -> None:
        self._injections: Optional[List[Injection]] = None
        self._duration: Optional[int] = None

    def __eq__(self, other) -> bool:
        # The dataclass-generated __eq__ would compare ndarrays with
        # `==` and raise; compare column contents instead (caches and
        # everything derived from the columns are excluded).
        if not isinstance(other, ColumnarSchedule):
            return NotImplemented
        return (
            self.cycles_per_ms == other.cycles_per_ms
            and self.n_source_neurons == other.n_source_neurons
            and self.n_spike_events == other.n_spike_events
            and np.array_equal(self.cycle, other.cycle)
            and np.array_equal(self.src_node, other.src_node)
            and np.array_equal(self.src_neuron, other.src_neuron)
            and np.array_equal(self.uid, other.uid)
            and np.array_equal(self.dst_words, other.dst_words)
            and np.array_equal(self.node_ids, other.node_ids)
        )

    def __getstate__(self):
        # Never ship the materialized legacy view (or the duration
        # cache) across process boundaries: workers consume the arrays,
        # and the whole point of columnar shards is not pickling
        # per-packet Injection objects.
        state = self.__dict__.copy()
        state["_injections"] = None
        state["_duration"] = None
        return state

    @property
    def n_packets(self) -> int:
        return int(self.cycle.shape[0])

    @property
    def n_words(self) -> int:
        return int(self.dst_words.shape[1])

    def duration_cycles(self) -> int:
        """One past the last injection cycle — O(1): the column is sorted."""
        if self._duration is None:
            self._duration = int(self.cycle[-1]) + 1 if self.cycle.size else 0
        return self._duration

    def destination_counts(self) -> np.ndarray:
        """Destinations per packet (mask popcounts), int64 ``(n_packets,)``."""
        if self.n_packets == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bitwise_count(self.dst_words).sum(axis=1).astype(np.int64)

    @property
    def injections(self) -> List[Injection]:
        """Legacy row view: one :class:`Injection` per packet (lazy).

        Destination tuples come out in ascending node-id order, exactly
        as the legacy builder produced them; the list is materialized
        once and cached.
        """
        if self._injections is None:
            self._injections = self._materialize()
        return self._injections

    def _materialize(self) -> List[Injection]:
        n = self.n_packets
        if n == 0:
            return []
        rows, cols = unpack_destination_bits(self.dst_words)
        dst_ids = self.node_ids[cols].tolist()
        offs = np.concatenate(([0], np.cumsum(np.bincount(rows, minlength=n)))).tolist()
        cyc = self.cycle.tolist()
        src = self.src_node.tolist()
        neu = self.src_neuron.tolist()
        uid = self.uid.tolist()
        return [
            Injection(
                cycle=cyc[i],
                src_node=src[i],
                dst_nodes=tuple(dst_ids[offs[i] : offs[i + 1]]),
                src_neuron=neu[i],
                uid=uid[i],
            )
            for i in range(n)
        ]


def dense_node_ids(topology: Topology) -> np.ndarray:
    """Sorted router ids of ``topology`` — the mask-bit order (cached)."""
    cached = getattr(topology, "_dense_node_ids", None)
    if cached is None:
        cached = np.asarray(sorted(topology.graph.nodes), dtype=np.int64)
        cached.flags.writeable = False
        topology._dense_node_ids = cached
    return cached


def global_destinations(
    graph: SpikeGraph, assignment: np.ndarray
) -> Dict[int, Set[int]]:
    """Remote crossbars each neuron must reach: ``neuron -> {crossbar}``.

    Only neurons with at least one inter-crossbar synapse appear.
    Self-loops and local synapses contribute nothing.  Computed with one
    ``np.unique`` over encoded ``(src, dst_cluster)`` pairs rather than
    a per-synapse Python loop.
    """
    if assignment.shape[0] != graph.n_neurons:
        raise ValueError(
            f"assignment covers {assignment.shape[0]} neurons, graph has "
            f"{graph.n_neurons}"
        )
    src_cluster = assignment[graph.src]
    dst_cluster = assignment[graph.dst]
    remote = src_cluster != dst_cluster
    if not remote.any():
        return {}
    if int(dst_cluster[remote].min()) < 0:
        # Negative ids would corrupt the (neuron, cluster) key encoding
        # below; every downstream consumer rejects them anyway.
        raise ValueError(
            "assignment contains negative cluster id "
            f"{int(dst_cluster[remote].min())}"
        )
    stride = int(dst_cluster[remote].max()) + 1
    keys = np.unique(graph.src[remote] * stride + dst_cluster[remote])
    neurons = keys // stride
    clusters = keys % stride
    bounds = np.flatnonzero(np.diff(neurons)) + 1
    starts = np.concatenate(([0], bounds))
    return {
        int(neurons[s]): set(group.tolist())
        for s, group in zip(starts, np.split(clusters, bounds))
    }


def _empty_columnar(
    node_ids: np.ndarray, n_words: int, cycles_per_ms: float
) -> ColumnarSchedule:
    return ColumnarSchedule(
        cycle=np.empty(0, dtype=np.int64),
        src_node=np.empty(0, dtype=np.int64),
        src_neuron=np.empty(0, dtype=np.int64),
        uid=np.empty(0, dtype=np.int64),
        dst_words=np.empty((0, n_words), dtype=np.uint64),
        node_ids=node_ids,
        cycles_per_ms=cycles_per_ms,
        n_source_neurons=0,
        n_spike_events=0,
    )


class _SpikeColumns:
    """Per-graph spike events flattened once for a whole batch.

    ``counts[n]`` / ``offsets[n]`` index neuron ``n``'s run inside the
    concatenated ``cycles`` column (spike times already converted to
    interconnect cycles, so particles share the conversion too).
    """

    def __init__(self, graph: SpikeGraph, cycles_per_ms: float) -> None:
        self.counts = graph.spike_counts()
        self.offsets = np.cumsum(self.counts) - self.counts
        if int(self.counts.sum()):
            times = np.concatenate(graph.spike_times)
        else:
            times = np.empty(0, dtype=np.float64)
        # int(round(t * cpm)) of the legacy builder: IEEE round-half-even.
        self.cycles = np.rint(times * cycles_per_ms).astype(np.int64)

    def gather(self, neurons: np.ndarray):
        """Spike cycles of ``neurons`` (sorted), run-expanded.

        Returns ``(per_neuron_counts, packet_cycles)`` where the cycles
        come out grouped by neuron in the given order, each neuron's
        spikes in stored (time) order — the legacy packet order before
        the stable cycle sort.
        """
        cnts = self.counts[neurons]
        total = int(cnts.sum())
        if total == 0:
            return cnts, np.empty(0, dtype=np.int64)
        run_starts = np.cumsum(cnts) - cnts
        idx = (
            np.arange(total, dtype=np.int64)
            - np.repeat(run_starts, cnts)
            + np.repeat(self.offsets[neurons], cnts)
        )
        cycles = self.cycles[idx]
        if int(cycles.min()) < 0:
            # The legacy builder raised through Injection.__post_init__;
            # keep failing at build time (and only for neurons that
            # actually emit packets, matching its laziness).
            raise ValueError(
                f"negative injection cycle {int(cycles.min())} (negative "
                "spike time in graph)"
            )
        return cnts, cycles


def build_injections_batch(
    graph: SpikeGraph,
    assignments: np.ndarray,
    topology: Topology,
    cycles_per_ms: float = 10.0,
) -> List[ColumnarSchedule]:
    """Build one :class:`ColumnarSchedule` per assignment row.

    The swarm-scoring hot path: spike events (times → cycles) and the
    deduplicated synapse endpoint pairs are computed once for the whole
    batch; each particle only re-derives its destination sets — one
    ``np.unique`` over encoded ``(src, dst_cluster)`` pairs — and
    gathers the shared spike columns.
    """
    check_positive("cycles_per_ms", cycles_per_ms)
    obs = get_observer()
    if not obs.enabled:
        return _build_injections_batch_impl(
            graph, assignments, topology, cycles_per_ms
        )
    with obs.span(
        "traffic.build_injections_batch", graph=graph.name
    ) as span:
        out = _build_injections_batch_impl(
            graph, assignments, topology, cycles_per_ms
        )
        span.set(
            n_schedules=len(out),
            n_packets=sum(s.n_packets for s in out),
        )
    obs.inc("traffic.build_calls")
    obs.inc("traffic.schedules_built", len(out))
    obs.inc("traffic.packets_built", sum(s.n_packets for s in out))
    return out


def _build_injections_batch_impl(
    graph: SpikeGraph,
    assignments: np.ndarray,
    topology: Topology,
    cycles_per_ms: float,
) -> List[ColumnarSchedule]:
    a = np.asarray(assignments, dtype=np.int64)
    if a.ndim == 1:
        a = a[None, :]
    if a.shape[1] != graph.n_neurons:
        raise ValueError(
            f"assignments cover {a.shape[1]} neurons, graph has "
            f"{graph.n_neurons}"
        )
    if a.size and int(a.min()) < 0:
        # Fancy indexing would silently wrap negatives to the last
        # crossbars; the row-oriented builder raised on them.
        raise ValueError(f"assignments contain negative cluster id {int(a.min())}")
    node_ids = dense_node_ids(topology)
    n_words = max(1, -(-int(node_ids.shape[0]) // WORD_BITS))
    attach = np.asarray(topology.attach_points, dtype=np.int64)
    attach_didx = np.searchsorted(node_ids, attach)

    if graph.n_synapses:
        pair_keys = np.unique(graph.src * graph.n_neurons + graph.dst)
        u_src = pair_keys // graph.n_neurons
        u_dst = pair_keys % graph.n_neurons
    else:
        u_src = u_dst = np.empty(0, dtype=np.int64)
    spikes = _SpikeColumns(graph, cycles_per_ms)

    out: List[ColumnarSchedule] = []
    for row in a:
        src_c = row[u_src]
        dst_c = row[u_dst]
        remote = src_c != dst_c
        if not remote.any():
            out.append(_empty_columnar(node_ids, n_words, cycles_per_ms))
            continue
        # ``u_src`` is sorted (major key of the synapse-pair dedup), so
        # its remote subset is grouped by neuron already: boundary flags
        # replace a per-particle ``np.unique``, and duplicate
        # destinations collapse through the idempotent OR below.
        rsrc = u_src[remote]
        didx = attach_didx[dst_c[remote]]
        new_group = np.empty(rsrc.shape[0], dtype=bool)
        new_group[0] = True
        np.not_equal(rsrc[1:], rsrc[:-1], out=new_group[1:])
        neurons = rsrc[new_group]

        words = np.zeros((neurons.shape[0], n_words), dtype=np.uint64)
        np.bitwise_or.at(
            words,
            (np.cumsum(new_group) - 1, didx >> 6),
            np.left_shift(np.uint64(1), (didx & 63).astype(np.uint64)),
        )

        cnts, pk_cycle = spikes.gather(neurons)
        n_packets = int(pk_cycle.shape[0])
        if n_packets == 0:
            schedule = _empty_columnar(node_ids, n_words, cycles_per_ms)
            schedule.n_source_neurons = int(neurons.shape[0])
            out.append(schedule)
            continue
        order = np.argsort(pk_cycle, kind="stable")
        out.append(
            ColumnarSchedule(
                cycle=pk_cycle[order],
                src_node=np.repeat(attach[row[neurons]], cnts)[order],
                src_neuron=np.repeat(neurons, cnts)[order],
                uid=order.astype(np.int64),
                dst_words=np.repeat(words, cnts, axis=0)[order],
                node_ids=node_ids,
                cycles_per_ms=cycles_per_ms,
                n_source_neurons=int(neurons.shape[0]),
                n_spike_events=n_packets,
            )
        )
    return out


def build_injections(
    graph: SpikeGraph,
    assignment: np.ndarray,
    topology: Topology,
    cycles_per_ms: float = 10.0,
) -> ColumnarSchedule:
    """Build the AER injection schedule for a mapped spike graph.

    Each spike of a neuron with remote targets becomes one multicast
    injection (the interconnect config decides whether it travels as one
    forked packet or per-destination unicast copies).  Returns the
    columnar representation; ``.injections`` materializes the legacy
    :class:`Injection` list on demand.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    return build_injections_batch(
        graph, assignment[None, :], topology, cycles_per_ms=cycles_per_ms
    )[0]


def build_injections_reference(
    graph: SpikeGraph,
    assignment: np.ndarray,
    topology: Topology,
    cycles_per_ms: float = 10.0,
) -> InjectionSchedule:
    """Row-oriented reference builder (one ``Injection`` object at a time).

    The original pure-Python implementation, kept as the oracle for the
    columnar-vs-legacy equivalence tests and as the baseline the batched
    builder is benchmarked against.
    """
    check_positive("cycles_per_ms", cycles_per_ms)
    assignment = np.asarray(assignment, dtype=np.int64)
    dests = global_destinations(graph, assignment)

    injections: List[Injection] = []
    uid = 0
    n_events = 0
    for neuron in sorted(dests):
        crossbars = dests[neuron]
        src_node = topology.node_of_crossbar(int(assignment[neuron]))
        dst_nodes = tuple(sorted(topology.node_of_crossbar(c) for c in crossbars))
        for t_ms in graph.spike_times[neuron]:
            injections.append(
                Injection(
                    cycle=int(round(t_ms * cycles_per_ms)),
                    src_node=src_node,
                    dst_nodes=dst_nodes,
                    src_neuron=neuron,
                    uid=uid,
                )
            )
            uid += 1
            n_events += 1
    injections.sort(key=lambda i: (i.cycle, i.uid))
    return InjectionSchedule(
        injections=injections,
        cycles_per_ms=cycles_per_ms,
        n_source_neurons=len(dests),
        n_spike_events=n_events,
    )


def synthetic_injections(
    rates_per_node: Sequence[float],
    topology: Topology,
    duration_cycles: int,
    fanout: int = 1,
    seed=None,
) -> InjectionSchedule:
    """Uniform-random synthetic traffic for stress-testing the NoC itself.

    Each attach point injects Bernoulli(rate) packets per cycle toward
    ``fanout`` uniformly chosen other attach points.  Used by NoC unit
    tests and the multicast ablation bench, not by the paper pipeline.
    """
    from repro.utils.rng import default_rng

    check_positive("duration_cycles", duration_cycles)
    rng = default_rng(seed)
    nodes = [topology.node_of_crossbar(k) for k in range(topology.n_attach_points)]
    if len(rates_per_node) != len(nodes):
        raise ValueError(
            f"need one rate per attach point ({len(nodes)}), got "
            f"{len(rates_per_node)}"
        )
    injections: List[Injection] = []
    uid = 0
    for cycle in range(duration_cycles):
        for k, rate in enumerate(rates_per_node):
            if rng.random() >= rate:
                continue
            others = [n for n in nodes if n != nodes[k]]
            if not others:
                continue
            chosen = rng.choice(
                len(others), size=min(fanout, len(others)), replace=False
            )
            injections.append(
                Injection(
                    cycle=cycle,
                    src_node=nodes[k],
                    dst_nodes=tuple(sorted(others[i] for i in chosen)),
                    src_neuron=k,
                    uid=uid,
                )
            )
            uid += 1
    return InjectionSchedule(
        injections=injections,
        cycles_per_ms=1.0,
        n_source_neurons=len(nodes),
        n_spike_events=len(injections),
    )
