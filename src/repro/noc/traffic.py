"""Convert a mapped spike graph into an AER injection schedule.

Given the neuron→crossbar assignment chosen by a partitioner, every spike
of every neuron that has at least one *global* synapse (a post-synaptic
target on a different crossbar) becomes one AER packet, injected at the
crossbar hosting the neuron and destined for the set of crossbars hosting
its remote targets.  Spike times (ms, from the SNN simulation) are mapped
to interconnect cycles through ``cycles_per_ms`` — the ratio between the
NoC clock and biological real time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.noc.packet import Injection
from repro.noc.topology import Topology
from repro.snn.graph import SpikeGraph
from repro.utils.validation import check_positive


@dataclass
class InjectionSchedule:
    """A ready-to-simulate packet schedule plus its provenance."""

    injections: List[Injection]
    cycles_per_ms: float
    n_source_neurons: int
    n_spike_events: int

    @property
    def n_packets(self) -> int:
        return len(self.injections)

    def duration_cycles(self) -> int:
        if not self.injections:
            return 0
        return max(i.cycle for i in self.injections) + 1


def global_destinations(
    graph: SpikeGraph, assignment: np.ndarray
) -> Dict[int, Set[int]]:
    """Remote crossbars each neuron must reach: ``neuron -> {crossbar}``.

    Only neurons with at least one inter-crossbar synapse appear.
    Self-loops and local synapses contribute nothing.
    """
    if assignment.shape[0] != graph.n_neurons:
        raise ValueError(
            f"assignment covers {assignment.shape[0]} neurons, graph has "
            f"{graph.n_neurons}"
        )
    dests: Dict[int, Set[int]] = {}
    src_cluster = assignment[graph.src]
    dst_cluster = assignment[graph.dst]
    remote = src_cluster != dst_cluster
    for s, c in zip(graph.src[remote], dst_cluster[remote]):
        dests.setdefault(int(s), set()).add(int(c))
    return dests


def build_injections(
    graph: SpikeGraph,
    assignment: np.ndarray,
    topology: Topology,
    cycles_per_ms: float = 10.0,
) -> InjectionSchedule:
    """Build the AER injection schedule for a mapped spike graph.

    Each spike of a neuron with remote targets becomes one multicast
    injection (the interconnect config decides whether it travels as one
    forked packet or per-destination unicast copies).
    """
    check_positive("cycles_per_ms", cycles_per_ms)
    assignment = np.asarray(assignment, dtype=np.int64)
    dests = global_destinations(graph, assignment)

    injections: List[Injection] = []
    uid = 0
    n_events = 0
    for neuron in sorted(dests):
        crossbars = dests[neuron]
        src_node = topology.node_of_crossbar(int(assignment[neuron]))
        dst_nodes = tuple(
            sorted(topology.node_of_crossbar(c) for c in crossbars)
        )
        for t_ms in graph.spike_times[neuron]:
            injections.append(
                Injection(
                    cycle=int(round(t_ms * cycles_per_ms)),
                    src_node=src_node,
                    dst_nodes=dst_nodes,
                    src_neuron=neuron,
                    uid=uid,
                )
            )
            uid += 1
            n_events += 1
    injections.sort(key=lambda i: (i.cycle, i.uid))
    return InjectionSchedule(
        injections=injections,
        cycles_per_ms=cycles_per_ms,
        n_source_neurons=len(dests),
        n_spike_events=n_events,
    )


def synthetic_injections(
    rates_per_node: Sequence[float],
    topology: Topology,
    duration_cycles: int,
    fanout: int = 1,
    seed=None,
) -> InjectionSchedule:
    """Uniform-random synthetic traffic for stress-testing the NoC itself.

    Each attach point injects Bernoulli(rate) packets per cycle toward
    ``fanout`` uniformly chosen other attach points.  Used by NoC unit
    tests and the multicast ablation bench, not by the paper pipeline.
    """
    from repro.utils.rng import default_rng

    check_positive("duration_cycles", duration_cycles)
    rng = default_rng(seed)
    nodes = [topology.node_of_crossbar(k) for k in range(topology.n_attach_points)]
    if len(rates_per_node) != len(nodes):
        raise ValueError(
            f"need one rate per attach point ({len(nodes)}), got "
            f"{len(rates_per_node)}"
        )
    injections: List[Injection] = []
    uid = 0
    for cycle in range(duration_cycles):
        for k, rate in enumerate(rates_per_node):
            if rng.random() >= rate:
                continue
            others = [n for n in nodes if n != nodes[k]]
            if not others:
                continue
            chosen = rng.choice(
                len(others), size=min(fanout, len(others)), replace=False
            )
            injections.append(
                Injection(
                    cycle=cycle,
                    src_node=nodes[k],
                    dst_nodes=tuple(sorted(others[i] for i in chosen)),
                    src_neuron=k,
                    uid=uid,
                )
            )
            uid += 1
    return InjectionSchedule(
        injections=injections,
        cycles_per_ms=1.0,
        n_source_neurons=len(nodes),
        n_spike_events=len(injections),
    )
