"""Input-buffered router model.

Each router owns one bounded FIFO per incoming link plus an unbounded local
injection queue.  Arbitration is round-robin over input ports: the starting
port rotates every cycle so no port starves.  One packet may leave through
each output port per cycle, and one packet may be ejected to the local
crossbar per cycle (configurable), matching a single-crossbar-decoder tile.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Union

from repro.noc.buffer import ChannelBuffer
from repro.noc.packet import SpikePacket

LOCAL_PORT = "local"
PortKey = Union[int, str]


class Router:
    """One switching element of the interconnect."""

    def __init__(self, node: int, neighbors: Iterable[int], buffer_capacity: int) -> None:
        self.node = node
        self.buffers: Dict[PortKey, ChannelBuffer] = {
            LOCAL_PORT: ChannelBuffer(capacity=None)
        }
        for nb in sorted(neighbors):
            self.buffers[nb] = ChannelBuffer(capacity=buffer_capacity)
        # Port scan order is fixed; the rotation offset changes per cycle.
        self._port_order: List[PortKey] = [LOCAL_PORT] + sorted(
            p for p in self.buffers if p != LOCAL_PORT
        )

    def occupied(self) -> bool:
        return any(self.buffers.values())

    def total_queued(self) -> int:
        return sum(len(b) for b in self.buffers.values())

    def ports_in_arbitration_order(self, cycle: int) -> List[PortKey]:
        """Input ports rotated by the cycle counter (round-robin fairness)."""
        n = len(self._port_order)
        start = cycle % n
        return self._port_order[start:] + self._port_order[:start]

    def accept(self, from_node: PortKey, packet: SpikePacket) -> None:
        """Enqueue an arriving packet on the buffer of its incoming port."""
        self.buffers[from_node].push(packet)

    def peak_link_occupancy(self) -> int:
        """High-water mark across bounded (link) buffers only."""
        peaks = [
            b.peak for port, b in self.buffers.items() if port != LOCAL_PORT
        ]
        return max(peaks) if peaks else 0
