"""Link-fault injection for interconnect robustness studies.

Real chips lose links to manufacturing defects and aging.  These helpers
degrade a topology by removing links (validating that the router graph
stays connected so deterministic rerouting exists) and pick random
survivable fault sets for Monte-Carlo robustness tests.  Simulating a
mapped application on the degraded topology shows how much latency and
energy headroom a mapping has when traffic is forced onto detours.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import networkx as nx

from repro.noc.topology import Topology
from repro.utils.rng import SeedLike, default_rng


def degrade_topology(
    topology: Topology,
    failed_links: Iterable[Tuple[int, int]],
) -> Topology:
    """Remove ``failed_links`` from a topology (bidirectional failure).

    Raises ``ValueError`` if a link does not exist or if removal would
    disconnect the router graph (no rerouting can save such a fabric).
    """
    g = topology.graph.copy()
    for u, v in failed_links:
        if not g.has_edge(u, v):
            raise ValueError(f"link ({u}, {v}) does not exist")
        g.remove_edge(u, v)
    if not nx.is_connected(g):
        raise ValueError("fault set disconnects the interconnect")
    return Topology(
        graph=g,
        attach_points=list(topology.attach_points),
        kind=f"{topology.kind}-degraded",
        positions=dict(topology.positions),
    )


def survivable_links(topology: Topology) -> List[Tuple[int, int]]:
    """Links whose individual failure leaves the fabric connected."""
    bridges = set()
    for u, v in nx.bridges(topology.graph):
        bridges.add((u, v))
        bridges.add((v, u))
    return [
        (u, v)
        for u, v in topology.graph.edges
        if (u, v) not in bridges
    ]


def inject_random_faults(
    topology: Topology,
    n_faults: int,
    seed: SeedLike = None,
) -> Tuple[Topology, List[Tuple[int, int]]]:
    """Remove ``n_faults`` random links, keeping the fabric connected.

    Faults are drawn one at a time, recomputing survivable links after
    each removal.  Raises ``ValueError`` when the topology cannot absorb
    that many faults (e.g. trees have no redundant links at all).
    """
    if n_faults < 0:
        raise ValueError(f"n_faults must be non-negative, got {n_faults}")
    rng = default_rng(seed)
    current = topology
    chosen: List[Tuple[int, int]] = []
    for _ in range(n_faults):
        candidates = survivable_links(current)
        if not candidates:
            raise ValueError(
                f"topology {topology.kind!r} cannot survive "
                f"{n_faults} link faults (only {len(chosen)} possible)"
            )
        u, v = candidates[int(rng.integers(0, len(candidates)))]
        current = degrade_topology(current, [(u, v)])
        chosen.append((u, v))
    return current, chosen
