"""Fault injection for interconnect robustness studies.

Real chips lose routers, links and crossbars to manufacturing defects
and aging, and the paper's reference platforms (TrueNorth boards,
HiCANN wafers) are expected to route around the damage.  This module
describes such damage as a :class:`FaultSet` and applies it to any
:class:`~repro.noc.topology.Topology` — including
:class:`~repro.noc.multichip.MultiChipTopology`, whose chip/bridge
bookkeeping survives degradation minus the failed elements — producing
a fabric both simulation backends run unchanged and bit-identically.

Fault classes
-------------
- **dead links** — an undirected router-to-router link fails; traffic
  detours over the surviving graph.  On a multi-chip fabric a failed
  *bridge segment* takes its whole bridge down (a relay chain with a
  broken stage is useless end to end).
- **dead routers** — a router fails with every incident link.  Routers
  hosting crossbars cannot simply vanish (their crossbar would lose its
  attach point); declare those as faulty crossbars instead.  A dead
  relay router kills its bridge, like a dead bridge segment.
- **degraded bridges** — a chip-to-chip bridge survives but retrains to
  a slower rate: its relay chain grows by ``extra`` stages, so every
  crossing pays ``bridge_latency + extra`` cycles.
- **faulty crossbars** — the compute array fails but its router still
  switches traffic.  The graph is untouched; the runtime layer
  (:class:`~repro.core.runtime.RuntimeRemapper`) migrates the neurons
  off (see :class:`~repro.core.runtime.FaultEvent`).

Degraded topologies keep their routers' original ids and carry a
``*-degraded`` kind, which routes them to adaptive-free shortest-path
tables (:func:`~repro.noc.routing.routing_for`) — the detours are what
the simulators then price.

The legacy helpers (:func:`degrade_topology`, :func:`survivable_links`,
:func:`inject_random_faults`) are retained on top of the fault model;
``degrade_topology`` now preserves the topology subclass instead of
collapsing every fabric to a plain :class:`Topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

import networkx as nx

from repro.noc.topology import Topology
from repro.obs import get_observer
from repro.utils.rng import SeedLike, default_rng


@dataclass(frozen=True)
class FaultSet:
    """A set of hardware faults to apply to a topology.

    Attributes
    ----------
    dead_links:
        Undirected router links that failed; stored as ``(min, max)``
        pairs regardless of the orientation given.
    dead_routers:
        Routers that failed entirely (with all incident links).
    degraded_bridges:
        ``bridge index -> extra crossing cycles`` for bridges that
        survive at reduced rate; indices follow
        :func:`bridge_chains` order.  Multi-chip only.
    faulty_crossbars:
        Crossbar indices whose compute array failed; the topology is
        unchanged, the runtime layer must evacuate their neurons.
    """

    dead_links: FrozenSet[Tuple[int, int]] = frozenset()
    dead_routers: FrozenSet[int] = frozenset()
    degraded_bridges: Mapping[int, int] = field(default_factory=dict)
    faulty_crossbars: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        links = frozenset(
            (min(int(u), int(v)), max(int(u), int(v))) for u, v in self.dead_links
        )
        object.__setattr__(self, "dead_links", links)
        object.__setattr__(
            self, "dead_routers", frozenset(int(r) for r in self.dead_routers)
        )
        degraded = dict(self.degraded_bridges)
        for bridge, extra in degraded.items():
            if extra <= 0:
                raise ValueError(
                    f"bridge {bridge} degradation must add at least one "
                    f"cycle, got {extra}"
                )
        object.__setattr__(self, "degraded_bridges", degraded)
        object.__setattr__(
            self,
            "faulty_crossbars",
            frozenset(int(k) for k in self.faulty_crossbars),
        )

    @property
    def n_faults(self) -> int:
        return (
            len(self.dead_links)
            + len(self.dead_routers)
            + len(self.degraded_bridges)
            + len(self.faulty_crossbars)
        )

    def __bool__(self) -> bool:
        return self.n_faults > 0

    def describe(self) -> str:
        return (
            f"FaultSet: {len(self.dead_links)} dead links, "
            f"{len(self.dead_routers)} dead routers, "
            f"{len(self.degraded_bridges)} degraded bridges, "
            f"{len(self.faulty_crossbars)} faulty crossbars"
        )

    def __or__(self, other: "FaultSet") -> "FaultSet":
        """Union of two fault sets (overlapping transient windows).

        Link, router and crossbar faults are set unions; a bridge
        degraded by both sides retrains to the *slower* of the two
        rates (``max`` of the extra cycles), since hardware cannot run
        faster than its worst impairment.
        """
        if not isinstance(other, FaultSet):
            return NotImplemented
        degraded = dict(self.degraded_bridges)
        for bridge, extra in other.degraded_bridges.items():
            degraded[bridge] = max(degraded.get(bridge, 0), extra)
        return FaultSet(
            dead_links=self.dead_links | other.dead_links,
            dead_routers=self.dead_routers | other.dead_routers,
            degraded_bridges=degraded,
            faulty_crossbars=self.faulty_crossbars | other.faulty_crossbars,
        )


def bridge_chains(topology) -> List[List[int]]:
    """Ordered relay chains of a multi-chip fabric, one per bridge.

    Each chain runs gateway-to-gateway through the bridge's relay
    routers, oriented from its lower-numbered gateway, and chains are
    sorted by their gateway pair — a stable indexing scheme that
    :class:`FaultSet.degraded_bridges` keys into.
    """
    from repro.noc.multichip import RELAY_CHIP

    segments = topology.bridge_links
    chains: Dict[Tuple[int, ...], List[int]] = {}
    for gateway, nxt in sorted(topology.bridge_entry_links):
        chain = [gateway, nxt]
        while topology.chip_of_router[chain[-1]] == RELAY_CHIP:
            prev, here = chain[-2], chain[-1]
            chain.append(
                next(
                    v
                    for v in topology.graph.neighbors(here)
                    if (here, v) in segments and v != prev
                )
            )
        if chain[0] > chain[-1]:
            chain.reverse()
        chains[(chain[0], chain[-1])] = chain
    return [chains[key] for key in sorted(chains)]


def _remove_plain_faults(
    g: nx.Graph,
    faults: FaultSet,
    attach_points: List[int],
    bridge_segments: FrozenSet[Tuple[int, int]],
    relay_routers: FrozenSet[int],
) -> Tuple[List[Tuple[int, int]], List[int]]:
    """Apply non-bridge link/router faults to ``g`` in place.

    Returns the dead links and routers that belong to bridges instead
    (whole-bridge semantics, resolved by the caller).
    """
    hosts = set(attach_points)
    bridge_link_hits: List[Tuple[int, int]] = []
    bridge_router_hits: List[int] = []
    for u, v in sorted(faults.dead_links):
        if not g.has_edge(u, v):
            raise ValueError(f"link ({u}, {v}) does not exist")
        if (u, v) in bridge_segments:
            bridge_link_hits.append((u, v))
        else:
            g.remove_edge(u, v)
    for router in sorted(faults.dead_routers):
        if router not in g:
            raise ValueError(f"router {router} does not exist")
        if router in hosts:
            raise ValueError(
                f"router {router} hosts a crossbar and cannot be removed; "
                f"declare the crossbar faulty instead"
            )
        if router in relay_routers:
            bridge_router_hits.append(router)
        else:
            g.remove_node(router)
    return bridge_link_hits, bridge_router_hits


def _degraded_kind(kind: str) -> str:
    return kind if kind.endswith("-degraded") else f"{kind}-degraded"


def _check_connected(g: nx.Graph) -> None:
    if not nx.is_connected(g):
        raise ValueError("fault set disconnects the interconnect")


def _apply_plain(topology: Topology, faults: FaultSet) -> Topology:
    if faults.degraded_bridges:
        raise ValueError(
            "degraded bridges require a multichip topology, got "
            f"kind {topology.kind!r}"
        )
    g = topology.graph.copy()
    _remove_plain_faults(g, faults, topology.attach_points, frozenset(), frozenset())
    _check_connected(g)
    return Topology(
        graph=g,
        attach_points=list(topology.attach_points),
        kind=_degraded_kind(topology.kind),
        positions={n: xy for n, xy in topology.positions.items() if n in g},
    )


def _apply_multichip(topology, faults: FaultSet) -> Topology:
    from repro.noc.multichip import RELAY_CHIP, MultiChipTopology

    chains = bridge_chains(topology)
    relay_routers = frozenset(
        r for r, c in topology.chip_of_router.items() if c == RELAY_CHIP
    )
    for bridge in faults.degraded_bridges:
        if not 0 <= bridge < len(chains):
            raise ValueError(f"bridge index {bridge} out of range [0, {len(chains)})")

    g = topology.graph.copy()
    link_hits, router_hits = _remove_plain_faults(
        g,
        faults,
        topology.attach_points,
        topology.bridge_links,
        relay_routers,
    )

    # Whole-bridge semantics: any hit segment or relay kills its chain.
    dead_bridges = set()
    for index, chain in enumerate(chains):
        nodes = set(chain)
        segs = {(min(u, v), max(u, v)) for u, v in zip(chain, chain[1:])}
        if any(hit in segs for hit in link_hits) or any(
            r in nodes for r in router_hits
        ):
            dead_bridges.add(index)
    for index in sorted(dead_bridges & set(faults.degraded_bridges)):
        raise ValueError(f"bridge {index} is dead and cannot be degraded")
    for index in dead_bridges:
        chain = chains[index]
        for u, v in zip(chain, chain[1:]):
            if g.has_edge(u, v):
                g.remove_edge(u, v)
        g.remove_nodes_from(n for n in chain[1:-1] if n in g)

    positions = {n: xy for n, xy in topology.positions.items() if n in g}
    chip_of_router = {
        n: c for n, c in topology.chip_of_router.items() if n in g
    }

    # Degraded bridges: retrained chains gain ``extra`` relay stages
    # spliced in before the far gateway; surviving routers keep their
    # original ids, new relays take fresh ones.
    next_id = max(topology.graph.nodes) + 1
    surviving: List[List[int]] = []
    for index, chain in enumerate(chains):
        if index in dead_bridges:
            continue
        extra = faults.degraded_bridges.get(index, 0)
        if extra:
            tail = chain[-1]
            new_relays = list(range(next_id, next_id + extra))
            next_id += extra
            g.remove_edge(chain[-2], tail)
            chain = chain[:-1] + new_relays + [tail]
            for u, v in zip(chain[-extra - 2 :], chain[-extra - 1 :]):
                g.add_edge(u, v)
            for relay in new_relays:
                chip_of_router[relay] = RELAY_CHIP
                if positions:
                    # Stack the new stages on the far gateway's plot
                    # position; exact coordinates only matter for layout.
                    positions[relay] = positions.get(
                        tail, next(iter(positions.values()))
                    )
        surviving.append(chain)

    _check_connected(g)

    bridge_links = set()
    bridge_entries = set()
    for chain in surviving:
        for u, v in zip(chain, chain[1:]):
            bridge_links.add((u, v))
            bridge_links.add((v, u))
        bridge_entries.add((chain[0], chain[1]))
        bridge_entries.add((chain[-1], chain[-2]))

    return MultiChipTopology(
        graph=g,
        attach_points=list(topology.attach_points),
        kind=_degraded_kind(topology.kind),
        positions=positions,
        n_chips=topology.n_chips,
        chip_kind=topology.chip_kind,
        bridge_latency=topology.bridge_latency,
        chip_of_router=chip_of_router,
        chip_of_crossbar=list(topology.chip_of_crossbar),
        bridge_links=frozenset(bridge_links),
        bridge_entry_links=frozenset(bridge_entries),
        n_bridges=len(surviving),
    )


def apply_faults(topology: Topology, faults: FaultSet) -> Topology:
    """Return ``topology`` with ``faults`` applied, same class preserved.

    Dead links and routers are removed from the router graph (validating
    existence and that the surviving graph stays connected, so
    deterministic rerouting exists).  On a
    :class:`~repro.noc.multichip.MultiChipTopology` the chip/bridge
    bookkeeping is carried over minus the failed elements: a failed
    bridge segment or relay removes its entire bridge, and degraded
    bridges grow their relay chains by the requested extra cycles.
    Faulty crossbars never change the graph — their routers keep
    switching traffic — but are validated against the attach-point
    range here so callers can trust the indices downstream.

    Raises ``ValueError`` for nonexistent elements, for dead routers
    that host crossbars (declare the crossbar faulty instead), and for
    fault sets that disconnect the fabric.
    """
    from repro.noc.multichip import MultiChipTopology

    for k in sorted(faults.faulty_crossbars):
        if not 0 <= k < topology.n_attach_points:
            raise ValueError(
                f"crossbar index {k} out of range "
                f"[0, {topology.n_attach_points})"
            )
    obs = get_observer()
    if obs.enabled:
        obs.inc("faults.apply_calls")
        obs.event(
            "fault.apply",
            dead_links=len(faults.dead_links),
            dead_routers=len(faults.dead_routers),
            faulty_crossbars=len(faults.faulty_crossbars),
        )
    if isinstance(topology, MultiChipTopology):
        return _apply_multichip(topology, faults)
    return _apply_plain(topology, faults)


def degrade_topology(
    topology: Topology,
    failed_links: Iterable[Tuple[int, int]],
) -> Topology:
    """Remove ``failed_links`` from a topology (bidirectional failure).

    A thin wrapper over :func:`apply_faults` with a link-only
    :class:`FaultSet`; the topology's class (including
    :class:`~repro.noc.multichip.MultiChipTopology` with its chip and
    bridge bookkeeping) is preserved.  Raises ``ValueError`` if a link
    does not exist or if removal would disconnect the router graph (no
    rerouting can save such a fabric).
    """
    return apply_faults(
        topology,
        FaultSet(dead_links=frozenset(tuple(link) for link in failed_links)),
    )


def survivable_links(topology: Topology) -> List[Tuple[int, int]]:
    """Links whose individual failure leaves the fabric connected.

    On a multi-chip fabric a failed bridge segment takes its whole
    bridge down, so segments are survivable only when the fabric stays
    connected without the *entire* relay chain (e.g. a 2x2 chip grid
    tolerates losing any one of its four bridges; a 2-chip board's only
    bridge is never offered).
    """
    from repro.noc.multichip import MultiChipTopology

    cut_edges = set()
    for u, v in nx.bridges(topology.graph):
        cut_edges.add((u, v))
        cut_edges.add((v, u))
    if not isinstance(topology, MultiChipTopology):
        return [(u, v) for u, v in topology.graph.edges if (u, v) not in cut_edges]
    survivable = [
        (u, v)
        for u, v in topology.graph.edges
        if (u, v) not in cut_edges and (u, v) not in topology.bridge_links
    ]
    for chain in bridge_chains(topology):
        chain_segs = {(min(a, b), max(a, b)) for a, b in zip(chain, chain[1:])}
        g = topology.graph.copy()
        for u, v in zip(chain, chain[1:]):
            g.remove_edge(u, v)
        g.remove_nodes_from(chain[1:-1])
        if nx.is_connected(g):
            survivable.extend(
                (u, v)
                for u, v in topology.graph.edges
                if (min(u, v), max(u, v)) in chain_segs
            )
    return survivable


def inject_random_faults(
    topology: Topology,
    n_faults: int,
    seed: SeedLike = None,
) -> Tuple[Topology, List[Tuple[int, int]]]:
    """Remove ``n_faults`` random links, keeping the fabric connected.

    Faults are drawn one at a time, recomputing survivable links after
    each removal.  Raises ``ValueError`` when the topology cannot absorb
    that many faults (e.g. trees have no redundant links at all).
    """
    if n_faults < 0:
        raise ValueError(f"n_faults must be non-negative, got {n_faults}")
    rng = default_rng(seed)
    current = topology
    chosen: List[Tuple[int, int]] = []
    for _ in range(n_faults):
        candidates = survivable_links(current)
        if not candidates:
            raise ValueError(
                f"topology {topology.kind!r} cannot survive "
                f"{n_faults} link faults (only {len(chosen)} possible)"
            )
        u, v = candidates[int(rng.integers(0, len(candidates)))]
        current = degrade_topology(current, [(u, v)])
        chosen.append((u, v))
    obs = get_observer()
    if obs.enabled:
        obs.inc("faults.random_injections", len(chosen))
        obs.event("fault.inject_random", n_faults=len(chosen))
    return current, chosen


@dataclass(frozen=True)
class FaultWindow:
    """One transient fault episode: ``faults`` held over ``[arrive, clear)``.

    ``clear=None`` marks a permanent fault (never heals).  The window is
    half-open so a fault clearing at ``t`` is already gone when the
    fabric is inspected at ``t`` — arrive and clear edges compose
    without double counting.
    """

    faults: FaultSet
    arrive: float = 0.0
    clear: float | None = None

    def __post_init__(self) -> None:
        if self.clear is not None and self.clear <= self.arrive:
            raise ValueError(
                f"fault window must clear after it arrives: "
                f"arrive={self.arrive}, clear={self.clear}"
            )

    def active_at(self, time: float) -> bool:
        return self.arrive <= time and (self.clear is None or time < self.clear)


@dataclass(frozen=True)
class FaultTimeline:
    """A schedule of transient :class:`FaultWindow` episodes.

    The fabric's state at any instant is the *union* of the fault sets
    whose windows cover it (see :meth:`FaultSet.__or__`), so faults may
    overlap, arrive while others persist, and clear independently.  A
    cleared fault re-admits its routers and links: :meth:`topology_at`
    returns the untouched healthy topology whenever no window is
    active, which makes healed fabrics trivially bit-identical to the
    pre-fault fabric on every simulation backend.
    """

    windows: Tuple[FaultWindow, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "windows", tuple(self.windows))

    def active_at(self, time: float) -> FaultSet:
        """Union of every fault set whose window covers ``time``."""
        active = FaultSet()
        for window in self.windows:
            if window.active_at(time):
                active = active | window.faults
        return active

    def edges(self) -> List[float]:
        """Sorted distinct instants where the active fault set changes."""
        times = set()
        for window in self.windows:
            times.add(window.arrive)
            if window.clear is not None:
                times.add(window.clear)
        return sorted(times)

    def crossbars_at(self, time: float) -> FrozenSet[int]:
        """Faulty crossbar indices at ``time`` (for the runtime layer)."""
        return self.active_at(time).faulty_crossbars

    def topology_at(self, healthy: Topology, time: float) -> Topology:
        """The fabric as the NoC sees it at ``time``.

        Crossbar faults never alter the graph, so a timeline that only
        carries crossbar faults — or no active window at all — returns
        ``healthy`` itself, unchanged.
        """
        active = self.active_at(time)
        structural = FaultSet(
            dead_links=active.dead_links,
            dead_routers=active.dead_routers,
            degraded_bridges=active.degraded_bridges,
        )
        if not structural:
            return healthy
        return apply_faults(healthy, active)

    def describe(self) -> str:
        permanent = sum(1 for w in self.windows if w.clear is None)
        return (
            f"FaultTimeline: {len(self.windows)} windows "
            f"({permanent} permanent), {len(self.edges())} edges"
        )
