"""Process-parallel sharded execution of ``simulate_many``.

PR 1 made swarm-scale NoC-in-the-loop fitness *possible* by batching
schedule simulation through
:meth:`~repro.noc.fastsim.FastInterconnect.simulate_many`; this module
makes it use the whole machine.  A
:class:`ParallelNocSimulator` shards a batch of injection schedules
across a :class:`concurrent.futures.ProcessPoolExecutor`:

- **workers are seeded once** — the pool initializer receives the
  pickled :class:`~repro.noc.fastsim.FastInterconnect` (which pickles as
  its ``(topology, routing, config)`` spec and rebuilds its routing/port
  tables, and the per-process ctypes C kernel, on arrival) and stores it
  in a process-global, so every chunk reuses the same tables;
- **chunks carry their batch offset** — each work item is ``(start,
  schedules, collect_metrics)`` and each result is ``(start, summaries,
  counter_deltas)``, so results are reassembled by index and the output
  is invariant to worker count, chunk size and completion order (the
  deltas only feed the observability registry, never the summaries);
- **results are columnar summaries** — workers return one compact
  :class:`ScheduleSummary` per schedule (hop totals, latency sums,
  delivery counts, ...) instead of full delivery records, keeping the
  inter-process payload tiny.  The serial path produces summaries with
  the same :func:`summarize` function, so ``workers=N`` is bit-identical
  to ``workers=1`` by construction;
- **graceful serial fallback** — sandboxed CI runners routinely forbid
  the primitives process pools need (``fork``, ``sem_open``, ``/dev/shm``).
  Any failure to start or use the pool emits one :class:`RuntimeWarning`
  and permanently reroutes this simulator to the in-process serial path,
  which produces the same results.

``workers=1`` is the serial path (no pool is ever created); ``workers=0``
or ``"auto"`` means one worker per CPU (:func:`resolve_workers`).

For tiny swarms serial usually wins: a fork/spawn plus per-worker table
rebuild costs milliseconds-to-tens-of-milliseconds, so the pool only
pays off once the batch simulates for longer than that (hundreds of
schedules, or few-but-long ones).  :class:`ParallelNocSimulator` keeps
its pool alive across calls, so iterative callers (PSO scoring a swarm
every generation) pay the startup cost once.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Iterator, List, NamedTuple, Optional, Sequence, Tuple, Union

# ScheduleLike: a row-oriented injection list or a columnar schedule.
# Columnar items ship to workers as numpy array shards (compact to
# pickle) instead of per-packet ``Injection`` objects.
from repro.noc.fastsim import FastInterconnect, ScheduleLike
from repro.noc.interconnect import NocConfig
from repro.noc.routing import RoutingTable
from repro.noc.stats import NocStats
from repro.noc.topology import Topology
from repro.noc.traffic import ColumnarSchedule
from repro.obs import get_observer, observe
from repro.obs.metrics import MetricsRegistry

WorkersSpec = Union[int, str, None]


class ScheduleSummary(NamedTuple):
    """Columnar aggregate of one simulated schedule.

    Everything swarm scoring reads off a simulation, as plain integers:
    tiny to pickle, exact to compare (worker-vs-serial equivalence tests
    use ``==`` on whole summaries, no float tolerance needed).

    The four trailing fields carry the multi-chip breakdown and stay
    zero on single-chip fabrics (or when :func:`summarize` is called
    without a topology).
    """

    n_injected: int
    n_expected: int
    delivered: int
    total_hops: int
    latency_sum: int
    max_latency: int
    cycles_run: int
    peak_buffer_occupancy: int
    inter_chip_hops: int = 0
    bridge_crossings: int = 0
    inter_chip_latency_sum: int = 0
    inter_chip_delivered: int = 0

    @property
    def undelivered(self) -> int:
        return self.n_expected - self.delivered

    @property
    def mean_latency(self) -> float:
        if self.delivered == 0:
            return 0.0
        return self.latency_sum / self.delivered

    @property
    def intra_chip_hops(self) -> int:
        return self.total_hops - self.inter_chip_hops

    @property
    def mean_inter_chip_latency(self) -> float:
        if self.inter_chip_delivered == 0:
            return 0.0
        return self.inter_chip_latency_sum / self.inter_chip_delivered


def summarize(
    stats: NocStats, topology: Optional[Topology] = None
) -> ScheduleSummary:
    """Collapse a :class:`NocStats` into its :class:`ScheduleSummary`.

    Works on both backends; on :class:`~repro.noc.fastsim.FastNocStats`
    it reads the lazy columns directly and never materializes
    per-delivery records.  Pass the simulated topology to fill the
    multi-chip breakdown fields (inter-chip hops, bridge crossings and
    the inter-chip latency split); they stay zero for flat topologies,
    so the summary of a single-chip run is unchanged by the argument.
    """
    from repro.noc.multichip import MultiChipTopology

    lat = stats.latencies()
    inter_hops = crossings = inter_lat = inter_n = 0
    if isinstance(topology, MultiChipTopology) and topology.n_chips > 1:
        inter_hops = topology.inter_chip_hops(stats.link_loads)
        crossings = topology.bridge_crossings(stats.link_loads)
        chip_of = topology.chip_of_router
        for src, dst, latency in stats.delivery_endpoints():
            if chip_of[src] != chip_of[dst]:
                inter_n += 1
                inter_lat += latency
    return ScheduleSummary(
        n_injected=stats.n_injected,
        n_expected=stats.n_expected_deliveries,
        delivered=stats.delivered_count,
        total_hops=stats.total_hops(),
        latency_sum=int(lat.sum()) if lat.size else 0,
        max_latency=int(lat.max()) if lat.size else 0,
        cycles_run=stats.cycles_run,
        peak_buffer_occupancy=stats.peak_buffer_occupancy,
        inter_chip_hops=inter_hops,
        bridge_crossings=crossings,
        inter_chip_latency_sum=inter_lat,
        inter_chip_delivered=inter_n,
    )


def resolve_workers(workers: WorkersSpec) -> int:
    """Normalize a worker-count spec to a concrete positive integer.

    ``0``, ``None`` and ``"auto"`` mean one worker per CPU; any other
    value must parse as a non-negative integer.  ``1`` is the serial
    path.
    """
    if workers is None:
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return max(1, os.cpu_count() or 1)
    return workers


# -- worker side -------------------------------------------------------------

_WORKER_SIM: Optional[FastInterconnect] = None


def _init_worker(sim: FastInterconnect) -> None:
    """Pool initializer: adopt the simulator for this worker process.

    Under ``spawn`` (the macOS/Windows default) the argument arrives
    pickled, which rebuilds the routing/port tables and reloads the
    per-process C kernel (see ``FastInterconnect.__reduce__``); under
    ``fork`` (the Linux default) the parent's fully built instance is
    inherited directly.
    """
    global _WORKER_SIM
    _WORKER_SIM = sim


def _run_chunk(
    task: Tuple[int, List[ScheduleLike], bool],
) -> Tuple[int, List[ScheduleSummary], Optional[list]]:
    """Simulate one chunk of schedules; tag results with the batch offset.

    When the parent asked for metrics (``collect``), the chunk runs
    under a fresh worker-local registry and its counter deltas ship back
    with the summaries, so parallel runs aggregate exactly like serial
    ones.  Either way the parent's observer never leaks in: a forked
    worker would otherwise record spans nobody can collect.
    """
    start, schedules, collect = task
    sim = _WORKER_SIM
    registry: Union[MetricsRegistry, bool] = MetricsRegistry() if collect else False
    with observe(tracer=False, metrics=registry):
        # No batch kernel inside workers: the pool already owns the
        # machine's cores, so nested OpenMP teams would only thrash,
        # and a 1-thread batch call is pure overhead over the
        # per-schedule loop.
        summaries = [
            summarize(s, sim.topology)
            for s in sim.simulate_many(schedules, threads=0)
        ]
    deltas = registry.counter_deltas() if collect else None
    return start, summaries, deltas


# -- parent side -------------------------------------------------------------


class ParallelNocSimulator:
    """Shard ``simulate_many`` batches across worker processes.

    Wraps a :class:`~repro.noc.fastsim.FastInterconnect` (or builds one
    from a topology/routing/config spec) and scores batches of injection
    schedules on a persistent process pool.  Results are bit-identical
    to serial execution regardless of worker count or chunk order; see
    the module docstring for how.

    Parameters
    ----------
    workers:
        Worker processes (``1`` = serial in-process, ``0``/``"auto"`` =
        one per CPU).
    chunk_size:
        Schedules per work item.  Default splits the batch into about
        four chunks per worker, which balances load without drowning the
        queue in tiny messages.
    threads:
        Thread cap for the compiled batch kernel (``None`` defers to
        ``REPRO_NOC_THREADS``, ``0`` disables it).  When the kernel can
        parallelize in-process (OpenMP build, more than one effective
        thread), batches run through it instead of the process pool —
        same results, none of the pickling/dispatch overhead.  The pool
        remains the fallback for no-OpenMP builds and the pure-Python
        engine.
    """

    def __init__(
        self,
        topology: Union[Topology, FastInterconnect],
        routing: Optional[RoutingTable] = None,
        config: Optional[NocConfig] = None,
        workers: WorkersSpec = 0,
        chunk_size: Optional[int] = None,
        threads: Optional[int] = None,
    ) -> None:
        # Pool state first: __del__ must work even if validation below
        # raises mid-construction.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        if isinstance(topology, FastInterconnect):
            if routing is not None or config is not None:
                raise ValueError(
                    "pass either a FastInterconnect or a "
                    "topology/routing/config spec, not both"
                )
            self._sim = topology
        else:
            self._sim = FastInterconnect(topology, routing, config)
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.threads = threads

    # -- pool management -----------------------------------------------------

    def _start_pool(self) -> Optional[ProcessPoolExecutor]:
        import multiprocessing

        # The platform-default start method: fork on Linux (workers
        # inherit the parent's built tables and loaded C kernel for
        # free), spawn where fork is unsafe (macOS, Windows — workers
        # rebuild from the pickled spec via FastInterconnect.__reduce__).
        ctx = multiprocessing.get_context()
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self._sim,),
        )

    def _mark_broken(self, exc: BaseException) -> None:
        # Warn with an *instance* whose __cause__ is the pool failure:
        # daemon logs (and warning filters capturing the message) see
        # why the pool degraded, not just that it did.
        warning = RuntimeWarning(
            f"parallel NoC scoring unavailable ({exc!r}); "
            "falling back to serial simulation"
        )
        warning.__cause__ = exc
        warnings.warn(warning, stacklevel=4)
        get_observer().inc("noc.parallel.fallbacks", error=type(exc).__name__)
        self._pool_broken = True
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def __enter__(self) -> "ParallelNocSimulator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        if getattr(self, "_pool", None) is not None:
            self.close()

    # -- execution -----------------------------------------------------------

    def _chunks(
        self, schedules: Sequence[ScheduleLike], collect: bool
    ) -> Iterator[Tuple[int, List[ScheduleLike], bool]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(schedules) // (4 * self.workers)))
        for start in range(0, len(schedules), size):
            yield start, [
                s if isinstance(s, ColumnarSchedule) else list(s)
                for s in schedules[start : start + size]
            ], collect

    def _summarize_serial(
        self, schedules: Sequence[ScheduleLike]
    ) -> List[ScheduleSummary]:
        return [
            summarize(s, self._sim.topology)
            for s in self._sim.simulate_many(schedules, threads=self.threads)
        ]

    def summarize_many(
        self, schedules: Sequence[ScheduleLike]
    ) -> List[ScheduleSummary]:
        """Simulate every schedule; return one summary per schedule.

        The parallel path, the threaded-kernel path and the serial path
        all run the same engine and the same :func:`summarize`, so the
        returned list is identical whichever path executed.
        """
        schedules = list(schedules)
        obs = get_observer()
        if self.workers <= 1 or self._pool_broken or len(schedules) <= 1:
            return self._summarize_serial(schedules)
        if self._sim.batch_threads(self.threads) > 1:
            # The OpenMP batch kernel parallelizes in-process with zero
            # pickling/dispatch cost; prefer it over the pool whenever
            # it can actually use more than one core.
            obs.inc("noc.parallel.threaded_batches")
            return self._summarize_serial(schedules)
        try:
            if self._pool is None:
                self._pool = self._start_pool()
            collect = obs.metrics.enabled
            with obs.span(
                "noc.parallel.batch",
                workers=self.workers,
                n_schedules=len(schedules),
            ):
                futures = [
                    self._pool.submit(_run_chunk, task)
                    for task in self._chunks(schedules, collect)
                ]
                out: List[Optional[ScheduleSummary]] = [None] * len(schedules)
                # Drain in completion order on purpose: reassembly must
                # not depend on which worker finished first.
                for future in as_completed(futures):
                    start, summaries, deltas = future.result()
                    out[start : start + len(summaries)] = summaries
                    if deltas:
                        obs.metrics.merge_counters(deltas)
            obs.inc("noc.parallel.batches")
            return out
        except Exception as exc:
            # Pools fail in creative ways under sandboxes (PermissionError
            # on sem_open, OSError on fork, BrokenProcessPool on killed
            # workers); a genuine simulation bug re-raises identically on
            # the serial rerun below, so nothing is masked.
            self._mark_broken(exc)
            return self._summarize_serial(schedules)

    def simulate_many(
        self, schedules: Sequence[ScheduleLike]
    ) -> List[NocStats]:
        """Full-stats batch API (always in-process; summaries are the
        cheap cross-process currency — use :meth:`summarize_many` for
        swarm scoring)."""
        return self._sim.simulate_many(schedules, threads=self.threads)


def parallel_simulate_many(
    topology: Topology,
    schedules: Sequence[ScheduleLike],
    routing: Optional[RoutingTable] = None,
    config: Optional[NocConfig] = None,
    workers: WorkersSpec = 0,
    chunk_size: Optional[int] = None,
    threads: Optional[int] = None,
) -> List[ScheduleSummary]:
    """One-shot helper: shard a batch once and tear the pool down.

    Mirrors :func:`repro.noc.fastsim.simulate_many` but returns
    :class:`ScheduleSummary` columns.  Iterative callers should hold a
    :class:`ParallelNocSimulator` instead to amortize pool startup.
    """
    cfg = config if config is not None else NocConfig()
    if cfg.backend != "fast":
        import dataclasses

        cfg = dataclasses.replace(cfg, backend="fast")
    with ParallelNocSimulator(
        topology,
        routing,
        cfg,
        workers=workers,
        chunk_size=chunk_size,
        threads=threads,
    ) as sim:
        return sim.summarize_many(schedules)
