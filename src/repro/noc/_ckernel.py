"""Loader for the optional compiled NoC kernel.

The deterministic-routing hot loop of the fast backend has a C
transcription in ``_fastsim_kernel.c``.  When a C compiler is available
the kernel is built once (into the package directory, rebuilt only when
the source changes) and loaded through :mod:`ctypes`; when it is not —
or when ``REPRO_NOC_NO_CKERNEL`` (or the shorter CI alias
``REPRO_NO_CKERNEL``) is set — :func:`load_kernel` returns ``None`` and
the pure-Python engine runs instead.  No extra Python dependencies are
involved either way.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
from typing import Optional

_SRC = os.path.join(os.path.dirname(__file__), "_fastsim_kernel.c")
_SO = os.path.join(os.path.dirname(__file__), "_fastsim_kernel.so")

_i32p = ctypes.POINTER(ctypes.c_int32)
_i64p = ctypes.POINTER(ctypes.c_int64)
_u64p = ctypes.POINTER(ctypes.c_uint64)


class KernelResult(ctypes.Structure):
    """Mirror of the C ``Result`` struct."""

    _fields_ = [
        ("d_meta", _i32p),
        ("d_dst", _i32p),
        ("d_cycle", _i64p),
        ("d_hops", _i32p),
        ("d_len", ctypes.c_int64),
        ("cycles_run", ctypes.c_int64),
        ("status", ctypes.c_int32),
    ]


_ARGTYPES = [
    ctypes.c_int32,  # n_routers
    ctypes.c_int32,  # n_flat_ports
    _i32p,           # port_base
    _i32p,           # nports
    _i32p,           # deg_off
    _i32p,           # nbr
    _u64p,           # out_mask
    _i32p,           # out_gp
    _i32p,           # out_eidx
    ctypes.c_int32,  # capacity
    ctypes.c_int32,  # ej_max
    ctypes.c_int64,  # deadline
    ctypes.c_int64,  # n_packets
    _u64p,           # pk_mask
    _i32p,           # pk_srcgp
    ctypes.c_int64,  # n_buckets
    _i64p,           # bucket_cycle
    _i64p,           # bucket_off
    _i32p,           # bucket_pid
    _i64p,           # link_counts
    _i32p,           # peaks
]

# The multi-word entry point takes n_words right after n_routers; the
# mask-carrying pointers then address n_words uint64 per entry.
_ARGTYPES_MW = _ARGTYPES[:1] + [ctypes.c_int32] + _ARGTYPES[1:]

_cached: Optional[ctypes.CDLL] = None
_load_attempted = False


def _build() -> None:
    # Per-process temp name: concurrent builders (pytest-xdist workers,
    # future swarm shards) must not write into one shared path, or a
    # half-written .so could be published and then cached forever.
    tmp = f"{_SO}.{os.getpid()}.tmp"
    try:
        subprocess.run(
            ["gcc", "-O2", "-shared", "-fPIC", "-o", tmp, _SRC],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp, _SO)  # atomic publish
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def kernel_disabled() -> bool:
    """True when an env var forces the pure-Python engine."""
    return bool(
        os.environ.get("REPRO_NOC_NO_CKERNEL")
        or os.environ.get("REPRO_NO_CKERNEL")
    )


def load_kernel() -> Optional[ctypes.CDLL]:
    """Compile (if needed) and load the C kernel, or ``None``."""
    global _cached, _load_attempted
    if _load_attempted:
        return _cached
    _load_attempted = True
    if kernel_disabled():
        return None
    try:
        if (
            not os.path.exists(_SO)
            or os.path.getmtime(_SO) < os.path.getmtime(_SRC)
        ):
            _build()
        lib = ctypes.CDLL(_SO)
        lib.nocsim_run.argtypes = _ARGTYPES
        lib.nocsim_run.restype = ctypes.POINTER(KernelResult)
        # A stale .so predating the multi-word variant raises
        # AttributeError here and falls through to the Python engine.
        lib.nocsim_run_mw.argtypes = _ARGTYPES_MW
        lib.nocsim_run_mw.restype = ctypes.POINTER(KernelResult)
        lib.nocsim_free.argtypes = [ctypes.POINTER(KernelResult)]
        lib.nocsim_free.restype = None
        _cached = lib
    except Exception:
        _cached = None
    return _cached
