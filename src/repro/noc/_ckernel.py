"""Loader for the optional compiled NoC kernel.

The deterministic-routing hot loop of the fast backend has a C
transcription in ``_fastsim_kernel.c``.  When a C compiler is available
the kernel is built once (into the package directory, rebuilt when the
source *or the compile flag set* changes) and loaded through
:mod:`ctypes`; when it is not — or when ``REPRO_NOC_NO_CKERNEL`` (or
the shorter CI alias ``REPRO_NO_CKERNEL``) is set — :func:`load_kernel`
returns ``None`` and the pure-Python engine runs instead.  No extra
Python dependencies are involved either way.

The kernel is built with ``-fopenmp`` when the compiler supports it
(probed with a throwaway compile, falling back to a serial build
otherwise) so the batch entry points can run the schedules of a
``simulate_many`` batch on multiple cores.  The flag set actually used
is stamped next to the artifact (``_fastsim_kernel.so.flags``) and
compared on every load: a cached no-OpenMP build no longer shadows a
compiler upgrade, and ``REPRO_NOC_NO_OPENMP=1`` forces a serial
rebuild for fallback testing.  ``REPRO_NOC_THREADS`` caps the batch
thread count (``0`` disables the batch path entirely).
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
from typing import List, Optional

_SRC = os.path.join(os.path.dirname(__file__), "_fastsim_kernel.c")
_SO = os.path.join(os.path.dirname(__file__), "_fastsim_kernel.so")

_BASE_FLAGS = ("-O2", "-shared", "-fPIC")
_OMP_FLAG = "-fopenmp"

_i32p = ctypes.POINTER(ctypes.c_int32)
_i64p = ctypes.POINTER(ctypes.c_int64)
_u64p = ctypes.POINTER(ctypes.c_uint64)


class KernelResult(ctypes.Structure):
    """Mirror of the C ``Result`` struct."""

    _fields_ = [
        ("d_meta", _i32p),
        ("d_dst", _i32p),
        ("d_cycle", _i64p),
        ("d_hops", _i32p),
        ("d_len", ctypes.c_int64),
        ("cycles_run", ctypes.c_int64),
        ("status", ctypes.c_int32),
    ]


_ARGTYPES = [
    ctypes.c_int32,  # n_routers
    ctypes.c_int32,  # n_flat_ports
    _i32p,           # port_base
    _i32p,           # nports
    _i32p,           # deg_off
    _i32p,           # nbr
    _u64p,           # out_mask
    _i32p,           # out_gp
    _i32p,           # out_eidx
    ctypes.c_int32,  # capacity
    ctypes.c_int32,  # ej_max
    ctypes.c_int64,  # deadline
    ctypes.c_int64,  # n_packets
    _u64p,           # pk_mask
    _i32p,           # pk_srcgp
    ctypes.c_int64,  # n_buckets
    _i64p,           # bucket_cycle
    _i64p,           # bucket_off
    _i32p,           # bucket_pid
    _i64p,           # link_counts
    _i32p,           # peaks
]

# The multi-word entry point takes n_words right after n_routers; the
# mask-carrying pointers then address n_words uint64 per entry.
_ARGTYPES_MW = _ARGTYPES[:1] + [ctypes.c_int32] + _ARGTYPES[1:]

# Batch entry points: shared tables once, then CSR-concatenated
# per-schedule arrays (see the comment above nocsim_run_batch in the
# C source for the exact layout).
_ARGTYPES_BATCH = [
    ctypes.c_int32,  # n_routers
    ctypes.c_int32,  # n_flat_ports
    _i32p,           # port_base
    _i32p,           # nports
    _i32p,           # deg_off
    _i32p,           # nbr
    _u64p,           # out_mask
    _i32p,           # out_gp
    _i32p,           # out_eidx
    ctypes.c_int32,  # capacity
    ctypes.c_int32,  # ej_max
    ctypes.c_int32,  # n_edges
    ctypes.c_int64,  # n_schedules
    _i64p,           # pk_off [S+1]
    _u64p,           # pk_mask (concatenated)
    _i32p,           # pk_srcgp (concatenated)
    _i64p,           # bk_off [S+1]
    _i64p,           # bucket_cycle (concatenated)
    _i64p,           # bucket_off (concatenated, slice s at bk_off[s]+s)
    _i32p,           # bucket_pid (concatenated, schedule-local pids)
    _i64p,           # deadline [S]
    ctypes.c_int32,  # n_threads
    _i64p,           # link_counts [S * n_edges]
    _i32p,           # peaks [S * n_flat_ports]
]

_ARGTYPES_BATCH_MW = _ARGTYPES_BATCH[:1] + [ctypes.c_int32] + _ARGTYPES_BATCH[1:]

_cached: Optional[ctypes.CDLL] = None
_load_attempted = False


def _stamp_path() -> str:
    return _SO + ".flags"


def _read_stamp() -> Optional[str]:
    try:
        with open(_stamp_path()) as fh:
            return fh.read().strip()
    except OSError:
        return None


def _write_stamp(flags: List[str]) -> None:
    tmp = f"{_stamp_path()}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w") as fh:
            fh.write(" ".join(flags) + "\n")
        os.replace(tmp, _stamp_path())  # atomic publish
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _openmp_supported() -> bool:
    """Whether gcc can build the kernel with ``-fopenmp``.

    A stamp recording an OpenMP build short-circuits the probe (the
    compiler built it once already; a later failure falls back inside
    :func:`_build` anyway).  Otherwise a throwaway compile answers.
    """
    stamp = _read_stamp()
    if stamp is not None and _OMP_FLAG in stamp.split():
        return True
    probe_src = "#include <omp.h>\nint probe(void){return omp_get_max_threads();}\n"
    try:
        with tempfile.TemporaryDirectory() as tmpdir:
            src = os.path.join(tmpdir, "probe.c")
            out = os.path.join(tmpdir, "probe.so")
            with open(src, "w") as fh:
                fh.write(probe_src)
            subprocess.run(
                ["gcc", *_BASE_FLAGS, _OMP_FLAG, "-o", out, src],
                check=True,
                capture_output=True,
                timeout=60,
            )
        return True
    except Exception:
        return False


def _desired_flags() -> List[str]:
    flags = list(_BASE_FLAGS)
    if not os.environ.get("REPRO_NOC_NO_OPENMP") and _openmp_supported():
        flags.append(_OMP_FLAG)
    return flags


def _stale() -> bool:
    """True when the artifact must be (re)built."""
    if not os.path.exists(_SO):
        return True
    if os.path.getmtime(_SO) < os.path.getmtime(_SRC):
        return True
    # Flag changes (OpenMP toggled, compiler gained -fopenmp support)
    # must rebuild too — mtime alone cannot see them.
    return _read_stamp() != " ".join(_desired_flags())


def _build() -> None:
    flags = _desired_flags()
    # Per-process temp name: concurrent builders (pytest-xdist workers,
    # future swarm shards) must not write into one shared path, or a
    # half-written .so could be published and then cached forever.
    tmp = f"{_SO}.{os.getpid()}.tmp"
    try:
        try:
            subprocess.run(
                ["gcc", *flags, "-o", tmp, _SRC],
                check=True,
                capture_output=True,
                timeout=120,
            )
        except (subprocess.CalledProcessError, subprocess.TimeoutExpired):
            if _OMP_FLAG not in flags:
                raise
            flags = [f for f in flags if f != _OMP_FLAG]
            subprocess.run(
                ["gcc", *flags, "-o", tmp, _SRC],
                check=True,
                capture_output=True,
                timeout=120,
            )
        os.replace(tmp, _SO)  # atomic publish
        _write_stamp(flags)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def kernel_disabled() -> bool:
    """True when an env var forces the pure-Python engine."""
    return bool(
        os.environ.get("REPRO_NOC_NO_CKERNEL")
        or os.environ.get("REPRO_NO_CKERNEL")
    )


def resolve_threads(requested: Optional[int] = None) -> int:
    """Effective thread count for the batch kernel.

    ``requested`` wins when given; otherwise ``REPRO_NOC_THREADS`` is
    consulted.  Unset / ``auto`` / negative means one thread per core;
    ``N >= 1`` caps the team at N; ``0`` disables the batch path
    entirely (callers fall back to per-schedule calls).
    """
    if requested is None:
        raw = os.environ.get("REPRO_NOC_THREADS", "").strip().lower()
        if raw in ("", "auto"):
            requested = -1
        else:
            try:
                requested = int(raw)
            except ValueError:
                requested = -1
    requested = int(requested)
    if requested == 0:
        return 0
    if requested < 0:
        return os.cpu_count() or 1
    return requested


def openmp_enabled(lib: Optional[ctypes.CDLL] = None) -> bool:
    """True when the loaded kernel was compiled with OpenMP."""
    if lib is None:
        lib = load_kernel()
    if lib is None:
        return False
    fn = getattr(lib, "_repro_openmp", None)
    return bool(fn)


def has_batch(lib: Optional[ctypes.CDLL]) -> bool:
    """True when the loaded kernel exposes the batch entry points."""
    return bool(lib is not None and getattr(lib, "_repro_has_batch", False))


def load_kernel() -> Optional[ctypes.CDLL]:
    """Compile (if needed) and load the C kernel, or ``None``."""
    global _cached, _load_attempted
    if _load_attempted:
        return _cached
    _load_attempted = True
    if kernel_disabled():
        return None
    try:
        if _stale():
            _build()
        lib = ctypes.CDLL(_SO)
        lib.nocsim_run.argtypes = _ARGTYPES
        lib.nocsim_run.restype = ctypes.POINTER(KernelResult)
        # A stale .so predating the multi-word variant raises
        # AttributeError here and falls through to the Python engine.
        lib.nocsim_run_mw.argtypes = _ARGTYPES_MW
        lib.nocsim_run_mw.restype = ctypes.POINTER(KernelResult)
        lib.nocsim_free.argtypes = [ctypes.POINTER(KernelResult)]
        lib.nocsim_free.restype = None
        try:
            lib.nocsim_run_batch.argtypes = _ARGTYPES_BATCH
            lib.nocsim_run_batch.restype = ctypes.POINTER(KernelResult)
            lib.nocsim_run_batch_mw.argtypes = _ARGTYPES_BATCH_MW
            lib.nocsim_run_batch_mw.restype = ctypes.POINTER(KernelResult)
            lib.nocsim_free_batch.argtypes = [
                ctypes.POINTER(KernelResult),
                ctypes.c_int64,
            ]
            lib.nocsim_free_batch.restype = None
            lib.nocsim_openmp.argtypes = []
            lib.nocsim_openmp.restype = ctypes.c_int32
            lib._repro_has_batch = True
            lib._repro_openmp = bool(lib.nocsim_openmp())
        except AttributeError:
            # Pre-batch .so: single-schedule entries still work.
            lib._repro_has_batch = False
            lib._repro_openmp = False
        _cached = lib
    except Exception:
        _cached = None
    return _cached
