"""Deterministic routing tables.

Routing is represented as a next-hop table: ``next_hop[(here, dst)] ->
neighbor``.  Two algorithms are provided:

- :func:`xy_routing` — dimension-ordered XY routing for meshes/tori with
  grid positions (deadlock-free on meshes, the Noxim default);
- :func:`shortest_path_routing` — BFS next-hop tables for arbitrary
  connected graphs (trees, stars).  On trees the shortest path is unique,
  which makes this exactly the deterministic up-down tree routing CxQuad
  uses.

Tables are dense dicts; the largest architecture explored in the paper's
Fig. 6 has a few dozen routers, so table size is negligible.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


from repro.noc.topology import Topology


class RoutingTable:
    """Next-hop lookup with hop-distance queries.

    Deterministic routing exposes exactly one next hop per (here, dst);
    adaptive algorithms override :meth:`candidates` to offer several, and
    the router's selection strategy picks among them at run time.
    """

    def __init__(
        self,
        next_hop: Dict[Tuple[int, int], int],
        distance: Dict[Tuple[int, int], int],
        name: str,
    ) -> None:
        self._next_hop = next_hop
        self._distance = distance
        self.name = name

    def next_hop(self, here: int, dst: int) -> int:
        """Neighbor to forward to from ``here`` toward ``dst``."""
        if here == dst:
            raise ValueError(f"packet already at destination {dst}")
        return self._next_hop[(here, dst)]

    def candidates(self, here: int, dst: int) -> List[int]:
        """Admissible next hops (deterministic tables offer exactly one)."""
        return [self.next_hop(here, dst)]

    def distance(self, src: int, dst: int) -> int:
        """Hop count of the routed path."""
        if src == dst:
            return 0
        return self._distance[(src, dst)]


def shortest_path_routing(topology: Topology) -> RoutingTable:
    """BFS-based next-hop table for any connected topology.

    Ties between equal-length paths break toward the lowest-numbered
    neighbor, keeping the route deterministic (required for meaningful
    in-order analysis of spike streams).
    """
    g = topology.graph
    next_hop: Dict[Tuple[int, int], int] = {}
    distance: Dict[Tuple[int, int], int] = {}
    nodes = sorted(g.nodes)
    for dst in nodes:
        # BFS from dst over sorted neighbors; parent pointers give the
        # deterministic next hop toward dst from every router.
        dist = {dst: 0}
        toward: Dict[int, int] = {}
        frontier = [dst]
        while frontier:
            nxt = []
            for u in frontier:
                for v in sorted(g.neighbors(u)):
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        toward[v] = u
                        nxt.append(v)
            frontier = nxt
        for node, d in dist.items():
            if node == dst:
                continue
            next_hop[(node, dst)] = toward[node]
            distance[(node, dst)] = d
    return RoutingTable(next_hop, distance, name=f"shortest-path/{topology.kind}")


def xy_routing(topology: Topology) -> RoutingTable:
    """Dimension-ordered XY routing on a mesh with grid positions.

    Packets move along X until the destination column, then along Y.
    """
    if not topology.positions:
        raise ValueError("XY routing requires grid positions on the topology")
    pos = topology.positions
    coord_to_node = {xy: n for n, xy in pos.items()}
    next_hop: Dict[Tuple[int, int], int] = {}
    distance: Dict[Tuple[int, int], int] = {}
    nodes = sorted(topology.graph.nodes)
    for here in nodes:
        hx, hy = pos[here]
        for dst in nodes:
            if here == dst:
                continue
            dx, dy = pos[dst]
            if hx != dx:
                step = (hx + (1 if dx > hx else -1), hy)
            else:
                step = (hx, hy + (1 if dy > hy else -1))
            if step not in coord_to_node:
                raise ValueError(
                    f"XY route from {here} to {dst} leaves the grid at {step}"
                )
            nxt = coord_to_node[step]
            if not topology.graph.has_edge(here, nxt):
                raise ValueError(
                    f"XY route from {here} to {dst} uses missing link "
                    f"{here}->{nxt}"
                )
            next_hop[(here, dst)] = nxt
            distance[(here, dst)] = abs(dx - hx) + abs(dy - hy)
    return RoutingTable(next_hop, distance, name="xy/mesh")


class WestFirstRouting(RoutingTable):
    """Minimal adaptive west-first routing for meshes.

    The west-first turn model (Glass & Ni) prohibits turns *into* the
    west direction: a packet needing to travel west does all west hops
    first; afterwards it may choose adaptively among the remaining
    minimal directions (east / north / south) each hop.  Every candidate
    strictly reduces Manhattan distance, so delivery is guaranteed, and
    the turn model makes the network deadlock-free with bounded buffers.
    """

    def __init__(self, topology: Topology) -> None:
        if not topology.positions:
            raise ValueError("west-first routing requires grid positions")
        self._pos = topology.positions
        self._coord_to_node = {xy: n for n, xy in self._pos.items()}
        self._graph = topology.graph
        self.name = "west-first/mesh"

    def _neighbor(self, here: int, dx: int, dy: int) -> int:
        x, y = self._pos[here]
        target = (x + dx, y + dy)
        if target not in self._coord_to_node:
            raise ValueError(f"no router at {target} stepping from {here}")
        nxt = self._coord_to_node[target]
        if not self._graph.has_edge(here, nxt):
            raise ValueError(f"missing mesh link {here}->{nxt}")
        return nxt

    def candidates(self, here: int, dst: int) -> List[int]:
        if here == dst:
            raise ValueError(f"packet already at destination {dst}")
        hx, hy = self._pos[here]
        dx, dy = self._pos[dst]
        if dx < hx:
            # All westward travel happens first (the only admissible hop).
            return [self._neighbor(here, -1, 0)]
        options: List[int] = []
        if dx > hx:
            options.append(self._neighbor(here, 1, 0))
        if dy > hy:
            options.append(self._neighbor(here, 0, 1))
        elif dy < hy:
            options.append(self._neighbor(here, 0, -1))
        return options

    def next_hop(self, here: int, dst: int) -> int:
        """Deterministic fallback: the first admissible candidate."""
        return self.candidates(here, dst)[0]

    def distance(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        sx, sy = self._pos[src]
        dx, dy = self._pos[dst]
        return abs(dx - sx) + abs(dy - sy)


def west_first_routing(topology: Topology) -> WestFirstRouting:
    """Adaptive west-first routing for a positioned mesh topology."""
    return WestFirstRouting(topology)


def routing_for(topology: Topology) -> RoutingTable:
    """Pick the natural routing algorithm for a topology family.

    Degraded fabrics (kind ``*-degraded``, produced by
    :func:`repro.noc.faults.apply_faults`) always get shortest-path
    tables: faults break the grid regularity XY routing relies on,
    while BFS recomputes deterministic detours around whatever routers
    and links are masked out.  Both simulation backends consume the
    resulting table unchanged, so degraded fabrics keep the
    cross-backend bit-identical contract.
    """
    if topology.kind.endswith("-degraded"):
        return shortest_path_routing(topology)
    if topology.kind == "mesh" and topology.positions:
        return xy_routing(topology)
    return shortest_path_routing(topology)
