"""repro — SNN local/global synapse mapping on neuromorphic hardware.

Reproduction of Das et al., *Mapping of Local and Global Synapses on
Spiking Neuromorphic Hardware*, DATE 2018.

Subpackages
-----------
- :mod:`repro.snn` — SNN simulation substrate (CARLsim substitute)
- :mod:`repro.noc` — cycle-accurate interconnect (Noxim++ substitute)
- :mod:`repro.hardware` — crossbar platform model (CxQuad-like)
- :mod:`repro.core` — PSO partitioning (the contribution) + baselines
- :mod:`repro.metrics` — ISI distortion, disorder, congestion, reports
- :mod:`repro.obs` — tracing + metrics across the mapping/serving stack
- :mod:`repro.framework` — the Fig. 4 pipeline, explorations, CLI
- :mod:`repro.apps` — Table I applications + synthetic workloads

Quickstart
----------
>>> from repro.apps import build_application
>>> from repro.framework import run_pipeline
>>> from repro.hardware.presets import custom
>>> graph = build_application("hello_world", seed=42, duration_ms=200.0)
>>> arch = custom(n_crossbars=4, neurons_per_crossbar=40)
>>> result = run_pipeline(graph, arch, method="pso", seed=1)
>>> result.report.disorder_fraction <= 1.0
True
"""

from repro.core.mapper import MappingResult, compare_methods, map_snn
from repro.framework.pipeline import PipelineResult, run_pipeline

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "map_snn",
    "compare_methods",
    "MappingResult",
    "run_pipeline",
    "PipelineResult",
]
