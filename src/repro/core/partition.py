"""Partition representation and constraint handling (paper Eqs. 4-5).

A partition assigns every neuron to exactly one crossbar (Eq. 4) without
exceeding any crossbar's capacity (Eq. 5).  We store the assignment densely
as an int array ``assignment[neuron] -> crossbar`` — equivalent to the
paper's binary ``x_{i,k}`` matrix with the one-hot constraint built into
the representation — and enforce capacity by explicit validation plus a
repair operator used by the stochastic optimizers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Partition:
    """A validated neuron→crossbar assignment.

    Attributes
    ----------
    assignment:
        ``assignment[i]`` is the crossbar index of neuron ``i``.
    n_clusters:
        Number of crossbars ``C``.
    capacity:
        Per-crossbar neuron capacity ``Nc``.
    """

    assignment: np.ndarray
    n_clusters: int
    capacity: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "assignment", np.asarray(self.assignment, dtype=np.int64)
        )
        check_positive("n_clusters", self.n_clusters)
        check_positive("capacity", self.capacity)
        self.validate()

    def validate(self) -> None:
        a = self.assignment
        if a.ndim != 1:
            raise ValueError(f"assignment must be 1-D, got shape {a.shape}")
        if a.size == 0:
            raise ValueError("assignment is empty")
        if a.min() < 0 or a.max() >= self.n_clusters:
            raise ValueError(
                f"assignment uses clusters outside [0, {self.n_clusters}): "
                f"min={a.min()}, max={a.max()}"
            )
        sizes = self.cluster_sizes()
        worst = int(sizes.max())
        if worst > self.capacity:
            offenders = np.nonzero(sizes > self.capacity)[0].tolist()
            raise ValueError(
                f"crossbars {offenders} exceed capacity {self.capacity} "
                f"(largest has {worst} neurons)"
            )

    @property
    def n_neurons(self) -> int:
        return int(self.assignment.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Neurons placed on each crossbar."""
        return np.bincount(self.assignment, minlength=self.n_clusters)

    def one_hot(self) -> np.ndarray:
        """The paper's binary ``x_{i,k}`` matrix, shape (N, C)."""
        x = np.zeros((self.n_neurons, self.n_clusters), dtype=np.float64)
        x[np.arange(self.n_neurons), self.assignment] = 1.0
        return x

    def neurons_of(self, cluster: int) -> np.ndarray:
        """Global ids of neurons on crossbar ``cluster``."""
        return np.nonzero(self.assignment == cluster)[0]

    def utilization(self) -> float:
        """Mean fraction of used slots across crossbars."""
        return float(self.n_neurons / (self.n_clusters * self.capacity))


def is_feasible(assignment: np.ndarray, n_clusters: int, capacity: int) -> bool:
    """Check Eqs. 4-5 without raising."""
    a = np.asarray(assignment)
    if a.ndim != 1 or a.size == 0:
        return False
    if a.min() < 0 or a.max() >= n_clusters:
        return False
    return int(np.bincount(a, minlength=n_clusters).max()) <= capacity


def repair_assignment(
    assignment: np.ndarray,
    n_clusters: int,
    capacity: int,
    rng: SeedLike = None,
    move_cost: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Restore capacity feasibility with minimal disruption.

    Neurons are evicted from over-full crossbars into the emptiest ones.
    When ``move_cost`` is given (one non-negative value per neuron, e.g.
    the neuron's total synapse traffic), the *cheapest* neurons move first,
    so heavily communicating neurons keep their optimizer-chosen placement.
    Without it, evictees are chosen uniformly at random.

    Eviction targets come from a heap of under-full crossbars keyed by
    ``(size, index)``, so one repair is O((N + C) log C) instead of the
    O(C)-per-eviction argmin scan; outputs are identical to the reference
    scan (:func:`repair_assignment_reference`) because the running argmin
    is always an under-full crossbar and ties break toward lower indices
    in both.

    Returns a new array; the input is never modified.
    """
    a = np.asarray(assignment, dtype=np.int64).copy()
    if a.size > n_clusters * capacity:
        raise ValueError(
            f"{a.size} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    rng = default_rng(rng)
    sizes = np.bincount(a, minlength=n_clusters)
    overfull = [int(k) for k in np.nonzero(sizes > capacity)[0]]
    if not overfull:
        return a
    # While any crossbar is over capacity the global minimum size is
    # strictly below capacity (sum(sizes) = N <= C * capacity), so the
    # per-eviction argmin can only ever land on an under-full crossbar:
    # seeding the heap with those alone is exact, not an approximation.
    heap = [(int(s), j) for j, s in enumerate(sizes[:n_clusters]) if s < capacity]
    heapq.heapify(heap)
    for k in overfull:
        members = np.nonzero(a == k)[0]
        excess = int(sizes[k] - capacity)
        if move_cost is not None:
            order = members[np.argsort(move_cost[members], kind="stable")]
        else:
            order = rng.permutation(members)
        for neuron in order[:excess]:
            size, target = heapq.heappop(heap)
            a[neuron] = target
            if size + 1 < capacity:
                heapq.heappush(heap, (size + 1, target))
    return a


def repair_assignment_reference(
    assignment: np.ndarray,
    n_clusters: int,
    capacity: int,
    rng: SeedLike = None,
    move_cost: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The original O(C)-per-eviction repair loop, kept as the equivalence
    oracle for :func:`repair_assignment` and :func:`repair_batch`."""
    a = np.asarray(assignment, dtype=np.int64).copy()
    if a.size > n_clusters * capacity:
        raise ValueError(
            f"{a.size} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    rng = default_rng(rng)
    sizes = np.bincount(a, minlength=n_clusters)
    overfull = [int(k) for k in np.nonzero(sizes > capacity)[0]]
    for k in overfull:
        members = np.nonzero(a == k)[0]
        excess = int(sizes[k] - capacity)
        if move_cost is not None:
            order = members[np.argsort(move_cost[members], kind="stable")]
        else:
            order = rng.permutation(members)
        for neuron in order[:excess]:
            target = int(np.argmin(sizes))
            a[neuron] = target
            sizes[k] -= 1
            sizes[target] += 1
    return a


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    out = np.cumsum(counts)
    out -= counts
    return out


def repair_batch(
    assignments: np.ndarray,
    n_clusters: int,
    capacity: int,
    rng: SeedLike = None,
    move_cost: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Repair a whole ``(P, N)`` swarm of assignments at once.

    The deterministic ``move_cost`` path (the one the mapper uses) is fully
    vectorized — one batched bincount for sizes, one argsort over all
    over-full crossbars' members grouping them by (particle, crossbar,
    eviction rank), and a vectorized refill that replays the reference
    argmin sequence by consuming under-full (size-level, crossbar) slots in
    sorted order — and produces bit-for-bit the same arrays as looping
    :func:`repair_assignment` row by row.

    Without ``move_cost`` eviction is random: every particle gets its own
    child RNG stream seeded by one fixed-size draw from ``rng`` (size P,
    consumed whether or not any particle needs repair), so a particle's
    randomness never depends on which *other* particles were infeasible.

    Returns a new ``(P, N)`` int64 array; the input is never modified.
    """
    a = np.asarray(assignments, dtype=np.int64)
    if a.ndim != 2:
        raise ValueError(f"assignments must be 2-D (P, N), got shape {a.shape}")
    n_particles, n_neurons = a.shape
    if n_neurons > n_clusters * capacity:
        raise ValueError(
            f"{n_neurons} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    if n_neurons and (a.min() < 0 or a.max() >= n_clusters):
        raise ValueError(
            f"assignments use clusters outside [0, {n_clusters}): "
            f"min={a.min()}, max={a.max()}"
        )
    out = a.copy()
    if move_cost is None:
        rng = default_rng(rng)
        child_seeds = rng.integers(0, 2**63 - 1, size=n_particles)
        for i in range(n_particles):
            if np.bincount(out[i], minlength=n_clusters).max() > capacity:
                out[i] = repair_assignment(
                    out[i], n_clusters, capacity, rng=int(child_seeds[i])
                )
        return out

    offsets = np.arange(n_particles, dtype=np.int64) * n_clusters
    sizes = np.bincount(
        (out + offsets[:, None]).ravel(), minlength=n_particles * n_clusters
    ).reshape(n_particles, n_clusters)
    infeasible = np.nonzero(sizes.max(axis=1) > capacity)[0]
    if infeasible.size == 0:
        return out
    all_rows = infeasible.size == n_particles
    sub = out if all_rows else out[infeasible]        # (K, N) rows to repair
    szs = sizes if all_rows else sizes[infeasible]    # (K, C)
    k_rows, c = sub.shape[0], n_clusters

    # Evictees: one argsort groups every particle's neurons by (crossbar
    # asc, eviction rank asc).  The rank orders each crossbar's members by
    # (move_cost, neuron id), i.e. the reference repair's stable eviction
    # order.  Keys are unique within a row, so any sort kind yields the
    # same permutation — pick the narrowest dtype so integer sorts run at
    # radix/cache speed.
    cost = np.asarray(move_cost, dtype=np.float64)
    cost_rank = np.empty(n_neurons, dtype=np.int64)
    cost_rank[np.argsort(cost[:n_neurons], kind="stable")] = np.arange(n_neurons)
    key = sub * n_neurons + cost_rank[None, :]
    key_span = n_clusters * n_neurons
    if key_span <= 2**15:
        order = np.argsort(key.astype(np.int16), axis=1, kind="stable")
    elif key_span <= 2**31:
        order = np.argsort(key.astype(np.int32), axis=1)
    else:
        order = np.argsort(key, axis=1)
    # Row-major (particle, crossbar) blocks start at the sizes' exclusive
    # cumsum; evict the first `excess` (cheapest) members of each block.
    excess = np.clip(szs - capacity, 0, None)         # (K, C)
    exc_flat = excess.ravel()
    n_evict = int(exc_flat.sum())
    row_block_starts = np.cumsum(szs, axis=1) - szs
    base = (
        row_block_starts + np.arange(k_rows, dtype=np.int64)[:, None] * n_neurons
    ).ravel()
    picks = np.repeat(base, exc_flat) + (
        np.arange(n_evict, dtype=np.int64)
        - np.repeat(_exclusive_cumsum(exc_flat), exc_flat)
    )
    evict_neuron = order.ravel()[picks]               # neuron ids, row-major
    evict_row = np.repeat(
        np.arange(k_rows * c, dtype=np.int64) // c, exc_flat
    )

    # Refill targets: the reference loop sends each evictee to the current
    # argmin-sized crossbar.  That sequence equals consuming the slots
    # (level L, crossbar j) for every under-full crossbar (levels s_j ..
    # capacity-1) in ascending (L, j) order: the argmin always sits at the
    # lowest unconsumed level, ties resolving to the lowest index.
    deficits = np.clip(capacity - szs, 0, None)       # (K, C)
    def_flat = deficits.ravel()
    n_slots = int(def_flat.sum())
    slot_j = np.repeat(
        np.tile(np.arange(c, dtype=np.int64), k_rows), def_flat
    )
    slot_level = np.repeat(szs.ravel(), def_flat) + (
        np.arange(n_slots, dtype=np.int64)
        - np.repeat(_exclusive_cumsum(def_flat), def_flat)
    )
    slot_row = np.repeat(
        np.arange(k_rows * c, dtype=np.int64) // c, def_flat
    )
    slot_order = np.argsort(
        (slot_row * np.int64(capacity) + slot_level) * c + slot_j,
        kind="stable",
    )
    # First E_k slots of every particle's sorted run (E_k = its evictions).
    per_row_evictions = excess.sum(axis=1)
    run_starts = _exclusive_cumsum(deficits.sum(axis=1))
    take = np.repeat(run_starts, per_row_evictions) + (
        np.arange(n_evict, dtype=np.int64)
        - np.repeat(_exclusive_cumsum(per_row_evictions), per_row_evictions)
    )
    targets = slot_j[slot_order][take]

    rows = evict_row if all_rows else infeasible[evict_row]
    out[rows, evict_neuron] = targets
    return out


def random_assignment(
    n_neurons: int,
    n_clusters: int,
    capacity: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Uniform random feasible assignment (optimizer seeding, tests)."""
    check_positive("n_neurons", n_neurons)
    if n_neurons > n_clusters * capacity:
        raise ValueError(
            f"{n_neurons} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    rng = default_rng(rng)
    raw = rng.integers(0, n_clusters, size=n_neurons)
    return repair_assignment(raw, n_clusters, capacity, rng=rng)
