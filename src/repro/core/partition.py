"""Partition representation and constraint handling (paper Eqs. 4-5).

A partition assigns every neuron to exactly one crossbar (Eq. 4) without
exceeding any crossbar's capacity (Eq. 5).  We store the assignment densely
as an int array ``assignment[neuron] -> crossbar`` — equivalent to the
paper's binary ``x_{i,k}`` matrix with the one-hot constraint built into
the representation — and enforce capacity by explicit validation plus a
repair operator used by the stochastic optimizers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Partition:
    """A validated neuron→crossbar assignment.

    Attributes
    ----------
    assignment:
        ``assignment[i]`` is the crossbar index of neuron ``i``.
    n_clusters:
        Number of crossbars ``C``.
    capacity:
        Per-crossbar neuron capacity ``Nc``.
    """

    assignment: np.ndarray
    n_clusters: int
    capacity: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "assignment", np.asarray(self.assignment, dtype=np.int64)
        )
        check_positive("n_clusters", self.n_clusters)
        check_positive("capacity", self.capacity)
        self.validate()

    def validate(self) -> None:
        a = self.assignment
        if a.ndim != 1:
            raise ValueError(f"assignment must be 1-D, got shape {a.shape}")
        if a.size == 0:
            raise ValueError("assignment is empty")
        if a.min() < 0 or a.max() >= self.n_clusters:
            raise ValueError(
                f"assignment uses clusters outside [0, {self.n_clusters}): "
                f"min={a.min()}, max={a.max()}"
            )
        sizes = self.cluster_sizes()
        worst = int(sizes.max())
        if worst > self.capacity:
            offenders = np.nonzero(sizes > self.capacity)[0].tolist()
            raise ValueError(
                f"crossbars {offenders} exceed capacity {self.capacity} "
                f"(largest has {worst} neurons)"
            )

    @property
    def n_neurons(self) -> int:
        return int(self.assignment.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Neurons placed on each crossbar."""
        return np.bincount(self.assignment, minlength=self.n_clusters)

    def one_hot(self) -> np.ndarray:
        """The paper's binary ``x_{i,k}`` matrix, shape (N, C)."""
        x = np.zeros((self.n_neurons, self.n_clusters), dtype=np.float64)
        x[np.arange(self.n_neurons), self.assignment] = 1.0
        return x

    def neurons_of(self, cluster: int) -> np.ndarray:
        """Global ids of neurons on crossbar ``cluster``."""
        return np.nonzero(self.assignment == cluster)[0]

    def utilization(self) -> float:
        """Mean fraction of used slots across crossbars."""
        return float(self.n_neurons / (self.n_clusters * self.capacity))


def is_feasible(assignment: np.ndarray, n_clusters: int, capacity: int) -> bool:
    """Check Eqs. 4-5 without raising."""
    a = np.asarray(assignment)
    if a.ndim != 1 or a.size == 0:
        return False
    if a.min() < 0 or a.max() >= n_clusters:
        return False
    return int(np.bincount(a, minlength=n_clusters).max()) <= capacity


def repair_assignment(
    assignment: np.ndarray,
    n_clusters: int,
    capacity: int,
    rng: SeedLike = None,
    move_cost: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Restore capacity feasibility with minimal disruption.

    Neurons are evicted from over-full crossbars into the emptiest ones.
    When ``move_cost`` is given (one non-negative value per neuron, e.g.
    the neuron's total synapse traffic), the *cheapest* neurons move first,
    so heavily communicating neurons keep their optimizer-chosen placement.
    Without it, evictees are chosen uniformly at random.

    Returns a new array; the input is never modified.
    """
    a = np.asarray(assignment, dtype=np.int64).copy()
    if a.size > n_clusters * capacity:
        raise ValueError(
            f"{a.size} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    rng = default_rng(rng)
    sizes = np.bincount(a, minlength=n_clusters)
    overfull = [int(k) for k in np.nonzero(sizes > capacity)[0]]
    for k in overfull:
        members = np.nonzero(a == k)[0]
        excess = int(sizes[k] - capacity)
        if move_cost is not None:
            order = members[np.argsort(move_cost[members], kind="stable")]
        else:
            order = rng.permutation(members)
        for neuron in order[:excess]:
            target = int(np.argmin(sizes))
            a[neuron] = target
            sizes[k] -= 1
            sizes[target] += 1
    return a


def random_assignment(
    n_neurons: int,
    n_clusters: int,
    capacity: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Uniform random feasible assignment (optimizer seeding, tests)."""
    check_positive("n_neurons", n_neurons)
    if n_neurons > n_clusters * capacity:
        raise ValueError(
            f"{n_neurons} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    rng = default_rng(rng)
    raw = rng.integers(0, n_clusters, size=n_neurons)
    return repair_assignment(raw, n_clusters, capacity, rng=rng)
