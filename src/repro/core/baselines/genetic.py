"""Genetic-algorithm partitioner (ablation baseline).

Section III of the paper motivates PSO as "computationally less expensive
with faster convergence compared to its counterparts such as genetic
algorithm (GA) or simulated annealing (SA)".  This GA optimizes the
identical objective so the optimizer-ablation bench can measure that
trade-off directly:

- individuals are neuron->crossbar assignment vectors;
- tournament selection, uniform crossover, per-gene mutation;
- capacity repair after every variation (same operator PSO uses);
- elitism preserves the best individual across generations.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.fitness import InterconnectFitness
from repro.core.partition import Partition, random_assignment, repair_assignment
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class GAConfig:
    """GA hyper-parameters; defaults sized like the PSO bench budget."""

    population: int = 60
    generations: int = 40
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.02
    elite: int = 2

    def __post_init__(self) -> None:
        check_positive("population", self.population)
        check_positive("generations", self.generations)
        check_positive("tournament", self.tournament)
        check_probability("crossover_rate", self.crossover_rate)
        check_probability("mutation_rate", self.mutation_rate)
        if not 0 <= self.elite <= self.population:
            raise ValueError("elite must be within the population size")


def genetic_partition(
    graph: SpikeGraph,
    n_clusters: int,
    capacity: int,
    config: GAConfig = GAConfig(),
    seed: SeedLike = None,
    count_packets: bool = False,
) -> Partition:
    """Evolve an assignment minimizing interconnect traffic."""
    check_positive("n_clusters", n_clusters)
    check_positive("capacity", capacity)
    n = graph.n_neurons
    if n > n_clusters * capacity:
        raise ValueError(
            f"{n} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    rng = default_rng(seed)
    fitness_fn = InterconnectFitness(graph, count_packets=count_packets)
    move_cost = graph.neuron_out_traffic()

    population = np.stack([
        random_assignment(n, n_clusters, capacity, rng=rng)
        for _ in range(config.population)
    ])
    fitness = fitness_fn.evaluate_batch(population)

    def tournament_pick() -> int:
        contenders = rng.integers(0, config.population, size=config.tournament)
        return int(contenders[np.argmin(fitness[contenders])])

    for _ in range(config.generations):
        order = np.argsort(fitness, kind="stable")
        elites = population[order[: config.elite]].copy()

        children = []
        while len(children) < config.population - config.elite:
            a = population[tournament_pick()]
            b = population[tournament_pick()]
            if rng.random() < config.crossover_rate:
                mask = rng.random(n) < 0.5
                child = np.where(mask, a, b)
            else:
                child = a.copy()
            mutate = rng.random(n) < config.mutation_rate
            if mutate.any():
                child = child.copy()
                child[mutate] = rng.integers(0, n_clusters, size=int(mutate.sum()))
            child = repair_assignment(
                child, n_clusters, capacity, rng=rng, move_cost=move_cost
            )
            children.append(child)

        population = np.concatenate([elites, np.stack(children)], axis=0)
        fitness = fitness_fn.evaluate_batch(population)

    best = int(np.argmin(fitness))
    return Partition(
        assignment=population[best], n_clusters=n_clusters, capacity=capacity
    )
