"""PACMAN-style hierarchical partitioner (Galluppi et al., 2012).

PACMAN configures SNNs for SpiNNaker in two stages: a *splitter* divides
each population into sub-populations no larger than a core's capacity, and
a *partitioner* packs the sub-populations onto cores in model order.  The
process is driven entirely by population structure — it never looks at
spike traffic, which is precisely the limitation the paper exploits.

Adapted to crossbars: neurons are ordered by (layer, global id) — i.e. by
population structure — chopped into capacity-sized chunks, and the chunks
are placed onto consecutive crossbars.  Adjacent layers therefore often
share a crossbar boundary mid-population, turning dense inter-layer fan-in
into global traffic when it straddles the cut.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Partition
from repro.snn.graph import SpikeGraph
from repro.utils.validation import check_positive


def pacman_partition(
    graph: SpikeGraph,
    n_clusters: int,
    capacity: int,
) -> Partition:
    """Layer-sequential packing of neurons onto crossbars.

    Neurons sorted by (layer, id) fill crossbar 0 to capacity, then
    crossbar 1, and so on — PACMAN's split-and-pack order.
    """
    check_positive("n_clusters", n_clusters)
    check_positive("capacity", capacity)
    n = graph.n_neurons
    if n > n_clusters * capacity:
        raise ValueError(
            f"{n} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    order = np.lexsort((np.arange(n), graph.layers))
    assignment = np.empty(n, dtype=np.int64)
    assignment[order] = np.arange(n) // capacity
    return Partition(assignment=assignment, n_clusters=n_clusters, capacity=capacity)
