"""Traffic-greedy agglomerative partitioner (ablation baseline).

Synapse pairs are visited in decreasing spike-traffic order; each pair's
endpoints are merged into the same group when capacity allows.  This is a
classic "heavy-edge matching" heuristic: it localizes the hottest synapses
first and gives a strong deterministic reference point between the
traffic-blind baselines and the stochastic optimizers.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Partition
from repro.core.traffic_matrix import TrafficMatrix
from repro.snn.graph import SpikeGraph
from repro.utils.validation import check_positive


def greedy_partition(
    graph: SpikeGraph,
    n_clusters: int,
    capacity: int,
) -> Partition:
    """Union-find merge of neuron groups along hottest synapses first."""
    check_positive("n_clusters", n_clusters)
    check_positive("capacity", capacity)
    n = graph.n_neurons
    if n > n_clusters * capacity:
        raise ValueError(
            f"{n} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    matrix = TrafficMatrix(graph)

    parent = np.arange(n)
    group_size = np.ones(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    order = np.argsort(-matrix.traffic, kind="stable")
    for e in order:
        a, b = find(int(matrix.src[e])), find(int(matrix.dst[e]))
        if a == b:
            continue
        if group_size[a] + group_size[b] > capacity:
            continue
        parent[b] = a
        group_size[a] += group_size[b]

    # Bin-pack the resulting groups (largest first) onto crossbars.
    roots: dict = {}
    for i in range(n):
        roots.setdefault(find(i), []).append(i)
    groups = sorted(roots.values(), key=len, reverse=True)
    loads = np.zeros(n_clusters, dtype=np.int64)
    assignment = np.empty(n, dtype=np.int64)
    for group in groups:
        # First-fit-decreasing: put the group on the least-loaded crossbar
        # that can take it whole.
        candidates = np.argsort(loads, kind="stable")
        placed = False
        for k in candidates:
            if loads[k] + len(group) <= capacity:
                assignment[group] = k
                loads[k] += len(group)
                placed = True
                break
        if not placed:
            # Split the group across the emptiest crossbars.
            for neuron in group:
                k = int(np.argmin(loads))
                assignment[neuron] = k
                loads[k] += 1
    return Partition(assignment=assignment, n_clusters=n_clusters, capacity=capacity)
