"""Simulated-annealing partitioner (ablation baseline).

The paper motivates PSO over GA/SA on convergence speed (Section III).
This SA implementation optimizes the identical Eq. 8 objective with a
single-neuron-move neighborhood and geometric cooling, so the ablation
bench can compare solution quality at matched evaluation budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fitness import InterconnectFitness
from repro.core.partition import Partition, random_assignment
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class AnnealingConfig:
    """SA schedule: geometric cooling from ``t_initial`` by ``alpha``/step."""

    n_steps: int = 20_000
    t_initial: float = 100.0
    t_final: float = 0.01
    alpha: float = 0.999

    def __post_init__(self) -> None:
        check_positive("n_steps", self.n_steps)
        check_positive("t_initial", self.t_initial)
        check_positive("t_final", self.t_final)
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")


def annealing_partition(
    graph: SpikeGraph,
    n_clusters: int,
    capacity: int,
    config: AnnealingConfig = AnnealingConfig(),
    seed: SeedLike = None,
) -> Partition:
    """Single-neuron-move simulated annealing on the Eq. 8 objective."""
    rng = default_rng(seed)
    n = graph.n_neurons
    fitness = InterconnectFitness(graph)
    assignment = random_assignment(n, n_clusters, capacity, rng=rng)
    sizes = np.bincount(assignment, minlength=n_clusters)

    # Per-neuron incident edge lists for O(degree) move deltas.
    matrix = fitness.matrix
    incident_out: list = [[] for _ in range(n)]
    incident_in: list = [[] for _ in range(n)]
    for e in range(matrix.n_pairs):
        incident_out[int(matrix.src[e])].append(e)
        incident_in[int(matrix.dst[e])].append(e)

    def move_delta(neuron: int, new_cluster: int) -> float:
        old = int(assignment[neuron])
        delta = 0.0
        for e in incident_out[neuron]:
            other = int(assignment[matrix.dst[e]])
            delta += matrix.traffic[e] * (
                int(other != new_cluster) - int(other != old)
            )
        for e in incident_in[neuron]:
            other = int(assignment[matrix.src[e]])
            delta += matrix.traffic[e] * (
                int(other != new_cluster) - int(other != old)
            )
        return float(delta)

    def accept(delta: float, temperature: float) -> bool:
        if delta <= 0:
            return True
        return rng.random() < np.exp(-delta / temperature)

    current = fitness.evaluate(assignment)
    best = current
    best_assignment = assignment.copy()
    temperature = config.t_initial

    for step in range(config.n_steps):
        # Alternate single-neuron moves with pairwise swaps; swaps keep
        # cluster sizes fixed, so they remain available even when every
        # crossbar is at exact capacity (where moves are all infeasible).
        do_swap = step % 2 == 1
        if do_swap:
            i, j = rng.integers(0, n, size=2)
            i, j = int(i), int(j)
            ci, cj = int(assignment[i]), int(assignment[j])
            if ci == cj:
                temperature = max(temperature * config.alpha, config.t_final)
                continue
            delta = move_delta(i, cj)
            assignment[i] = cj  # tentative, so j's delta sees i moved
            delta += move_delta(j, ci)
            assignment[i] = ci
            if accept(delta, temperature):
                assignment[i], assignment[j] = cj, ci
                current += delta
        else:
            neuron = int(rng.integers(0, n))
            new_cluster = int(rng.integers(0, n_clusters))
            old_cluster = int(assignment[neuron])
            if new_cluster == old_cluster or sizes[new_cluster] >= capacity:
                temperature = max(temperature * config.alpha, config.t_final)
                continue
            delta = move_delta(neuron, new_cluster)
            if accept(delta, temperature):
                assignment[neuron] = new_cluster
                sizes[old_cluster] -= 1
                sizes[new_cluster] += 1
                current += delta
        if current < best:
            best = current
            best_assignment = assignment.copy()
        temperature = max(temperature * config.alpha, config.t_final)

    return Partition(
        assignment=best_assignment, n_clusters=n_clusters, capacity=capacity
    )
