"""Comparison partitioners.

- :func:`pacman_partition` — the paper's main comparison point: PACMAN's
  hierarchical population splitter adapted to crossbars.
- :func:`neutrams_partition` — the ad-hoc NEUTRAMS-style mapping:
  connectivity-aware but spike-traffic-unaware.
- :func:`random_partition` — random feasible placement (sanity floor).
- :func:`greedy_partition` — traffic-greedy edge clustering (ablation).
- :func:`annealing_partition` — simulated annealing on the same objective
  (the optimizer family the paper argues PSO beats on convergence).
"""

from repro.core.baselines.pacman import pacman_partition
from repro.core.baselines.neutrams import neutrams_partition
from repro.core.baselines.random_map import random_partition
from repro.core.baselines.greedy import greedy_partition
from repro.core.baselines.annealing import AnnealingConfig, annealing_partition
from repro.core.baselines.genetic import GAConfig, genetic_partition

__all__ = [
    "pacman_partition",
    "neutrams_partition",
    "random_partition",
    "greedy_partition",
    "annealing_partition",
    "AnnealingConfig",
    "genetic_partition",
    "GAConfig",
]
