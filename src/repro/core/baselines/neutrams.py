"""NEUTRAMS-style mapping (Ji et al., MICRO 2016).

The paper characterizes NEUTRAMS as an ad-hoc technique that "uses a
Network-on-Chip simulator to determine energy consumption ... without
solving the local and global synapse partitioning problem and
incorporating SNN performance".  We model it as a *connectivity-aware but
traffic-unaware* partitioner: a balanced Kernighan-Lin partition of the
unweighted synapse graph.  It minimizes the number of cut synapses — a
reasonable structural heuristic — but is blind to how many spikes each
synapse actually carries, so hot synapses end up global as often as cold
ones.
"""

from __future__ import annotations

from typing import List

import networkx as nx
import numpy as np

from repro.core.partition import Partition, repair_assignment
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive


def neutrams_partition(
    graph: SpikeGraph,
    n_clusters: int,
    capacity: int,
    seed: SeedLike = None,
) -> Partition:
    """Recursive unweighted KL bisection into ``n_clusters`` parts.

    Each recursion level splits the largest remaining part in two with
    :func:`networkx.algorithms.community.kernighan_lin_bisection` on the
    *unweighted* undirected synapse graph, until enough parts exist.  A
    final repair pass enforces crossbar capacity.
    """
    check_positive("n_clusters", n_clusters)
    check_positive("capacity", capacity)
    n = graph.n_neurons
    if n > n_clusters * capacity:
        raise ValueError(
            f"{n} neurons cannot fit in {n_clusters} x {capacity} slots"
        )
    rng = default_rng(seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for s, d in zip(graph.src, graph.dst):
        if int(s) != int(d):
            g.add_edge(int(s), int(d))  # unweighted: traffic ignored

    parts: List[set] = [set(range(n))]
    while len(parts) < n_clusters:
        parts.sort(key=len, reverse=True)
        biggest = parts.pop(0)
        if len(biggest) <= 1:
            parts.append(biggest)
            break
        sub = g.subgraph(biggest)
        half_a, half_b = nx.algorithms.community.kernighan_lin_bisection(
            sub, seed=int(rng.integers(0, 2**31 - 1))
        )
        parts.extend([set(half_a), set(half_b)])

    assignment = np.zeros(n, dtype=np.int64)
    for k, part in enumerate(parts):
        for neuron in part:
            assignment[neuron] = k
    assignment = repair_assignment(assignment, n_clusters, capacity, rng=rng)
    return Partition(assignment=assignment, n_clusters=n_clusters, capacity=capacity)
