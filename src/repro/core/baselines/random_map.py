"""Random feasible placement — the sanity floor every heuristic must beat."""

from __future__ import annotations

from repro.core.partition import Partition, random_assignment
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike


def random_partition(
    graph: SpikeGraph,
    n_clusters: int,
    capacity: int,
    seed: SeedLike = None,
) -> Partition:
    """Uniform random assignment with capacity repair."""
    assignment = random_assignment(graph.n_neurons, n_clusters, capacity, rng=seed)
    return Partition(assignment=assignment, n_clusters=n_clusters, capacity=capacity)
