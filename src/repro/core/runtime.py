"""Run-time incremental remapping (the paper's stated future work).

The DATE'18 paper closes with "Run-time SNN mapping will be addressed in
future": a deployed SNN's spike statistics drift (new stimuli, plasticity,
sensor changes), so the partition chosen at design time slowly stops being
optimal.  Recomputing a full PSO at run time is too expensive on-device;
what a runtime needs is *incremental* repair under a migration budget,
because moving a neuron between crossbars costs reprogramming its
memristor rows.

:class:`RuntimeRemapper` maintains the current assignment, accepts updated
per-synapse traffic observations, and performs bounded greedy epochs: each
epoch applies up to ``migration_budget`` single-neuron moves, always the
move with the largest traffic reduction, stopping early when no improving
move exists.  Every epoch is recorded so callers can audit what moved and
why.

The remapper also reacts to hardware faults: feeding it a
:class:`FaultEvent` marks a crossbar's cluster faulty, and subsequent
epochs *evacuate* that cluster — forced migrations that run before any
optimizing move, still under the same migration budget, and may carry
negative gains (survival beats traffic).  Faulty clusters are never the
target of an optimizing move or swap afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.partition import Partition, is_feasible
from repro.core.traffic_matrix import TrafficMatrix
from repro.obs import get_observer
from repro.snn.graph import SpikeGraph
from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class FaultEvent:
    """A hardware element failing while the application runs.

    ``crossbar`` is the cluster index of the failed compute array (the
    router keeps switching traffic — only the neurons must leave).
    ``time`` is an optional caller-defined timestamp (cycle, epoch,
    wall-clock tick) recorded for audit trails.
    """

    crossbar: int
    time: float = 0.0
    description: str = ""


@dataclass(frozen=True)
class Move:
    """One neuron migration applied by a remap epoch.

    ``forced`` marks evacuation moves off a faulty crossbar, which may
    carry negative gains; optimizing moves always gain.
    """

    neuron: int
    from_cluster: int
    to_cluster: int
    gain: float  # traffic removed from the interconnect (positive = good)
    forced: bool = False


@dataclass
class RemapEpoch:
    """Outcome of one bounded remapping epoch."""

    fitness_before: float
    fitness_after: float
    moves: List[Move] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        return self.fitness_before - self.fitness_after

    @property
    def n_migrations(self) -> int:
        return len(self.moves)


class RuntimeRemapper:
    """Incremental mapping maintenance under a migration budget."""

    def __init__(
        self,
        graph: SpikeGraph,
        n_clusters: int,
        capacity: int,
        assignment: np.ndarray,
        migration_budget: int = 8,
    ) -> None:
        check_positive("n_clusters", n_clusters)
        check_positive("capacity", capacity)
        # A zero budget is legal: the epoch observes and audits but may
        # not move anything (useful for dry-run monitoring).
        check_nonnegative("migration_budget", migration_budget)
        if not is_feasible(np.asarray(assignment), n_clusters, capacity):
            raise ValueError("initial assignment is not feasible")
        # Private copy of the spike graph: observe_traffic rewrites the
        # traffic column, and that must never leak into the caller's
        # (shared) graph object.
        self.graph = replace(graph, traffic=graph.traffic.copy())
        self.n_clusters = n_clusters
        self.capacity = capacity
        self.migration_budget = migration_budget
        self.assignment = np.asarray(assignment, dtype=np.int64).copy()
        self.history: List[RemapEpoch] = []
        self.faulty_clusters: Set[int] = set()
        self.fault_log: List[FaultEvent] = []
        self.heal_log: List[FaultEvent] = []
        self._load_matrix(TrafficMatrix(self.graph))

    def _load_matrix(self, matrix: TrafficMatrix) -> None:
        self._matrix = matrix
        n = self.graph.n_neurons
        self._incident_out: List[List[int]] = [[] for _ in range(n)]
        self._incident_in: List[List[int]] = [[] for _ in range(n)]
        for e in range(matrix.n_pairs):
            self._incident_out[int(matrix.src[e])].append(e)
            self._incident_in[int(matrix.dst[e])].append(e)

    # -- observation -------------------------------------------------------------

    def observe_traffic(self, traffic: np.ndarray) -> None:
        """Replace the per-synapse traffic with fresh observations.

        ``traffic`` must align with ``graph.src/dst`` (one value per
        synapse of the original graph).  Negative values are rejected.
        """
        traffic = np.asarray(traffic, dtype=np.float64)
        if traffic.shape != self.graph.traffic.shape:
            raise ValueError(
                f"traffic has shape {traffic.shape}, expected "
                f"{self.graph.traffic.shape}"
            )
        if (traffic < 0).any():
            raise ValueError("observed traffic must be non-negative")
        self.graph.traffic = traffic
        self._load_matrix(TrafficMatrix(self.graph))

    # -- fault feed --------------------------------------------------------------

    def apply_fault(self, event: FaultEvent) -> None:
        """Mark ``event.crossbar``'s cluster faulty; epochs evacuate it.

        Rejects out-of-range clusters and fault sets that leave less
        healthy capacity than the application has neurons — such a
        fabric cannot host the SNN at all, and pretending to remap onto
        it would only thrash the budget.
        """
        cluster = int(event.crossbar)
        if not 0 <= cluster < self.n_clusters:
            raise ValueError(
                f"crossbar {cluster} out of range [0, {self.n_clusters})"
            )
        healthy_after = self.n_clusters - len(
            self.faulty_clusters | {cluster}
        )
        if healthy_after * self.capacity < self.graph.n_neurons:
            raise ValueError(
                f"marking crossbar {cluster} faulty leaves "
                f"{healthy_after} healthy crossbars x {self.capacity} "
                f"slots for {self.graph.n_neurons} neurons"
            )
        self.faulty_clusters.add(cluster)
        self.fault_log.append(event)
        obs = get_observer()
        if obs.enabled:
            obs.inc("runtime.fault_events")
            obs.event(
                "fault.crossbar",
                crossbar=cluster,
                time=event.time,
                description=event.description,
            )

    def mark_crossbar_faulty(self, crossbar: int) -> None:
        """Shorthand for :meth:`apply_fault` without event metadata."""
        self.apply_fault(FaultEvent(crossbar=crossbar))

    def clear_fault(self, event: FaultEvent) -> None:
        """Re-admit ``event.crossbar``'s cluster after a transient fault.

        The cluster leaves :attr:`faulty_clusters`, so subsequent epochs
        may migrate load back onto it through ordinary optimizing moves
        and swaps — under the same migration budget, no special-cased
        "restore" pass.  Rejects clusters that are not currently faulty
        (a double clear is a bookkeeping bug worth surfacing).
        """
        cluster = int(event.crossbar)
        if cluster not in self.faulty_clusters:
            raise ValueError(
                f"crossbar {cluster} is not marked faulty; cannot clear"
            )
        self.faulty_clusters.discard(cluster)
        self.heal_log.append(event)
        obs = get_observer()
        if obs.enabled:
            obs.inc("runtime.heal_events")
            obs.event(
                "fault.crossbar_healed",
                crossbar=cluster,
                time=event.time,
                description=event.description,
            )

    def mark_crossbar_healed(self, crossbar: int) -> None:
        """Shorthand for :meth:`clear_fault` without event metadata."""
        self.clear_fault(FaultEvent(crossbar=crossbar))

    def sync_faults(
        self, crossbars: Iterable[int], time: float = 0.0
    ) -> Tuple[List[int], List[int]]:
        """Reconcile :attr:`faulty_clusters` with an external fault view.

        ``crossbars`` is the complete set of crossbars faulty *now*
        (e.g. :meth:`~repro.noc.faults.FaultTimeline.crossbars_at`);
        newly faulty ones get an :meth:`apply_fault`, healed ones a
        :meth:`clear_fault`, both stamped with ``time``.  Returns the
        ``(arrived, cleared)`` cluster lists, ascending.
        """
        target = {int(k) for k in crossbars}
        arrived = sorted(target - self.faulty_clusters)
        cleared = sorted(self.faulty_clusters - target)
        # Clears first: a fault migrating from one crossbar to another
        # in a single edge must not trip the healthy-capacity check on
        # the arrival while the healed cluster still counts as faulty.
        for cluster in cleared:
            self.clear_fault(
                FaultEvent(crossbar=cluster, time=time,
                           description="timeline clear")
            )
        for cluster in arrived:
            self.apply_fault(
                FaultEvent(crossbar=cluster, time=time,
                           description="timeline arrive")
            )
        return arrived, cleared

    def neurons_on(self, cluster: int) -> List[int]:
        """Neurons currently assigned to ``cluster``, ascending."""
        return [int(n) for n in np.flatnonzero(self.assignment == cluster)]

    def evacuated(self, cluster: int) -> bool:
        """Whether no neuron remains on ``cluster``."""
        return not (self.assignment == cluster).any()

    # -- queries ---------------------------------------------------------------------

    def fitness(self) -> float:
        """Current interconnect spike traffic (Eq. 8) of the live mapping."""
        return self._matrix.global_traffic(self.assignment)

    def partition(self) -> Partition:
        return Partition(
            assignment=self.assignment.copy(),
            n_clusters=self.n_clusters,
            capacity=self.capacity,
        )

    def _move_gain(self, neuron: int, new_cluster: int) -> float:
        """Traffic reduction if ``neuron`` moves to ``new_cluster``."""
        matrix = self._matrix
        a = self.assignment
        old = int(a[neuron])
        gain = 0.0
        for e in self._incident_out[neuron]:
            other = int(a[matrix.dst[e]])
            gain += matrix.traffic[e] * (
                int(other != old) - int(other != new_cluster)
            )
        for e in self._incident_in[neuron]:
            other = int(a[matrix.src[e]])
            gain += matrix.traffic[e] * (
                int(other != old) - int(other != new_cluster)
            )
        return float(gain)

    def _best_move(self, sizes: np.ndarray) -> Optional[Tuple[int, int, float]]:
        best: Optional[Tuple[int, int, float]] = None
        for neuron in range(self.graph.n_neurons):
            if not self._incident_out[neuron] and not self._incident_in[neuron]:
                continue  # isolated neuron: no move can help
            old = int(self.assignment[neuron])
            for cluster in range(self.n_clusters):
                if cluster == old or sizes[cluster] >= self.capacity:
                    continue
                if cluster in self.faulty_clusters:
                    continue
                gain = self._move_gain(neuron, cluster)
                if gain > 1e-12 and (best is None or gain > best[2]):
                    best = (neuron, cluster, gain)
        return best

    def _evacuation_move(
        self, sizes: np.ndarray
    ) -> Optional[Tuple[int, int, float]]:
        """Best forced move off a faulty cluster; gain may be negative.

        Among every stranded neuron and healthy cluster with a free
        slot, pick the pair losing the least traffic (or gaining the
        most).  ``None`` when nothing is stranded or no healthy slot
        remains — the caller reports the stranded neurons honestly
        rather than violating capacity.
        """
        best: Optional[Tuple[int, int, float]] = None
        for cluster in sorted(self.faulty_clusters):
            for neuron in self.neurons_on(cluster):
                for target in range(self.n_clusters):
                    if (
                        target in self.faulty_clusters
                        or sizes[target] >= self.capacity
                    ):
                        continue
                    gain = self._move_gain(neuron, target)
                    if best is None or gain > best[2]:
                        best = (neuron, target, gain)
        return best

    def _swap_gain(self, i: int, j: int) -> float:
        """Exact traffic reduction of swapping the clusters of i and j."""
        a = self.assignment
        ci, cj = int(a[i]), int(a[j])
        gain = self._move_gain(i, cj)
        a[i] = cj  # tentative so j's gain sees i already moved
        gain += self._move_gain(j, ci)
        a[i] = ci
        return gain

    def _best_swap(self, top_k: int = 8) -> Optional[Tuple[int, int, float]]:
        """Best pairwise exchange, found via per-neuron desired moves.

        Capacity-blocked improvements manifest as *desires*: neuron i
        wants cluster b, neuron j in b wants i's cluster a.  Pairing the
        strongest opposite desires and scoring the exact swap gain finds
        the improving exchange without an O(N^2) scan.
        """
        desires: dict = {}
        a = self.assignment
        for neuron in range(self.graph.n_neurons):
            if not self._incident_out[neuron] and not self._incident_in[neuron]:
                continue
            own = int(a[neuron])
            for cluster in range(self.n_clusters):
                if cluster == own or cluster in self.faulty_clusters:
                    continue
                gain = self._move_gain(neuron, cluster)
                if gain > 1e-12:
                    desires.setdefault((own, cluster), []).append(
                        (gain, neuron)
                    )
        best: Optional[Tuple[int, int, float]] = None
        for (ca, cb), forward in desires.items():
            reverse = desires.get((cb, ca))
            if not reverse or ca > cb:
                continue  # unordered pairs once
            for _, i in sorted(forward, reverse=True)[:top_k]:
                for _, j in sorted(reverse, reverse=True)[:top_k]:
                    gain = self._swap_gain(i, j)
                    if gain > 1e-12 and (best is None or gain > best[2]):
                        best = (i, j, gain)
        return best

    # -- the epoch ------------------------------------------------------------------

    def remap_epoch(self) -> RemapEpoch:
        """Apply the best moves/swaps, up to ``migration_budget`` migrations.

        Evacuation runs first: while any neuron sits on a faulty
        cluster, the least-costly forced move off it is applied (its
        gain recorded even when negative).  Remaining budget then goes
        to optimization: a swap migrates two neurons and therefore
        consumes two units of budget; it is only considered when single
        moves are exhausted or the swap's gain beats the best single
        move.
        """
        obs = get_observer()
        with obs.span(
            "runtime.remap_epoch", budget=self.migration_budget
        ) as span:
            epoch = self._remap_epoch_impl()
        if obs.enabled:
            forced_moves = sum(1 for m in epoch.moves if m.forced)
            span.set(
                migrations=epoch.n_migrations,
                forced=forced_moves,
                improvement=epoch.improvement,
            )
            obs.inc("runtime.remap_epochs")
            obs.inc("runtime.migrations", epoch.n_migrations)
            obs.inc("runtime.evacuations", forced_moves)
        return epoch

    def _remap_epoch_impl(self) -> RemapEpoch:
        epoch = RemapEpoch(fitness_before=self.fitness(),
                           fitness_after=0.0)
        sizes = np.bincount(self.assignment, minlength=self.n_clusters)
        budget = self.migration_budget
        while budget > 0 and any(
            not self.evacuated(c) for c in self.faulty_clusters
        ):
            forced = self._evacuation_move(sizes)
            if forced is None:
                break  # stranded: no healthy slot left for them
            neuron, cluster, gain = forced
            old = int(self.assignment[neuron])
            self.assignment[neuron] = cluster
            sizes[old] -= 1
            sizes[cluster] += 1
            epoch.moves.append(
                Move(neuron=neuron, from_cluster=old,
                     to_cluster=cluster, gain=gain, forced=True)
            )
            budget -= 1
        while budget > 0:
            move = self._best_move(sizes)
            swap = self._best_swap() if budget >= 2 else None
            move_gain = move[2] if move else 0.0
            swap_gain = swap[2] if swap else 0.0
            if move is None and swap is None:
                break
            if swap is not None and swap_gain > move_gain:
                i, j, gain = swap
                ci, cj = int(self.assignment[i]), int(self.assignment[j])
                # Attribute the exact sequential gains: i's move scored
                # against the current assignment, j's as the remainder
                # (= its gain once i has moved).  The two always sum to
                # the swap's total, so per-move gains add up to the
                # epoch improvement.
                gain_i = self._move_gain(i, cj)
                self.assignment[i], self.assignment[j] = cj, ci
                epoch.moves.append(Move(neuron=i, from_cluster=ci,
                                        to_cluster=cj, gain=gain_i))
                epoch.moves.append(Move(neuron=j, from_cluster=cj,
                                        to_cluster=ci, gain=gain - gain_i))
                budget -= 2
            else:
                neuron, cluster, gain = move
                old = int(self.assignment[neuron])
                self.assignment[neuron] = cluster
                sizes[old] -= 1
                sizes[cluster] += 1
                epoch.moves.append(
                    Move(neuron=neuron, from_cluster=old,
                         to_cluster=cluster, gain=gain)
                )
                budget -= 1
        epoch.fitness_after = self.fitness()
        self.history.append(epoch)
        return epoch

    def total_migrations(self) -> int:
        return sum(e.n_migrations for e in self.history)


@dataclass(frozen=True)
class TimelineStep:
    """Audit record of one :func:`run_fault_timeline` edge.

    ``arrived``/``cleared`` are the crossbar clusters whose faults
    appeared or healed at ``time``; ``epochs`` are the remap epochs run
    in response (in order), already appended to the remapper's history.
    """

    time: float
    arrived: Tuple[int, ...]
    cleared: Tuple[int, ...]
    epochs: Tuple[RemapEpoch, ...]


def run_fault_timeline(
    remapper: RuntimeRemapper,
    timeline: "FaultTimeline",
    epochs_per_edge: int = 1,
) -> List[TimelineStep]:
    """Drive a remapper through a transient-fault timeline.

    At every edge of ``timeline`` (each instant where the active fault
    set changes) the remapper's fault view is synchronized via
    :meth:`RuntimeRemapper.sync_faults` — arrivals trigger evacuation,
    clears re-admit the healed cluster — and ``epochs_per_edge`` remap
    epochs run under the remapper's ordinary migration budget, letting
    load drain off dying crossbars and flow back onto healed ones.
    Returns one :class:`TimelineStep` per edge.
    """
    check_positive("epochs_per_edge", epochs_per_edge)
    obs = get_observer()
    steps: List[TimelineStep] = []
    for time in timeline.edges():
        arrived, cleared = remapper.sync_faults(
            timeline.crossbars_at(time), time=time
        )
        epochs = tuple(
            remapper.remap_epoch() for _ in range(epochs_per_edge)
        )
        steps.append(
            TimelineStep(
                time=time,
                arrived=tuple(arrived),
                cleared=tuple(cleared),
                epochs=epochs,
            )
        )
        if obs.enabled:
            obs.inc("runtime.timeline_steps")
    return steps


if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.noc.faults import FaultTimeline
