"""Fitness functions for the partitioning optimizers.

The paper's objective (Eq. 8) is the total spike count on the global
synapse interconnect.  :class:`InterconnectFitness` evaluates it for
single assignments and swarm batches, with two refinements available as
options (both default off, matching the paper):

- ``count_packets`` — count unique (neuron, destination-crossbar) packets
  instead of per-synapse spikes.  With in-network multicast a neuron
  reaching many neurons on one remote crossbar sends one AER packet, so
  this variant matches the hardware cost more closely; the ablation bench
  compares both.
- ``hop_weighted`` — weight each crossing by the routed hop distance
  between the two crossbars, approximating energy rather than congestion.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.traffic_matrix import TrafficMatrix, cluster_traffic
from repro.noc.routing import RoutingTable
from repro.noc.topology import Topology
from repro.snn.graph import SpikeGraph


class InterconnectFitness:
    """Spike-communication objective over a fixed spike graph.

    Lower is better.  ``evaluate`` takes one assignment; ``evaluate_batch``
    takes a (P, N) swarm and returns (P,) fitness values.
    """

    def __init__(
        self,
        graph: SpikeGraph,
        count_packets: bool = False,
        hop_weighted: bool = False,
        topology: Optional[Topology] = None,
        routing: Optional[RoutingTable] = None,
    ) -> None:
        self.graph = graph
        self.matrix = TrafficMatrix(graph)
        self.count_packets = count_packets
        self.hop_weighted = hop_weighted
        if hop_weighted and (topology is None or routing is None):
            raise ValueError(
                "hop_weighted fitness needs a topology and routing table"
            )
        self.topology = topology
        self.routing = routing

    # -- single assignment ------------------------------------------------------

    def evaluate(self, assignment: np.ndarray) -> float:
        """Objective value of one assignment (lower is better)."""
        a = np.asarray(assignment, dtype=np.int64)
        if self.hop_weighted:
            return self._hop_weighted(a)
        if self.count_packets:
            return self.matrix.packet_traffic(a)
        return self.matrix.global_traffic(a)

    def evaluate_batch(self, assignments: np.ndarray) -> np.ndarray:
        """Objective values for a (P, N) batch of assignments."""
        a = np.asarray(assignments, dtype=np.int64)
        if a.ndim == 1:
            a = a[None, :]
        if self.hop_weighted:
            return np.asarray([self.evaluate(row) for row in a])
        if self.count_packets:
            return self.matrix.packet_traffic_batch(a)
        return self.matrix.global_traffic_batch(a)

    @property
    def upper_bound(self) -> float:
        """Fitness when every synapse is global (all traffic crosses)."""
        return self.matrix.total

    # -- variants ---------------------------------------------------------------

    def _hop_weighted(self, assignment: np.ndarray) -> float:
        n_clusters = int(assignment.max()) + 1
        matrix = cluster_traffic(self.graph, assignment, n_clusters)
        total = 0.0
        for k1 in range(n_clusters):
            n1 = self.topology.node_of_crossbar(k1)
            for k2 in range(n_clusters):
                if k1 == k2 or matrix[k1, k2] == 0.0:
                    continue
                n2 = self.topology.node_of_crossbar(k2)
                total += matrix[k1, k2] * self.routing.distance(n1, n2)
        return total
