"""Fitness functions for the partitioning optimizers.

The paper's objective (Eq. 8) is the total spike count on the global
synapse interconnect.  :class:`InterconnectFitness` evaluates it for
single assignments and swarm batches, with three refinements available
as options (all default off, matching the paper):

- ``count_packets`` — count unique (neuron, destination-crossbar) packets
  instead of per-synapse spikes.  With in-network multicast a neuron
  reaching many neurons on one remote crossbar sends one AER packet, so
  this variant matches the hardware cost more closely; the ablation bench
  compares both.
- ``hop_weighted`` — weight each crossing by the routed hop distance
  between the two crossbars, approximating energy rather than congestion.
  Evaluated through a precomputed crossbar-to-crossbar hop matrix, so
  swarm batches reduce to one fancy-indexing pass over the synapse pairs.
- ``noc_in_loop`` — score an assignment by actually simulating its AER
  traffic on the interconnect with the fast vectorized backend
  (:mod:`repro.noc.fastsim`) and reading a congestion-aware metric off
  the resulting :class:`~repro.noc.stats.NocStats`.  This is the most
  faithful objective the system has: it sees buffering, arbitration and
  multicast forking, not just traffic counts.  Swarm batches run through
  :meth:`~repro.noc.fastsim.FastInterconnect.simulate_many`, which
  amortizes the routing tables across the whole swarm, and with
  ``workers > 1`` the batch is sharded across worker processes
  (:class:`~repro.noc.parallel.ParallelNocSimulator`) with bit-identical
  results.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.traffic_matrix import TrafficMatrix
from repro.noc.routing import RoutingTable
from repro.noc.topology import Topology
from repro.snn.graph import SpikeGraph

#: Penalty per undelivered (packet, destination) pair in noc_in_loop
#: mode: a mapping that deadlocks or cannot drain must always lose to
#: any mapping that delivers everything.
UNDELIVERED_PENALTY = 1e9


class InterconnectFitness:
    """Spike-communication objective over a fixed spike graph.

    Lower is better.  ``evaluate`` takes one assignment; ``evaluate_batch``
    takes a (P, N) swarm and returns (P,) fitness values.

    Parameters
    ----------
    noc_in_loop:
        Score assignments by cycle-accurate NoC simulation (fast
        backend) instead of closed-form traffic counts.  Requires
        ``topology``.
    noc_metric:
        What to read off the simulation in ``noc_in_loop`` mode:
        ``"hops"`` (total link traversals — the energy-proportional
        event count) or ``"latency"`` (mean spike latency in cycles).
        Undelivered packets add :data:`UNDELIVERED_PENALTY` each.
    noc_config:
        Interconnect parameters for ``noc_in_loop`` mode; the backend is
        forced to "fast".
    cycles_per_ms:
        Spike-time to NoC-cycle conversion for ``noc_in_loop`` mode.
    workers:
        Worker processes for ``noc_in_loop`` batch scoring: ``1``
        (default) keeps the serial in-process path, ``0`` or ``"auto"``
        uses one worker per CPU.  Results are bit-identical either way;
        if the pool cannot start (sandboxed CI), scoring falls back to
        serial with a warning.  Call :meth:`close` (or use the instance
        as a context manager) to release the pool.
    threads:
        Thread cap for the compiled batch kernel in ``noc_in_loop``
        mode (``None`` defers to ``REPRO_NOC_THREADS``, ``0`` disables
        it).  When the kernel was built with OpenMP, whole swarm
        batches run in one GIL-free C call across cores — preferred
        over the process pool when both are available, bit-identical
        either way.
    cache:
        An :class:`~repro.framework.artifacts.ArtifactCache` for derived
        artifacts (the crossbar hop matrix, the default routing table of
        the ``noc_in_loop`` engine).  ``None`` uses the process-wide
        default cache, so content-identical (topology, routing) pairs
        share one hop matrix across fitness instances and sweep points.
    coalescer:
        Serving-layer hook: when set, ``noc_in_loop`` swarm batches are
        routed through
        :meth:`~repro.framework.service.SwarmCoalescer.score`, which
        merges concurrently scoring requests on the same fabric into one
        shared build/simulate batch (bit-identical per row).
    balance_watermark / balance_weight:
        Fault-aware spreading term: each cluster packing more than
        ``balance_watermark`` neurons adds
        ``balance_weight * overflow**2`` to the objective, steering the
        optimizer toward spread-out mappings whose crossbars keep spare
        slots — the headroom that makes runtime evacuation cheap when a
        crossbar dies.  Off by default (``balance_weight == 0``); see
        ``map_snn(..., spare_capacity=)`` for the user-facing knob.
    """

    def __init__(
        self,
        graph: SpikeGraph,
        count_packets: bool = False,
        hop_weighted: bool = False,
        topology: Optional[Topology] = None,
        routing: Optional[RoutingTable] = None,
        noc_in_loop: bool = False,
        noc_metric: str = "hops",
        noc_config=None,
        cycles_per_ms: float = 10.0,
        workers=1,
        threads=None,
        cache=None,
        coalescer=None,
        balance_watermark: Optional[int] = None,
        balance_weight: float = 0.0,
    ) -> None:
        self.graph = graph
        self.matrix = TrafficMatrix(graph)
        self.count_packets = count_packets
        self.hop_weighted = hop_weighted
        if balance_weight < 0:
            raise ValueError(
                f"balance_weight must be non-negative, got {balance_weight}"
            )
        if balance_weight > 0 and (
            balance_watermark is None or balance_watermark <= 0
        ):
            raise ValueError(
                "balance_weight needs a positive balance_watermark, got "
                f"{balance_watermark}"
            )
        self.balance_watermark = balance_watermark
        self.balance_weight = float(balance_weight)
        if hop_weighted and (topology is None or routing is None):
            raise ValueError(
                "hop_weighted fitness needs a topology and routing table"
            )
        if noc_in_loop and topology is None:
            raise ValueError("noc_in_loop fitness needs a topology")
        if noc_metric not in ("hops", "latency"):
            raise ValueError(
                f"unknown noc_metric {noc_metric!r}; use 'hops' or 'latency'"
            )
        self.topology = topology
        self.routing = routing
        self.noc_in_loop = noc_in_loop
        self.noc_metric = noc_metric
        self.cycles_per_ms = cycles_per_ms
        self._cache = cache
        self._coalescer = coalescer
        self._noc = None
        self._parallel = None
        if noc_in_loop:
            import dataclasses

            from repro.noc.fastsim import FastInterconnect
            from repro.noc.interconnect import NocConfig
            from repro.noc.parallel import resolve_workers

            base = noc_config if noc_config is not None else NocConfig()
            cfg = dataclasses.replace(base, backend="fast")
            # With an explicit artifact cache the routing table is shared
            # across content-identical fabrics instead of re-derived per
            # engine; the table is read-only after construction, so the
            # engine is identical either way.
            if routing is None and cache is not None:
                routing = cache.routing(topology)
            self._noc = FastInterconnect(topology, routing, cfg)
            self.workers = resolve_workers(workers)
        else:
            self.workers = 1
        self.threads = threads

    def close(self) -> None:
        """Release the worker pool, if batch scoring ever started one."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "InterconnectFitness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- single assignment ------------------------------------------------------

    def evaluate(self, assignment: np.ndarray) -> float:
        """Objective value of one assignment (lower is better)."""
        a = np.asarray(assignment, dtype=np.int64)
        if self.noc_in_loop:
            base = self._simulate_one(a)
        elif self.hop_weighted:
            base = self._hop_weighted(a)
        elif self.count_packets:
            base = self.matrix.packet_traffic(a)
        else:
            base = self.matrix.global_traffic(a)
        if self.balance_weight > 0:
            base += self._balance_penalty(a[None, :])[0]
        return base

    def evaluate_batch(self, assignments: np.ndarray) -> np.ndarray:
        """Objective values for a (P, N) batch of assignments."""
        a = np.asarray(assignments, dtype=np.int64)
        if a.ndim == 1:
            a = a[None, :]
        if self.noc_in_loop:
            base = self._simulate_batch(a)
        elif self.hop_weighted:
            base = self._hop_weighted_batch(a)
        elif self.count_packets:
            base = self.matrix.packet_traffic_batch(a)
        else:
            base = self.matrix.global_traffic_batch(a)
        if self.balance_weight > 0:
            base = base + self._balance_penalty(a)
        return base

    def _balance_penalty(self, assignments: np.ndarray) -> np.ndarray:
        """Quadratic overflow past the watermark, per swarm row.

        ``sum_c max(0, count_c - watermark)**2`` scaled by
        ``balance_weight`` — zero for any row whose clusters all stay at
        or under the watermark, growing quadratically as neurons pile
        onto one crossbar.  Vectorized over the whole (P, N) batch with
        one scatter-add.
        """
        p, _ = assignments.shape
        n_clusters = int(assignments.max()) + 1 if assignments.size else 1
        counts = np.zeros((p, n_clusters), dtype=np.int64)
        np.add.at(
            counts,
            (np.repeat(np.arange(p), assignments.shape[1]),
             assignments.ravel()),
            1,
        )
        overflow = np.clip(counts - self.balance_watermark, 0, None)
        return self.balance_weight * (
            (overflow.astype(np.float64) ** 2).sum(axis=1)
        )

    @property
    def upper_bound(self) -> float:
        """Fitness when every synapse is global (all traffic crosses)."""
        return self.matrix.total

    # -- hop-weighted variant ---------------------------------------------------

    def _hop_distances(self) -> np.ndarray:
        """Crossbar-to-crossbar routed hop matrix, shape (C, C).

        Sized from the topology's attach-point count — never from an
        assignment's maximum cluster id — so assignments that leave
        trailing crossbars empty index the same matrix as full ones.

        Routed through the content-addressed artifact cache (the given
        one, or the process default): sweeps that rebuild an identical
        (topology, routing) pair per point share one matrix instead of
        re-deriving it per fitness instance.
        """
        cache = self._cache
        if cache is None:
            from repro.framework.artifacts import default_cache

            cache = self._cache = default_cache()
        return cache.hop_matrix(self.topology, self.routing)

    def _check_clusters(self, a: np.ndarray) -> None:
        c = self.topology.n_attach_points
        if a.size and int(a.max()) >= c:
            raise ValueError(
                f"assignment uses cluster {int(a.max())} but the topology "
                f"has only {c} crossbar attach points"
            )

    def _hop_weighted(self, assignment: np.ndarray) -> float:
        """Eq. 8 weighted by routed hop distance, one assignment.

        One gather over the pre-merged synapse pairs: traffic on pair
        (i, j) costs ``D[a[i], a[j]]`` hops (zero when co-located).
        """
        self._check_clusters(assignment)
        d = self._hop_distances()
        m = self.matrix
        return float(
            (m.traffic * d[assignment[m.src], assignment[m.dst]]).sum()
        )

    def _hop_weighted_batch(self, assignments: np.ndarray) -> np.ndarray:
        """Hop-weighted fitness for a (P, N) swarm in one gather."""
        self._check_clusters(assignments)
        d = self._hop_distances()
        m = self.matrix
        if m.n_pairs == 0:
            return np.zeros(assignments.shape[0], dtype=np.float64)
        # (P, E) hop distances via one fancy-indexing pass, then a
        # traffic-weighted row sum.
        hop = d[assignments[:, m.src], assignments[:, m.dst]]
        return hop @ m.traffic

    # -- NoC-in-the-loop variant ------------------------------------------------

    def _score(self, summary) -> float:
        """Objective from a :class:`~repro.noc.parallel.ScheduleSummary`.

        Integer-exact inputs (hop totals, latency sums, delivery counts)
        make this bit-identical whether the summary came from the serial
        path or from a worker process.
        """
        if self.noc_metric == "latency":
            value = summary.mean_latency
        else:
            value = float(summary.total_hops)
        return value + UNDELIVERED_PENALTY * summary.undelivered

    def _simulate_one(self, assignment: np.ndarray) -> float:
        from repro.noc.parallel import summarize
        from repro.noc.traffic import build_injections

        self._check_clusters(assignment)
        schedule = build_injections(
            self.graph, assignment, self.topology,
            cycles_per_ms=self.cycles_per_ms,
        )
        return self._score(
            summarize(self._noc.simulate(schedule), self.topology)
        )

    def _simulate_batch(self, assignments: np.ndarray) -> np.ndarray:
        from repro.noc.parallel import ParallelNocSimulator, summarize
        from repro.noc.traffic import build_injections_batch

        self._check_clusters(assignments)
        if self._coalescer is not None:
            # Serving layer: merge this batch with other requests scoring
            # on the same fabric right now.  Each row is built and
            # simulated exactly as below, so the scores are bit-identical
            # to the solo path.
            return self._coalescer.score(self, assignments)
        # One columnar batch: spike events are computed once and each
        # particle only re-derives its destination sets; the schedules
        # flow to the simulator (and across worker processes) as array
        # shards, never as per-packet Injection objects.
        schedules = build_injections_batch(
            self.graph, assignments, self.topology,
            cycles_per_ms=self.cycles_per_ms,
        )
        if self.workers > 1:
            if self._parallel is None:
                self._parallel = ParallelNocSimulator(
                    self._noc, workers=self.workers, threads=self.threads
                )
            summaries = self._parallel.summarize_many(schedules)
        else:
            summaries = [
                summarize(s, self.topology)
                for s in self._noc.simulate_many(
                    schedules, threads=self.threads
                )
            ]
        return np.asarray(
            [self._score(s) for s in summaries], dtype=np.float64
        )
