"""Spike-traffic aggregation (paper Eqs. 6-7).

The spike graph gives per-synapse traffic ``T_ij`` (spikes the synapse
carries).  For a candidate partition we need two aggregates:

- ``cluster_traffic`` — the C x C matrix ``spikes(k1, k2)`` of Eq. 7:
  spikes crossing from crossbar ``k1`` to ``k2`` (zero diagonal);
- fast scalar fitness — the off-diagonal sum (Eq. 8), which
  :mod:`repro.core.fitness` evaluates for whole swarms at once.

:class:`TrafficMatrix` pre-aggregates the graph's edges into unique
(src, dst) neuron pairs with summed traffic and caches the sparse
neuron-level matrix used by the vectorized swarm evaluation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.snn.graph import SpikeGraph

try:  # scipy speeds up swarm-batched fitness; the fallback is pure numpy.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is installed in CI
    _sparse = None


class TrafficMatrix:
    """Neuron-level spike-traffic matrix with cluster aggregation helpers."""

    def __init__(self, graph: SpikeGraph) -> None:
        self.n_neurons = graph.n_neurons
        # Per-neuron outgoing spike count, taken from the *raw* edges:
        # every out-synapse of a neuron carries that neuron's full spike
        # train, so each raw edge's traffic equals the neuron's spike
        # count and max() recovers it exactly.  (Computed before pair
        # merging — merged parallel synapses would double-count.)
        self.neuron_spikes = np.zeros(self.n_neurons, dtype=np.float64)
        if graph.src.size:
            np.maximum.at(self.neuron_spikes, graph.src, graph.traffic)
        # Merge parallel synapses between the same neuron pair: their
        # traffic adds, and the optimizer only sees pairwise totals.
        pair_key = graph.src * graph.n_neurons + graph.dst
        order = np.argsort(pair_key, kind="stable")
        key_sorted = pair_key[order]
        traffic_sorted = graph.traffic[order]
        unique_keys, starts = np.unique(key_sorted, return_index=True)
        sums = np.add.reduceat(traffic_sorted, starts) if unique_keys.size else (
            np.empty(0, dtype=np.float64)
        )
        self.src = (unique_keys // graph.n_neurons).astype(np.int64)
        self.dst = (unique_keys % graph.n_neurons).astype(np.int64)
        self.traffic = np.asarray(sums, dtype=np.float64)
        # Self-loops can never be global; drop them from the hot arrays.
        off_diag = self.src != self.dst
        self.src = self.src[off_diag]
        self.dst = self.dst[off_diag]
        self.traffic = self.traffic[off_diag]
        self.total = float(self.traffic.sum())
        self._csr = self._build_sparse(self.traffic)
        self._adj_csr = self._build_sparse(np.ones_like(self.traffic))

    def _build_sparse(self, values: np.ndarray):
        if _sparse is None:
            return None
        return _sparse.csr_matrix(
            (values, (self.src, self.dst)),
            shape=(self.n_neurons, self.n_neurons),
        )

    @property
    def n_pairs(self) -> int:
        return int(self.src.shape[0])

    # -- scalar evaluation ----------------------------------------------------

    def global_traffic(self, assignment: np.ndarray) -> float:
        """Eq. 8: spikes crossing crossbar boundaries under ``assignment``."""
        a = np.asarray(assignment)
        cross = a[self.src] != a[self.dst]
        return float(self.traffic[cross].sum())

    def local_traffic(self, assignment: np.ndarray) -> float:
        """Spikes on synapses kept inside a crossbar."""
        return self.total - self.global_traffic(assignment)

    # -- batched evaluation (one swarm at a time) --------------------------------

    def global_traffic_batch(self, assignments: np.ndarray) -> np.ndarray:
        """Eq. 8 for a batch of assignments, shape (P, N) -> (P,).

        Uses one sparse-matrix x dense-block product per call when scipy is
        available: intra-cluster traffic of particle p is
        ``sum_c x_pc^T W x_pc`` with one-hot columns ``x_pc``.
        """
        a = np.asarray(assignments)
        if a.ndim == 1:
            return np.asarray([self.global_traffic(a)])
        n_particles, n = a.shape
        if n != self.n_neurons:
            raise ValueError(
                f"assignments cover {n} neurons, expected {self.n_neurons}"
            )
        if self._csr is None or n_particles == 1:
            return np.asarray([self.global_traffic(row) for row in a])
        n_clusters = int(a.max()) + 1
        # One-hot block: columns are (particle, cluster) pairs.
        cols = (np.arange(n_particles)[:, None] * n_clusters + a).astype(np.int64)
        x = np.zeros((n, n_particles * n_clusters), dtype=np.float64)
        x[np.arange(n)[None, :].repeat(n_particles, axis=0).ravel(), cols.ravel()] = 1.0
        y = self._csr.dot(x)
        intra = (x * y).sum(axis=0).reshape(n_particles, n_clusters).sum(axis=1)
        return self.total - intra

    # -- AER packet counting ----------------------------------------------------

    def packet_traffic(self, assignment: np.ndarray) -> float:
        """AER packets on the interconnect under multicast delivery.

        A neuron reaching k remote crossbars sends each of its spikes as k
        unicast-equivalent packets — one per (neuron, remote crossbar)
        flow — regardless of how many synapses land on each crossbar.
        This is what a multicast AER interconnect actually carries.
        """
        a = np.asarray(assignment, dtype=np.int64)
        src_c = a[self.src]
        dst_c = a[self.dst]
        cross = src_c != dst_c
        if not cross.any():
            return 0.0
        n_clusters = int(a.max()) + 1
        pair = self.src[cross] * n_clusters + dst_c[cross]
        unique_pairs = np.unique(pair)
        neurons = unique_pairs // n_clusters
        return float(self.neuron_spikes[neurons].sum())

    def packet_traffic_batch(self, assignments: np.ndarray) -> np.ndarray:
        """AER packet counts for a (P, N) batch of assignments.

        One sparse adjacency product per call: ``reach[n, c]`` flags
        whether neuron n has any target on crossbar c; packets are
        ``sum_n spikes_n * |reach(n) - {own crossbar}|``.
        """
        a = np.asarray(assignments, dtype=np.int64)
        if a.ndim == 1:
            return np.asarray([self.packet_traffic(a)])
        n_particles, n = a.shape
        if n != self.n_neurons:
            raise ValueError(
                f"assignments cover {n} neurons, expected {self.n_neurons}"
            )
        if self._adj_csr is None:
            return np.asarray([self.packet_traffic(row) for row in a])
        n_clusters = int(a.max()) + 1
        cols = (np.arange(n_particles)[:, None] * n_clusters + a).astype(np.int64)
        x = np.zeros((n, n_particles * n_clusters), dtype=np.float64)
        x[np.arange(n)[None, :].repeat(n_particles, axis=0).ravel(),
          cols.ravel()] = 1.0
        reach = (self._adj_csr.dot(x) > 0).astype(np.float64)
        reach3 = reach.reshape(n, n_particles, n_clusters)
        total_reach = reach3.sum(axis=2)                      # (n, P)
        own = np.take_along_axis(
            reach3, a.T[:, :, None], axis=2
        )[:, :, 0]                                            # (n, P)
        remote_clusters = total_reach - own
        return self.neuron_spikes @ remote_clusters


def cluster_traffic(
    graph: SpikeGraph,
    assignment: np.ndarray,
    n_clusters: Optional[int] = None,
) -> np.ndarray:
    """Eq. 7: the C x C matrix of spikes between crossbars (zero diagonal)."""
    a = np.asarray(assignment, dtype=np.int64)
    if a.shape[0] != graph.n_neurons:
        raise ValueError(
            f"assignment covers {a.shape[0]} neurons, graph has {graph.n_neurons}"
        )
    c = n_clusters if n_clusters is not None else int(a.max()) + 1
    src_c = a[graph.src]
    dst_c = a[graph.dst]
    cross = src_c != dst_c
    matrix = np.zeros((c, c), dtype=np.float64)
    np.add.at(matrix, (src_c[cross], dst_c[cross]), graph.traffic[cross])
    return matrix


def local_global_split(
    graph: SpikeGraph, assignment: np.ndarray
) -> Tuple[float, float]:
    """(local, global) spike-event totals under an assignment."""
    a = np.asarray(assignment)
    cross = a[graph.src] != a[graph.dst]
    global_spikes = float(graph.traffic[cross].sum())
    return float(graph.traffic.sum()) - global_spikes, global_spikes


def synapse_split_counts(
    graph: SpikeGraph, assignment: np.ndarray
) -> Tuple[int, int]:
    """(local, global) synapse *counts* under an assignment."""
    a = np.asarray(assignment)
    cross = a[graph.src] != a[graph.dst]
    n_global = int(cross.sum())
    return graph.n_synapses - n_global, n_global
