"""The paper's contribution: PSO-based local/global synapse partitioning.

Given a trained SNN's :class:`~repro.snn.graph.SpikeGraph` and an
:class:`~repro.hardware.Architecture`, the partitioner assigns every neuron
to a crossbar.  Synapses whose endpoints share a crossbar become *local*
(free); the rest become *global* and load the time-multiplexed
interconnect.  The optimization objective (paper Eq. 8) is the total spike
count crossing crossbar boundaries.

Public API
----------
- :class:`Partition` — a validated neuron→crossbar assignment
- :class:`TrafficMatrix` / :func:`cluster_traffic` — Eqs. 6–7
- :class:`InterconnectFitness` — Eq. 8, vectorized over swarms
- :class:`BinaryPSO` / :class:`PSOConfig` — Eqs. 1–3 with capacity repair
- :func:`map_snn` — one-call mapping with method selection
- Baselines: :func:`pacman_partition`, :func:`neutrams_partition`,
  :func:`random_partition`, :func:`greedy_partition`,
  :func:`annealing_partition`
"""

from repro.core.partition import Partition, repair_assignment, repair_batch
from repro.core.traffic_matrix import TrafficMatrix, cluster_traffic
from repro.core.fitness import InterconnectFitness
from repro.core.pso import BinaryPSO, PSOConfig, PSOResult
from repro.core.mapper import MappingResult, compare_methods, map_snn
from repro.core.placement import apply_placement, place_clusters, placement_cost
from repro.core.baselines import (
    annealing_partition,
    greedy_partition,
    neutrams_partition,
    pacman_partition,
    random_partition,
)

__all__ = [
    "Partition",
    "repair_assignment",
    "repair_batch",
    "TrafficMatrix",
    "cluster_traffic",
    "InterconnectFitness",
    "BinaryPSO",
    "PSOConfig",
    "PSOResult",
    "MappingResult",
    "map_snn",
    "compare_methods",
    "place_clusters",
    "apply_placement",
    "placement_cost",
    "pacman_partition",
    "neutrams_partition",
    "random_partition",
    "greedy_partition",
    "annealing_partition",
]
