"""High-level mapping entry point.

``map_snn(graph, architecture, method=...)`` runs the chosen partitioner
and returns a :class:`MappingResult`: the partition itself plus the
local/global traffic split the paper's evaluation revolves around.  The
PSO path warm-starts one particle from the PACMAN solution — a standard
swarm-seeding practice that guarantees PSO never loses to the structural
baseline it is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.baselines import (
    annealing_partition,
    genetic_partition,
    greedy_partition,
    neutrams_partition,
    pacman_partition,
    random_partition,
)
from repro.core.fitness import InterconnectFitness
from repro.core.partition import Partition
from repro.core.placement import apply_placement, place_clusters
from repro.core.pso import BinaryPSO, PSOConfig
from repro.core.traffic_matrix import (
    cluster_traffic,
    local_global_split,
    synapse_split_counts,
)
from repro.hardware.architecture import Architecture
from repro.obs import get_observer
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike

METHODS = (
    "pso", "pacman", "neutrams", "random", "greedy", "annealing", "genetic",
)


@dataclass
class MappingResult:
    """A partition plus its communication profile."""

    method: str
    partition: Partition
    fitness: float              # Eq. 8: spikes on the interconnect
    local_spikes: float         # spike events kept inside crossbars
    global_spikes: float        # spike events crossing crossbars
    local_synapses: int
    global_synapses: int
    wall_time_s: float
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def assignment(self) -> np.ndarray:
        return self.partition.assignment

    @property
    def global_fraction(self) -> float:
        """Fraction of spike events that end up on the interconnect."""
        total = self.local_spikes + self.global_spikes
        return self.global_spikes / total if total else 0.0

    def describe(self) -> str:
        return (
            f"MappingResult[{self.method}]: fitness={self.fitness:.0f} "
            f"(global {self.global_spikes:.0f} / local {self.local_spikes:.0f} "
            f"spikes; {self.global_synapses}/{self.global_synapses + self.local_synapses} "
            f"synapses global) in {self.wall_time_s:.2f}s"
        )


def map_snn(
    graph: SpikeGraph,
    architecture: Architecture,
    method: str = "pso",
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    warm_start: bool = True,
    placement: bool = True,
    objective: str = "packets",
    workers=1,
    threads=None,
    noc_config=None,
    cache=None,
    coalescer=None,
    warm_seeds=None,
    spare_capacity: float = 0.0,
    **kwargs,
) -> MappingResult:
    """Partition ``graph`` onto ``architecture`` with the chosen method.

    Parameters
    ----------
    method:
        One of ``"pso"`` (the paper's contribution), ``"pacman"``,
        ``"neutrams"``, ``"random"``, ``"greedy"``, ``"annealing"``.
    pso_config:
        Swarm hyper-parameters for the PSO path (ignored otherwise).
    warm_start:
        Seed PSO particles from the PACMAN and greedy solutions, so the
        swarm starts no worse than the structural baselines.
    placement:
        After partitioning, arrange clusters on the interconnect's attach
        points to minimize hop-weighted traffic (applied identically to
        every method; it relabels clusters and cannot change Eq. 8
        fitness).
    objective:
        PSO objective: ``"packets"`` (default) minimizes AER packets on
        the multicast interconnect — the energy-proportional quantity on
        the modeled hardware; ``"spikes"`` is the paper's literal Eq. 8
        per-synapse count.  The two coincide when each neuron has at most
        one remote target crossbar; the fitness-ablation bench compares
        them.  ``"noc"`` scores every particle by cycle-accurate NoC
        simulation (fast backend, hop metric) — the most faithful and
        most expensive objective; pair it with ``workers`` to shard the
        swarm across processes.
    workers:
        Worker processes for the ``"noc"`` objective's swarm scoring
        (``1`` = serial, ``0``/``"auto"`` = one per CPU; ignored by the
        closed-form objectives, which are already vectorized).
    threads:
        Thread cap for the ``"noc"`` objective's compiled batch kernel
        (``None`` defers to ``REPRO_NOC_THREADS``; ``0`` disables it).
        Like ``workers``, excluded from the memo token — thread counts
        never change results.
    noc_config:
        Interconnect parameters the ``"noc"`` objective simulates under
        (backend forced to "fast").  Pass the same config the final
        mapping will be measured with, so the swarm optimizes the fabric
        it is judged on; ``run_pipeline`` forwards its own.
    cache:
        An :class:`~repro.framework.artifacts.ArtifactCache`.  Shares
        the topology / routing / hop-matrix artifacts across calls, and
        memoizes the full :class:`MappingResult` for deterministic
        requests (seeded, or a deterministic method, and no extra
        ``kwargs``) — a repeat request returns the cached result, which
        is bit-identical to recomputing it.
    coalescer:
        Serving-layer :class:`~repro.framework.service.SwarmCoalescer`;
        forwarded to the ``"noc"`` objective's fitness so concurrent
        requests on the same fabric share build/simulate batches.
    warm_seeds:
        Extra (K, N) assignments stacked into the PSO warm-start pool
        (e.g. the cache's best recorded swarm state for this problem);
        seeds are evaluated exactly, so the swarm starts no worse than
        the best seed.  PSO only.
    spare_capacity:
        Fault-aware headroom fraction in ``[0, 1)``.  Every crossbar
        keeps ``ceil(capacity * spare_capacity)`` slots free (a hard
        reservation enforced on every method's partitioner), the PSO
        objective gains a balance penalty spreading neurons below the
        watermark, and the placement pass keeps loaded clusters near
        spare slots (cheap evacuation targets).  ``0`` (default) is the
        paper's behavior, bit-identical to before.
    kwargs:
        Forwarded to the underlying baseline (e.g. annealing config).
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; options: {METHODS}")
    architecture.require_fits(graph.n_neurons)
    c, nc = architecture.n_crossbars, architecture.neurons_per_crossbar

    if not 0.0 <= spare_capacity < 1.0:
        raise ValueError(
            f"spare_capacity must be in [0, 1), got {spare_capacity}"
        )
    reserve = int(np.ceil(nc * spare_capacity))
    nc_eff = nc - reserve
    if nc_eff * c < graph.n_neurons:
        raise ValueError(
            f"spare_capacity={spare_capacity} reserves {reserve} of {nc} "
            f"slots per crossbar, leaving {nc_eff * c} usable slots for "
            f"{graph.n_neurons} neurons"
        )

    if objective not in ("packets", "spikes", "noc"):
        raise ValueError(
            f"unknown objective {objective!r}; use 'packets', 'spikes' "
            "or 'noc'"
        )
    if objective == "noc" and method != "pso":
        # The structural baselines have no objective to swap in; letting
        # them run would label heuristic results as NoC-in-the-loop ones.
        raise ValueError(
            "objective='noc' is only supported by method='pso' "
            f"(got method={method!r})"
        )

    # Full-result memoization: only for calls that are deterministic
    # functions of the token (seeded, or a seed-free deterministic
    # method) with no free-form kwargs, so a cache hit is bit-identical
    # to recomputing.  Worker counts and the coalescer are excluded from
    # the token — both paths are bit-identical by contract.
    memo_key = None
    if cache is not None and not kwargs:
        deterministic = seed is not None or method in ("pacman", "greedy")
        if deterministic:
            from repro.framework.artifacts import mapping_token

            memo_key = cache.key(
                "mapping-result",
                mapping_token(
                    graph,
                    architecture,
                    method=method,
                    seed=seed,
                    pso_config=pso_config,
                    warm_start=warm_start,
                    placement=placement,
                    objective=objective,
                    noc_config=noc_config,
                    warm_seeds=warm_seeds,
                    spare_capacity=spare_capacity,
                ),
            )
            found, cached = cache.get(memo_key)
            if found:
                obs = get_observer()
                if obs.enabled:
                    obs.inc("map.memo_hits", method=method)
                    obs.event("map.memo_hit", method=method, objective=objective)
                return _copy_mapping_result(cached)

    obs = get_observer()
    if obs.enabled:
        obs.inc("map.requests", method=method, objective=objective)
    extras: Dict[str, object] = {}
    # Always-timed span (real wall clock with tracing off too):
    # wall_time_s derives from its duration, and the per-stage spans
    # below nest under it in a trace.
    map_span = obs.timed_span(
        "map_snn",
        method=method,
        objective=objective,
        n_neurons=graph.n_neurons,
        n_crossbars=c,
    )
    # Fault-aware spreading: a balance watermark at the even-fill level
    # with a weight scaled to the graph's traffic, so the penalty acts as
    # a spread-toward-balance tie-breaker in the objective's own units.
    balance_kwargs: Dict[str, object] = {}
    if spare_capacity > 0:
        balance_kwargs = dict(
            balance_watermark=max(
                1, int(np.ceil(graph.n_neurons / max(c, 1)))
            ),
            balance_weight=(
                spare_capacity
                * float(graph.traffic.sum())
                / max(graph.n_neurons, 1)
            ),
        )

    with map_span:
        if method == "pso":
            if objective == "noc":
                topology = (
                    cache.topology(architecture)
                    if cache is not None
                    else architecture.build_topology()
                )
                fitness = InterconnectFitness(
                    graph,
                    noc_in_loop=True,
                    topology=topology,
                    cycles_per_ms=architecture.cycles_per_ms,
                    noc_config=noc_config,
                    workers=workers,
                    threads=threads,
                    cache=cache,
                    coalescer=coalescer,
                    **balance_kwargs,
                )
            else:
                fitness = InterconnectFitness(
                    graph, count_packets=(objective == "packets"), cache=cache,
                    **balance_kwargs,
                )
            move_cost = graph.neuron_out_traffic()
            in_traffic = np.bincount(
                graph.dst, weights=graph.traffic, minlength=graph.n_neurons
            )
            pso = BinaryPSO(
                fitness,
                n_neurons=graph.n_neurons,
                n_clusters=c,
                capacity=nc_eff,
                config=pso_config,
                move_cost=move_cost + in_traffic,
                seed=seed,
            )
            initial = None
            if warm_start:
                with obs.span("map.warm_start"):
                    seeds = [pacman_partition(graph, c, nc_eff).assignment]
                    try:
                        seeds.append(greedy_partition(graph, c, nc_eff).assignment)
                    except ValueError:
                        pass  # greedy can be skipped if packing is degenerate
                    initial = np.stack(seeds)
            if warm_seeds is not None:
                warm = np.atleast_2d(np.asarray(warm_seeds, dtype=np.int64))
                initial = warm if initial is None else np.vstack([initial, warm])
            # Always-timed like the parent: the throughput extras below
            # must report real durations whether or not tracing is on.
            swarm_span = obs.timed_span("map.pso_optimize")
            try:
                # Span closes before close(): worker-pool teardown must
                # not deflate the reported swarm throughput.
                with swarm_span:
                    result = pso.optimize(initial_assignments=initial)
            finally:
                fitness.close()
            swarm_wall = swarm_span.duration_s
            swarm_span.set(
                n_evaluations=result.n_evaluations,
                best_fitness=result.best_fitness,
            )
            partition = result.partition(c, nc_eff)
            extras["history"] = result.history
            extras["n_evaluations"] = result.n_evaluations
            # Swarm throughput (particle-iterations per second): the
            # figure the Fig. 7 bench and quickstart report so front-end
            # regressions show up directly in bench output.
            extras["pso_wall_time_s"] = swarm_wall
            extras["particle_iterations_per_s"] = (
                result.n_evaluations / swarm_wall
                if swarm_wall > 0
                else float("inf")
            )
        elif method == "pacman":
            partition = pacman_partition(graph, c, nc_eff)
        elif method == "neutrams":
            partition = neutrams_partition(graph, c, nc_eff, seed=seed)
        elif method == "random":
            partition = random_partition(graph, c, nc_eff, seed=seed)
        elif method == "greedy":
            partition = greedy_partition(graph, c, nc_eff)
        elif method == "genetic":
            partition = genetic_partition(
                graph, c, nc_eff, seed=seed,
                count_packets=(objective == "packets"), **kwargs,
            )
        else:  # annealing
            partition = annealing_partition(graph, c, nc_eff, seed=seed, **kwargs)

        # The "noc" objective already optimizes against real attach-point
        # positions, so the closed-form placement pass would permute (and
        # potentially undo) the simulated optimum; skip it there.
        if placement and c > 1 and not (method == "pso" and objective == "noc"):
            with obs.span("map.placement"):
                matrix = cluster_traffic(graph, partition.assignment, c)
                topology = (
                    cache.topology(architecture)
                    if cache is not None
                    else architecture.build_topology()
                )
                spare_kwargs: Dict[str, object] = {}
                if spare_capacity > 0:
                    # Keep loaded clusters near free slots: evacuation
                    # distance is weighed against hop-weighted traffic
                    # at the mean per-cluster traffic scale.
                    spare_kwargs = dict(
                        loads=np.bincount(
                            partition.assignment, minlength=c
                        ),
                        capacity=nc,
                        spare_weight=(
                            spare_capacity * float(matrix.sum()) / max(c, 1)
                        ),
                    )
                perm = place_clusters(matrix, topology, **spare_kwargs)
                partition = Partition(
                    assignment=apply_placement(partition.assignment, perm),
                    n_clusters=c,
                    capacity=nc,
                )
                extras["placement"] = perm
        if partition.capacity != nc:
            # Report the hardware's true capacity outward; the spare
            # reservation only constrains how full the partitioners may
            # pack, not what the crossbars can physically hold.
            partition = Partition(
                assignment=partition.assignment,
                n_clusters=c,
                capacity=nc,
            )
    elapsed = map_span.duration_s

    local_spikes, global_spikes = local_global_split(graph, partition.assignment)
    local_syn, global_syn = synapse_split_counts(graph, partition.assignment)
    from repro.core.traffic_matrix import TrafficMatrix
    extras["packets"] = TrafficMatrix(graph).packet_traffic(
        partition.assignment
    )
    extras["objective"] = objective
    if spare_capacity > 0:
        extras["spare_capacity"] = spare_capacity
    mapping = MappingResult(
        method=method,
        partition=partition,
        fitness=global_spikes,
        local_spikes=local_spikes,
        global_spikes=global_spikes,
        local_synapses=local_syn,
        global_synapses=global_syn,
        wall_time_s=elapsed,
        extras=extras,
    )
    if cache is not None and method == "pso":
        # Remember the converged swarm optimum so later requests can
        # opt in to warm-start from it (the objective value is invariant
        # under the placement pass's cluster relabeling).
        cache.record_warm_state(
            graph, architecture, objective,
            partition.assignment, result.best_fitness,
        )
    if memo_key is not None:
        cache.put(memo_key, _copy_mapping_result(mapping), persist=True)
    return mapping


def _copy_mapping_result(mapping: MappingResult) -> MappingResult:
    """Shallow-copy a cached result so callers cannot mutate the cache.

    The assignment array and extras dict are the mutable surfaces a
    caller touches; everything else is value-like.
    """
    import dataclasses

    return dataclasses.replace(
        mapping,
        partition=Partition(
            assignment=mapping.partition.assignment.copy(),
            n_clusters=mapping.partition.n_clusters,
            capacity=mapping.partition.capacity,
        ),
        extras=dict(mapping.extras),
    )


def compare_methods(
    graph: SpikeGraph,
    architecture: Architecture,
    methods: tuple = ("neutrams", "pacman", "pso"),
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    objective: str = "packets",
    workers=1,
    threads=None,
    noc_config=None,
    cache=None,
    spare_capacity: float = 0.0,
) -> Dict[str, MappingResult]:
    """Run several partitioners on the same problem (Fig. 5 style).

    The ``"noc"`` objective only applies to PSO, so it restricts
    ``methods`` to ``("pso",)`` — mixing NoC-scored and structural
    results in one table would be apples-to-oranges.
    """
    if objective == "noc":
        rejected = [m for m in methods if m != "pso"]
        if rejected:
            raise ValueError(
                "objective='noc' is only supported by method='pso'; "
                f"drop {rejected} from methods or use objective='packets'"
            )
    return {
        m: map_snn(
            graph, architecture, method=m, seed=seed, pso_config=pso_config,
            objective=objective, workers=workers, threads=threads,
            noc_config=noc_config, cache=cache, spare_capacity=spare_capacity,
        )
        for m in methods
    }
