"""Binary particle swarm optimization for neuron placement (paper Eqs. 1-3).

Each particle is a candidate placement of all ``N`` neurons onto ``C``
crossbars: a real-valued position matrix over the ``D = N * C`` binary
dimensions ``x_{i,k}`` of the paper.  Every iteration:

1. positions are *binarized* into a one-hot assignment per neuron —
   either by sampling proportionally to a sigmoid of the position (the
   paper's stochastic rule, Eqs. 2-3, adapted to respect the one-neuron-
   one-crossbar constraint by construction) or by argmax (deterministic
   variant, kept for the ablation bench);
2. capacity violations (Eq. 5) are repaired by evicting the
   cheapest-to-move neurons to under-full crossbars;
3. the swarm-batched fitness (Eq. 8) scores all particles;
4. personal/global bests update, and velocities/positions follow Eq. 1
   with an inertia weight and clamping (standard constriction-style
   parameters; the paper's phi1/phi2 formulation with velocities retained
   across iterations).

The one-hot decode makes constraint Eq. 4 structural: no particle can ever
assign a neuron to two crossbars, so no penalty terms are needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.fitness import InterconnectFitness
from repro.core.partition import Partition, repair_batch
from repro.obs import get_observer
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive

BatchFitness = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PSOConfig:
    """Swarm hyper-parameters.

    The paper fixes ``n_particles=1000, n_iterations=100`` for its main
    results (Section V-D); smaller swarms trade quality for time exactly as
    its Fig. 7 shows.  Defaults here are mid-range so unit tests stay fast;
    benches pass the paper's values explicitly.

    ``dtype`` selects the floating-point type of the swarm's position,
    velocity and best-position buffers.  ``np.float32`` halves the resident
    memory of a paper-scale swarm (seven (P, N, C) buffers) at the cost of
    a slightly different stochastic trajectory; ``np.float64`` (default)
    reproduces the historical bit-exact results.
    """

    n_particles: int = 100
    n_iterations: int = 100
    inertia: float = 0.729
    cognitive: float = 1.49445  # phi_1: pull toward the particle's own best
    social: float = 1.49445     # phi_2: pull toward the swarm's best
    v_max: float = 6.0
    x_max: float = 10.0
    binarization: str = "stochastic"  # or "argmax"
    early_stop_patience: Optional[int] = None
    dtype: object = np.float64

    def __post_init__(self) -> None:
        check_positive("n_particles", self.n_particles)
        check_positive("n_iterations", self.n_iterations)
        check_positive("v_max", self.v_max)
        check_positive("x_max", self.x_max)
        if self.inertia < 0:
            raise ValueError("inertia must be non-negative")
        if self.binarization not in ("stochastic", "argmax"):
            raise ValueError(
                f"unknown binarization {self.binarization!r}; "
                "use 'stochastic' or 'argmax'"
            )
        if self.early_stop_patience is not None and self.early_stop_patience < 1:
            raise ValueError("early_stop_patience must be >= 1 when set")
        dtype = np.dtype(self.dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"dtype must be float32 or float64, got {dtype}"
            )
        object.__setattr__(self, "dtype", dtype)


@dataclass
class PSOResult:
    """Outcome of one swarm run."""

    best_assignment: np.ndarray
    best_fitness: float
    history: np.ndarray  # global-best fitness after each iteration
    n_iterations_run: int
    n_evaluations: int

    def partition(self, n_clusters: int, capacity: int) -> Partition:
        return Partition(
            assignment=self.best_assignment,
            n_clusters=n_clusters,
            capacity=capacity,
        )


class BinaryPSO:
    """PSO over neuron→crossbar assignments.

    Parameters
    ----------
    fitness:
        An :class:`InterconnectFitness` (or any object exposing
        ``evaluate_batch``) or a bare callable mapping a (P, N) batch of
        assignments to (P,) objective values (lower = better).  A
        noc-in-the-loop fitness constructed with ``workers > 1``
        transparently shards every generation's batch across worker
        processes; the swarm sees identical fitness vectors either way.
    n_neurons, n_clusters, capacity:
        Problem dimensions (Eqs. 4-5 constraints).
    move_cost:
        Optional per-neuron cost used by capacity repair: cheap neurons are
        evicted first.  The mapper passes each neuron's total spike traffic
        so hot neurons keep their optimized placement.
    seed:
        RNG seed for swarm initialization and stochastic binarization.
    """

    def __init__(
        self,
        fitness: Union[InterconnectFitness, BatchFitness],
        n_neurons: int,
        n_clusters: int,
        capacity: int,
        config: Optional[PSOConfig] = None,
        move_cost: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive("n_neurons", n_neurons)
        check_positive("n_clusters", n_clusters)
        check_positive("capacity", capacity)
        if n_neurons > n_clusters * capacity:
            raise ValueError(
                f"{n_neurons} neurons cannot fit in {n_clusters} x {capacity} slots"
            )
        self.n_neurons = n_neurons
        self.n_clusters = n_clusters
        self.capacity = capacity
        self.config = config if config is not None else PSOConfig()
        self.move_cost = move_cost
        self.rng = default_rng(seed)
        evaluate_batch = getattr(fitness, "evaluate_batch", None)
        if evaluate_batch is not None:
            self._evaluate: BatchFitness = evaluate_batch
        else:
            self._evaluate = fitness
        self._dtype = np.dtype(self.config.dtype)
        self._half_x = self._dtype.type(self.config.x_max / 2.0)
        self._onehot_buf: Optional[np.ndarray] = None
        self._onehot_prev: Optional[np.ndarray] = None

    # -- public API --------------------------------------------------------------

    def optimize(
        self, initial_assignments: Optional[np.ndarray] = None
    ) -> PSOResult:
        """Run the swarm and return the best feasible assignment found.

        The iteration loop is allocation-free in its hot path: the
        position, velocity, one-hot and scratch ``(P, N, C)`` buffers are
        allocated once and updated in place (every in-place formulation
        below is bit-identical to the original out-of-place expression),
        so a paper-scale swarm's per-generation cost is the fitness call
        plus the batched decode/repair, not allocator churn.
        """
        cfg = self.config
        p, n, c = cfg.n_particles, self.n_neurons, self.n_clusters

        # Init draws stay float64 regardless of cfg.dtype so the float32
        # swarm explores from the same starting cloud.
        positions = self.rng.uniform(-1.0, 1.0, size=(p, n, c))
        velocities = self.rng.uniform(-cfg.v_max / 2, cfg.v_max / 2, size=(p, n, c))
        if self._dtype != np.float64:
            positions = positions.astype(self._dtype)
            velocities = velocities.astype(self._dtype)
        scratch = np.empty_like(positions)
        scratch2 = np.empty_like(positions)
        r1 = np.empty_like(positions)
        r2 = np.empty_like(positions)

        pbest_positions = positions.copy()
        pbest_fitness = np.full(p, np.inf)
        gbest_position = positions[0].copy()
        gbest_fitness = np.inf
        gbest_assignment = np.zeros(n, dtype=np.int64)

        if initial_assignments is not None:
            # Warm start: pin leading particles to the seeds AND evaluate
            # the seeds exactly, so the swarm's global best can never be
            # worse than any seed (the stochastic decode alone would
            # almost never reproduce a seed bit-for-bit).
            seeds = np.atleast_2d(np.asarray(initial_assignments, dtype=np.int64))
            self._seed_positions(positions, seeds)
            seeds = self._repair_batch(seeds)
            seed_fitness = np.asarray(self._evaluate(seeds), dtype=np.float64)
            onehot_seeds = self._one_hot(seeds)
            k = min(seeds.shape[0], p)
            pbest_fitness[:k] = seed_fitness[:k]
            pbest_positions[:k] = onehot_seeds[:k]
            best_seed = int(np.argmin(seed_fitness))
            gbest_fitness = float(seed_fitness[best_seed])
            gbest_position = onehot_seeds[best_seed].copy()
            gbest_assignment = seeds[best_seed].copy()

        history: List[float] = []
        n_evaluations = 0
        stale = 0
        iterations_run = 0

        obs = get_observer()
        for _ in range(cfg.n_iterations):
            iterations_run += 1
            with obs.span("pso.iteration", iteration=iterations_run) as it_span:
                with obs.span("pso.decode_repair"):
                    assignments = self._binarize(positions, scratch, scratch2)
                    assignments = self._repair_batch(assignments)
                with obs.span("pso.evaluate", particles=p):
                    fitness = np.asarray(
                        self._evaluate(assignments), dtype=np.float64
                    )
                n_evaluations += p

            improved = fitness < pbest_fitness
            pbest_fitness = np.where(improved, fitness, pbest_fitness)
            onehot = self._one_hot(assignments)
            pbest_positions[improved] = onehot[improved]

            best_idx = int(np.argmin(fitness))
            if fitness[best_idx] < gbest_fitness:
                gbest_fitness = float(fitness[best_idx])
                gbest_position = onehot[best_idx].copy()
                gbest_assignment = assignments[best_idx].copy()
                stale = 0
            else:
                stale += 1
            history.append(gbest_fitness)
            # The span closed with the evaluation; attributes stay
            # writable, so record where the swarm stood afterwards.
            it_span.set(best_fitness=gbest_fitness)

            if (
                cfg.early_stop_patience is not None
                and stale >= cfg.early_stop_patience
            ):
                break

            self._rand(out=r1)
            self._rand(out=r2)
            # In-place Eq. 1, same operation order as the original
            # expression `inertia*v + cognitive*r1*(pbest-x) +
            # social*r2*(gbest-x)` so float64 trajectories are unchanged.
            velocities *= cfg.inertia
            np.subtract(pbest_positions, positions, out=scratch)
            np.multiply(r1, cfg.cognitive, out=scratch2)
            scratch2 *= scratch
            velocities += scratch2
            np.subtract(gbest_position[None, :, :], positions, out=scratch)
            np.multiply(r2, cfg.social, out=scratch2)
            scratch2 *= scratch
            velocities += scratch2
            np.clip(velocities, -cfg.v_max, cfg.v_max, out=velocities)
            positions += velocities
            np.clip(positions, -cfg.x_max, cfg.x_max, out=positions)

        return PSOResult(
            best_assignment=gbest_assignment,
            best_fitness=gbest_fitness,
            history=np.asarray(history),
            n_iterations_run=iterations_run,
            n_evaluations=n_evaluations,
        )

    # -- internals ------------------------------------------------------------------

    def _rand(self, size=None, out=None) -> np.ndarray:
        """Uniform [0, 1) draws in the swarm dtype.

        The float64 path is byte-for-byte the historical stream; float32
        consumes the bit stream differently (one uint32 per value) and is
        only used when ``PSOConfig(dtype=np.float32)`` opts in.
        """
        if self._dtype == np.float64:
            if out is not None:
                return self.rng.random(out=out)
            return self.rng.random(size=size)
        if out is not None:
            return self.rng.random(out=out, dtype=np.float32)
        return self.rng.random(size=size, dtype=np.float32)

    def _binarize(
        self,
        positions: np.ndarray,
        scratch: Optional[np.ndarray] = None,
        scratch2: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Decode real positions into one cluster per neuron (Eqs. 2-3)."""
        if self.config.binarization == "argmax":
            return positions.argmax(axis=2).astype(np.int64)
        # Stochastic decode: sample cluster k with probability proportional
        # to sigmoid(x_{i,k}) — the paper's rand()-vs-sigmoid rule with the
        # one-hot constraint enforced by sampling exactly one k per neuron.
        # Computed into reusable scratch buffers; the op sequence matches
        # `1/(1+exp(-x))`, `cumsum`, `u*totals` exactly.
        if scratch is None:
            scratch = np.empty_like(positions)
        if scratch2 is None:
            scratch2 = np.empty_like(positions)
        np.negative(positions, out=scratch)
        np.exp(scratch, out=scratch)
        scratch += 1.0
        np.divide(1.0, scratch, out=scratch)
        np.cumsum(scratch, axis=2, out=scratch2)
        totals = scratch2[:, :, -1:]
        u = self._rand(size=positions.shape[:2] + (1,))
        u *= totals
        return (u > scratch2).sum(axis=2).astype(np.int64)

    def _repair_batch(self, assignments: np.ndarray) -> np.ndarray:
        # One vectorized call repairs the whole generation.  With a
        # move_cost, eviction is cost-sorted and fully deterministic — no
        # randomness is consumed at all.  Without one, repair_batch seeds
        # one child RNG stream per particle from a fixed-size draw on the
        # swarm stream, so a particle's randomness never depends on which
        # *other* particles happened to be infeasible that iteration.
        return repair_batch(
            assignments,
            self.n_clusters,
            self.capacity,
            rng=self.rng,
            move_cost=self.move_cost,
        )

    def _one_hot(self, assignments: np.ndarray) -> np.ndarray:
        # Map each row onto {-x_max/2, +x_max/2} attractors so the pull
        # toward a best position saturates the sigmoid decisively.  The
        # buffer is reused across iterations (callers copy what they keep):
        # after the initial fill only the scattered +half entries change,
        # so each call erases the previous generation's positions and puts
        # the new ones — two O(P*N) scatters instead of an O(P*N*C) fill.
        # put_along_axis replaces the old O(P*N) repeat/tile index build.
        # Holding `assignments` as the erase list is safe because callers
        # always pass freshly built arrays they do not mutate afterwards.
        p, n = assignments.shape
        buf = self._onehot_buf
        if buf is None or buf.shape[0] != p:
            buf = np.empty((p, n, self.n_clusters), dtype=self._dtype)
            buf.fill(-self._half_x)
            self._onehot_buf = buf
            self._onehot_prev = None
        if self._onehot_prev is not None:
            np.put_along_axis(
                buf, self._onehot_prev[:, :, None], -self._half_x, axis=2
            )
        np.put_along_axis(buf, assignments[:, :, None], self._half_x, axis=2)
        self._onehot_prev = assignments
        return buf

    def _seed_positions(
        self, positions: np.ndarray, initial_assignments: np.ndarray
    ) -> None:
        """Overwrite leading particles with provided assignments (warm start)."""
        if initial_assignments.ndim == 1:
            initial_assignments = initial_assignments[None, :]
        k = min(initial_assignments.shape[0], positions.shape[0])
        for i in range(k):
            onehot = np.full(
                (self.n_neurons, self.n_clusters),
                -self._half_x,
                dtype=self._dtype,
            )
            onehot[np.arange(self.n_neurons), initial_assignments[i]] = (
                self._half_x
            )
            positions[i] = onehot
