"""Cluster-to-tile placement.

The PSO objective (Eq. 8) counts spikes crossing crossbar boundaries but
is blind to *where* each crossbar sits on the interconnect: two clusters
exchanging heavy traffic cost more energy when their tiles are four hops
apart than when they are siblings on the tree.  Partition quality and
placement quality are separable, so after any partitioner runs we solve
the small quadratic-assignment problem of arranging clusters on attach
points to minimize hop-weighted traffic.

With C <= a few dozen crossbars, greedy construction plus pairwise-swap
hill climbing finds (near-)optimal arrangements in microseconds.  The
placement is expressed as a cluster relabeling, which preserves both the
partition's feasibility (uniform capacities) and its Eq. 8 fitness
(relabeling cannot change which synapses cross).

Multi-chip fabrics get a *two-level* construction instead of the flat
greedy: chip-to-chip bridges make cross-chip hops several times more
expensive than intra-chip ones, and the flat heaviest-pair heuristic is
blind to that cliff — it happily strands one member of a chatty pair on
the far chip when the near chip still has room.  The hierarchical pass
first packs communicating clusters onto the same chip
(:func:`pack_onto_chips`, capacity-constrained greedy plus swap
refinement at chip granularity), then arranges each chip's clusters on
its own slots, and finally runs the same global pairwise-swap hill
climbing, which can only improve on the construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.noc.multichip import MultiChipTopology, chip_distance_matrix
from repro.noc.routing import RoutingTable, routing_for
from repro.noc.topology import Topology


def placement_cost(
    traffic: np.ndarray,
    perm: np.ndarray,
    distance: np.ndarray,
) -> float:
    """Hop-weighted traffic for a cluster->slot permutation.

    ``traffic[k1, k2]`` is spikes from cluster k1 to k2; ``distance[s1, s2]``
    is routed hops between attach slots; ``perm[k]`` is the slot of
    cluster ``k``.
    """
    return float((traffic * distance[np.ix_(perm, perm)]).sum())


def _distance_matrix(topology: Topology, routing: RoutingTable) -> np.ndarray:
    """Attach-point hop matrix (cached on the topology instance)."""
    return topology.crossbar_hop_matrix(routing)


def evacuation_cost(
    loads: np.ndarray,
    capacity: int,
    perm: np.ndarray,
    distance: np.ndarray,
) -> float:
    """Load-weighted distance to the nearest refuge, per cluster.

    If cluster ``k``'s crossbar dies, its ``loads[k]`` neurons must
    migrate to crossbars with free slots; the cheapest refuge is the
    nearest cluster ``j != k`` with ``loads[j] < capacity``.  Summing
    ``loads[k] * hop_distance(k, nearest refuge)`` measures how
    expensive a single-crossbar failure is under this placement —
    the fault-aware placement term minimized alongside hop-weighted
    traffic.  Zero when no cluster has spare capacity (every placement
    is equally stranded).
    """
    loads = np.asarray(loads, dtype=np.float64)
    c = loads.shape[0]
    spare = np.flatnonzero(loads < capacity)
    if spare.size == 0:
        return 0.0
    d = distance[np.ix_(perm, perm[spare])].astype(np.float64)
    # A cluster cannot take refuge on its own (dead) crossbar.
    d[spare[None, :] == np.arange(c)[:, None]] = np.inf
    nearest = d.min(axis=1)
    nearest[~np.isfinite(nearest)] = 0.0  # only refuge was itself
    return float((loads * nearest).sum())


def place_clusters(
    traffic: np.ndarray,
    topology: Topology,
    routing: Optional[RoutingTable] = None,
    max_passes: int = 20,
    loads: Optional[np.ndarray] = None,
    capacity: Optional[int] = None,
    spare_weight: float = 0.0,
) -> np.ndarray:
    """Arrange clusters on attach points to minimize hop-weighted traffic.

    Returns ``perm`` with ``perm[k]`` = attach-point slot of cluster ``k``.
    Greedy heaviest-pair-first construction, then pairwise-swap hill
    climbing until a full pass yields no improvement (or ``max_passes``).

    With ``spare_weight > 0`` (requires ``loads`` — neurons per cluster
    — and ``capacity``) the hill climb also minimizes
    ``spare_weight * evacuation_cost(...)``, keeping every loaded
    cluster near spare slots so a crossbar failure migrates its neurons
    a short distance.  The default path (``spare_weight == 0``) is
    bit-identical to before.
    """
    c = traffic.shape[0]
    if traffic.shape != (c, c):
        raise ValueError(f"traffic must be square, got {traffic.shape}")
    if topology.n_attach_points < c:
        raise ValueError(
            f"{c} clusters need {c} attach points; topology has "
            f"{topology.n_attach_points}"
        )
    if spare_weight < 0:
        raise ValueError(
            f"spare_weight must be non-negative, got {spare_weight}"
        )
    if spare_weight > 0 and (loads is None or capacity is None):
        raise ValueError("spare_weight needs per-cluster loads and capacity")
    if routing is None:
        routing = routing_for(topology)
    if c == 1:
        return np.zeros(1, dtype=np.int64)

    dist = _distance_matrix(topology, routing)[:c, :c]
    symmetric = traffic + traffic.T

    if isinstance(topology, MultiChipTopology) and topology.n_chips > 1:
        perm = _hierarchical_construction(
            traffic, symmetric, dist, topology, routing
        )
    else:
        perm = np.full(c, -1, dtype=np.int64)
        _greedy_fill(symmetric, dist, list(range(c)), list(range(c)), perm)

    if spare_weight > 0:
        loads = np.asarray(loads, dtype=np.float64)
        if loads.shape != (c,):
            raise ValueError(
                f"loads must have one entry per cluster, got shape "
                f"{loads.shape} for {c} clusters"
            )

        def total_cost(p: np.ndarray) -> float:
            return placement_cost(traffic, p, dist) + (
                spare_weight * evacuation_cost(loads, capacity, p, dist)
            )
    else:

        def total_cost(p: np.ndarray) -> float:
            return placement_cost(traffic, p, dist)

    # Pairwise-swap hill climbing.
    best_cost = total_cost(perm)
    for _ in range(max_passes):
        improved = False
        for a in range(c):
            for b in range(a + 1, c):
                perm[a], perm[b] = perm[b], perm[a]
                cost = total_cost(perm)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    improved = True
                else:
                    perm[a], perm[b] = perm[b], perm[a]
        if not improved:
            break
    return perm


def _greedy_fill(
    symmetric: np.ndarray,
    dist: np.ndarray,
    clusters: Sequence[int],
    slots: Sequence[int],
    perm: np.ndarray,
) -> None:
    """Greedy construction over a cluster/slot subset, writing ``perm``.

    Place the heaviest-communicating unplaced cluster next to the
    already-placed cluster it talks to most, on the nearest free slot.
    With ``clusters = slots = range(c)`` this is exactly the flat
    single-chip construction; the hierarchical pass calls it once per
    chip with that chip's clusters and slots.
    """
    sub = np.asarray(list(clusters), dtype=np.int64)
    free_slots = set(slots)
    weights_in = symmetric[np.ix_(sub, sub)].sum(axis=1)
    order = sub[np.argsort(-weights_in, kind="stable")]
    first = int(order[0])
    first_slot = min(free_slots)
    perm[first] = first_slot
    free_slots.discard(first_slot)
    for k in order[1:]:
        k = int(k)
        placed = sub[perm[sub] >= 0]
        weights = symmetric[k, placed]
        anchor = int(placed[np.argmax(weights)]) if weights.size else int(placed[0])
        anchor_slot = int(perm[anchor])
        slot = min(free_slots, key=lambda s: dist[anchor_slot, s])
        perm[k] = slot
        free_slots.discard(slot)


def pack_onto_chips(
    traffic: np.ndarray,
    topology: MultiChipTopology,
    routing: Optional[RoutingTable] = None,
    max_passes: int = 20,
) -> np.ndarray:
    """Assign clusters to chips, packing communicating clusters together.

    Returns ``chip_of_cluster`` with one chip id per cluster.  Chip
    capacities are the usable attach slots per chip (slot ids below the
    cluster count, since placement is a cluster relabeling).  Greedy
    affinity construction — each cluster joins the chip it already
    exchanges the most traffic with, capacity permitting — followed by
    swap/move refinement that minimizes traffic weighted by chip-level
    bridge distance.
    """
    c = traffic.shape[0]
    if traffic.shape != (c, c):
        raise ValueError(f"traffic must be square, got {traffic.shape}")
    if routing is None:
        routing = routing_for(topology)
    symmetric = traffic + traffic.T
    return _pack_onto_chips(
        symmetric, topology, chip_distance_matrix(topology, routing), max_passes
    )


def _chip_capacities(topology: MultiChipTopology, c: int) -> np.ndarray:
    """Usable placement slots (ids < c) per chip."""
    caps = np.zeros(topology.n_chips, dtype=np.int64)
    for slot in range(c):
        caps[topology.chip_of_crossbar[slot]] += 1
    return caps


def _pack_onto_chips(
    symmetric: np.ndarray,
    topology: MultiChipTopology,
    chip_dist: np.ndarray,
    max_passes: int = 20,
) -> np.ndarray:
    c = symmetric.shape[0]
    n_chips = topology.n_chips
    caps = _chip_capacities(topology, c)
    chip_of = np.full(c, -1, dtype=np.int64)
    load = np.zeros(n_chips, dtype=np.int64)

    # Greedy affinity construction, heaviest communicators first.
    order = np.argsort(-symmetric.sum(axis=1), kind="stable")
    for k in order:
        k = int(k)
        affinity = np.zeros(n_chips, dtype=np.float64)
        placed = np.nonzero(chip_of >= 0)[0]
        for j in placed:
            affinity[chip_of[j]] += symmetric[k, j]
        open_chips = np.nonzero(load < caps)[0]
        # Highest affinity wins; ties break toward the emptiest chip so
        # zero-affinity clusters spread instead of piling onto chip 0.
        best = max(
            (int(g) for g in open_chips),
            key=lambda g: (affinity[g], caps[g] - load[g], -g),
        )
        chip_of[k] = best
        load[best] += 1

    def cross_cost(assign: np.ndarray) -> float:
        gd = chip_dist[np.ix_(assign, assign)]
        return float((symmetric * gd).sum())

    # Swap / move refinement at chip granularity.
    best_cost = cross_cost(chip_of)
    for _ in range(max_passes):
        improved = False
        for a in range(c):
            # Move to a chip with spare capacity.
            for g in range(n_chips):
                if g == chip_of[a] or load[g] >= caps[g]:
                    continue
                old = int(chip_of[a])
                chip_of[a] = g
                cost = cross_cost(chip_of)
                if cost < best_cost - 1e-12:
                    load[old] -= 1
                    load[g] += 1
                    best_cost = cost
                    improved = True
                else:
                    chip_of[a] = old
            # Swap with a cluster on another chip.
            for b in range(a + 1, c):
                if chip_of[a] == chip_of[b]:
                    continue
                chip_of[a], chip_of[b] = chip_of[b], chip_of[a]
                cost = cross_cost(chip_of)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    improved = True
                else:
                    chip_of[a], chip_of[b] = chip_of[b], chip_of[a]
        if not improved:
            break
    return chip_of


def _hierarchical_construction(
    traffic: np.ndarray,
    symmetric: np.ndarray,
    dist: np.ndarray,
    topology: MultiChipTopology,
    routing: RoutingTable,
) -> np.ndarray:
    """Two-level construction: pack onto chips, then fill each chip."""
    c = traffic.shape[0]
    chip_of = _pack_onto_chips(
        symmetric, topology, chip_distance_matrix(topology, routing)
    )
    perm = np.full(c, -1, dtype=np.int64)
    for chip in range(topology.n_chips):
        clusters = [k for k in range(c) if chip_of[k] == chip]
        if not clusters:
            continue
        slots = [
            s for s in range(c) if topology.chip_of_crossbar[s] == chip
        ]
        _greedy_fill(symmetric, dist, clusters, slots, perm)
    return perm


def inter_chip_traffic(
    traffic: np.ndarray,
    perm: np.ndarray,
    topology: MultiChipTopology,
) -> float:
    """Spike traffic that crosses any chip boundary under a placement.

    The closed-form counterpart of the simulator's inter-chip hop
    count: traffic between clusters whose slots sit on different chips.
    Used by tests and benches to show the chip-aware pass beats naive
    placement.
    """
    chips = np.asarray(
        [topology.chip_of_crossbar[int(s)] for s in perm], dtype=np.int64
    )
    crossing = chips[:, None] != chips[None, :]
    return float((np.asarray(traffic) * crossing).sum())


def apply_placement(assignment: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Relabel clusters so cluster k occupies attach slot ``perm[k]``."""
    assignment = np.asarray(assignment, dtype=np.int64)
    return perm[assignment]
