"""Cluster-to-tile placement.

The PSO objective (Eq. 8) counts spikes crossing crossbar boundaries but
is blind to *where* each crossbar sits on the interconnect: two clusters
exchanging heavy traffic cost more energy when their tiles are four hops
apart than when they are siblings on the tree.  Partition quality and
placement quality are separable, so after any partitioner runs we solve
the small quadratic-assignment problem of arranging clusters on attach
points to minimize hop-weighted traffic.

With C <= a few dozen crossbars, greedy construction plus pairwise-swap
hill climbing finds (near-)optimal arrangements in microseconds.  The
placement is expressed as a cluster relabeling, which preserves both the
partition's feasibility (uniform capacities) and its Eq. 8 fitness
(relabeling cannot change which synapses cross).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.noc.routing import RoutingTable, routing_for
from repro.noc.topology import Topology


def placement_cost(
    traffic: np.ndarray,
    perm: np.ndarray,
    distance: np.ndarray,
) -> float:
    """Hop-weighted traffic for a cluster->slot permutation.

    ``traffic[k1, k2]`` is spikes from cluster k1 to k2; ``distance[s1, s2]``
    is routed hops between attach slots; ``perm[k]`` is the slot of
    cluster ``k``.
    """
    return float((traffic * distance[np.ix_(perm, perm)]).sum())


def _distance_matrix(topology: Topology, routing: RoutingTable) -> np.ndarray:
    c = topology.n_attach_points
    dist = np.zeros((c, c), dtype=np.float64)
    for a in range(c):
        na = topology.node_of_crossbar(a)
        for b in range(c):
            if a != b:
                dist[a, b] = routing.distance(na, topology.node_of_crossbar(b))
    return dist


def place_clusters(
    traffic: np.ndarray,
    topology: Topology,
    routing: Optional[RoutingTable] = None,
    max_passes: int = 20,
) -> np.ndarray:
    """Arrange clusters on attach points to minimize hop-weighted traffic.

    Returns ``perm`` with ``perm[k]`` = attach-point slot of cluster ``k``.
    Greedy heaviest-pair-first construction, then pairwise-swap hill
    climbing until a full pass yields no improvement (or ``max_passes``).
    """
    c = traffic.shape[0]
    if traffic.shape != (c, c):
        raise ValueError(f"traffic must be square, got {traffic.shape}")
    if topology.n_attach_points < c:
        raise ValueError(
            f"{c} clusters need {c} attach points; topology has "
            f"{topology.n_attach_points}"
        )
    if routing is None:
        routing = routing_for(topology)
    if c == 1:
        return np.zeros(1, dtype=np.int64)

    dist = _distance_matrix(topology, routing)[:c, :c]
    symmetric = traffic + traffic.T

    # Greedy construction: place the heaviest-communicating unplaced
    # cluster next to the placed cluster it talks to most, on the nearest
    # free slot.
    perm = np.full(c, -1, dtype=np.int64)
    free_slots = set(range(c))
    order = np.argsort(-symmetric.sum(axis=1), kind="stable")
    first = int(order[0])
    perm[first] = 0
    free_slots.discard(0)
    for k in order[1:]:
        k = int(k)
        placed = np.nonzero(perm >= 0)[0]
        weights = symmetric[k, placed]
        anchor = int(placed[np.argmax(weights)]) if weights.size else int(placed[0])
        anchor_slot = int(perm[anchor])
        slot = min(free_slots, key=lambda s: dist[anchor_slot, s])
        perm[k] = slot
        free_slots.discard(slot)

    # Pairwise-swap hill climbing.
    best_cost = placement_cost(traffic, perm, dist)
    for _ in range(max_passes):
        improved = False
        for a in range(c):
            for b in range(a + 1, c):
                perm[a], perm[b] = perm[b], perm[a]
                cost = placement_cost(traffic, perm, dist)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    improved = True
                else:
                    perm[a], perm[b] = perm[b], perm[a]
        if not improved:
            break
    return perm


def apply_placement(assignment: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Relabel clusters so cluster k occupies attach slot ``perm[k]``."""
    assignment = np.asarray(assignment, dtype=np.int64)
    return perm[assignment]
