"""Architecture description: crossbars + interconnect family.

The designer-provided specification of the paper's Section III: ``C``
crossbars of ``Nc`` neurons each, joined by a NoC of a given family
(tree for CxQuad, mesh for TrueNorth-like chips).  Section V-C explores
this very specification — :mod:`repro.framework.exploration` sweeps
``neurons_per_crossbar`` holding total neuron capacity fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

from repro.hardware.crossbar import Crossbar
from repro.hardware.energy_model import EnergyModel
from repro.noc.topology import Topology, build_topology
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Architecture:
    """A clustered neuromorphic platform.

    Attributes
    ----------
    n_crossbars:
        Number of crossbar tiles (``C``).
    neurons_per_crossbar:
        Neuron capacity of each tile (``Nc``).
    interconnect:
        Topology family for the global synapse interconnect:
        "tree", "mesh", "star" or "torus".  With ``n_chips > 1`` this
        is the *per-chip* family and the chips are composed into a
        multi-chip fabric with bridge links.
    n_chips:
        Number of chips the crossbars are spread across.  ``1`` (the
        default) is the flat single-chip platform of the paper; larger
        values build a :class:`~repro.noc.multichip.MultiChipTopology`.
    bridge_latency:
        Cycles for a packet to cross one chip-to-chip bridge (only
        meaningful with ``n_chips > 1``).
    cycles_per_ms:
        Interconnect clock cycles per millisecond of biological time; sets
        how bursty simultaneous spikes appear to the NoC.
    energy:
        Per-event energy coefficients (including the per-crossing
        bridge energy on multi-chip platforms).
    name:
        Label for reports.
    """

    n_crossbars: int
    neurons_per_crossbar: int
    interconnect: str = "tree"
    cycles_per_ms: float = 10.0
    energy: EnergyModel = field(default_factory=EnergyModel)
    name: str = "custom"
    n_chips: int = 1
    bridge_latency: int = 1

    def __post_init__(self) -> None:
        check_positive("n_crossbars", self.n_crossbars)
        check_positive("neurons_per_crossbar", self.neurons_per_crossbar)
        check_positive("cycles_per_ms", self.cycles_per_ms)
        check_positive("n_chips", self.n_chips)
        check_positive("bridge_latency", self.bridge_latency)

    @property
    def total_capacity(self) -> int:
        """Maximum number of neurons the platform can host."""
        return self.n_crossbars * self.neurons_per_crossbar

    def build_topology(self) -> Topology:
        """Instantiate the interconnect topology with one attach point per tile.

        With ``n_chips > 1`` the crossbars are spread over a multi-chip
        fabric of ``interconnect``-family chips joined by bridges.  The
        chip count is clamped to the crossbar count so derived
        platforms (``scaled_to`` during exploration) stay buildable
        when they shrink below one crossbar per chip.
        """
        chips = min(self.n_chips, self.n_crossbars)
        if chips > 1:
            return build_topology(
                "multichip",
                self.n_crossbars,
                n_chips=chips,
                chip_kind=self.interconnect,
                bridge_latency=self.bridge_latency,
            )
        return build_topology(self.interconnect, self.n_crossbars)

    def build_crossbars(self) -> List[Crossbar]:
        return [
            Crossbar(index=k, capacity=self.neurons_per_crossbar)
            for k in range(self.n_crossbars)
        ]

    def fits(self, n_neurons: int) -> bool:
        """Whether a network of ``n_neurons`` can be placed at all."""
        return n_neurons <= self.total_capacity

    def require_fits(self, n_neurons: int) -> None:
        if not self.fits(n_neurons):
            raise ValueError(
                f"network of {n_neurons} neurons exceeds {self.name!r} capacity "
                f"{self.total_capacity} ({self.n_crossbars} x "
                f"{self.neurons_per_crossbar})"
            )

    def scaled_to(self, n_neurons: int, neurons_per_crossbar: int) -> "Architecture":
        """Derive an architecture with tiles of a new size covering ``n_neurons``.

        Used by the Fig. 6 exploration: crossbar size varies, and the tile
        count grows/shrinks to keep the network placeable.
        """
        check_positive("neurons_per_crossbar", neurons_per_crossbar)
        n_crossbars = max(1, -(-n_neurons // neurons_per_crossbar))
        return replace(
            self,
            n_crossbars=n_crossbars,
            neurons_per_crossbar=neurons_per_crossbar,
            name=f"{self.name}@{neurons_per_crossbar}/xbar",
        )

    def describe(self) -> str:
        chips = (
            f"{self.n_chips} chips of {self.interconnect} "
            f"(bridge latency {self.bridge_latency})"
            if self.n_chips > 1
            else f"{self.interconnect} interconnect"
        )
        return (
            f"Architecture {self.name!r}: {self.n_crossbars} crossbars x "
            f"{self.neurons_per_crossbar} neurons, {chips}, "
            f"{self.cycles_per_ms} cycles/ms"
        )
