"""Address Event Representation encoder/decoder (paper Fig. 2).

AER serializes the spikes of a neuron group onto a shared channel: each
spike becomes an (address, time) event.  The encoder merges per-neuron
spike trains into one time-ordered event stream; the decoder reconstructs
per-neuron trains.  A finite ``events_per_slot`` models the channel's
time-multiplexing: when more neurons spike in one timestamp than the
channel can carry, the excess events slip to later slots — exactly the
serialization that causes ISI distortion and spike disorder downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class AEREvent:
    """One address-event: which neuron spiked, and when it left the encoder."""

    address: int
    time: float


def encode_spike_trains(
    spike_times: Sequence[np.ndarray],
    events_per_slot: int = 0,
    slot_ms: float = 1.0,
) -> List[AEREvent]:
    """Merge per-neuron spike trains into a time-ordered AER stream.

    With ``events_per_slot == 0`` the channel is ideal (no serialization
    delay).  Otherwise at most ``events_per_slot`` events leave the encoder
    per ``slot_ms`` window; surplus events queue and depart in later slots,
    FIFO by (spike time, address).
    """
    events = [
        (float(t), int(addr))
        for addr, train in enumerate(spike_times)
        for t in np.asarray(train, dtype=np.float64)
    ]
    events.sort()
    if events_per_slot <= 0:
        return [AEREvent(address=a, time=t) for t, a in events]

    check_positive("slot_ms", slot_ms)
    out: List[AEREvent] = []
    next_free_slot = 0
    used_in_slot = 0
    for t, addr in events:
        slot = int(t // slot_ms)
        if slot > next_free_slot:
            next_free_slot = slot
            used_in_slot = 0
        if used_in_slot >= events_per_slot:
            next_free_slot += 1
            used_in_slot = 0
        depart = max(t, next_free_slot * slot_ms)
        out.append(AEREvent(address=addr, time=depart))
        used_in_slot += 1
    return out


def decode_events(events: Sequence[AEREvent], n_neurons: int) -> List[np.ndarray]:
    """Reconstruct per-neuron spike trains from an AER stream."""
    check_positive("n_neurons", n_neurons)
    trains: List[List[float]] = [[] for _ in range(n_neurons)]
    for ev in events:
        if not 0 <= ev.address < n_neurons:
            raise ValueError(
                f"AER event address {ev.address} outside [0, {n_neurons})"
            )
        trains[ev.address].append(ev.time)
    return [np.asarray(sorted(t), dtype=np.float64) for t in trains]
