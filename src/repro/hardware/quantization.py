"""Synaptic weight quantization for memristive crossbars.

A memristor stores a synapse's weight as a conductance with a few
distinguishable levels — typically 4-6 bits per device — so deploying a
trained SNN onto the paper's hardware implies quantizing its weights.
This module provides the deployment-side quantizer and the analysis
needed to confirm a mapping survives it:

- uniform quantization to ``n_bits`` levels per weight sign, preserving
  zero exactly (a zero weight is an *absent* synapse; quantization must
  never create or destroy connectivity);
- quantization error reporting;
- a helper to quantize a whole :class:`~repro.snn.graph.SpikeGraph`
  in place for post-quantization mapping studies.

Partition quality is invariant to quantization — the optimizer consumes
spike *traffic*, not weights — which :mod:`tests.hardware.test_quantization`
asserts; what quantization affects is application accuracy upstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.snn.graph import SpikeGraph
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class QuantizationReport:
    """Outcome of one quantization pass."""

    n_bits: int
    n_levels: int
    max_abs_error: float
    mean_abs_error: float
    n_weights: int
    n_saturated: int  # weights clipped at the top level


def quantize_weights(
    weights: np.ndarray,
    n_bits: int = 4,
    w_max: float = None,
) -> np.ndarray:
    """Uniformly quantize weights to ``2**n_bits - 1`` magnitude levels.

    Positive and negative weights quantize symmetrically; exact zeros stay
    exactly zero (absent synapses are not devices).  ``w_max`` fixes the
    full-scale magnitude (defaults to the array's max magnitude); larger
    magnitudes clip to full scale, which models conductance saturation.
    """
    check_positive("n_bits", n_bits)
    w = np.asarray(weights, dtype=np.float64)
    magnitude = np.abs(w)
    scale = w_max if w_max is not None else float(magnitude.max())
    if scale <= 0:
        return w.copy()
    levels = 2**n_bits - 1
    step = scale / levels
    quantized_mag = np.clip(np.round(magnitude / step), 0, levels) * step
    out = np.sign(w) * quantized_mag
    # Zero must survive exactly: never create a synapse from nothing.
    out[w == 0.0] = 0.0
    return out


def quantization_report(
    weights: np.ndarray,
    n_bits: int = 4,
    w_max: float = None,
) -> QuantizationReport:
    """Quantize and summarize the introduced error."""
    w = np.asarray(weights, dtype=np.float64)
    q = quantize_weights(w, n_bits=n_bits, w_max=w_max)
    nonzero = w != 0.0
    errors = np.abs(q[nonzero] - w[nonzero])
    scale = w_max if w_max is not None else float(np.abs(w).max() or 1.0)
    saturated = int((np.abs(w) > scale).sum())
    return QuantizationReport(
        n_bits=n_bits,
        n_levels=2**n_bits - 1,
        max_abs_error=float(errors.max()) if errors.size else 0.0,
        mean_abs_error=float(errors.mean()) if errors.size else 0.0,
        n_weights=int(nonzero.sum()),
        n_saturated=saturated,
    )


def quantize_graph(graph: SpikeGraph, n_bits: int = 4) -> QuantizationReport:
    """Quantize a spike graph's synaptic weights in place.

    Traffic (spike counts) is untouched: quantization happens at
    deployment, after the profiling run that produced the traffic.
    """
    report = quantization_report(graph.weight, n_bits=n_bits)
    graph.weight = quantize_weights(graph.weight, n_bits=n_bits)
    return report
