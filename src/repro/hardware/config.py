"""Plain-text configuration files for platforms and energy models.

Noxim loads its power numbers from "an external loaded YAML file" so users
can re-target the simulator without recompiling; this module provides the
same workflow without a YAML dependency: a small, strict parser for the
flat ``key: value`` subset of YAML that hardware configs actually use
(scalars, comments, one level of section nesting).

Example config::

    # my_chip.yaml
    name: my_chip
    n_crossbars: 4
    neurons_per_crossbar: 256
    interconnect: tree
    n_chips: 1          # > 1 builds a multi-chip fabric of `interconnect` chips
    bridge_latency: 1   # cycles per chip-to-chip bridge crossing
    cycles_per_ms: 10.0
    energy:
      e_local_event_pj: 1.6
      reference_crossbar_size: 128
      e_router_pj: 9.0
      e_link_pj: 4.5
      e_encode_pj: 3.0
      e_decode_pj: 3.0
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.hardware.architecture import Architecture
from repro.hardware.energy_model import EnergyModel

ConfigValue = Union[str, int, float, Dict[str, Union[str, int, float]]]


def _parse_scalar(raw: str) -> Union[str, int, float]:
    raw = raw.strip()
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def parse_config_text(text: str) -> Dict[str, ConfigValue]:
    """Parse the flat YAML subset: ``key: value`` plus one nesting level.

    Raises ``ValueError`` with the offending line number on anything the
    subset does not cover (lists, multi-level nesting, tabs).
    """
    result: Dict[str, ConfigValue] = {}
    section: Dict[str, Union[str, int, float]] = {}
    section_name = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].rstrip()
        if not stripped.strip():
            continue
        if "\t" in line:
            raise ValueError(f"line {lineno}: tabs are not allowed")
        indent = len(stripped) - len(stripped.lstrip())
        if ":" not in stripped:
            raise ValueError(f"line {lineno}: expected 'key: value'")
        key, _, raw_value = stripped.strip().partition(":")
        key = key.strip()
        raw_value = raw_value.strip()
        if indent == 0:
            section_name = None
            if raw_value:
                result[key] = _parse_scalar(raw_value)
            else:
                section = {}
                section_name = key
                result[key] = section
        else:
            if section_name is None:
                raise ValueError(
                    f"line {lineno}: indented key outside any section"
                )
            if not raw_value:
                raise ValueError(
                    f"line {lineno}: nested sections deeper than one level "
                    "are not supported"
                )
            section[key] = _parse_scalar(raw_value)
    return result


def render_config_text(config: Dict[str, ConfigValue]) -> str:
    """Inverse of :func:`parse_config_text`."""
    lines = []
    for key, value in config.items():
        if isinstance(value, dict):
            lines.append(f"{key}:")
            for sub_key, sub_value in value.items():
                lines.append(f"  {sub_key}: {sub_value}")
        else:
            lines.append(f"{key}: {value}")
    return "\n".join(lines) + "\n"


def architecture_to_config(arch: Architecture) -> Dict[str, ConfigValue]:
    """Serialize a platform description to a config dict."""
    return {
        "name": arch.name,
        "n_crossbars": arch.n_crossbars,
        "neurons_per_crossbar": arch.neurons_per_crossbar,
        "interconnect": arch.interconnect,
        "n_chips": arch.n_chips,
        "bridge_latency": arch.bridge_latency,
        "cycles_per_ms": arch.cycles_per_ms,
        "energy": arch.energy.to_dict(),
    }


def architecture_from_config(config: Dict[str, ConfigValue]) -> Architecture:
    """Build a platform from a parsed config dict."""
    required = {"n_crossbars", "neurons_per_crossbar"}
    missing = required - set(config)
    if missing:
        raise ValueError(f"config is missing required keys: {sorted(missing)}")
    energy_cfg = config.get("energy", {})
    if not isinstance(energy_cfg, dict):
        raise ValueError("'energy' must be a section of key: value pairs")
    return Architecture(
        n_crossbars=int(config["n_crossbars"]),
        neurons_per_crossbar=int(config["neurons_per_crossbar"]),
        interconnect=str(config.get("interconnect", "tree")),
        cycles_per_ms=float(config.get("cycles_per_ms", 10.0)),
        energy=EnergyModel.from_dict(energy_cfg) if energy_cfg else EnergyModel(),
        name=str(config.get("name", "custom")),
        n_chips=int(config.get("n_chips", 1)),
        bridge_latency=int(config.get("bridge_latency", 1)),
    )


def save_architecture(arch: Architecture, path: Union[str, Path]) -> None:
    """Write a platform description to a config file."""
    Path(path).write_text(
        render_config_text(architecture_to_config(arch)), encoding="utf-8"
    )


def load_architecture(path: Union[str, Path]) -> Architecture:
    """Read a platform description from a config file."""
    return architecture_from_config(
        parse_config_text(Path(path).read_text(encoding="utf-8"))
    )
