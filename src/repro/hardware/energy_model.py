"""Energy model for local and global synaptic events.

The paper uses power numbers from in-house IMEC neuromorphic chips, which
are not public.  This model keeps every coefficient configurable and ships
defaults in the published ballpark for 28 nm-class neuromorphic designs
(TrueNorth reports 26 pJ per synaptic event end-to-end; memristive
crossbar *device* events are sub-pJ — we default to 0.16 pJ at the
128-wide reference wordline; NoC routers cost a few pJ per flit per
hop).  All paper results we reproduce are *normalized* or comparative,
so only the ratios matter to the shapes; the local/global ratio is
calibrated so the Fig. 6 exploration exhibits the paper's interior
total-energy minimum.

Local synapse energy
--------------------
Driving one crossbar row activates the wordline across all ``Nc`` columns,
so the energy of one local pre-synaptic spike scales linearly with crossbar
width: ``e_local_event * (Nc / reference_size)``.  This is what makes big
crossbars expensive locally and produces the local/global crossover of the
paper's Fig. 6.

Global synapse energy
---------------------
Charged per event on the interconnect: router traversal and link traversal
per hop, plus encoder (injection) and decoder (ejection) work per packet.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Mapping

from repro.noc.stats import NocStats
from repro.utils.validation import check_nonnegative, check_positive


@dataclass(frozen=True)
class EnergyBreakdown:
    """Result of an energy evaluation, in picojoules."""

    local_pj: float
    global_pj: float

    @property
    def total_pj(self) -> float:
        return self.local_pj + self.global_pj

    @property
    def local_uj(self) -> float:
        return self.local_pj * 1e-6

    @property
    def global_uj(self) -> float:
        return self.global_pj * 1e-6

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6


@dataclass(frozen=True)
class EnergyModel:
    """Configurable per-event energy coefficients (picojoules).

    Attributes
    ----------
    e_local_event_pj:
        Energy of one local synaptic event on a crossbar of
        ``reference_crossbar_size`` neurons.
    reference_crossbar_size:
        Crossbar width at which ``e_local_event_pj`` is calibrated; local
        event energy scales as ``size / reference`` (wordline length).
    e_router_pj:
        Router traversal energy per packet per hop.
    e_link_pj:
        Link traversal energy per packet per hop.
    e_encode_pj / e_decode_pj:
        AER encoder / decoder energy per packet injected / delivered.
    e_bridge_pj:
        Extra energy per packet per chip-to-chip bridge *crossing*
        (SerDes + pad drive), on top of the ordinary per-hop cost the
        bridge's relay stages already pay.  Inert on single-chip
        fabrics, which have no bridges to cross.
    """

    e_local_event_pj: float = 0.16
    reference_crossbar_size: int = 128
    e_router_pj: float = 9.0
    e_link_pj: float = 4.5
    e_encode_pj: float = 3.0
    e_decode_pj: float = 3.0
    e_bridge_pj: float = 45.0

    def __post_init__(self) -> None:
        check_nonnegative("e_local_event_pj", self.e_local_event_pj)
        check_positive("reference_crossbar_size", self.reference_crossbar_size)
        check_nonnegative("e_router_pj", self.e_router_pj)
        check_nonnegative("e_link_pj", self.e_link_pj)
        check_nonnegative("e_encode_pj", self.e_encode_pj)
        check_nonnegative("e_decode_pj", self.e_decode_pj)
        check_nonnegative("e_bridge_pj", self.e_bridge_pj)

    # -- local side -----------------------------------------------------------

    def local_event_energy_pj(self, crossbar_size: int) -> float:
        """Energy of one local synaptic event on a crossbar of given width."""
        check_positive("crossbar_size", crossbar_size)
        return self.e_local_event_pj * (crossbar_size / self.reference_crossbar_size)

    def local_energy_pj(self, local_spike_events: float, crossbar_size: int) -> float:
        """Total local-synapse energy for a count of crossbar events."""
        check_nonnegative("local_spike_events", local_spike_events)
        return local_spike_events * self.local_event_energy_pj(crossbar_size)

    # -- global side ------------------------------------------------------------

    def global_energy_pj(self, stats: NocStats, topology=None) -> float:
        """Interconnect energy from a NoC simulation's event counts.

        Pass the simulated topology to charge the multi-chip bridge
        term: every chip-to-chip crossing costs ``e_bridge_pj`` on top
        of the per-hop energy its relay stages already pay.  Without a
        topology (or on a single-chip one) the result is the flat
        accounting unchanged.
        """
        hop_energy = stats.total_hops() * (self.e_router_pj + self.e_link_pj)
        endpoint_energy = (
            stats.n_injected * self.e_encode_pj
            + stats.delivered_count * self.e_decode_pj
        )
        bridge_energy = 0.0
        crossings = getattr(topology, "bridge_crossings", None)
        if crossings is not None:
            bridge_energy = crossings(stats.link_loads) * self.e_bridge_pj
        return hop_energy + endpoint_energy + bridge_energy

    def global_energy_per_spike_hop_pj(self) -> float:
        """Convenience: energy of moving one packet across one hop."""
        return self.e_router_pj + self.e_link_pj

    # -- analytic global estimate (no NoC simulation) ---------------------------

    def estimate_global_energy_pj(
        self,
        spike_hops: float,
        packets: float,
        deliveries: float,
        bridge_crossings: float = 0.0,
    ) -> float:
        """Analytic estimate used by fast fitness sweeps.

        ``spike_hops`` is total (packet x hop) events; ``packets`` and
        ``deliveries`` are injection/ejection counts;
        ``bridge_crossings`` is the chip-to-chip crossing count on a
        multi-chip fabric (zero on one chip).
        """
        check_nonnegative("spike_hops", spike_hops)
        check_nonnegative("bridge_crossings", bridge_crossings)
        return (
            spike_hops * (self.e_router_pj + self.e_link_pj)
            + packets * self.e_encode_pj
            + deliveries * self.e_decode_pj
            + bridge_crossings * self.e_bridge_pj
        )

    # -- config round-trip (the paper's "external loaded YAML file") -------------

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, config: Mapping[str, float]) -> "EnergyModel":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(config) - known
        if unknown:
            raise ValueError(f"unknown energy parameters: {sorted(unknown)}")
        return cls(**config)
