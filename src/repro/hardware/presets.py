"""Platform presets.

- :func:`cxquad` — the paper's reference chip: four crossbars on a
  NoC-tree.  The paper describes CxQuad both as "1024 neurons clustered
  into four crossbars of 256 neurons each" and as crossbars of "128 pre-
  and 128 post-synaptic neurons implementing a full 16K local synapses";
  we take 256 neurons of *capacity* per tile (the mapping constraint) and
  keep 128 as the energy model's reference wordline width.
- :func:`truenorth_like` — many small tiles on a NoC-mesh.
- :func:`custom` — free-form.
"""

from __future__ import annotations

from repro.hardware.architecture import Architecture
from repro.hardware.energy_model import EnergyModel


def cxquad(cycles_per_ms: float = 10.0) -> Architecture:
    """The paper's reference platform: 4 crossbars x 256 neurons, NoC-tree."""
    return Architecture(
        n_crossbars=4,
        neurons_per_crossbar=256,
        interconnect="tree",
        cycles_per_ms=cycles_per_ms,
        energy=EnergyModel(reference_crossbar_size=128),
        name="cxquad",
    )


def truenorth_like(
    n_crossbars: int = 16,
    neurons_per_crossbar: int = 256,
    cycles_per_ms: float = 10.0,
) -> Architecture:
    """A TrueNorth-style platform: small tiles on a NoC-mesh."""
    return Architecture(
        n_crossbars=n_crossbars,
        neurons_per_crossbar=neurons_per_crossbar,
        interconnect="mesh",
        cycles_per_ms=cycles_per_ms,
        energy=EnergyModel(reference_crossbar_size=256),
        name="truenorth_like",
    )


def multichip_board(
    n_chips: int = 4,
    crossbars_per_chip: int = 4,
    neurons_per_crossbar: int = 256,
    chip_interconnect: str = "mesh",
    bridge_latency: int = 4,
    cycles_per_ms: float = 10.0,
) -> Architecture:
    """A board of several mesh chips joined by bridges (TrueNorth-style).

    Chip-to-chip links are slower than on-chip hops (``bridge_latency``
    cycles each) and each crossing pays the energy model's
    ``e_bridge_pj`` on top of per-hop costs.
    """
    return Architecture(
        n_crossbars=n_chips * crossbars_per_chip,
        neurons_per_crossbar=neurons_per_crossbar,
        interconnect=chip_interconnect,
        cycles_per_ms=cycles_per_ms,
        energy=EnergyModel(reference_crossbar_size=256),
        name=f"multichip_board_{n_chips}x{crossbars_per_chip}",
        n_chips=n_chips,
        bridge_latency=bridge_latency,
    )


def custom(
    n_crossbars: int,
    neurons_per_crossbar: int,
    interconnect: str = "tree",
    cycles_per_ms: float = 10.0,
    energy: EnergyModel = None,
    name: str = "custom",
    n_chips: int = 1,
    bridge_latency: int = 1,
) -> Architecture:
    """Free-form platform builder with CxQuad-calibrated default energies."""
    return Architecture(
        n_crossbars=n_crossbars,
        neurons_per_crossbar=neurons_per_crossbar,
        interconnect=interconnect,
        cycles_per_ms=cycles_per_ms,
        energy=energy if energy is not None else EnergyModel(),
        name=name,
        n_chips=n_chips,
        bridge_latency=bridge_latency,
    )


def architecture_for(
    n_neurons: int,
    neurons_per_crossbar: int = 256,
    interconnect: str = "tree",
    cycles_per_ms: float = 10.0,
    name: str = "auto",
    n_chips: int = 1,
    bridge_latency: int = 1,
) -> Architecture:
    """Smallest platform of fixed tile size that fits ``n_neurons``."""
    n_crossbars = max(1, -(-n_neurons // neurons_per_crossbar))
    return Architecture(
        n_crossbars=n_crossbars,
        neurons_per_crossbar=neurons_per_crossbar,
        interconnect=interconnect,
        cycles_per_ms=cycles_per_ms,
        name=name,
        n_chips=n_chips,
        bridge_latency=bridge_latency,
    )
