"""A single crossbar tile.

A crossbar is a full Nc x Nc array of memristive synapses: any neuron
assigned to the tile can connect to any other neuron on the same tile at
zero interconnect cost.  The class tracks which neurons are placed on the
tile and accounts for local synapses and local spike events, which feed
the local-synapse energy term of the architecture exploration (Fig. 6).
"""

from __future__ import annotations

from typing import Iterable, List, Set

import numpy as np

from repro.snn.graph import SpikeGraph
from repro.utils.validation import check_positive


class Crossbar:
    """Capacity-checked neuron container for one tile."""

    def __init__(self, index: int, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.index = index
        self.capacity = int(capacity)
        self._neurons: Set[int] = set()

    @property
    def neurons(self) -> List[int]:
        return sorted(self._neurons)

    @property
    def occupancy(self) -> int:
        return len(self._neurons)

    @property
    def free_slots(self) -> int:
        return self.capacity - self.occupancy

    def place(self, neuron: int) -> None:
        """Assign one neuron; raises when the tile is full or duplicated."""
        if neuron in self._neurons:
            raise ValueError(f"neuron {neuron} already placed on crossbar {self.index}")
        if self.free_slots <= 0:
            raise OverflowError(
                f"crossbar {self.index} is full ({self.capacity} neurons)"
            )
        self._neurons.add(neuron)

    def place_all(self, neurons: Iterable[int]) -> None:
        for n in neurons:
            self.place(n)

    def contains(self, neuron: int) -> bool:
        return neuron in self._neurons

    def local_synapses(self, graph: SpikeGraph) -> int:
        """Synapses of ``graph`` whose both endpoints sit on this tile."""
        members = self._neurons
        return int(
            sum(
                1
                for s, d in zip(graph.src, graph.dst)
                if int(s) in members and int(d) in members
            )
        )

    def local_spike_events(self, graph: SpikeGraph) -> float:
        """Spike events carried by this tile's local synapses.

        Each pre-synaptic spike on a local synapse is one crossbar
        activation — the energy-proportional event for local synapses.
        """
        members = self._neurons
        mask = np.fromiter(
            (int(s) in members and int(d) in members
             for s, d in zip(graph.src, graph.dst)),
            dtype=bool,
            count=graph.n_synapses,
        )
        return float(graph.traffic[mask].sum())

    def __repr__(self) -> str:
        return (
            f"Crossbar(index={self.index}, capacity={self.capacity}, "
            f"occupancy={self.occupancy})"
        )
