"""Neuromorphic platform model (CxQuad-like clustered crossbar hardware).

The reference platform (paper Fig. 1) is a set of memristive crossbars —
each a fully connected array of Nc pre- x Nc post-synaptic neurons — joined
by a time-multiplexed interconnect carrying AER packets.  This package
models the platform pieces the mapping flow needs:

- :class:`Architecture` — C crossbars x Nc neurons + interconnect family;
- :class:`Crossbar` — capacity and local-synapse accounting for one tile;
- :class:`EnergyModel` — configurable local/global energy parameters
  (stand-in for the paper's in-house CxQuad power numbers);
- :mod:`repro.hardware.aer` — AER encoder/decoder (paper Fig. 2);
- :mod:`repro.hardware.presets` — cxquad(), truenorth_like(), custom().
"""

from repro.hardware.architecture import Architecture
from repro.hardware.crossbar import Crossbar
from repro.hardware.energy_model import EnergyBreakdown, EnergyModel
from repro.hardware.aer import AEREvent, decode_events, encode_spike_trains
from repro.hardware.config import load_architecture, save_architecture
from repro.hardware.quantization import quantize_graph, quantize_weights
from repro.hardware.presets import (
    cxquad,
    custom,
    multichip_board,
    truenorth_like,
)

__all__ = [
    "Architecture",
    "Crossbar",
    "EnergyModel",
    "EnergyBreakdown",
    "AEREvent",
    "encode_spike_trains",
    "decode_events",
    "cxquad",
    "truenorth_like",
    "custom",
    "multichip_board",
    "load_architecture",
    "save_architecture",
    "quantize_weights",
    "quantize_graph",
]
