"""Aggregated metric report — one row of the paper's Table II.

:func:`build_report` combines a mapping result, the NoC statistics of its
global traffic, and the architecture's energy model into the full metric
set the paper evaluates: ISI distortion, disorder count, throughput,
latency, and local/global/total energy.

:class:`DegradationCurve` stacks the same metrics against rising fault
counts (see :mod:`repro.noc.faults`): one :class:`DegradationPoint` per
fault level shows how latency, energy and spike disorder degrade as the
fabric loses links — the headroom a mapping has when traffic is forced
onto detours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.mapper import MappingResult
from repro.hardware.architecture import Architecture
from repro.metrics.disorder import disorder_fraction
from repro.metrics.isi import isi_distortion_mean, isi_distortion_worst
from repro.noc.stats import NocStats
from repro.utils.tables import format_table


@dataclass(frozen=True)
class MetricReport:
    """All paper metrics for one (application, architecture, method) run."""

    app: str
    method: str
    # SNN-specific metrics (paper's introduced metrics)
    isi_distortion_cycles: float
    isi_distortion_worst_cycles: float
    disorder_fraction: float
    # Conventional interconnect metrics
    throughput_aer_per_ms: float
    max_latency_cycles: int
    mean_latency_cycles: float
    # Energy
    local_energy_pj: float
    global_energy_pj: float
    # Mapping profile
    global_spikes: float
    local_spikes: float
    global_synapses: int
    local_synapses: int
    delivered_packets: int
    undelivered_packets: int
    # Multi-chip breakdown (all zero / one on single-chip fabrics)
    n_chips: int = 1
    inter_chip_hops: int = 0
    bridge_crossings: int = 0
    mean_inter_chip_latency_cycles: float = 0.0

    @property
    def total_energy_pj(self) -> float:
        return self.local_energy_pj + self.global_energy_pj

    @property
    def disorder_percent(self) -> float:
        return self.disorder_fraction * 100.0

    def to_dict(self) -> Dict[str, float]:
        d = {
            "app": self.app,
            "method": self.method,
            "isi_distortion_cycles": self.isi_distortion_cycles,
            "isi_distortion_worst_cycles": self.isi_distortion_worst_cycles,
            "disorder_percent": self.disorder_percent,
            "throughput_aer_per_ms": self.throughput_aer_per_ms,
            "max_latency_cycles": self.max_latency_cycles,
            "mean_latency_cycles": self.mean_latency_cycles,
            "local_energy_pj": self.local_energy_pj,
            "global_energy_pj": self.global_energy_pj,
            "total_energy_pj": self.total_energy_pj,
            "global_spikes": self.global_spikes,
            "local_spikes": self.local_spikes,
            "global_synapses": self.global_synapses,
            "local_synapses": self.local_synapses,
            "delivered_packets": self.delivered_packets,
            "undelivered_packets": self.undelivered_packets,
            "n_chips": self.n_chips,
            "inter_chip_hops": self.inter_chip_hops,
            "bridge_crossings": self.bridge_crossings,
            "mean_inter_chip_latency_cycles": (
                self.mean_inter_chip_latency_cycles
            ),
        }
        return d

    def table(self) -> str:
        """Render as the paper's Table II row block."""
        rows = [
            ("ISI distortion (cycles)", f"{self.isi_distortion_cycles:.1f}"),
            ("Disorder count (%)", f"{self.disorder_percent:.2f}"),
            ("Throughput (AER/ms)", f"{self.throughput_aer_per_ms:.2f}"),
            ("Latency (cycles)", str(self.max_latency_cycles)),
            ("Global energy (uJ)", f"{self.global_energy_pj * 1e-6:.3f}"),
            ("Local energy (uJ)", f"{self.local_energy_pj * 1e-6:.3f}"),
        ]
        if self.n_chips > 1:
            rows.extend(
                [
                    ("Chips", str(self.n_chips)),
                    ("Inter-chip hops", str(self.inter_chip_hops)),
                    ("Bridge crossings", str(self.bridge_crossings)),
                    (
                        "Inter-chip latency (cycles)",
                        f"{self.mean_inter_chip_latency_cycles:.1f}",
                    ),
                ]
            )
        return format_table(
            [f"{self.app} / {self.method}", "value"], rows
        )


@dataclass(frozen=True)
class DegradationPoint:
    """Paper metrics of one mapping measured at one fault level."""

    n_faults: int
    fault_fraction: float  # failed links / healthy link count
    failed_links: Tuple[Tuple[int, int], ...]
    mean_latency_cycles: float
    max_latency_cycles: int
    global_energy_pj: float
    disorder_fraction: float
    delivered_packets: int
    undelivered_packets: int

    @property
    def disorder_percent(self) -> float:
        return self.disorder_fraction * 100.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "n_faults": self.n_faults,
            "fault_fraction": self.fault_fraction,
            "failed_links": [list(link) for link in self.failed_links],
            "mean_latency_cycles": self.mean_latency_cycles,
            "max_latency_cycles": self.max_latency_cycles,
            "global_energy_pj": self.global_energy_pj,
            "disorder_percent": self.disorder_percent,
            "delivered_packets": self.delivered_packets,
            "undelivered_packets": self.undelivered_packets,
        }


@dataclass
class DegradationCurve:
    """Latency / energy / disorder vs. fault rate for one mapping.

    Points are ordered by rising fault count; the first point is the
    healthy fabric (``n_faults == 0``) when the sweep included it.
    """

    app: str
    method: str
    topology_kind: str
    points: List[DegradationPoint] = field(default_factory=list)

    @property
    def healthy(self) -> DegradationPoint:
        """The ``n_faults == 0`` point every overhead is measured against.

        Raises a clear ``ValueError`` when the sweep skipped the healthy
        fabric — overheads against an already-degraded baseline would be
        silently wrong.
        """
        for point in self.points:
            if point.n_faults == 0:
                return point
        raise ValueError(
            "degradation curve has no healthy (0-fault) point; include "
            "fault count 0 in the sweep to measure overheads against"
        )

    def latency_overhead(self, point: DegradationPoint) -> float:
        """Mean-latency multiplier of ``point`` over the healthy fabric."""
        base = self.healthy.mean_latency_cycles
        if base == 0.0:
            return 1.0
        return point.mean_latency_cycles / base

    def to_dict(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "method": self.method,
            "topology_kind": self.topology_kind,
            "points": [p.to_dict() for p in self.points],
        }

    def table(self) -> str:
        rows = [
            (
                str(p.n_faults),
                f"{p.fault_fraction * 100.0:.1f}%",
                f"{p.mean_latency_cycles:.2f}",
                str(p.max_latency_cycles),
                f"{p.global_energy_pj * 1e-6:.3f}",
                f"{p.disorder_percent:.2f}",
                str(p.undelivered_packets),
            )
            for p in self.points
        ]
        return format_table(
            [
                "faults",
                "fault rate",
                "mean latency (cy)",
                "max latency (cy)",
                "global uJ",
                "disorder %",
                "undelivered",
            ],
            rows,
        )


@dataclass(frozen=True)
class CampaignDraw:
    """One Monte-Carlo fault draw's metrics for one mapping.

    ``fault_seed`` is the child seed the draw's faults were drawn with
    (``None`` for the healthy baseline measurement, which has no
    faults to draw).
    """

    mapping: str
    level: int  # number of injected link faults
    draw: int  # draw index within the level (-1 for the healthy baseline)
    fault_seed: Optional[int]
    failed_links: Tuple[Tuple[int, int], ...]
    mean_latency_cycles: float
    max_latency_cycles: int
    global_energy_pj: float
    delivered_packets: int
    undelivered_packets: int

    @property
    def survived(self) -> bool:
        """Full delivery: every injected packet reached its sink."""
        return self.undelivered_packets == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "mapping": self.mapping,
            "level": self.level,
            "draw": self.draw,
            "fault_seed": self.fault_seed,
            "failed_links": [list(link) for link in self.failed_links],
            "mean_latency_cycles": self.mean_latency_cycles,
            "max_latency_cycles": self.max_latency_cycles,
            "global_energy_pj": self.global_energy_pj,
            "delivered_packets": self.delivered_packets,
            "undelivered_packets": self.undelivered_packets,
            "survived": self.survived,
        }


@dataclass(frozen=True)
class CampaignLevelStats:
    """Aggregate of one mapping's draws at one fault level."""

    mapping: str
    level: int
    draws: int
    survival_rate: float  # fraction of draws with full delivery
    mean_latency_overhead: float  # mean latency multiplier vs healthy
    p95_latency_overhead: float
    mean_energy_overhead: float
    mean_undelivered: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "mapping": self.mapping,
            "level": self.level,
            "draws": self.draws,
            "survival_rate": self.survival_rate,
            "mean_latency_overhead": self.mean_latency_overhead,
            "p95_latency_overhead": self.p95_latency_overhead,
            "mean_energy_overhead": self.mean_energy_overhead,
            "mean_undelivered": self.mean_undelivered,
        }


def _ratio(value: float, base: float) -> float:
    return value / base if base else 1.0


@dataclass
class CampaignSummary:
    """Monte-Carlo fault campaign results (see ``run_fault_campaign``).

    Holds the per-draw records of every ``(mapping, level, draw)``
    triple plus one healthy (0-fault) baseline per mapping, and
    aggregates them into survival rates and latency/energy overhead
    distributions — robustness measured over a fault *distribution*
    instead of a single seeded draw.
    """

    app: str
    topology_kind: str
    levels: Tuple[int, ...]
    draws_per_level: int
    labels: Tuple[str, ...]
    healthy: Dict[str, CampaignDraw] = field(default_factory=dict)
    draws: List[CampaignDraw] = field(default_factory=list)

    def draws_for(self, mapping: str, level: int) -> List[CampaignDraw]:
        return [
            d for d in self.draws if d.mapping == mapping and d.level == level
        ]

    def baseline(self, mapping: str) -> CampaignDraw:
        try:
            return self.healthy[mapping]
        except KeyError:
            raise ValueError(
                f"campaign has no healthy baseline for mapping "
                f"{mapping!r} (have {sorted(self.healthy)})"
            ) from None

    def survival_rate(self, mapping: str, level: int) -> float:
        draws = self.draws_for(mapping, level)
        if not draws:
            raise ValueError(
                f"campaign has no draws for mapping {mapping!r} "
                f"at level {level}"
            )
        return sum(1 for d in draws if d.survived) / len(draws)

    def latency_overheads(self, mapping: str, level: int) -> List[float]:
        base = self.baseline(mapping).mean_latency_cycles
        return [
            _ratio(d.mean_latency_cycles, base)
            for d in self.draws_for(mapping, level)
        ]

    def level_stats(self, mapping: str, level: int) -> CampaignLevelStats:
        draws = self.draws_for(mapping, level)
        if not draws:
            raise ValueError(
                f"campaign has no draws for mapping {mapping!r} "
                f"at level {level}"
            )
        base = self.baseline(mapping)
        overheads = np.asarray(self.latency_overheads(mapping, level))
        energy = [
            _ratio(d.global_energy_pj, base.global_energy_pj) for d in draws
        ]
        return CampaignLevelStats(
            mapping=mapping,
            level=level,
            draws=len(draws),
            survival_rate=self.survival_rate(mapping, level),
            mean_latency_overhead=float(overheads.mean()),
            p95_latency_overhead=float(np.percentile(overheads, 95.0)),
            mean_energy_overhead=float(np.mean(energy)),
            mean_undelivered=float(
                np.mean([d.undelivered_packets for d in draws])
            ),
        )

    def stats(self) -> List[CampaignLevelStats]:
        return [
            self.level_stats(label, level)
            for label in self.labels
            for level in self.levels
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "topology_kind": self.topology_kind,
            "levels": list(self.levels),
            "draws_per_level": self.draws_per_level,
            "labels": list(self.labels),
            "healthy": {k: v.to_dict() for k, v in self.healthy.items()},
            "draws": [d.to_dict() for d in self.draws],
            "stats": [s.to_dict() for s in self.stats()],
        }

    def table(self) -> str:
        rows = [
            (
                s.mapping,
                str(s.level),
                str(s.draws),
                f"{s.survival_rate * 100.0:.0f}%",
                f"{s.mean_latency_overhead:.3f}x",
                f"{s.p95_latency_overhead:.3f}x",
                f"{s.mean_energy_overhead:.3f}x",
                f"{s.mean_undelivered:.1f}",
            )
            for s in self.stats()
        ]
        return format_table(
            [
                "mapping",
                "faults",
                "draws",
                "survival",
                "mean latency",
                "p95 latency",
                "mean energy",
                "undelivered",
            ],
            rows,
        )


def degradation_point(
    n_faults: int,
    failed_links,
    stats: NocStats,
    architecture: Architecture,
    topology,
    healthy_links: int,
) -> DegradationPoint:
    """Collapse one degraded-fabric simulation into its curve point."""
    return DegradationPoint(
        n_faults=n_faults,
        fault_fraction=(
            n_faults / healthy_links if healthy_links else 0.0
        ),
        failed_links=tuple(tuple(link) for link in failed_links),
        mean_latency_cycles=stats.mean_latency(),
        max_latency_cycles=stats.max_latency(),
        global_energy_pj=architecture.energy.global_energy_pj(
            stats, topology
        ),
        disorder_fraction=disorder_fraction(stats),
        delivered_packets=stats.delivered_count,
        undelivered_packets=stats.undelivered_count,
    )


def build_report(
    app: str,
    mapping: MappingResult,
    stats: NocStats,
    architecture: Architecture,
    topology=None,
) -> MetricReport:
    """Assemble a :class:`MetricReport` from one pipeline run's artifacts.

    ``topology`` is the fabric the stats were simulated on; when omitted
    it is rebuilt from the architecture.  On a multi-chip fabric it
    feeds the bridge energy term and the inter-chip breakdown fields.
    """
    from repro.noc.multichip import MultiChipTopology, chip_breakdown

    if topology is None:
        topology = architecture.build_topology()
    n_chips = 1
    inter_hops = crossings = 0
    mean_inter_latency = 0.0
    if isinstance(topology, MultiChipTopology) and topology.n_chips > 1:
        breakdown = chip_breakdown(stats, topology)
        n_chips = topology.n_chips
        inter_hops = breakdown.inter_chip_hops
        crossings = breakdown.bridge_crossings
        mean_inter_latency = breakdown.mean_inter_latency
    energy = architecture.energy
    return MetricReport(
        app=app,
        method=mapping.method,
        isi_distortion_cycles=isi_distortion_mean(stats),
        isi_distortion_worst_cycles=isi_distortion_worst(stats),
        disorder_fraction=disorder_fraction(stats),
        throughput_aer_per_ms=stats.throughput_aer_per_ms(
            architecture.cycles_per_ms
        ),
        max_latency_cycles=stats.max_latency(),
        mean_latency_cycles=stats.mean_latency(),
        local_energy_pj=energy.local_energy_pj(
            mapping.local_spikes, architecture.neurons_per_crossbar
        ),
        global_energy_pj=energy.global_energy_pj(stats, topology),
        global_spikes=mapping.global_spikes,
        local_spikes=mapping.local_spikes,
        global_synapses=mapping.global_synapses,
        local_synapses=mapping.local_synapses,
        delivered_packets=stats.delivered_count,
        undelivered_packets=stats.undelivered_count,
        n_chips=n_chips,
        inter_chip_hops=inter_hops,
        bridge_crossings=crossings,
        mean_inter_chip_latency_cycles=mean_inter_latency,
    )
