"""Interconnect congestion analysis.

Latency averages hide *where* an interconnect hurts.  These helpers turn
the per-link load counters of a :class:`~repro.noc.stats.NocStats` into
congestion diagnostics: utilization distribution, imbalance (Gini
coefficient), and hotspot identification — the quantities a platform
designer inspects when a mapping's worst-case latency looks wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.noc.stats import NocStats
from repro.noc.topology import Topology


@dataclass(frozen=True)
class CongestionReport:
    """Link-level congestion summary for one simulation."""

    n_links_used: int
    n_links_total: int
    max_link_load: int
    mean_link_load: float
    gini: float
    hotspots: Tuple[Tuple[Tuple[int, int], int], ...]

    @property
    def utilization_spread(self) -> float:
        """max / mean load over used links; 1.0 means perfectly balanced."""
        if self.mean_link_load == 0:
            return 0.0
        return self.max_link_load / self.mean_link_load


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative load distribution.

    0 = perfectly even load, ->1 = all traffic on one link.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0 or v.sum() == 0:
        return 0.0
    if (v < 0).any():
        raise ValueError("loads must be non-negative")
    n = v.size
    index = np.arange(1, n + 1)
    return float((2 * (index * v).sum()) / (n * v.sum()) - (n + 1) / n)


def congestion_report(
    stats: NocStats,
    topology: Topology,
    top: int = 5,
) -> CongestionReport:
    """Summarize link utilization of a finished NoC simulation.

    Loads are per *directed* link; the denominator counts both directions
    of every physical link in the topology.
    """
    n_total = 2 * topology.graph.number_of_edges()
    loads = np.asarray(list(stats.link_loads.values()), dtype=np.int64)
    # Include idle links in the distribution so imbalance reflects the
    # whole fabric, not just the used subset.
    padded = np.zeros(max(n_total, loads.size), dtype=np.float64)
    padded[: loads.size] = loads
    return CongestionReport(
        n_links_used=int(loads.size),
        n_links_total=n_total,
        max_link_load=int(loads.max()) if loads.size else 0,
        mean_link_load=float(loads.mean()) if loads.size else 0.0,
        gini=gini_coefficient(padded),
        hotspots=tuple(stats.hottest_links(top=top)),
    )


def bottleneck_links(
    stats: NocStats,
    threshold_fraction: float = 0.5,
) -> List[Tuple[int, int]]:
    """Links carrying at least ``threshold_fraction`` of the peak load."""
    if not 0.0 < threshold_fraction <= 1.0:
        raise ValueError("threshold_fraction must be in (0, 1]")
    if not stats.link_loads:
        return []
    peak = max(stats.link_loads.values())
    cutoff = peak * threshold_fraction
    return sorted(
        link for link, load in stats.link_loads.items() if load >= cutoff
    )
