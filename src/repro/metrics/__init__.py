"""SNN-on-hardware performance metrics (paper Section II).

Beyond the conventional interconnect metrics (latency, energy,
throughput), the paper introduces two SNN-specific measures of information
degradation caused by time-multiplexing global synapses:

- **spike disorder count** (:mod:`repro.metrics.disorder`) — fraction of
  spikes that arrive at a destination after a spike that was injected
  later (arbitration overtaking);
- **inter-spike-interval distortion** (:mod:`repro.metrics.isi`) — how much
  congestion-induced jitter changes the ISIs a receiving neuron observes
  relative to what the sender emitted.

Both are computed from the NoC simulator's delivery records.
"""

from repro.metrics.congestion import (
    CongestionReport,
    bottleneck_links,
    congestion_report,
)
from repro.metrics.disorder import disorder_count, disorder_fraction
from repro.metrics.isi import (
    isi_distortion_mean,
    isi_distortion_per_flow,
    isi_distortion_worst,
)
from repro.metrics.report import (
    CampaignDraw,
    CampaignLevelStats,
    CampaignSummary,
    DegradationCurve,
    DegradationPoint,
    MetricReport,
    build_report,
    degradation_point,
)

__all__ = [
    "disorder_count",
    "disorder_fraction",
    "isi_distortion_per_flow",
    "isi_distortion_mean",
    "isi_distortion_worst",
    "MetricReport",
    "build_report",
    "CampaignDraw",
    "CampaignLevelStats",
    "CampaignSummary",
    "DegradationCurve",
    "DegradationPoint",
    "degradation_point",
    "CongestionReport",
    "congestion_report",
    "bottleneck_links",
]
