"""Spike disorder count (paper Section II).

A spike is *disordered* at its destination when some spike injected
strictly later overtakes it — the receiver observes information in the
wrong order, which the paper identifies as a source of information loss
(its A/B/C example: crossbar B wins arbitration over crossbar A, so B's
later spike lands at C first).

We scan each destination's deliveries in arrival order and flag every
spike whose injection time is strictly earlier than the latest injection
time already delivered: such a spike was overtaken by at least one
later-injected spike.
"""

from __future__ import annotations

from typing import Dict

from repro.noc.stats import NocStats


def disorder_count(stats: NocStats) -> int:
    """Number of delivered spikes that were overtaken by later injections."""
    disordered = 0
    for recs in stats.records_by_destination().values():
        latest_injection_seen = -1
        for rec in recs:
            if rec.injected_cycle < latest_injection_seen:
                disordered += 1
            latest_injection_seen = max(latest_injection_seen, rec.injected_cycle)
    return disordered


def disorder_fraction(stats: NocStats) -> float:
    """Paper Table II row: disordered spikes / total delivered spikes."""
    total = stats.delivered_count
    if total == 0:
        return 0.0
    return disorder_count(stats) / total


def disorder_by_destination(stats: NocStats) -> Dict[int, float]:
    """Per-destination disorder fraction, for congestion diagnosis."""
    out: Dict[int, float] = {}
    for dst, recs in stats.records_by_destination().items():
        latest = -1
        bad = 0
        for rec in recs:
            if rec.injected_cycle < latest:
                bad += 1
            latest = max(latest, rec.injected_cycle)
        out[dst] = bad / len(recs) if recs else 0.0
    return out
