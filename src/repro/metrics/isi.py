"""Inter-spike-interval distortion (paper Section II).

Temporally coded SNNs carry information in the *gaps* between spikes.
When the interconnect delays some packets more than others (congestion,
arbitration), the ISIs observed by the receiving neuron differ from those
the sender emitted.  Per (source neuron, destination) flow we compare the
sender's consecutive injection intervals against the receiver's
consecutive delivery intervals; the flow's distortion is the maximum
absolute difference (the paper computes "the maximum difference between
the inter-spike interval of source and destination neurons"), and the
application-level number reported in Table II is the average over flows,
in interconnect cycles.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.noc.stats import NocStats


def isi_distortion_per_flow(stats: NocStats) -> Dict[Tuple[int, int], float]:
    """Max |ISI_source - ISI_destination| per (src neuron, dst router) flow.

    Flows with fewer than two delivered spikes have no ISI and are skipped.
    """
    out: Dict[Tuple[int, int], float] = {}
    for flow, recs in stats.records_by_flow().items():
        if len(recs) < 2:
            continue
        # Source intervals: between consecutive injections of this flow.
        injected = np.sort(np.asarray([r.injected_cycle for r in recs]))
        delivered = np.sort(np.asarray([r.delivered_cycle for r in recs]))
        isi_src = np.diff(injected)
        isi_dst = np.diff(delivered)
        out[flow] = float(np.abs(isi_src - isi_dst).max())
    return out


def isi_distortion_mean(stats: NocStats) -> float:
    """Paper Table II row: mean per-flow ISI distortion (cycles)."""
    per_flow = isi_distortion_per_flow(stats)
    if not per_flow:
        return 0.0
    return float(np.mean(list(per_flow.values())))


def isi_distortion_worst(stats: NocStats) -> float:
    """Worst per-flow ISI distortion (cycles)."""
    per_flow = isi_distortion_per_flow(stats)
    if not per_flow:
        return 0.0
    return float(max(per_flow.values()))
