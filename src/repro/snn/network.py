"""Network construction: populations, projections, global neuron ids.

A :class:`Network` is a list of named populations (source or neuron) wired
by projections.  Populations get contiguous global neuron-id ranges in the
order they are added; all downstream artifacts (spike graphs, partitions,
hardware mappings) index neurons by these global ids.

Populations also carry a ``layer`` index.  Layering is the structural
information the PACMAN baseline exploits (it packs populations onto cores
in layer order), and it lets synthetic workload generators label their
feedforward depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.snn.generators import SpikeSource
from repro.snn.neuron import NeuronModel
from repro.utils.validation import check_positive


@dataclass
class Population:
    """A named group of neurons sharing a model (or a spike source).

    Exactly one of ``model`` / ``source`` is set.  ``bias_current`` is a
    constant input added every tick (used to give idle neurons a baseline
    drive without wiring a dedicated source).
    """

    name: str
    size: int
    model: Optional[NeuronModel] = None
    source: Optional[SpikeSource] = None
    layer: int = 0
    bias_current: float = 0.0
    id_offset: int = field(default=-1, init=False)

    def __post_init__(self) -> None:
        check_positive(f"population {self.name!r} size", self.size)
        if (self.model is None) == (self.source is None):
            raise ValueError(
                f"population {self.name!r} must set exactly one of model/source"
            )
        if self.source is not None and self.source.size != self.size:
            raise ValueError(
                f"population {self.name!r} size {self.size} != source size "
                f"{self.source.size}"
            )

    @property
    def is_source(self) -> bool:
        return self.source is not None

    @property
    def global_ids(self) -> np.ndarray:
        """Global neuron ids covered by this population."""
        if self.id_offset < 0:
            raise RuntimeError(
                f"population {self.name!r} has not been added to a network"
            )
        return np.arange(self.id_offset, self.id_offset + self.size)


@dataclass
class Projection:
    """Weighted synaptic connection from ``pre`` to ``post``.

    ``weights`` has shape ``(pre.size, post.size)``; zero entries are
    absent synapses.  ``delay_ms`` is a whole number of ticks at the
    simulator's dt.  ``plastic`` marks the projection as trainable by an
    attached STDP rule.
    """

    pre: Population
    post: Population
    weights: np.ndarray
    delay_ms: float = 1.0
    plastic: bool = False
    name: Optional[str] = None

    def __post_init__(self) -> None:
        expected = (self.pre.size, self.post.size)
        if self.weights.shape != expected:
            raise ValueError(
                f"projection {self.describe()}: weights shape {self.weights.shape} "
                f"!= (pre.size, post.size) = {expected}"
            )
        if self.delay_ms <= 0:
            raise ValueError(
                f"projection {self.describe()}: delay_ms must be positive"
            )
        self.weights = np.asarray(self.weights, dtype=np.float64)

    def describe(self) -> str:
        return self.name or f"{self.pre.name}->{self.post.name}"

    def synapse_count(self) -> int:
        return int(np.count_nonzero(self.weights))


class Network:
    """A complete SNN specification: populations + projections.

    Example
    -------
    >>> from repro.snn import Network, LIFModel, PoissonSource, all_to_all
    >>> net = Network("demo")
    >>> src = net.add_source("in", PoissonSource(10, 50.0))
    >>> out = net.add_population("out", 5, LIFModel())
    >>> _ = net.connect(src, out, weights=np.full((10, 5), 8.0))
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self.populations: List[Population] = []
        self.projections: List[Projection] = []
        self._by_name: Dict[str, Population] = {}
        self._n_neurons = 0

    # -- construction ------------------------------------------------------

    def add_population(
        self,
        name: str,
        size: int,
        model: NeuronModel,
        layer: int = 0,
        bias_current: float = 0.0,
    ) -> Population:
        """Add a dynamical population and assign its global id range."""
        pop = Population(
            name=name, size=size, model=model, layer=layer, bias_current=bias_current
        )
        return self._register(pop)

    def add_source(self, name: str, source: SpikeSource, layer: int = 0) -> Population:
        """Add a stimulus population backed by ``source``."""
        pop = Population(name=name, size=source.size, source=source, layer=layer)
        return self._register(pop)

    def _register(self, pop: Population) -> Population:
        if pop.name in self._by_name:
            raise ValueError(f"duplicate population name {pop.name!r}")
        pop.id_offset = self._n_neurons
        self._n_neurons += pop.size
        self.populations.append(pop)
        self._by_name[pop.name] = pop
        return pop

    def connect(
        self,
        pre: Union[str, Population],
        post: Union[str, Population],
        weights: np.ndarray,
        delay_ms: float = 1.0,
        plastic: bool = False,
        name: Optional[str] = None,
    ) -> Projection:
        """Wire ``pre`` to ``post`` with an explicit weight matrix."""
        proj = Projection(
            pre=self.population(pre),
            post=self.population(post),
            weights=np.asarray(weights, dtype=np.float64),
            delay_ms=delay_ms,
            plastic=plastic,
            name=name,
        )
        self.projections.append(proj)
        return proj

    # -- queries -----------------------------------------------------------

    def population(self, ref: Union[str, Population]) -> Population:
        """Resolve a population by name or pass one through, validating ownership."""
        if isinstance(ref, Population):
            if self._by_name.get(ref.name) is not ref:
                raise ValueError(
                    f"population {ref.name!r} does not belong to network {self.name!r}"
                )
            return ref
        if ref not in self._by_name:
            raise KeyError(f"no population named {ref!r} in network {self.name!r}")
        return self._by_name[ref]

    @property
    def n_neurons(self) -> int:
        """Total neurons across all populations (sources included)."""
        return self._n_neurons

    def neuron_layers(self) -> np.ndarray:
        """Layer index of each global neuron id."""
        layers = np.zeros(self._n_neurons, dtype=np.int64)
        for pop in self.populations:
            layers[pop.id_offset : pop.id_offset + pop.size] = pop.layer
        return layers

    def neuron_population(self) -> np.ndarray:
        """Population index (order of addition) of each global neuron id."""
        idx = np.zeros(self._n_neurons, dtype=np.int64)
        for p, pop in enumerate(self.populations):
            idx[pop.id_offset : pop.id_offset + pop.size] = p
        return idx

    def synapse_count(self) -> int:
        """Total realized synapses over all projections."""
        return sum(proj.synapse_count() for proj in self.projections)

    def edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All synapses as parallel arrays ``(src_gid, dst_gid, weight)``."""
        srcs, dsts, ws = [], [], []
        for proj in self.projections:
            pre_idx, post_idx = np.nonzero(proj.weights)
            srcs.append(pre_idx + proj.pre.id_offset)
            dsts.append(post_idx + proj.post.id_offset)
            ws.append(proj.weights[pre_idx, post_idx])
        if not srcs:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.empty(0, dtype=np.float64)
        return (
            np.concatenate(srcs),
            np.concatenate(dsts),
            np.concatenate(ws),
        )

    def summary(self) -> str:
        """Human-readable one-line-per-population/projection description."""
        lines = [f"Network {self.name!r}: {self.n_neurons} neurons"]
        for pop in self.populations:
            kind = "source" if pop.is_source else type(pop.model).__name__
            lines.append(
                f"  population {pop.name!r}: size={pop.size} layer={pop.layer} "
                f"kind={kind} gids=[{pop.id_offset}, {pop.id_offset + pop.size})"
            )
        for proj in self.projections:
            lines.append(
                f"  projection {proj.describe()}: {proj.synapse_count()} synapses, "
                f"delay={proj.delay_ms}ms{' (plastic)' if proj.plastic else ''}"
            )
        return "\n".join(lines)
