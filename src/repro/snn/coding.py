"""Spike coding schemes.

The paper distinguishes rate-coded applications (hello world, image
smoothing, digit recognition) from temporally coded ones (heartbeat
estimation), because ISI distortion on the interconnect only degrades the
latter.  This module provides the encoders that turn analog stimuli into
spike schedules and the decoders used by application-level accuracy checks.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.validation import check_positive


def rate_encode(
    values: np.ndarray,
    max_rate_hz: float = 100.0,
    min_rate_hz: float = 0.0,
) -> np.ndarray:
    """Map stimulus intensities in [0, 1] to Poisson rates in Hz.

    Linear mapping, the scheme used by Diehl & Cook for MNIST pixels.
    """
    check_positive("max_rate_hz", max_rate_hz)
    if min_rate_hz < 0 or min_rate_hz > max_rate_hz:
        raise ValueError("require 0 <= min_rate_hz <= max_rate_hz")
    v = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
    return min_rate_hz + v * (max_rate_hz - min_rate_hz)


def latency_encode(
    values: np.ndarray,
    window_ms: float = 20.0,
    t_offset_ms: float = 0.0,
    repeat_period_ms: float = 0.0,
    n_repeats: int = 1,
) -> List[np.ndarray]:
    """Temporal (time-to-first-spike) coding.

    A stronger stimulus spikes *earlier*: intensity 1.0 fires at
    ``t_offset_ms``, intensity 0 fires at ``t_offset_ms + window_ms``.
    With ``n_repeats > 1``, the pattern repeats every ``repeat_period_ms``
    — the heartbeat application presents one encoded frame per beat.

    Returns one spike-time array per input value, suitable for
    :class:`repro.snn.generators.ScheduledSource`.
    """
    check_positive("window_ms", window_ms)
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    if n_repeats > 1 and repeat_period_ms <= 0:
        raise ValueError("repeat_period_ms must be positive when repeating")
    v = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
    first = t_offset_ms + (1.0 - v) * window_ms
    trains: List[np.ndarray] = []
    for t0 in first:
        times = t0 + repeat_period_ms * np.arange(n_repeats, dtype=np.float64)
        trains.append(times)
    return trains


def rate_decode(
    spike_times: Sequence[np.ndarray],
    duration_ms: float,
    max_rate_hz: float = 100.0,
) -> np.ndarray:
    """Invert :func:`rate_encode`: spike counts back to [0, 1] intensities."""
    check_positive("duration_ms", duration_ms)
    check_positive("max_rate_hz", max_rate_hz)
    rates = np.asarray(
        [t.size / (duration_ms / 1000.0) for t in spike_times], dtype=np.float64
    )
    return np.clip(rates / max_rate_hz, 0.0, 1.0)


def first_spike_decode(
    spike_times: Sequence[np.ndarray],
    window_ms: float = 20.0,
    t_offset_ms: float = 0.0,
) -> np.ndarray:
    """Invert :func:`latency_encode` from the first spike of each train.

    Neurons that never spiked decode to intensity 0.
    """
    check_positive("window_ms", window_ms)
    out = np.zeros(len(spike_times), dtype=np.float64)
    for i, t in enumerate(spike_times):
        if t.size:
            out[i] = 1.0 - (t[0] - t_offset_ms) / window_ms
    return np.clip(out, 0.0, 1.0)


def interspike_intervals(spike_times: np.ndarray) -> np.ndarray:
    """ISIs of a single train; empty for fewer than two spikes."""
    t = np.asarray(spike_times, dtype=np.float64)
    if t.size < 2:
        return np.empty(0, dtype=np.float64)
    return np.diff(np.sort(t))
