"""Spike-source populations.

Sources occupy neuron ids like ordinary populations but have no membrane
dynamics; they emit spikes according to a schedule or a stochastic process.
The paper's synthetic workloads drive the first layer from "10 neurons
creating spike trains whose inter-spike interval follows a Poisson process
with mean firing rates between 10 Hz and 100 Hz" — that is
:class:`PoissonSource`.  Temporal-coded inputs (heartbeat) use
:class:`ScheduledSource` with latency-encoded spike times.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_nonnegative, check_positive


class SpikeSource:
    """Interface for stimulus populations.

    ``sample(step, dt, rng)`` returns the indices (within the source
    population) that spike during simulation tick ``step``.
    """

    size: int

    def sample(self, step: int, dt: float, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Reset any internal schedule state before a fresh run."""


class PoissonSource(SpikeSource):
    """Independent Poisson spike trains, one per source neuron.

    ``rates_hz`` may be a scalar (shared rate) or one rate per neuron.  At
    most one spike per neuron per tick is emitted, which is exact for
    ``rate * dt << 1`` (the regime of all paper workloads: <= 100 Hz at
    dt = 1 ms gives p <= 0.1).
    """

    def __init__(self, size: int, rates_hz) -> None:
        check_positive("size", size)
        self.size = int(size)
        rates = np.broadcast_to(np.asarray(rates_hz, dtype=np.float64), (self.size,))
        if (rates < 0).any():
            raise ValueError("firing rates must be non-negative")
        self.rates_hz = rates.copy()

    def sample(self, step: int, dt: float, rng: np.random.Generator) -> np.ndarray:
        p = self.rates_hz * (dt / 1000.0)
        return np.nonzero(rng.random(self.size) < p)[0]


class RegularSource(SpikeSource):
    """Deterministic periodic spike trains with per-neuron phase offsets."""

    _TICK_CHUNK = 65536  # elements per vectorized block in sample_ticks

    def __init__(self, size: int, period_ms: float, phase_ms=0.0) -> None:
        check_positive("size", size)
        check_positive("period_ms", period_ms)
        self.size = int(size)
        self.period_ms = float(period_ms)
        self.phase_ms = np.broadcast_to(
            np.asarray(phase_ms, dtype=np.float64), (self.size,)
        ).copy()
        if (self.phase_ms < 0).any():
            raise ValueError("phase offsets must be non-negative")

    def sample(self, step: int, dt: float, rng: np.random.Generator) -> np.ndarray:
        t = step * dt
        since_phase = t - self.phase_ms
        eligible = since_phase >= 0
        # A neuron fires on the tick where its local time crosses a period
        # multiple: floor(t/T) advances between the previous tick and now.
        prev = np.floor((since_phase - dt) / self.period_ms)
        curr = np.floor(since_phase / self.period_ms)
        fired = eligible & (curr > prev) | (eligible & np.isclose(since_phase, 0.0))
        return np.nonzero(fired)[0]

    def sample_ticks(
        self, n_steps: int, dt: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """All spikes for ``n_steps`` ticks at once, as ``(ids, ticks)``.

        Evaluates the exact per-tick :meth:`sample` expressions on a
        (ticks, neurons) grid — same floats, same comparisons — so the
        emitted (neuron, tick) pairs match tick-by-tick sampling
        bit-for-bit.  Entries are sorted by (tick, neuron id).
        """
        ids: List[np.ndarray] = []
        ticks: List[np.ndarray] = []
        chunk = max(1, self._TICK_CHUNK // max(1, self.size))
        for start in range(0, n_steps, chunk):
            steps = np.arange(start, min(start + chunk, n_steps))
            t = (steps * dt)[:, None]
            since_phase = t - self.phase_ms[None, :]
            eligible = since_phase >= 0
            prev = np.floor((since_phase - dt) / self.period_ms)
            curr = np.floor(since_phase / self.period_ms)
            fired = (
                eligible & (curr > prev)
                | (eligible & np.isclose(since_phase, 0.0))
            )
            rows, cols = np.nonzero(fired)
            ticks.append(rows + start)
            ids.append(cols)
        if not ids:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        return np.concatenate(ids), np.concatenate(ticks)


class ScheduledSource(SpikeSource):
    """Explicit spike schedule: one array of spike times (ms) per neuron.

    Used for temporal (latency) coding, replaying recorded trains, and unit
    tests that need exact spike placement.
    """

    def __init__(self, spike_times_ms: Sequence[Sequence[float]]) -> None:
        self.size = len(spike_times_ms)
        check_positive("size", self.size)
        self._times: List[np.ndarray] = []
        for i, times in enumerate(spike_times_ms):
            arr = np.sort(np.asarray(times, dtype=np.float64))
            if arr.size and arr[0] < 0:
                raise ValueError(f"neuron {i} has a negative spike time")
            self._times.append(arr)
        self._cursors = np.zeros(self.size, dtype=np.int64)

    def reset(self) -> None:
        self._cursors[:] = 0

    def sample(self, step: int, dt: float, rng: np.random.Generator) -> np.ndarray:
        t_end = (step + 1) * dt
        fired = []
        for i, times in enumerate(self._times):
            c = self._cursors[i]
            n = c
            while n < times.size and times[n] < t_end:
                n += 1
            if n > c:
                fired.append(i)
                self._cursors[i] = n
        return np.asarray(fired, dtype=np.int64)

    def sample_ticks(
        self, n_steps: int, dt: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """All spikes for ``n_steps`` ticks at once, as ``(ids, ticks)``.

        A spike at time ``s`` fires on the first tick whose end
        ``(step + 1) * dt`` exceeds ``s`` — located by searchsorted over
        the same tick-end grid the per-tick cursor walk compares against,
        so results (and the advanced cursors) match :meth:`sample`
        bit-for-bit.  Entries are sorted by (tick, neuron id).
        """
        t_end_grid = np.arange(1, n_steps + 1, dtype=np.int64) * dt
        horizon = t_end_grid[-1] if n_steps else 0.0
        ids: List[np.ndarray] = []
        ticks: List[np.ndarray] = []
        for i, times in enumerate(self._times):
            start = int(self._cursors[i])
            if n_steps == 0:
                continue
            consumed = int(np.searchsorted(times, horizon, side="left"))
            if consumed <= start:
                continue
            fire_ticks = np.unique(
                np.searchsorted(t_end_grid, times[start:consumed], side="right")
            )
            self._cursors[i] = consumed
            ids.append(np.full(fire_ticks.size, i, dtype=np.int64))
            ticks.append(fire_ticks)
        if not ids:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        ids_all = np.concatenate(ids)
        ticks_all = np.concatenate(ticks)
        order = np.lexsort((ids_all, ticks_all))
        return ids_all[order], ticks_all[order]

    @property
    def spike_times(self) -> List[np.ndarray]:
        return [t.copy() for t in self._times]


def poisson_spike_times(
    rate_hz: float,
    duration_ms: float,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw one Poisson spike train as explicit times via exponential ISIs."""
    check_nonnegative("rate_hz", rate_hz)
    check_positive("duration_ms", duration_ms)
    if rate_hz == 0:
        return np.empty(0, dtype=np.float64)
    rng = default_rng(seed)
    mean_isi = 1000.0 / rate_hz
    # Over-draw then trim: n ~ duration/mean + 6 sigma covers overflow.
    expected = duration_ms / mean_isi
    n_draw = int(expected + 6.0 * np.sqrt(expected + 1.0)) + 8
    isis = rng.exponential(mean_isi, size=n_draw)
    times = np.cumsum(isis)
    while times.size and times[-1] < duration_ms:
        more = np.cumsum(rng.exponential(mean_isi, size=n_draw)) + times[-1]
        times = np.concatenate([times, more])
    return times[times < duration_ms]
