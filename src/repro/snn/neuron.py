"""Point-neuron models.

Two classic models cover the paper's applications:

- :class:`LIFModel` — leaky integrate-and-fire, used by the feedforward
  rate-coded applications (hello world, image smoothing) and the LSM liquid.
- :class:`IzhikevichModel` — the model CARLsim natively integrates; used by
  the digit-recognition network where richer excitability matters.

Models are stateless parameter containers.  Mutable state lives in a
:class:`NeuronState` owned by the simulator, so one model instance can be
shared across populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.utils.validation import check_positive


@dataclass
class NeuronState:
    """Mutable per-population state advanced by the simulator.

    ``extra`` holds model-specific variables (e.g. the Izhikevich recovery
    variable ``u``) keyed by name.
    """

    v: np.ndarray
    refractory: np.ndarray
    extra: Dict[str, np.ndarray] = field(default_factory=dict)


class NeuronModel:
    """Interface for point-neuron dynamics.

    Subclasses implement :meth:`allocate_state` and :meth:`step`.  ``step``
    advances the membrane state by one tick of ``dt`` milliseconds under the
    given synaptic input current and returns a boolean spike mask.
    """

    def allocate_state(self, n: int) -> NeuronState:
        raise NotImplementedError

    def step(self, state: NeuronState, input_current: np.ndarray, dt: float) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class LIFModel(NeuronModel):
    """Leaky integrate-and-fire neuron.

    Membrane dynamics ``tau_m * dv/dt = (v_rest - v) + R * I``; a spike is
    emitted when ``v >= v_thresh``, after which ``v`` is clamped to
    ``v_reset`` for ``t_ref`` milliseconds.

    Parameters use conventional cortical values by default (mV / ms / MOhm).
    """

    tau_m: float = 20.0
    v_rest: float = -65.0
    v_reset: float = -70.0
    v_thresh: float = -50.0
    t_ref: float = 2.0
    resistance: float = 1.0

    def __post_init__(self) -> None:
        check_positive("tau_m", self.tau_m)
        if self.v_thresh <= self.v_reset:
            raise ValueError(
                f"v_thresh ({self.v_thresh}) must exceed v_reset ({self.v_reset})"
            )
        if self.t_ref < 0:
            raise ValueError(f"t_ref must be non-negative, got {self.t_ref}")

    def allocate_state(self, n: int) -> NeuronState:
        return NeuronState(
            v=np.full(n, self.v_rest, dtype=np.float64),
            refractory=np.zeros(n, dtype=np.float64),
        )

    def step(self, state: NeuronState, input_current: np.ndarray, dt: float) -> np.ndarray:
        active = state.refractory <= 0.0
        dv = (dt / self.tau_m) * (
            (self.v_rest - state.v) + self.resistance * input_current
        )
        state.v = np.where(active, state.v + dv, state.v)
        spiked = active & (state.v >= self.v_thresh)
        state.v[spiked] = self.v_reset
        state.refractory[spiked] = self.t_ref
        state.refractory[~spiked] -= dt
        np.clip(state.refractory, 0.0, None, out=state.refractory)
        return spiked


@dataclass(frozen=True)
class IzhikevichModel(NeuronModel):
    """Izhikevich (2003) neuron: ``v' = 0.04 v^2 + 5 v + 140 - u + I``.

    Defaults are the regular-spiking parameter set (a=0.02, b=0.2, c=-65,
    d=8).  Integration uses two half-steps per tick, matching CARLsim's
    practice for numerical stability at dt = 1 ms.
    """

    a: float = 0.02
    b: float = 0.2
    c: float = -65.0
    d: float = 8.0
    v_peak: float = 30.0

    def allocate_state(self, n: int) -> NeuronState:
        v = np.full(n, self.c, dtype=np.float64)
        u = self.b * v
        return NeuronState(
            v=v,
            refractory=np.zeros(n, dtype=np.float64),
            extra={"u": u},
        )

    def step(self, state: NeuronState, input_current: np.ndarray, dt: float) -> np.ndarray:
        u = state.extra["u"]
        half = dt / 2.0
        for _ in range(2):
            dv = 0.04 * state.v**2 + 5.0 * state.v + 140.0 - u + input_current
            state.v = state.v + half * dv
            # Clamp runaway trajectories so one step past threshold cannot
            # overflow the quadratic term before spike detection.
            np.clip(state.v, -120.0, 2.0 * self.v_peak, out=state.v)
        du = self.a * (self.b * state.v - u)
        state.extra["u"] = u + dt * du
        spiked = state.v >= self.v_peak
        state.v[spiked] = self.c
        state.extra["u"][spiked] += self.d
        return spiked


@dataclass(frozen=True)
class AdaptiveLIFModel(NeuronModel):
    """LIF with an adaptive (homeostatic) threshold.

    Each spike raises the effective threshold by ``theta_plus``; the
    adaptation decays with time constant ``tau_theta``.  Diehl & Cook
    (2015) rely on this homeostasis so that no single excitatory neuron
    dominates the winner-take-all competition — over training, every
    neuron's long-term firing rate equalizes.
    """

    tau_m: float = 20.0
    v_rest: float = -65.0
    v_reset: float = -70.0
    v_thresh: float = -52.0
    t_ref: float = 5.0
    resistance: float = 1.0
    theta_plus: float = 0.8
    tau_theta: float = 1_000.0

    def __post_init__(self) -> None:
        check_positive("tau_m", self.tau_m)
        check_positive("tau_theta", self.tau_theta)
        if self.v_thresh <= self.v_reset:
            raise ValueError(
                f"v_thresh ({self.v_thresh}) must exceed v_reset ({self.v_reset})"
            )
        if self.theta_plus < 0:
            raise ValueError(f"theta_plus must be non-negative, got {self.theta_plus}")
        if self.t_ref < 0:
            raise ValueError(f"t_ref must be non-negative, got {self.t_ref}")

    def allocate_state(self, n: int) -> NeuronState:
        return NeuronState(
            v=np.full(n, self.v_rest, dtype=np.float64),
            refractory=np.zeros(n, dtype=np.float64),
            extra={"theta": np.zeros(n, dtype=np.float64)},
        )

    def step(self, state: NeuronState, input_current: np.ndarray, dt: float) -> np.ndarray:
        theta = state.extra["theta"]
        theta *= np.exp(-dt / self.tau_theta)
        active = state.refractory <= 0.0
        dv = (dt / self.tau_m) * (
            (self.v_rest - state.v) + self.resistance * input_current
        )
        state.v = np.where(active, state.v + dv, state.v)
        spiked = active & (state.v >= self.v_thresh + theta)
        state.v[spiked] = self.v_reset
        state.refractory[spiked] = self.t_ref
        theta[spiked] += self.theta_plus
        state.refractory[~spiked] -= dt
        np.clip(state.refractory, 0.0, None, out=state.refractory)
        return spiked


# Named Izhikevich parameter sets from the 2003 paper, as CARLsim exposes them.
IZHIKEVICH_PRESETS: Dict[str, IzhikevichModel] = {
    "regular_spiking": IzhikevichModel(a=0.02, b=0.2, c=-65.0, d=8.0),
    "intrinsically_bursting": IzhikevichModel(a=0.02, b=0.2, c=-55.0, d=4.0),
    "chattering": IzhikevichModel(a=0.02, b=0.2, c=-50.0, d=2.0),
    "fast_spiking": IzhikevichModel(a=0.1, b=0.2, c=-65.0, d=2.0),
    "low_threshold_spiking": IzhikevichModel(a=0.02, b=0.25, c=-65.0, d=2.0),
}
