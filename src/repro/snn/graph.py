"""The spike graph: the paper's G = (A, S) specification (Section III).

A trained SNN is handed to the partitioner as a graph whose nodes are
neurons and whose edges are synapses annotated with the spike times the
pre-synaptic neuron emits (the tuple <a_i, a_j, T_ij> of the paper).  The
per-synapse *traffic* — how many spikes that synapse would place on the
interconnect if it were global — is ``len(T_ij)``.

:class:`SpikeGraph` is the single artifact every partitioner and the NoC
traffic generator consume, whether it came from a simulation
(:meth:`SpikeGraph.from_simulation`) or was constructed synthetically
(:meth:`SpikeGraph.from_edges`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.snn.network import Network
from repro.snn.simulator import SimulationResult
from repro.utils.validation import check_index_range


@dataclass
class SpikeGraph:
    """Trained-SNN specification consumed by partitioners.

    Attributes
    ----------
    n_neurons:
        Total neuron count; node ids are ``0 .. n_neurons - 1``.
    src, dst:
        Parallel int arrays of synapse endpoints (pre, post).
    weight:
        Synaptic weights (sign encodes excitatory/inhibitory).
    traffic:
        Spikes carried per synapse over the profiled window
        (``len(T_ij)``); the quantity the PSO fitness sums (Eq. 7-8).
    spike_times:
        Per-neuron sorted spike time arrays (ms).  Required by the NoC
        traffic generator; synthetic graphs may approximate them.
    layers:
        Per-neuron layer index (feedforward depth); used by the PACMAN
        baseline.  ``0`` everywhere when unknown.
    name:
        Label used in reports.
    """

    n_neurons: int
    src: np.ndarray
    dst: np.ndarray
    weight: np.ndarray
    traffic: np.ndarray
    spike_times: List[np.ndarray]
    layers: np.ndarray
    name: str = "spike_graph"
    coding: str = "rate"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.weight = np.asarray(self.weight, dtype=np.float64)
        self.traffic = np.asarray(self.traffic, dtype=np.float64)
        self.layers = np.asarray(self.layers, dtype=np.int64)
        self.validate()

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_simulation(
        cls,
        network: Network,
        result: SimulationResult,
        name: Optional[str] = None,
        coding: str = "rate",
    ) -> "SpikeGraph":
        """Build the graph from a simulated network.

        Per-synapse traffic is the pre-synaptic neuron's spike count — every
        pre spike must be conveyed to every post target of that neuron.
        The counts come from ``result.spike_counts()``, which the columnar
        engine caches as one bincount over its (neuron, tick) spike
        columns — no per-neuron length walk at paper scale.
        """
        if result.n_neurons != network.n_neurons:
            raise ValueError(
                f"simulation recorded {result.n_neurons} neurons but network "
                f"has {network.n_neurons}"
            )
        src, dst, weight = network.edges()
        counts = result.spike_counts()
        traffic = counts[src].astype(np.float64)
        return cls(
            n_neurons=network.n_neurons,
            src=src,
            dst=dst,
            weight=weight,
            traffic=traffic,
            spike_times=[t.copy() for t in result.spike_times],
            layers=network.neuron_layers(),
            name=name or network.name,
            coding=coding,
            metadata={"duration_ms": result.duration_ms, "dt": result.dt},
        )

    @classmethod
    def from_edges(
        cls,
        n_neurons: int,
        src: Sequence[int],
        dst: Sequence[int],
        traffic: Sequence[float],
        weight: Optional[Sequence[float]] = None,
        spike_times: Optional[List[np.ndarray]] = None,
        layers: Optional[Sequence[int]] = None,
        name: str = "synthetic",
        coding: str = "rate",
    ) -> "SpikeGraph":
        """Build a graph directly from edge arrays (synthetic workloads)."""
        src = np.asarray(src, dtype=np.int64)
        if weight is None:
            weight = np.ones(src.shape[0], dtype=np.float64)
        if spike_times is None:
            spike_times = [np.empty(0, dtype=np.float64) for _ in range(n_neurons)]
        if layers is None:
            layers = np.zeros(n_neurons, dtype=np.int64)
        return cls(
            n_neurons=n_neurons,
            src=src,
            dst=np.asarray(dst, dtype=np.int64),
            weight=np.asarray(weight, dtype=np.float64),
            traffic=np.asarray(traffic, dtype=np.float64),
            spike_times=spike_times,
            layers=np.asarray(layers, dtype=np.int64),
            name=name,
            coding=coding,
        )

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on violation."""
        n_edges = self.src.shape[0]
        for attr in ("dst", "weight", "traffic"):
            arr = getattr(self, attr)
            if arr.shape[0] != n_edges:
                raise ValueError(
                    f"{attr} has {arr.shape[0]} entries, expected {n_edges}"
                )
        check_index_range("src", self.src, self.n_neurons)
        check_index_range("dst", self.dst, self.n_neurons)
        if (self.traffic < 0).any():
            raise ValueError("synapse traffic must be non-negative")
        if len(self.spike_times) != self.n_neurons:
            raise ValueError(
                f"spike_times has {len(self.spike_times)} entries, expected "
                f"{self.n_neurons}"
            )
        if self.layers.shape[0] != self.n_neurons:
            raise ValueError(
                f"layers has {self.layers.shape[0]} entries, expected "
                f"{self.n_neurons}"
            )

    # -- queries ---------------------------------------------------------------

    @property
    def n_synapses(self) -> int:
        return int(self.src.shape[0])

    def total_traffic(self) -> float:
        """Sum of per-synapse spike counts — the fitness upper bound
        (every synapse global)."""
        return float(self.traffic.sum())

    def spike_counts(self) -> np.ndarray:
        """Spikes emitted per neuron."""
        return np.fromiter(
            (t.size for t in self.spike_times),
            dtype=np.int64,
            count=self.n_neurons,
        )

    def out_degree(self) -> np.ndarray:
        """Synapse out-degree per neuron."""
        return np.bincount(self.src, minlength=self.n_neurons)

    def in_degree(self) -> np.ndarray:
        """Synapse in-degree per neuron."""
        return np.bincount(self.dst, minlength=self.n_neurons)

    def neuron_out_traffic(self) -> np.ndarray:
        """Total synapse traffic originating from each neuron."""
        return np.bincount(
            self.src, weights=self.traffic, minlength=self.n_neurons
        )

    def to_networkx(self) -> nx.DiGraph:
        """Export as a networkx DiGraph with traffic/weight edge attributes."""
        g = nx.DiGraph(name=self.name)
        g.add_nodes_from(range(self.n_neurons))
        for s, d, w, t in zip(self.src, self.dst, self.weight, self.traffic):
            if g.has_edge(int(s), int(d)):
                g[int(s)][int(d)]["traffic"] += float(t)
            else:
                g.add_edge(int(s), int(d), weight=float(w), traffic=float(t))
        return g

    def undirected_traffic(self) -> nx.Graph:
        """Symmetrized traffic graph, used by min-cut style baselines."""
        g = nx.Graph(name=self.name)
        g.add_nodes_from(range(self.n_neurons))
        for s, d, t in zip(self.src, self.dst, self.traffic):
            s, d = int(s), int(d)
            if s == d:
                continue
            if g.has_edge(s, d):
                g[s][d]["traffic"] += float(t)
            else:
                g.add_edge(s, d, traffic=float(t))
        return g

    def describe(self) -> str:
        counts = self.spike_counts()
        return (
            f"SpikeGraph {self.name!r}: {self.n_neurons} neurons, "
            f"{self.n_synapses} synapses, total traffic "
            f"{self.total_traffic():.0f} spikes, "
            f"{int(counts.sum())} spikes recorded, coding={self.coding}"
        )
