"""Connectivity builders for projections between populations.

A projection's connectivity is a dense weight matrix of shape
``(pre.size, post.size)`` where zero means "no synapse".  Dense storage is
deliberate: the paper's largest network is 2048 neurons (image smoothing),
so the biggest matrix is 1024 x 1024 doubles = 8 MB, and dense numpy keeps
the per-tick propagation a single matmul-free fancy-index reduction.

The functions here construct common weight patterns used by the paper's
applications: all-to-all, one-to-one, sparse random, and spatial
(convolution-like) kernels for the image-smoothing network.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive, check_probability


def all_to_all(
    n_pre: int,
    n_post: int,
    weight: float = 1.0,
    allow_self: bool = True,
) -> np.ndarray:
    """Fully connected weight matrix with uniform ``weight``.

    When ``allow_self`` is false and the matrix is square, the diagonal is
    zeroed (used by recurrent populations that must not self-connect).
    """
    check_positive("n_pre", n_pre)
    check_positive("n_post", n_post)
    w = np.full((n_pre, n_post), weight, dtype=np.float64)
    if not allow_self and n_pre == n_post:
        np.fill_diagonal(w, 0.0)
    return w


def one_to_one(n: int, weight: float = 1.0) -> np.ndarray:
    """Identity connectivity: neuron i drives neuron i only."""
    check_positive("n", n)
    return np.eye(n, dtype=np.float64) * weight


def sparse_random(
    n_pre: int,
    n_post: int,
    probability: float,
    weight: float = 1.0,
    weight_std: float = 0.0,
    allow_self: bool = True,
    seed: SeedLike = None,
) -> np.ndarray:
    """Bernoulli(probability) connectivity with optionally jittered weights.

    Weights are drawn from ``N(weight, weight_std)`` truncated at zero so a
    connection never flips sign (sign encodes excitatory/inhibitory).
    """
    check_probability("probability", probability)
    rng = default_rng(seed)
    mask = rng.random((n_pre, n_post)) < probability
    if not allow_self and n_pre == n_post:
        np.fill_diagonal(mask, False)
    if weight_std > 0.0:
        magnitudes = rng.normal(abs(weight), weight_std, size=(n_pre, n_post))
        np.clip(magnitudes, 0.0, None, out=magnitudes)
        w = np.sign(weight) * magnitudes
    else:
        w = np.full((n_pre, n_post), float(weight))
    return np.where(mask, w, 0.0)


def gaussian_kernel_2d(
    shape: Tuple[int, int],
    sigma: float,
    weight: float = 1.0,
    radius: Optional[int] = None,
) -> np.ndarray:
    """Spatial smoothing connectivity on a 2D pixel grid.

    Both pre- and post-populations are ``shape[0] * shape[1]`` neurons laid
    out row-major.  Pixel (r, c) drives pixels within ``radius`` with
    Gaussian-decayed weights — the image-smoothing application's topology.
    """
    rows, cols = shape
    check_positive("rows", rows)
    check_positive("cols", cols)
    check_positive("sigma", sigma)
    if radius is None:
        radius = max(1, int(np.ceil(2.0 * sigma)))
    n = rows * cols
    w = np.zeros((n, n), dtype=np.float64)
    offsets = [
        (dr, dc)
        for dr in range(-radius, radius + 1)
        for dc in range(-radius, radius + 1)
        if dr * dr + dc * dc <= radius * radius
    ]
    kernel = {
        (dr, dc): weight * float(np.exp(-(dr * dr + dc * dc) / (2.0 * sigma**2)))
        for dr, dc in offsets
    }
    for r in range(rows):
        for c in range(cols):
            pre = r * cols + c
            for (dr, dc), k in kernel.items():
                rr, cc = r + dr, c + dc
                if 0 <= rr < rows and 0 <= cc < cols:
                    w[pre, rr * cols + cc] = k
    return w


def distance_dependent(
    positions_pre: np.ndarray,
    positions_post: np.ndarray,
    lambda_: float,
    max_weight: float = 1.0,
    probability_scale: float = 1.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Distance-decayed random connectivity for liquid-state-machine pools.

    Connection probability between neurons at Euclidean distance ``d`` is
    ``probability_scale * exp(-(d / lambda_)**2)`` — the standard Maass LSM
    wiring rule.  Connected synapses get weight ``max_weight``.
    """
    check_positive("lambda_", lambda_)
    rng = default_rng(seed)
    diff = positions_pre[:, None, :] - positions_post[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=-1))
    prob = probability_scale * np.exp(-((dist / lambda_) ** 2))
    np.clip(prob, 0.0, 1.0, out=prob)
    mask = rng.random(prob.shape) < prob
    return np.where(mask, max_weight, 0.0)


def count_synapses(weights: np.ndarray) -> int:
    """Number of realized synapses (non-zero entries) in a weight matrix."""
    return int(np.count_nonzero(weights))
