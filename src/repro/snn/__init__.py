"""Spiking-neural-network simulation substrate (CARLsim substitute).

The paper uses CARLsim, a GPU-accelerated SNN simulator, purely to produce a
*spike graph*: the trained network's synapse list annotated with the spike
times each synapse carries.  This package provides a clock-driven,
numpy-vectorized SNN simulator that produces the same artifact
(:class:`repro.snn.graph.SpikeGraph`) for the same application topologies.

Public API
----------
- Neuron models: :class:`LIFModel`, :class:`IzhikevichModel`
- Network construction: :class:`Network`, :class:`Population`, :class:`Projection`
- Spike sources: :class:`PoissonSource`, :class:`RegularSource`,
  :class:`ScheduledSource`
- Simulation: :class:`Simulation`, :class:`SimulationResult`
- Plasticity: :class:`STDPRule`
- Coding: :func:`rate_encode`, :func:`latency_encode`, :func:`rate_decode`
- Graph extraction: :class:`SpikeGraph`
"""

from repro.snn.neuron import (
    AdaptiveLIFModel,
    IzhikevichModel,
    LIFModel,
    NeuronModel,
)
from repro.snn.network import Network, Population, Projection
from repro.snn.generators import (
    PoissonSource,
    RegularSource,
    ScheduledSource,
    SpikeSource,
)
from repro.snn.simulator import Simulation, SimulationResult
from repro.snn.stdp import STDPRule
from repro.snn.coding import latency_encode, rate_decode, rate_encode
from repro.snn.analysis import (
    firing_rate_hz,
    isi_cv,
    population_rate,
    synchrony_index,
)
from repro.snn.graph import SpikeGraph

__all__ = [
    "NeuronModel",
    "LIFModel",
    "AdaptiveLIFModel",
    "IzhikevichModel",
    "Network",
    "Population",
    "Projection",
    "SpikeSource",
    "PoissonSource",
    "RegularSource",
    "ScheduledSource",
    "Simulation",
    "SimulationResult",
    "STDPRule",
    "rate_encode",
    "latency_encode",
    "rate_decode",
    "firing_rate_hz",
    "isi_cv",
    "population_rate",
    "synchrony_index",
    "SpikeGraph",
]
