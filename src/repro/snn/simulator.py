"""Clock-driven SNN simulation engine.

The simulator advances all populations on a fixed tick (default 1 ms,
CARLsim's resolution).  Each tick:

1. stimulus populations draw spikes from their sources;
2. spikes scheduled to arrive this tick (projection delays) are converted
   into synaptic input currents on their target populations;
3. dynamical populations integrate one step and emit spikes;
4. emitted spikes are recorded and enqueued on outgoing projections;
5. plastic projections apply their STDP rule.

The result object exposes per-neuron spike time arrays — the raw material
for :class:`repro.snn.graph.SpikeGraph`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.snn.network import Network
from repro.snn.neuron import NeuronState
from repro.snn.stdp import STDPRule, STDPState
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    ``spike_times[g]`` is a sorted float array of spike times (ms) for the
    neuron with global id ``g``; sources and dynamical neurons alike.
    """

    network_name: str
    duration_ms: float
    dt: float
    spike_times: List[np.ndarray]

    @property
    def n_neurons(self) -> int:
        return len(self.spike_times)

    def spike_counts(self) -> np.ndarray:
        """Number of spikes emitted by each neuron."""
        return np.asarray([t.size for t in self.spike_times], dtype=np.int64)

    def total_spikes(self) -> int:
        return int(self.spike_counts().sum())

    def firing_rates_hz(self) -> np.ndarray:
        """Mean firing rate of each neuron over the run."""
        return self.spike_counts() / (self.duration_ms / 1000.0)

    def population_rates_hz(self, network: Network) -> Dict[str, float]:
        """Mean firing rate per population, keyed by population name."""
        rates = self.firing_rates_hz()
        return {
            pop.name: float(rates[pop.id_offset : pop.id_offset + pop.size].mean())
            for pop in network.populations
        }


class Simulation:
    """Run a :class:`Network` for a fixed duration.

    Parameters
    ----------
    network:
        The SNN to simulate.  The network object is not mutated except for
        plastic projection weights (when ``learning`` is on).
    dt:
        Tick length in milliseconds.
    seed:
        Seed or generator for all stochastic sources.
    stdp:
        Optional STDP rule applied to every projection marked ``plastic``.
    """

    def __init__(
        self,
        network: Network,
        dt: float = 1.0,
        seed: SeedLike = None,
        stdp: Optional[STDPRule] = None,
    ) -> None:
        check_positive("dt", dt)
        self.network = network
        self.dt = float(dt)
        self.rng = default_rng(seed)
        self.stdp = stdp
        self._validate_delays()

    def _validate_delays(self) -> None:
        for proj in self.network.projections:
            ticks = proj.delay_ms / self.dt
            if abs(ticks - round(ticks)) > 1e-9:
                raise ValueError(
                    f"projection {proj.describe()}: delay {proj.delay_ms} ms is not "
                    f"a whole number of ticks at dt={self.dt} ms"
                )

    def run(self, duration_ms: float, learning: bool = True) -> SimulationResult:
        """Simulate for ``duration_ms`` and return recorded spikes."""
        check_positive("duration_ms", duration_ms)
        n_steps = int(round(duration_ms / self.dt))
        net = self.network

        states: Dict[str, NeuronState] = {}
        for pop in net.populations:
            if not pop.is_source:
                states[pop.name] = pop.model.allocate_state(pop.size)
            elif pop.source is not None:
                pop.source.reset()

        # Per-projection delay lines: deque of spike-index arrays, one slot
        # per tick of delay.  Slot 0 is delivered on the *next* tick.
        delay_lines: Dict[int, deque] = {}
        for pi, proj in enumerate(net.projections):
            ticks = max(1, int(round(proj.delay_ms / self.dt)))
            delay_lines[pi] = deque(
                [np.empty(0, dtype=np.int64) for _ in range(ticks)], maxlen=ticks
            )

        stdp_states: Dict[int, STDPState] = {}
        if self.stdp is not None:
            for pi, proj in enumerate(net.projections):
                if proj.plastic:
                    stdp_states[pi] = self.stdp.allocate_state(
                        proj.pre.size, proj.post.size
                    )

        recorded: List[List[float]] = [[] for _ in range(net.n_neurons)]
        out_projections: Dict[str, List[int]] = {pop.name: [] for pop in net.populations}
        for pi, proj in enumerate(net.projections):
            out_projections[proj.pre.name].append(pi)

        for step in range(n_steps):
            t_now = step * self.dt

            # 1. Deliver delayed spikes into input currents.
            currents: Dict[str, np.ndarray] = {
                pop.name: np.full(pop.size, pop.bias_current, dtype=np.float64)
                for pop in net.populations
                if not pop.is_source
            }
            arrivals: Dict[int, np.ndarray] = {}
            for pi, proj in enumerate(net.projections):
                arriving = delay_lines[pi][0]
                arrivals[pi] = arriving
                if arriving.size and not proj.post.is_source:
                    currents[proj.post.name] += proj.weights[arriving, :].sum(axis=0)

            # 2. Advance dynamics / sample sources; collect this tick's spikes.
            spikes_by_pop: Dict[str, np.ndarray] = {}
            for pop in net.populations:
                if pop.is_source:
                    fired = pop.source.sample(step, self.dt, self.rng)
                else:
                    mask = pop.model.step(
                        states[pop.name], currents[pop.name], self.dt
                    )
                    fired = np.nonzero(mask)[0]
                spikes_by_pop[pop.name] = fired
                base = pop.id_offset
                for local in fired:
                    recorded[base + int(local)].append(t_now)

            # 3. STDP on plastic projections (pre arrivals vs post spikes).
            if self.stdp is not None and learning:
                for pi, state in stdp_states.items():
                    proj = net.projections[pi]
                    self.stdp.step(
                        state,
                        proj.weights,
                        pre_spikes=spikes_by_pop[proj.pre.name],
                        post_spikes=spikes_by_pop[proj.post.name],
                        dt=self.dt,
                    )

            # 4. Enqueue emitted spikes on outgoing delay lines.
            for pop in net.populations:
                fired = spikes_by_pop[pop.name]
                for pi in out_projections[pop.name]:
                    delay_lines[pi].append(fired)

        spike_arrays = [np.asarray(times, dtype=np.float64) for times in recorded]
        return SimulationResult(
            network_name=net.name,
            duration_ms=n_steps * self.dt,
            dt=self.dt,
            spike_times=spike_arrays,
        )


def run_network(
    network: Network,
    duration_ms: float,
    dt: float = 1.0,
    seed: SeedLike = None,
    stdp: Optional[STDPRule] = None,
    learning: bool = True,
) -> SimulationResult:
    """One-call convenience wrapper: build a Simulation and run it."""
    return Simulation(network, dt=dt, seed=seed, stdp=stdp).run(
        duration_ms, learning=learning
    )
