"""Clock-driven SNN simulation engine.

The simulator advances all populations on a fixed tick (default 1 ms,
CARLsim's resolution).  Each tick:

1. stimulus populations draw spikes from their sources;
2. spikes scheduled to arrive this tick (projection delays) are converted
   into synaptic input currents on their target populations;
3. dynamical populations integrate one step and emit spikes;
4. emitted spikes are recorded and enqueued on outgoing projections;
5. plastic projections apply their STDP rule.

Two engines implement that contract:

- ``engine="columnar"`` (default): spikes are recorded into growable
  (neuron id, tick) column buffers and materialized by one sort/split at
  the end; source spikes are precomputed for the whole run (one batched
  RNG draw for all Poisson sources, closed-form grids for regular and
  scheduled trains); every ``LIFModel`` population steps through one
  fused, allocation-free update with per-neuron parameter columns; and
  projection currents flow through precomputed CSR or dense dispatch with
  ring-buffer delay lines.  Each of those transformations preserves the
  reference engine's float operations exactly, so spike trains (and
  learned STDP weights) are bit-identical under a fixed seed.
- ``engine="reference"``: the original per-tick/per-spike loop, kept as
  the equivalence oracle and for custom NeuronModel/SpikeSource
  subclasses that want maximally transparent execution (the columnar
  engine falls back to per-population stepping and per-tick sampling for
  unknown subclasses anyway).

The result object exposes per-neuron spike time arrays — the raw material
for :class:`repro.snn.graph.SpikeGraph`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.snn.generators import (
    PoissonSource,
    RegularSource,
    ScheduledSource,
)
from repro.snn.network import Network
from repro.snn.neuron import LIFModel, NeuronState
from repro.snn.stdp import STDPRule, STDPState
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive

ENGINES = ("columnar", "reference")

# Projections at or below this non-zero density deliver through a CSR
# scatter instead of a dense row gather, once the dense gather is big
# enough for sparsity to pay for the extra indexing.
CSR_DENSITY_THRESHOLD = 0.25
CSR_MIN_DENSE_SIZE = 16384

# Poisson precompute draws at most this many uniforms per chunk.
_POISSON_CHUNK = 262144


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    ``spike_times[g]`` is a sorted float array of spike times (ms) for the
    neuron with global id ``g``; sources and dynamical neurons alike.
    ``counts`` optionally caches per-neuron spike counts (the columnar
    engine computes them as a byproduct of its final sort/split).
    """

    network_name: str
    duration_ms: float
    dt: float
    spike_times: List[np.ndarray]
    counts: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def n_neurons(self) -> int:
        return len(self.spike_times)

    def spike_counts(self) -> np.ndarray:
        """Number of spikes emitted by each neuron."""
        if self.counts is not None:
            return self.counts
        return np.asarray([t.size for t in self.spike_times], dtype=np.int64)

    def total_spikes(self) -> int:
        return int(self.spike_counts().sum())

    def firing_rates_hz(self) -> np.ndarray:
        """Mean firing rate of each neuron over the run."""
        return self.spike_counts() / (self.duration_ms / 1000.0)

    def population_rates_hz(self, network: Network) -> Dict[str, float]:
        """Mean firing rate per population, keyed by population name."""
        rates = self.firing_rates_hz()
        return {
            pop.name: float(rates[pop.id_offset : pop.id_offset + pop.size].mean())
            for pop in network.populations
        }


class _SpikeColumns:
    """Growable (neuron id, tick) column store with amortized doubling."""

    def __init__(self, capacity: int = 1024) -> None:
        self.gid = np.empty(capacity, dtype=np.int64)
        self.tick = np.empty(capacity, dtype=np.int64)
        self.n = 0

    def _grow(self, needed: int) -> None:
        capacity = max(2 * self.gid.size, self.n + needed)
        self.gid = np.concatenate([self.gid[: self.n], np.empty(capacity - self.n, np.int64)])
        self.tick = np.concatenate([self.tick[: self.n], np.empty(capacity - self.n, np.int64)])

    def append(self, gids: np.ndarray, tick: int) -> None:
        k = gids.size
        if self.n + k > self.gid.size:
            self._grow(k)
        self.gid[self.n : self.n + k] = gids
        self.tick[self.n : self.n + k] = tick
        self.n += k

    def append_columns(self, gids: np.ndarray, ticks: np.ndarray) -> None:
        k = gids.size
        if self.n + k > self.gid.size:
            self._grow(k)
        self.gid[self.n : self.n + k] = gids
        self.tick[self.n : self.n + k] = ticks
        self.n += k

    def columns(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.gid[: self.n], self.tick[: self.n]


class _FusedLIF:
    """All ``LIFModel`` populations stepped as one state vector.

    Per-neuron parameter columns broadcast each population's scalars, so
    every elementwise operation produces exactly the floats the per-pop
    :meth:`LIFModel.step` would — one fused call replaces P small ones.
    """

    def __init__(self, pops: List) -> None:
        self.pops = pops
        sizes = [pop.size for pop in pops]
        self.n = int(sum(sizes))
        self.starts = np.cumsum([0] + sizes)[:-1]
        self.gids = np.concatenate(
            [np.arange(pop.id_offset, pop.id_offset + pop.size) for pop in pops]
        )

        def col(attr: str) -> np.ndarray:
            return np.concatenate(
                [np.full(pop.size, getattr(pop.model, attr)) for pop in pops]
            )

        self.v = col("v_rest").copy()
        self.refractory = np.zeros(self.n, dtype=np.float64)
        self.v_rest = col("v_rest")
        self.v_reset = col("v_reset")
        self.v_thresh = col("v_thresh")
        self.t_ref = col("t_ref")
        self.resistance = col("resistance")
        self.uniform_resistance = bool(np.all(self.resistance == 1.0))
        self.tau_m = col("tau_m")
        self._coeff: Optional[np.ndarray] = None
        self._max_ref_ticks = 0
        self._refr_left = 0  # ticks until every refractory window has lapsed
        self._t1 = np.empty(self.n, dtype=np.float64)
        self._t2 = np.empty(self.n, dtype=np.float64)
        self._active = np.empty(self.n, dtype=bool)
        self._spiked = np.empty(self.n, dtype=bool)

    def step(self, currents: np.ndarray, dt: float) -> np.ndarray:
        """One fused LIF update; mirrors :meth:`LIFModel.step` op-for-op.

        Returns the indices (within the fused group) that spiked.  When no
        neuron can still be refractory (``_refr_left`` counts ticks since
        the last spike against the longest ``t_ref``) the refractory
        columns are exact zeros, so the masking and countdown ops are
        skipped — their results are the identities they would compute.
        """
        if self._coeff is None:
            self._coeff = dt / self.tau_m
            self._max_ref_ticks = int(np.ceil(self.t_ref.max() / dt))
        v, refr = self.v, self.refractory
        t1, t2 = self._t1, self._t2
        spiked = self._spiked
        quiescent = self._refr_left <= 0
        np.subtract(self.v_rest, v, out=t1)
        if self.uniform_resistance:
            t1 += currents
        else:
            np.multiply(self.resistance, currents, out=t2)
            t1 += t2
        t1 *= self._coeff
        t1 += v
        if quiescent:
            # All neurons active: v <- v + dv wholesale (buffer swap).
            self.v, self._t1 = t1, v
            v = t1
            np.greater_equal(v, self.v_thresh, out=spiked)
            hits = np.nonzero(spiked)[0]
            if hits.size:
                np.copyto(v, self.v_reset, where=spiked)
                np.copyto(refr, self.t_ref, where=spiked)
                self._refr_left = self._max_ref_ticks
            return hits
        active = self._active
        np.less_equal(refr, 0.0, out=active)
        np.copyto(v, t1, where=active)
        np.greater_equal(v, self.v_thresh, out=spiked)
        spiked &= active
        hits = np.nonzero(spiked)[0]
        np.subtract(refr, dt, out=t1)
        np.maximum(t1, 0.0, out=t1)
        if hits.size:
            np.copyto(v, self.v_reset, where=spiked)
            np.copyto(t1, self.t_ref, where=spiked)
            self._refr_left = self._max_ref_ticks
        else:
            self._refr_left -= 1
            if self._refr_left <= 0 and t1.any():
                # Sequential max(r - dt, 0) countdowns can leave an
                # eps-scale positive residue past ceil(t_ref / dt) ticks
                # (e.g. t_ref=1.0 at dt=0.1) — and the reference engine
                # masks on refractory > 0, residue included.  Stay on the
                # full path until the columns are exactly zero.
                self._refr_left = 1
        self.refractory, self._t1 = t1, refr
        return hits


class Simulation:
    """Run a :class:`Network` for a fixed duration.

    Parameters
    ----------
    network:
        The SNN to simulate.  The network object is not mutated except for
        plastic projection weights (when ``learning`` is on).
    dt:
        Tick length in milliseconds.
    seed:
        Seed or generator for all stochastic sources.
    stdp:
        Optional STDP rule applied to every projection marked ``plastic``.
    engine:
        ``"columnar"`` (default, fast) or ``"reference"`` (the original
        loop).  Both produce bit-identical spike trains under a fixed
        seed; see the module docstring.
    """

    def __init__(
        self,
        network: Network,
        dt: float = 1.0,
        seed: SeedLike = None,
        stdp: Optional[STDPRule] = None,
        engine: str = "columnar",
    ) -> None:
        check_positive("dt", dt)
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; options: {ENGINES}")
        self.network = network
        self.dt = float(dt)
        self.rng = default_rng(seed)
        self.stdp = stdp
        self.engine = engine
        self._validate_delays()

    def _validate_delays(self) -> None:
        for proj in self.network.projections:
            ticks = proj.delay_ms / self.dt
            if abs(ticks - round(ticks)) > 1e-9:
                raise ValueError(
                    f"projection {proj.describe()}: delay {proj.delay_ms} ms is not "
                    f"a whole number of ticks at dt={self.dt} ms"
                )

    def run(self, duration_ms: float, learning: bool = True) -> SimulationResult:
        """Simulate for ``duration_ms`` and return recorded spikes."""
        check_positive("duration_ms", duration_ms)
        if self.engine == "reference":
            return self._run_reference(duration_ms, learning)
        return self._run_columnar(duration_ms, learning)

    # -- columnar engine ---------------------------------------------------

    def _precompute_source_spikes(
        self, n_steps: int
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Per source population: (indptr, local ids) spike plan.

        ``locals[indptr[t]:indptr[t + 1]]`` are the neurons firing on tick
        ``t``.  RNG consumption matches the reference engine's per-tick
        sampling exactly: regular/scheduled sources draw nothing, and all
        Poisson sources' per-tick draws are contiguous in population
        order, so one (ticks, total) matrix consumes the same stream.
        Unknown :class:`SpikeSource` subclasses force the generic per-tick
        fallback (identical draws by construction).
        """
        net, dt = self.network, self.dt
        source_pops = [
            (pi, pop) for pi, pop in enumerate(net.populations) if pop.is_source
        ]
        columns: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        known = all(
            type(pop.source) in (PoissonSource, RegularSource, ScheduledSource)
            for _, pop in source_pops
        )
        raw: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        if not known:
            per_tick: Dict[int, List[np.ndarray]] = {pi: [] for pi, _ in source_pops}
            for step in range(n_steps):
                for pi, pop in source_pops:
                    per_tick[pi].append(
                        np.asarray(pop.source.sample(step, dt, self.rng), dtype=np.int64)
                    )
            for pi, fired in per_tick.items():
                if fired:
                    ids = np.concatenate(fired)
                    ticks = np.repeat(
                        np.arange(n_steps), [f.size for f in fired]
                    )
                else:
                    ids = np.empty(0, dtype=np.int64)
                    ticks = np.empty(0, dtype=np.int64)
                raw[pi] = (ids, ticks)
        else:
            poisson = [
                (pi, pop) for pi, pop in source_pops
                if type(pop.source) is PoissonSource
            ]
            for pi, pop in source_pops:
                if type(pop.source) is not PoissonSource:
                    raw[pi] = pop.source.sample_ticks(n_steps, dt)
            if poisson:
                p = np.concatenate(
                    [pop.source.rates_hz * (dt / 1000.0) for _, pop in poisson]
                )
                bounds = np.cumsum([0] + [pop.size for _, pop in poisson])
                total = int(bounds[-1])
                parts: Dict[int, Tuple[List[np.ndarray], List[np.ndarray]]] = {
                    pi: ([], []) for pi, _ in poisson
                }
                chunk = max(1, _POISSON_CHUNK // max(1, total))
                for start in range(0, n_steps, chunk):
                    rows = min(chunk, n_steps - start)
                    u = self.rng.random(size=(rows, total))
                    hit_t, hit_i = np.nonzero(u < p[None, :])
                    for k, (pi, _) in enumerate(poisson):
                        lo, hi = bounds[k], bounds[k + 1]
                        mask = (hit_i >= lo) & (hit_i < hi)
                        parts[pi][0].append(hit_i[mask] - lo)
                        parts[pi][1].append(hit_t[mask] + start)
                for pi, (ids, ticks) in parts.items():
                    raw[pi] = (
                        np.concatenate(ids) if ids else np.empty(0, np.int64),
                        np.concatenate(ticks) if ticks else np.empty(0, np.int64),
                    )
        for pi, (ids, ticks) in raw.items():
            counts = np.bincount(ticks, minlength=n_steps)
            indptr = np.concatenate([[0], np.cumsum(counts)])
            columns[pi] = (indptr, ids.astype(np.int64, copy=False))
        return columns

    def _run_columnar(self, duration_ms: float, learning: bool) -> SimulationResult:
        n_steps = int(round(duration_ms / self.dt))
        net, dt = self.network, self.dt
        n_pops = len(net.populations)

        # States for fallback (non-LIF) populations; reset sources first so
        # the precompute pass sees fresh cursors, like the reference loop.
        for pop in net.populations:
            if pop.is_source and pop.source is not None:
                pop.source.reset()
        source_plan = self._precompute_source_spikes(n_steps)

        dyn_pops = [(pi, pop) for pi, pop in enumerate(net.populations) if not pop.is_source]
        lif = [(pi, pop) for pi, pop in dyn_pops if type(pop.model) is LIFModel]
        fallback = [(pi, pop) for pi, pop in dyn_pops if type(pop.model) is not LIFModel]

        # Fused currents layout: LIF populations first (so the fused group
        # reads one contiguous view), then fallback populations.
        layout = lif + fallback
        cur_lo: Dict[int, int] = {}
        offset = 0
        for pi, pop in layout:
            cur_lo[pi] = offset
            offset += pop.size
        n_dyn = offset
        bias = np.empty(n_dyn, dtype=np.float64)
        for pi, pop in layout:
            bias[cur_lo[pi] : cur_lo[pi] + pop.size] = pop.bias_current
        currents = np.empty(n_dyn, dtype=np.float64)

        fused = _FusedLIF([pop for _, pop in lif]) if lif else None
        n_fused = fused.n if fused is not None else 0
        fused_view = currents[:n_fused]
        fallback_states = [
            (pi, pop, pop.model.allocate_state(pop.size),
             currents[cur_lo[pi] : cur_lo[pi] + pop.size])
            for pi, pop in fallback
        ]

        # Per-projection delivery plans and ring-buffer delay lines.
        empty_i64 = np.empty(0, dtype=np.int64)
        pop_index = {id(pop): pi for pi, pop in enumerate(net.populations)}
        plans = []
        for proj in net.projections:
            ticks = max(1, int(round(proj.delay_ms / self.dt)))
            ring = [empty_i64] * ticks
            post_idx = pop_index[id(proj.post)]
            deliver = not proj.post.is_source
            lo = cur_lo[post_idx] if deliver else 0
            weights = proj.weights
            n_syn = int(np.count_nonzero(weights))
            size = weights.size
            # Plastic projections mutate their weights mid-run, so the
            # cached CSR values would go stale: they always stay dense.
            use_csr = (
                deliver
                and not (proj.plastic and self.stdp is not None)
                and size >= CSR_MIN_DENSE_SIZE
                and n_syn <= CSR_DENSITY_THRESHOLD * size
            )
            if use_csr:
                pre_nz, post_nz = np.nonzero(weights)
                indptr = np.concatenate(
                    [[0], np.cumsum(np.bincount(pre_nz, minlength=weights.shape[0]))]
                ).astype(np.int64)
                csr = (indptr, post_nz.astype(np.int64), weights[pre_nz, post_nz])
            else:
                csr = None
            # Positional plan record (indexed in the hot loop):
            # [ring, head, deliver, lo, hi, weights, csr, pre_idx, post_idx]
            plans.append(
                [ring, 0, deliver, lo, lo + proj.post.size, weights, csr,
                 pop_index[id(proj.pre)], post_idx]
            )

        stdp_states: Dict[int, STDPState] = {}
        if self.stdp is not None:
            for pi, proj in enumerate(net.projections):
                if proj.plastic:
                    stdp_states[pi] = self.stdp.allocate_state(
                        proj.pre.size, proj.post.size
                    )

        record = _SpikeColumns(capacity=max(1024, 4 * n_steps))
        # Source spikes are fully known up front: record them in one shot.
        for pi, (indptr, locals_) in source_plan.items():
            pop = net.populations[pi]
            if locals_.size:
                ticks_col = np.repeat(np.arange(n_steps), np.diff(indptr))
                record.append_columns(locals_ + pop.id_offset, ticks_col)

        fired_locals: List[Optional[np.ndarray]] = [None] * n_pops
        fused_starts = fused.starts if fused is not None else None
        lif_indices = [pi for pi, _ in lif]
        single_lif = lif_indices[0] if len(lif_indices) == 1 else None
        run_stdp = self.stdp is not None and learning
        source_items = [
            (pi, indptr, locals_) for pi, (indptr, locals_) in source_plan.items()
        ]
        stdp_items = [
            (state, net.projections[pi].weights, plans[pi][7], plans[pi][8])
            for pi, state in stdp_states.items()
        ]

        for step in range(n_steps):
            # 1. Deliver delayed spikes into input currents (projection
            #    order — the reference engine's accumulation order).
            np.copyto(currents, bias)
            for plan in plans:
                arriving = plan[0][plan[1]]
                if arriving.size and plan[2]:
                    view = currents[plan[3] : plan[4]]
                    csr = plan[6]
                    if csr is None:
                        # add.reduce is what ndarray.sum(axis=0) dispatches
                        # to — called directly to skip the wrapper layers.
                        view += np.add.reduce(plan[5][arriving], axis=0)
                    else:
                        indptr, cols, vals = csr
                        starts = indptr[arriving]
                        counts = indptr[arriving + 1] - starts
                        total = int(counts.sum())
                        if total:
                            shift = np.cumsum(counts) - counts
                            flat = np.repeat(starts - shift, counts) + np.arange(total)
                            view += np.bincount(
                                cols[flat], weights=vals[flat], minlength=view.size
                            )

            # 2. Sources fire from the precomputed plan; dynamics advance.
            for pi, indptr, locals_ in source_items:
                fired_locals[pi] = locals_[indptr[step] : indptr[step + 1]]
            if fused is not None:
                hits = fused.step(fused_view, dt)
                if hits.size:
                    record.append(fused.gids[hits], step)
                    if single_lif is not None:
                        fired_locals[single_lif] = hits
                    else:
                        cuts = hits.searchsorted(fused_starts[1:])
                        prev = 0
                        for k, pi in enumerate(lif_indices):
                            cut = cuts[k] if k < cuts.size else hits.size
                            piece = hits[prev:cut]
                            fired_locals[pi] = (
                                piece - fused_starts[k] if piece.size else empty_i64
                            )
                            prev = cut
                else:
                    for pi in lif_indices:
                        fired_locals[pi] = empty_i64
            for pi, pop, state, view in fallback_states:
                mask = pop.model.step(state, view, dt)
                hit = np.nonzero(mask)[0]
                fired_locals[pi] = hit
                if hit.size:
                    record.append(hit + pop.id_offset, step)

            # 3. STDP on plastic projections (pre arrivals vs post spikes).
            if run_stdp:
                for state, weights, pre_idx, post_idx in stdp_items:
                    self.stdp.step(
                        state,
                        weights,
                        pre_spikes=fired_locals[pre_idx],
                        post_spikes=fired_locals[post_idx],
                        dt=self.dt,
                    )

            # 4. Enqueue emitted spikes on outgoing ring delay lines.
            for plan in plans:
                head = plan[1]
                plan[0][head] = fired_locals[plan[7]]
                plan[1] = (head + 1) % len(plan[0])

        # One sort/split materializes every neuron's train.
        gids, ticks = record.columns()
        counts = np.bincount(gids, minlength=net.n_neurons)
        order = np.lexsort((ticks, gids))
        times = ticks[order] * dt
        spike_arrays = np.split(times, np.cumsum(counts)[:-1])
        return SimulationResult(
            network_name=net.name,
            duration_ms=n_steps * self.dt,
            dt=self.dt,
            spike_times=spike_arrays,
            counts=counts,
        )

    # -- reference engine --------------------------------------------------

    def _run_reference(self, duration_ms: float, learning: bool) -> SimulationResult:
        n_steps = int(round(duration_ms / self.dt))
        net = self.network

        states: Dict[str, NeuronState] = {}
        for pop in net.populations:
            if not pop.is_source:
                states[pop.name] = pop.model.allocate_state(pop.size)
            elif pop.source is not None:
                pop.source.reset()

        # Per-projection delay lines: deque of spike-index arrays, one slot
        # per tick of delay.  Slot 0 is delivered on the *next* tick.
        delay_lines: Dict[int, deque] = {}
        for pi, proj in enumerate(net.projections):
            ticks = max(1, int(round(proj.delay_ms / self.dt)))
            delay_lines[pi] = deque(
                [np.empty(0, dtype=np.int64) for _ in range(ticks)], maxlen=ticks
            )

        stdp_states: Dict[int, STDPState] = {}
        if self.stdp is not None:
            for pi, proj in enumerate(net.projections):
                if proj.plastic:
                    stdp_states[pi] = self.stdp.allocate_state(
                        proj.pre.size, proj.post.size
                    )

        recorded: List[List[float]] = [[] for _ in range(net.n_neurons)]
        out_projections: Dict[str, List[int]] = {pop.name: [] for pop in net.populations}
        for pi, proj in enumerate(net.projections):
            out_projections[proj.pre.name].append(pi)

        for step in range(n_steps):
            t_now = step * self.dt

            # 1. Deliver delayed spikes into input currents.
            currents: Dict[str, np.ndarray] = {
                pop.name: np.full(pop.size, pop.bias_current, dtype=np.float64)
                for pop in net.populations
                if not pop.is_source
            }
            arrivals: Dict[int, np.ndarray] = {}
            for pi, proj in enumerate(net.projections):
                arriving = delay_lines[pi][0]
                arrivals[pi] = arriving
                if arriving.size and not proj.post.is_source:
                    currents[proj.post.name] += proj.weights[arriving, :].sum(axis=0)

            # 2. Advance dynamics / sample sources; collect this tick's spikes.
            spikes_by_pop: Dict[str, np.ndarray] = {}
            for pop in net.populations:
                if pop.is_source:
                    fired = pop.source.sample(step, self.dt, self.rng)
                else:
                    mask = pop.model.step(
                        states[pop.name], currents[pop.name], self.dt
                    )
                    fired = np.nonzero(mask)[0]
                spikes_by_pop[pop.name] = fired
                base = pop.id_offset
                for local in fired:
                    recorded[base + int(local)].append(t_now)

            # 3. STDP on plastic projections (pre arrivals vs post spikes).
            if self.stdp is not None and learning:
                for pi, state in stdp_states.items():
                    proj = net.projections[pi]
                    self.stdp.step(
                        state,
                        proj.weights,
                        pre_spikes=spikes_by_pop[proj.pre.name],
                        post_spikes=spikes_by_pop[proj.post.name],
                        dt=self.dt,
                    )

            # 4. Enqueue emitted spikes on outgoing delay lines.
            for pop in net.populations:
                fired = spikes_by_pop[pop.name]
                for pi in out_projections[pop.name]:
                    delay_lines[pi].append(fired)

        spike_arrays = [np.asarray(times, dtype=np.float64) for times in recorded]
        return SimulationResult(
            network_name=net.name,
            duration_ms=n_steps * self.dt,
            dt=self.dt,
            spike_times=spike_arrays,
        )


def run_network(
    network: Network,
    duration_ms: float,
    dt: float = 1.0,
    seed: SeedLike = None,
    stdp: Optional[STDPRule] = None,
    learning: bool = True,
    engine: str = "columnar",
) -> SimulationResult:
    """One-call convenience wrapper: build a Simulation and run it."""
    return Simulation(network, dt=dt, seed=seed, stdp=stdp, engine=engine).run(
        duration_ms, learning=learning
    )
