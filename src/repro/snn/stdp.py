"""Pair-based spike-timing-dependent plasticity.

Used by the digit-recognition application (Diehl & Cook 2015) to develop
receptive fields in the input->excitatory projection.  The rule is the
standard trace-based pair STDP with soft weight bounds:

- each presynaptic spike deposits on trace ``x_pre``; each postsynaptic
  spike deposits on trace ``x_post``; both traces decay exponentially;
- on a postsynaptic spike, potentiate by ``a_plus * x_pre * (w_max - w)``;
- on a presynaptic spike, depress by ``a_minus * x_post * w``.

Soft bounds keep weights in ``[0, w_max]`` without clipping artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass
class STDPState:
    """Per-projection eligibility traces."""

    x_pre: np.ndarray
    x_post: np.ndarray


@dataclass(frozen=True)
class STDPRule:
    """Pair-based STDP with exponential traces and soft bounds."""

    a_plus: float = 0.01
    a_minus: float = 0.012
    tau_plus: float = 20.0
    tau_minus: float = 20.0
    w_max: float = 1.0

    def __post_init__(self) -> None:
        check_positive("tau_plus", self.tau_plus)
        check_positive("tau_minus", self.tau_minus)
        check_positive("w_max", self.w_max)
        if self.a_plus < 0 or self.a_minus < 0:
            raise ValueError("a_plus and a_minus must be non-negative")

    def allocate_state(self, n_pre: int, n_post: int) -> STDPState:
        return STDPState(
            x_pre=np.zeros(n_pre, dtype=np.float64),
            x_post=np.zeros(n_post, dtype=np.float64),
        )

    def step(
        self,
        state: STDPState,
        weights: np.ndarray,
        pre_spikes: np.ndarray,
        post_spikes: np.ndarray,
        dt: float,
    ) -> None:
        """Advance traces one tick and update ``weights`` in place.

        Only entries that are already non-zero are modified, so the rule
        never creates synapses absent from the topology.
        """
        state.x_pre *= np.exp(-dt / self.tau_plus)
        state.x_post *= np.exp(-dt / self.tau_minus)

        mask = weights != 0.0
        if post_spikes.size:
            # LTP: pre trace at the moment of the post spike.
            dw = self.a_plus * np.outer(state.x_pre, np.ones(post_spikes.size))
            cols = weights[:, post_spikes]
            potentiation = dw * (self.w_max - cols) * mask[:, post_spikes]
            weights[:, post_spikes] = cols + potentiation
        if pre_spikes.size:
            # LTD: post trace at the moment of the pre spike.
            rows = weights[pre_spikes, :]
            depression = (
                self.a_minus
                * np.outer(np.ones(pre_spikes.size), state.x_post)
                * rows
                * mask[pre_spikes, :]
            )
            weights[pre_spikes, :] = rows - depression

        if pre_spikes.size:
            state.x_pre[pre_spikes] += 1.0
        if post_spikes.size:
            state.x_post[post_spikes] += 1.0
        np.clip(weights, 0.0, self.w_max, out=weights)
