"""Spike-train analysis utilities.

Post-simulation statistics used by the applications, examples and tests:
rate profiles, ISI regularity (coefficient of variation), pairwise
synchrony, and population activity binning.  These mirror the analysis
CARLsim ships with its SpikeMonitor.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.snn.coding import interspike_intervals
from repro.utils.validation import check_positive


def firing_rate_hz(spike_times: np.ndarray, duration_ms: float) -> float:
    """Mean rate of one train over the recording window."""
    check_positive("duration_ms", duration_ms)
    return float(np.asarray(spike_times).size / (duration_ms / 1000.0))


def isi_cv(spike_times: np.ndarray) -> float:
    """Coefficient of variation of a train's ISIs.

    ~0 for clock-regular trains, ~1 for Poisson trains, >1 for bursty
    trains; NaN when fewer than three spikes (no two ISIs).
    """
    isis = interspike_intervals(spike_times)
    if isis.size < 2 or isis.mean() == 0:
        return float("nan")
    return float(isis.std() / isis.mean())


def population_rate(
    spike_times: Sequence[np.ndarray],
    duration_ms: float,
    bin_ms: float = 10.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Population firing rate over time.

    Returns ``(bin_centers_ms, rate_hz_per_neuron)`` where the rate is the
    instantaneous population-mean rate in each bin.
    """
    check_positive("duration_ms", duration_ms)
    check_positive("bin_ms", bin_ms)
    n_neurons = max(len(spike_times), 1)
    edges = np.arange(0.0, duration_ms + bin_ms, bin_ms)
    all_spikes = (
        np.concatenate([np.asarray(t) for t in spike_times])
        if spike_times else np.empty(0)
    )
    counts, _ = np.histogram(all_spikes, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2.0
    rates = counts / n_neurons / (bin_ms / 1000.0)
    return centers, rates


def synchrony_index(
    spike_times: Sequence[np.ndarray],
    duration_ms: float,
    bin_ms: float = 5.0,
) -> float:
    """Population synchrony: variance-based index of Golomb & Hansel.

    Ratio of the variance of the population-averaged binned activity to
    the mean variance of individual binned trains.  1 for perfectly
    synchronized populations, -> 0 for asynchronous ones.  NaN when no
    neuron varies.
    """
    check_positive("duration_ms", duration_ms)
    n = len(spike_times)
    if n == 0:
        return float("nan")
    edges = np.arange(0.0, duration_ms + bin_ms, bin_ms)
    binned = np.stack([
        np.histogram(np.asarray(t), bins=edges)[0].astype(float)
        for t in spike_times
    ])
    individual_var = binned.var(axis=1).mean()
    if individual_var == 0:
        return float("nan")
    population_var = binned.mean(axis=0).var()
    return float(population_var / individual_var)


def active_fraction(
    spike_times: Sequence[np.ndarray], threshold_spikes: int = 1
) -> float:
    """Fraction of neurons with at least ``threshold_spikes`` spikes."""
    if not spike_times:
        return 0.0
    active = sum(
        1 for t in spike_times if np.asarray(t).size >= threshold_spikes
    )
    return active / len(spike_times)


def rate_histogram(
    spike_times: Sequence[np.ndarray],
    duration_ms: float,
    n_bins: int = 10,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of per-neuron firing rates: ``(bin_edges_hz, counts)``."""
    check_positive("duration_ms", duration_ms)
    rates = np.asarray(
        [firing_rate_hz(t, duration_ms) for t in spike_times]
    )
    counts, edges = np.histogram(rates, bins=n_bins)
    return edges, counts


def spike_raster(
    spike_times: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten trains into raster coordinates ``(times_ms, neuron_ids)``."""
    times: List[np.ndarray] = []
    ids: List[np.ndarray] = []
    for i, t in enumerate(spike_times):
        arr = np.asarray(t, dtype=np.float64)
        times.append(arr)
        ids.append(np.full(arr.size, i, dtype=np.int64))
    if not times:
        return np.empty(0), np.empty(0, dtype=np.int64)
    return np.concatenate(times), np.concatenate(ids)
