"""Programmatic reproduction of the paper's tables and figures.

Each ``reproduce_*`` function regenerates one artifact and returns the
rows it printed, using the same workloads, seeds and cost models as the
benchmark harness (`benchmarks/`); the CLI exposes them as
``python -m repro reproduce {fig5,table2,fig6,fig7}``.  Budgets are
scaled by ``effort`` so a laptop can get the shape in seconds
(``effort=0.5``) or grind closer to the paper's swarm settings
(``effort=2.0``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.apps import build_application
from repro.core import PSOConfig, map_snn
from repro.framework.exploration import (
    estimate_synapse_energy_pj,
    explore_architecture,
    explore_swarm_size,
    normalized_energies,
)
from repro.framework.pipeline import run_pipeline
from repro.hardware.presets import architecture_for, custom
from repro.utils.tables import format_table

BENCH_SEED = 2018


def _scaled_pso(effort: float) -> PSOConfig:
    return PSOConfig(
        n_particles=max(8, int(80 * effort)),
        n_iterations=max(5, int(40 * effort)),
    )


def _arch_for(graph, cycles_per_ms: float = 10.0):
    per_xbar = max(16, -(-graph.n_neurons // 6))
    return architecture_for(graph.n_neurons, neurons_per_crossbar=per_xbar,
                            interconnect="tree",
                            cycles_per_ms=cycles_per_ms, name=graph.name)


def _fig5_workloads(effort: float) -> Dict[str, object]:
    synth = [(1, 200), (1, 600), (3, 200), (4, 200)]
    workloads = {
        f"synth_{m}x{n}": build_application(
            f"synth_{m}x{n}", seed=BENCH_SEED, duration_ms=400.0
        )
        for m, n in synth
    }
    workloads["HW"] = build_application("hello_world", seed=BENCH_SEED,
                                        duration_ms=500.0)
    workloads["IS"] = build_application("image_smoothing", seed=BENCH_SEED,
                                        duration_ms=150.0)
    workloads["HD"] = build_application(
        "digit_recognition", seed=BENCH_SEED, duration_ms=150.0,
        n_training_samples=2, train_ms_per_sample=80.0,
    )
    workloads["HE"] = build_application("heartbeat", seed=BENCH_SEED,
                                        duration_ms=3000.0)
    return workloads


def reproduce_fig5(effort: float = 1.0) -> List[Sequence[object]]:
    """Fig. 5: normalized interconnect energy for three partitioners."""
    pso_cfg = _scaled_pso(effort)
    rows: List[Sequence[object]] = []
    for name, graph in _fig5_workloads(effort).items():
        arch = _arch_for(graph)
        energies = {}
        for method in ("neutrams", "pacman", "pso"):
            result = map_snn(graph, arch, method=method, seed=7,
                             pso_config=pso_cfg, objective="spikes")
            energies[method] = estimate_synapse_energy_pj(
                graph, result.assignment, arch
            )
        ref = energies["neutrams"] or 1.0
        rows.append((name, f"{energies['neutrams'] / ref:.3f}",
                     f"{energies['pacman'] / ref:.3f}",
                     f"{energies['pso'] / ref:.3f}"))
    print("Fig. 5 — normalized energy on the global synapse interconnect")
    print(format_table(["workload", "NEUTRAMS", "PACMAN", "Proposed PSO"],
                       rows))
    return rows


def reproduce_table2(effort: float = 1.0) -> List[Sequence[object]]:
    """Table II: ISI / disorder / throughput / latency, PACMAN vs PSO."""
    pso_cfg = _scaled_pso(effort)
    apps = {
        "hello_world": build_application("hello_world", seed=BENCH_SEED,
                                         duration_ms=500.0),
        "image_smoothing": build_application(
            "image_smoothing", seed=BENCH_SEED, duration_ms=150.0
        ),
        "digit_recog.": build_application(
            "digit_recognition", seed=BENCH_SEED, duration_ms=150.0,
            n_training_samples=2, train_ms_per_sample=80.0,
        ),
        "heartbeat_est.": build_application("heartbeat", seed=BENCH_SEED,
                                            duration_ms=3000.0),
    }
    rows: List[Sequence[object]] = []
    for name, graph in apps.items():
        arch = _arch_for(graph)
        reports = {
            method: run_pipeline(graph, arch, method=method, seed=7,
                                 pso_config=pso_cfg).report
            for method in ("pacman", "pso")
        }
        rows.extend([
            (name, "ISI Distortion (cycles)",
             f"{reports['pacman'].isi_distortion_cycles:.2f}",
             f"{reports['pso'].isi_distortion_cycles:.2f}"),
            (name, "Disorder count (%)",
             f"{reports['pacman'].disorder_percent:.3f}",
             f"{reports['pso'].disorder_percent:.3f}"),
            (name, "Throughput (AER/ms)",
             f"{reports['pacman'].throughput_aer_per_ms:.2f}",
             f"{reports['pso'].throughput_aer_per_ms:.2f}"),
            (name, "Latency (cycles)",
             f"{reports['pacman'].max_latency_cycles:.0f}",
             f"{reports['pso'].max_latency_cycles:.0f}"),
        ])
    print("Table II — metric evaluation for realistic applications")
    print(format_table(["application", "metric", "PACMAN", "Proposed"],
                       rows))
    return rows


def reproduce_fig6(effort: float = 1.0) -> List[Sequence[object]]:
    """Fig. 6: crossbar-size exploration on digit recognition."""
    graph = build_application(
        "digit_recognition", seed=BENCH_SEED, duration_ms=150.0,
        n_training_samples=2, train_ms_per_sample=80.0,
    )
    base = custom(4, 256, interconnect="tree", name="fig6")
    cfg = PSOConfig(n_particles=max(8, int(50 * effort)),
                    n_iterations=max(5, int(30 * effort)))
    points = explore_architecture(
        graph, base, crossbar_sizes=[90, 180, 360, 720, 1080, 1440],
        method="pso", seed=7, pso_config=cfg,
    )
    rows = [
        (p.neurons_per_crossbar, p.n_crossbars, f"{p.local_energy_uj:.3f}",
         f"{p.global_energy_uj:.3f}", f"{p.total_energy_uj:.3f}",
         p.max_latency_cycles)
        for p in points
    ]
    print("Fig. 6 — architecture exploration (digit recognition)")
    print(format_table(
        ["neurons/xbar", "crossbars", "local uJ", "global uJ", "total uJ",
         "latency (cy)"],
        rows,
    ))
    return rows


def reproduce_fig7(effort: float = 1.0) -> List[Sequence[object]]:
    """Fig. 7: normalized energy vs swarm size for four applications."""
    workloads = {
        "hello_world": build_application("hello_world", seed=BENCH_SEED,
                                         duration_ms=500.0),
        "heartbeat": build_application("heartbeat", seed=BENCH_SEED,
                                       duration_ms=3000.0),
        "synth_1x800": build_application("synth_1x800", seed=BENCH_SEED,
                                         duration_ms=300.0),
        "synth_2x200": build_application("synth_2x200", seed=BENCH_SEED,
                                         duration_ms=300.0),
    }
    swarm_sizes = [10, 50, 200, 1000]
    n_iterations = max(5, int(30 * effort))
    rows: List[Sequence[object]] = []
    for name, graph in workloads.items():
        arch = _arch_for(graph)
        points = explore_swarm_size(graph, arch, swarm_sizes=swarm_sizes,
                                    n_iterations=n_iterations, seed=7)
        for p, e in zip(points, normalized_energies(points)):
            rows.append((name, p.swarm_size, f"{e:.3f}"))
    print(f"Fig. 7 — normalized energy vs swarm size ({n_iterations} iters)")
    print(format_table(["application", "swarm size", "normalized energy"],
                       rows))
    return rows


ARTIFACTS = {
    "fig5": reproduce_fig5,
    "table2": reproduce_table2,
    "fig6": reproduce_fig6,
    "fig7": reproduce_fig7,
}


def reproduce(artifact: str, effort: float = 1.0) -> List[Sequence[object]]:
    """Regenerate one paper artifact by name."""
    if artifact not in ARTIFACTS:
        raise KeyError(
            f"unknown artifact {artifact!r}; options: {sorted(ARTIFACTS)}"
        )
    if effort <= 0:
        raise ValueError(f"effort must be positive, got {effort}")
    return ARTIFACTS[artifact](effort=effort)
