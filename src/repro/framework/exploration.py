"""Design-space exploration studies (paper Sections V-C and V-D).

- :func:`explore_architecture` — Fig. 6: sweep crossbar size for a fixed
  application; report local / global / total synapse energy and worst-case
  interconnect latency per point.
- :func:`explore_swarm_size` — Fig. 7: sweep the PSO swarm size at a fixed
  iteration budget; report the achieved interconnect energy per point
  (normalized by the sweep's minimum, as the paper plots it).
- :func:`explore_chips` — the multi-chip extension of the Fig. 6 study:
  hold the platform fixed and sweep how many chips its crossbars are
  spread across, reporting the inter-chip traffic, bridge crossings and
  energy/latency cost of each split.

Both return plain dataclass lists so benches can print the same series the
paper's figures show.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from repro.core.mapper import map_snn
from repro.core.pso import PSOConfig
from repro.framework.pipeline import run_pipeline
from repro.hardware.architecture import Architecture
from repro.noc.interconnect import NocConfig
from repro.noc.routing import routing_for
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike, derive_seed


@dataclass(frozen=True)
class ArchitecturePoint:
    """One Fig. 6 sweep point."""

    neurons_per_crossbar: int
    n_crossbars: int
    local_energy_uj: float
    global_energy_uj: float
    total_energy_uj: float
    max_latency_cycles: int
    global_spikes: float


@dataclass(frozen=True)
class SwarmPoint:
    """One Fig. 7 sweep point.

    ``particle_iterations_per_s`` is the swarm's generation throughput
    (evaluated particle-iterations per second of pure PSO wall time) —
    the number the fig-7 bench prints so front-end slowdowns are visible
    in bench output, not just total wall time.
    """

    swarm_size: int
    interconnect_energy_pj: float
    global_spikes: float
    wall_time_s: float
    particle_iterations_per_s: float = 0.0


@dataclass(frozen=True)
class ChipPoint:
    """One chip-count sweep point."""

    n_chips: int
    n_bridges: int
    local_energy_uj: float
    global_energy_uj: float
    total_energy_uj: float
    max_latency_cycles: int
    mean_latency_cycles: float
    inter_chip_hops: int
    bridge_crossings: int
    mean_inter_chip_latency_cycles: float
    global_spikes: float


def architecture_point(
    graph: SpikeGraph,
    base: Architecture,
    size: int,
    index: int,
    *,
    method: str = "pso",
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    objective: str = "packets",
    workers=1,
    threads=None,
    cache=None,
) -> ArchitecturePoint:
    """One Fig. 6 sweep point: crossbar size ``size`` at sweep ``index``.

    Extracted from :func:`explore_architecture` so resumable campaigns
    (:func:`~repro.framework.service.run_sweep_resumable`) can run the
    exact same per-point computation one checkpointed index at a time.
    """
    arch = base.scaled_to(graph.n_neurons, size)
    result = run_pipeline(
        graph,
        arch,
        method=method,
        seed=derive_seed(seed, index),
        pso_config=pso_config,
        noc_config=noc_config,
        objective=objective,
        workers=workers,
        threads=threads,
        cache=cache,
    )
    report = result.report
    return ArchitecturePoint(
        neurons_per_crossbar=size,
        n_crossbars=arch.n_crossbars,
        local_energy_uj=report.local_energy_pj * 1e-6,
        global_energy_uj=report.global_energy_pj * 1e-6,
        total_energy_uj=report.total_energy_pj * 1e-6,
        max_latency_cycles=report.max_latency_cycles,
        global_spikes=report.global_spikes,
    )


def explore_architecture(
    graph: SpikeGraph,
    base: Architecture,
    crossbar_sizes: Sequence[int],
    method: str = "pso",
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    objective: str = "packets",
    workers=1,
    threads=None,
    cache=None,
) -> List[ArchitecturePoint]:
    """Fig. 6: vary crossbar size, keep the application fixed.

    For each size the platform is re-derived so the whole network fits
    (fewer, larger crossbars or more, smaller ones), then the full
    pipeline runs: mapping, NoC simulation, energy accounting.
    ``objective="noc"`` with ``workers > 1`` shards each sweep point's
    swarm scoring across processes; ``cache`` shares derived artifacts
    (topologies, routing, hop matrices) across points.
    """
    return [
        architecture_point(
            graph,
            base,
            size,
            i,
            method=method,
            seed=seed,
            pso_config=pso_config,
            noc_config=noc_config,
            objective=objective,
            workers=workers,
            threads=threads,
            cache=cache,
        )
        for i, size in enumerate(crossbar_sizes)
    ]


def chip_point(
    graph: SpikeGraph,
    base: Architecture,
    chips: int,
    index: int,
    *,
    method: str = "pso",
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    objective: str = "packets",
    workers=1,
    threads=None,
    cache=None,
) -> ChipPoint:
    """One chip-count sweep point (see :func:`explore_chips`)."""
    arch = replace(base, n_chips=chips, name=f"{base.name}@{chips}chips")
    result = run_pipeline(
        graph,
        arch,
        method=method,
        seed=derive_seed(seed, index),
        pso_config=pso_config,
        noc_config=noc_config,
        objective=objective,
        workers=workers,
        threads=threads,
        cache=cache,
    )
    report = result.report
    return ChipPoint(
        n_chips=chips,
        n_bridges=getattr(result.topology, "n_bridges", 0),
        local_energy_uj=report.local_energy_pj * 1e-6,
        global_energy_uj=report.global_energy_pj * 1e-6,
        total_energy_uj=report.total_energy_pj * 1e-6,
        max_latency_cycles=report.max_latency_cycles,
        mean_latency_cycles=report.mean_latency_cycles,
        inter_chip_hops=report.inter_chip_hops,
        bridge_crossings=report.bridge_crossings,
        mean_inter_chip_latency_cycles=(
            report.mean_inter_chip_latency_cycles
        ),
        global_spikes=report.global_spikes,
    )


def explore_chips(
    graph: SpikeGraph,
    base: Architecture,
    chip_counts: Sequence[int],
    method: str = "pso",
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    objective: str = "packets",
    workers=1,
    threads=None,
    cache=None,
) -> List[ChipPoint]:
    """Sweep how many chips the platform's crossbars are spread across.

    Every point keeps ``base``'s crossbar count, tile size and per-chip
    topology family; only the chip split (and therefore the bridge
    structure) changes.  The full pipeline runs per point — mapping with
    the chip-aware placement pass, cycle-accurate NoC simulation, and
    the energy accounting including the bridge term — so the sweep shows
    the real latency/energy cliff of going off-chip, Fig. 6 style.
    """
    return [
        chip_point(
            graph,
            base,
            chips,
            i,
            method=method,
            seed=seed,
            pso_config=pso_config,
            noc_config=noc_config,
            objective=objective,
            workers=workers,
            threads=threads,
            cache=cache,
        )
        for i, chips in enumerate(chip_counts)
    ]


def estimate_interconnect_energy_pj(
    graph: SpikeGraph,
    assignment: np.ndarray,
    architecture: Architecture,
) -> float:
    """Analytic interconnect energy from per-flow AER packet counts.

    Avoids a full NoC simulation for sweeps with many points.  Each
    (neuron, remote crossbar) flow carries the neuron's spike count; a
    flow's packets pay hop energy over the routed distance (plus the
    per-crossing bridge energy on multi-chip fabrics), the encoder
    runs once per spike event that leaves a crossbar, and the decoder
    once per delivered packet.  This is the unicast-equivalent accounting
    (multicast trunk sharing makes the simulated energy at most a few
    percent lower); congestion does not change energy, only latency, so
    the ordering of mapping candidates always matches the simulator's.
    """
    from repro.core.traffic_matrix import TrafficMatrix
    from repro.noc.multichip import MultiChipTopology
    from repro.noc.traffic import global_destinations

    topology = architecture.build_topology()
    routing = routing_for(topology)
    bridged = isinstance(topology, MultiChipTopology) and topology.n_chips > 1
    assignment = np.asarray(assignment, dtype=np.int64)
    neuron_spikes = TrafficMatrix(graph).neuron_spikes
    dests = global_destinations(graph, assignment)

    spike_hops = encodes = decodes = crossings = 0.0
    for neuron, clusters in dests.items():
        spikes = float(neuron_spikes[neuron])
        if spikes == 0.0:
            continue
        own_node = topology.node_of_crossbar(int(assignment[neuron]))
        encodes += spikes  # one encode per spike event
        for c in clusters:
            dst_node = topology.node_of_crossbar(c)
            spike_hops += spikes * routing.distance(own_node, dst_node)
            decodes += spikes
            if bridged:
                crossings += spikes * topology.bridge_crossings_on_route(
                    routing, own_node, dst_node
                )
    return architecture.energy.estimate_global_energy_pj(
        spike_hops, encodes, decodes, bridge_crossings=crossings
    )


def estimate_synapse_energy_pj(
    graph: SpikeGraph,
    assignment: np.ndarray,
    architecture: Architecture,
) -> float:
    """Paper-literal interconnect energy: per-synapse spike accounting.

    Eq. 7-8 of the paper charge every crossing *synapse* spike
    independently (no multicast sharing): hop energy over the routed
    distance between the two crossbars (plus per-crossing bridge energy
    on multi-chip fabrics) plus encoder/decoder work per spike.  This
    is the cost model under which the paper's Fig. 5 numbers were
    produced; :func:`estimate_interconnect_energy_pj` is the
    multicast-aware packet variant.
    """
    from repro.core.traffic_matrix import cluster_traffic
    from repro.noc.multichip import MultiChipTopology

    topology = architecture.build_topology()
    routing = routing_for(topology)
    bridged = isinstance(topology, MultiChipTopology) and topology.n_chips > 1
    matrix = cluster_traffic(graph, assignment, architecture.n_crossbars)
    spike_hops = crossing = bridge_crossings = 0.0
    for k1 in range(architecture.n_crossbars):
        for k2 in range(architecture.n_crossbars):
            spikes = matrix[k1, k2]
            if k1 == k2 or spikes == 0.0:
                continue
            n1 = topology.node_of_crossbar(k1)
            n2 = topology.node_of_crossbar(k2)
            spike_hops += spikes * routing.distance(n1, n2)
            crossing += spikes
            if bridged:
                bridge_crossings += spikes * topology.bridge_crossings_on_route(
                    routing, n1, n2
                )
    return architecture.energy.estimate_global_energy_pj(
        spike_hops, crossing, crossing, bridge_crossings=bridge_crossings
    )


def explore_swarm_size(
    graph: SpikeGraph,
    architecture: Architecture,
    swarm_sizes: Sequence[int],
    n_iterations: int = 100,
    seed: SeedLike = None,
    base_config: Optional[PSOConfig] = None,
) -> List[SwarmPoint]:
    """Fig. 7: PSO quality as a function of swarm size at fixed iterations.

    Energy per point is the paper-literal per-synapse hop-weighted
    estimate of the best assignment found (the paper plots interconnect
    energy normalized to the per-application minimum; normalization
    happens at the caller) and the swarm optimizes the literal Eq. 8
    spike objective — matching the cost model under which the paper's
    Fig. 7 was produced.  Warm-starting and the cluster-placement
    post-pass are both disabled so each point reflects pure swarm search
    (placement would repair much of a weak swarm's damage and flatten
    the sweep).
    """
    base = base_config if base_config is not None else PSOConfig()
    points: List[SwarmPoint] = []
    for i, swarm in enumerate(swarm_sizes):
        config = replace(base, n_particles=swarm, n_iterations=n_iterations)
        result = map_snn(
            graph,
            architecture,
            method="pso",
            seed=derive_seed(seed, i),
            pso_config=config,
            warm_start=False,
            placement=False,
            objective="spikes",
        )
        energy = estimate_synapse_energy_pj(
            graph, result.assignment, architecture
        )
        points.append(
            SwarmPoint(
                swarm_size=swarm,
                interconnect_energy_pj=energy,
                global_spikes=result.global_spikes,
                wall_time_s=result.wall_time_s,
                particle_iterations_per_s=float(
                    result.extras.get("particle_iterations_per_s", 0.0)
                ),
            )
        )
    return points


def normalized_energies(points: Sequence[SwarmPoint]) -> List[float]:
    """Fig. 7's y-axis: energy normalized to the sweep's minimum."""
    energies = [p.interconnect_energy_pj for p in points]
    floor = min(e for e in energies if e > 0) if any(e > 0 for e in energies) else 1.0
    return [e / floor if floor else 1.0 for e in energies]
