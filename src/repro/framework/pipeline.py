"""The Fig. 4 flow: spike graph → partitioner → NoC → metrics.

The SNN-simulation stage happens upstream (applications produce
:class:`~repro.snn.graph.SpikeGraph` objects); the pipeline takes the
graph through mapping, interconnect simulation and metric aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.mapper import MappingResult, map_snn
from repro.core.pso import PSOConfig
from repro.hardware.architecture import Architecture
from repro.metrics.report import (
    DegradationCurve,
    MetricReport,
    build_report,
    degradation_point,
)
from repro.noc.fastsim import build_interconnect
from repro.noc.faults import inject_random_faults
from repro.noc.interconnect import NocConfig
from repro.noc.stats import NocStats
from repro.noc.topology import Topology
from repro.noc.traffic import ColumnarSchedule, build_injections
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike


@dataclass
class PipelineResult:
    """Everything one end-to-end run produced."""

    graph: SpikeGraph
    architecture: Architecture
    mapping: MappingResult
    schedule: ColumnarSchedule
    noc_stats: NocStats
    report: MetricReport
    topology: Optional[Topology] = None
    failed_links: List[Tuple[int, int]] = field(default_factory=list)

    def describe(self) -> str:
        return "\n".join(
            [
                self.graph.describe(),
                self.architecture.describe(),
                self.mapping.describe(),
                self.noc_stats.describe(),
                self.report.table(),
            ]
        )


def run_pipeline(
    graph: SpikeGraph,
    architecture: Architecture,
    method: str = "pso",
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    simulate_noc: bool = True,
    objective: str = "packets",
    workers=1,
    faults: int = 0,
    fault_seed: SeedLike = None,
) -> PipelineResult:
    """Map ``graph`` onto ``architecture`` and measure the result.

    Parameters
    ----------
    method:
        Partitioner: "pso", "pacman", "neutrams", "random", "greedy" or
        "annealing".
    simulate_noc:
        When false, skip the cycle-accurate interconnect simulation and
        return empty NoC statistics (useful for mapping-only sweeps where
        the fitness value is the quantity of interest).
    noc_config:
        Interconnect parameters, including ``backend="reference"|"fast"``
        to pick the simulation engine (see :mod:`repro.noc.fastsim`).
        Also forwarded to the ``"noc"`` objective's fitness (backend
        forced to "fast" there), so the swarm optimizes the same fabric
        the final mapping is measured on.
    objective:
        PSO objective — "packets", "spikes", or "noc" for
        NoC-in-the-loop swarm scoring (see :func:`~repro.core.mapper.map_snn`).
    workers:
        Worker processes for "noc"-objective swarm scoring (``1`` =
        serial, ``0``/``"auto"`` = one per CPU).
    faults:
        Random survivable link faults to inject into the built
        topology (:func:`~repro.noc.faults.inject_random_faults`)
        before simulating — the mapping is still optimized for the
        healthy fabric, so the report measures degradation headroom.
        Degraded multi-chip fabrics keep their chip/bridge accounting.
    fault_seed:
        RNG seed of the fault draw (``faults > 0`` only).
    """
    mapping = map_snn(
        graph, architecture, method=method, seed=seed, pso_config=pso_config,
        objective=objective, workers=workers, noc_config=noc_config,
    )
    topology = architecture.build_topology()
    failed_links: List[Tuple[int, int]] = []
    if faults:
        topology, failed_links = inject_random_faults(
            topology, faults, seed=fault_seed
        )
    schedule = build_injections(
        graph,
        mapping.assignment,
        topology,
        cycles_per_ms=architecture.cycles_per_ms,
    )
    if simulate_noc:
        interconnect = build_interconnect(topology, config=noc_config)
        # Both backends accept the schedule object: the fast backend
        # adopts the columnar arrays directly, the reference loop reads
        # the lazily materialized legacy injection list.
        stats = interconnect.simulate(schedule)
    else:
        stats = NocStats()
    report = build_report(graph.name, mapping, stats, architecture, topology)
    return PipelineResult(
        graph=graph,
        architecture=architecture,
        mapping=mapping,
        schedule=schedule,
        noc_stats=stats,
        report=report,
        topology=topology,
        failed_links=failed_links,
    )


def run_fault_sweep(
    graph: SpikeGraph,
    architecture: Architecture,
    fault_counts: Sequence[int] = (0, 1, 2, 4),
    method: str = "pso",
    seed: SeedLike = None,
    fault_seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    mapping: Optional[MappingResult] = None,
) -> DegradationCurve:
    """Measure one mapping across rising link-fault counts.

    The graph is mapped once (on the healthy fabric, or reuse a
    precomputed ``mapping``), then simulated on each degraded topology
    drawn with :func:`~repro.noc.faults.inject_random_faults` under
    ``fault_seed``.  Traffic reroutes over shortest-path detours; the
    returned :class:`~repro.metrics.report.DegradationCurve` records
    latency, energy and spike disorder per fault level.
    """
    if mapping is None:
        mapping = map_snn(
            graph, architecture, method=method, seed=seed,
            pso_config=pso_config, noc_config=noc_config,
        )
    healthy = architecture.build_topology()
    healthy_links = healthy.graph.number_of_edges()
    curve = DegradationCurve(
        app=graph.name, method=mapping.method, topology_kind=healthy.kind
    )
    for n_faults in fault_counts:
        if n_faults:
            topology, failed = inject_random_faults(
                healthy, n_faults, seed=fault_seed
            )
        else:
            topology, failed = healthy, []
        schedule = build_injections(
            graph,
            mapping.assignment,
            topology,
            cycles_per_ms=architecture.cycles_per_ms,
        )
        stats = build_interconnect(topology, config=noc_config).simulate(
            schedule
        )
        curve.points.append(
            degradation_point(
                n_faults, failed, stats, architecture, topology,
                healthy_links,
            )
        )
    return curve
