"""The Fig. 4 flow: spike graph → partitioner → NoC → metrics.

The SNN-simulation stage happens upstream (applications produce
:class:`~repro.snn.graph.SpikeGraph` objects); the pipeline takes the
graph through mapping, interconnect simulation and metric aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.mapper import MappingResult, map_snn
from repro.core.pso import PSOConfig
from repro.hardware.architecture import Architecture
from repro.metrics.report import (
    DegradationCurve,
    MetricReport,
    build_report,
    degradation_point,
)
from repro.noc.fastsim import build_interconnect
from repro.noc.faults import inject_random_faults
from repro.noc.interconnect import NocConfig
from repro.noc.stats import NocStats
from repro.noc.topology import Topology
from repro.noc.traffic import ColumnarSchedule, build_injections
from repro.obs import get_observer
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike


@dataclass
class PipelineResult:
    """Everything one end-to-end run produced."""

    graph: SpikeGraph
    architecture: Architecture
    mapping: MappingResult
    schedule: ColumnarSchedule
    noc_stats: NocStats
    report: MetricReport
    topology: Optional[Topology] = None
    failed_links: List[Tuple[int, int]] = field(default_factory=list)

    def describe(self) -> str:
        return "\n".join(
            [
                self.graph.describe(),
                self.architecture.describe(),
                self.mapping.describe(),
                self.noc_stats.describe(),
                self.report.table(),
            ]
        )


def run_pipeline(
    graph: SpikeGraph,
    architecture: Architecture,
    method: str = "pso",
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    simulate_noc: bool = True,
    objective: str = "packets",
    workers=1,
    threads=None,
    faults: int = 0,
    fault_seed: SeedLike = None,
    cache=None,
    coalescer=None,
    warm_seeds=None,
    spare_capacity: float = 0.0,
) -> PipelineResult:
    """Map ``graph`` onto ``architecture`` and measure the result.

    Parameters
    ----------
    method:
        Partitioner: "pso", "pacman", "neutrams", "random", "greedy" or
        "annealing".
    simulate_noc:
        When false, skip the cycle-accurate interconnect simulation and
        return empty NoC statistics (useful for mapping-only sweeps where
        the fitness value is the quantity of interest).
    noc_config:
        Interconnect parameters, including ``backend="reference"|"fast"``
        to pick the simulation engine (see :mod:`repro.noc.fastsim`).
        Also forwarded to the ``"noc"`` objective's fitness (backend
        forced to "fast" there), so the swarm optimizes the same fabric
        the final mapping is measured on.
    objective:
        PSO objective — "packets", "spikes", or "noc" for
        NoC-in-the-loop swarm scoring (see :func:`~repro.core.mapper.map_snn`).
    workers:
        Worker processes for "noc"-objective swarm scoring (``1`` =
        serial, ``0``/``"auto"`` = one per CPU).
    threads:
        Thread cap for the compiled batch kernel in "noc"-objective
        swarm scoring (``None`` defers to ``REPRO_NOC_THREADS``; ``0``
        disables the threaded batch path).
    faults:
        Random survivable link faults to inject into the built
        topology (:func:`~repro.noc.faults.inject_random_faults`)
        before simulating — the mapping is still optimized for the
        healthy fabric, so the report measures degradation headroom.
        Degraded multi-chip fabrics keep their chip/bridge accounting.
    fault_seed:
        RNG seed of the fault draw (``faults > 0`` only).
    cache:
        An :class:`~repro.framework.artifacts.ArtifactCache`.  Shares
        the topology, routing tables, hop matrices, injection schedules
        and fault draws across calls, and memoizes the full
        :class:`PipelineResult` for deterministic runs (seeded mapping,
        seeded or absent faults) — a repeat request is answered from the
        cache, bit-identical to recomputing it.
    coalescer / warm_seeds:
        Serving-layer hooks, forwarded to
        :func:`~repro.core.mapper.map_snn` (see
        :class:`~repro.framework.service.MappingService`).
    spare_capacity:
        Fault-aware headroom fraction forwarded to
        :func:`~repro.core.mapper.map_snn`: every crossbar keeps that
        fraction of its slots free and the mapping spreads load so
        runtime evacuation stays cheap.
    """
    memo_key = None
    if cache is not None:
        deterministic_mapping = seed is not None or method in ("pacman", "greedy")
        deterministic_faults = faults == 0 or fault_seed is not None
        if deterministic_mapping and deterministic_faults:
            from repro.framework.artifacts import pipeline_token

            memo_key = cache.key(
                "pipeline-result",
                pipeline_token(
                    graph,
                    architecture,
                    method=method,
                    seed=seed,
                    pso_config=pso_config,
                    noc_config=noc_config,
                    simulate_noc=simulate_noc,
                    objective=objective,
                    faults=faults,
                    fault_seed=fault_seed,
                    warm_seeds=warm_seeds,
                    spare_capacity=spare_capacity,
                ),
            )
            found, cached = cache.get(memo_key)
            if found:
                obs = get_observer()
                if obs.enabled:
                    obs.inc("pipeline.memo_hits")
                return _copy_pipeline_result(cached)

    obs = get_observer()
    pipeline_span = obs.span(
        "run_pipeline",
        graph=graph.name,
        method=method,
        objective=objective,
        faults=faults,
    )
    with pipeline_span:
        if obs.enabled:
            obs.inc("pipeline.runs", method=method)
        mapping = map_snn(
            graph, architecture, method=method, seed=seed,
            pso_config=pso_config, objective=objective, workers=workers,
            threads=threads, noc_config=noc_config, cache=cache,
            coalescer=coalescer, warm_seeds=warm_seeds,
            spare_capacity=spare_capacity,
        )
        with obs.span("pipeline.build_topology"):
            if cache is not None:
                topology = cache.topology(architecture)
            else:
                topology = architecture.build_topology()
            failed_links: List[Tuple[int, int]] = []
            if faults:
                if cache is not None:
                    topology, failed_links = cache.degraded_topology(
                        topology, faults, fault_seed
                    )
                else:
                    topology, failed_links = inject_random_faults(
                        topology, faults, seed=fault_seed
                    )
        with obs.span("pipeline.build_schedule"):
            if cache is not None:
                schedule = cache.schedule(
                    graph, mapping.assignment, topology,
                    architecture.cycles_per_ms,
                )
            else:
                schedule = build_injections(
                    graph,
                    mapping.assignment,
                    topology,
                    cycles_per_ms=architecture.cycles_per_ms,
                )
        if simulate_noc:
            with obs.span("pipeline.simulate_noc"):
                stats = _simulate_schedule(topology, schedule, noc_config, cache)
        else:
            stats = NocStats()
        with obs.span("pipeline.report"):
            report = build_report(
                graph.name, mapping, stats, architecture, topology
            )
    result = PipelineResult(
        graph=graph,
        architecture=architecture,
        mapping=mapping,
        schedule=schedule,
        noc_stats=stats,
        report=report,
        topology=topology,
        failed_links=failed_links,
    )
    if memo_key is not None:
        cache.put(memo_key, _copy_pipeline_result(result), persist=False)
    return result


def _simulate_schedule(topology, schedule, noc_config, cache) -> NocStats:
    """Simulate one schedule, memoizing the stats when a cache is given.

    Stats are keyed by (schedule content, topology content, config) —
    memory-only, since a ``NocStats`` is cheap to hold but the columnar
    schedule it came from already identifies it completely.  Both
    backends accept the schedule object: the fast backend adopts the
    columnar arrays directly, the reference loop reads the lazily
    materialized legacy injection list.
    """

    def build() -> NocStats:
        return build_interconnect(topology, config=noc_config).simulate(schedule)

    if cache is None:
        return build()
    from repro.framework.artifacts import config_token, topology_token

    token = (
        schedule.cycle,
        schedule.src_node,
        schedule.src_neuron,
        schedule.uid,
        schedule.dst_words,
        schedule.node_ids,
        schedule.cycles_per_ms,
        topology_token(topology),
        config_token(noc_config),
    )
    return cache.get_or_build("noc-stats", token, build)


def _copy_pipeline_result(result: PipelineResult) -> PipelineResult:
    """Shallow-copy a cached result so callers cannot mutate the cache."""
    import dataclasses

    from repro.core.mapper import _copy_mapping_result

    return dataclasses.replace(
        result,
        mapping=_copy_mapping_result(result.mapping),
        failed_links=list(result.failed_links),
    )


def run_fault_sweep(
    graph: SpikeGraph,
    architecture: Architecture,
    fault_counts: Sequence[int] = (0, 1, 2, 4),
    method: str = "pso",
    seed: SeedLike = None,
    fault_seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    mapping: Optional[MappingResult] = None,
    cache=None,
    state_dir: Optional[str] = None,
    campaign: str = "fault-sweep",
) -> DegradationCurve:
    """Measure one mapping across rising link-fault counts.

    The graph is mapped once (on the healthy fabric, or reuse a
    precomputed ``mapping``), then simulated on each degraded topology
    drawn with :func:`~repro.noc.faults.inject_random_faults` under
    ``fault_seed``.  Traffic reroutes over shortest-path detours; the
    returned :class:`~repro.metrics.report.DegradationCurve` records
    latency, energy and spike disorder per fault level.

    ``cache`` shares topology/schedule artifacts across fault levels and
    sweeps.  ``state_dir`` makes the sweep resumable: each fault level's
    point is checkpointed through
    :func:`~repro.framework.service.run_sweep_resumable`, so a killed
    campaign restarted with the same arguments recomputes only the
    missing levels.
    """
    if mapping is None:
        mapping = map_snn(
            graph, architecture, method=method, seed=seed,
            pso_config=pso_config, noc_config=noc_config, cache=cache,
        )
    if cache is not None:
        healthy = cache.topology(architecture)
    else:
        healthy = architecture.build_topology()
    healthy_links = healthy.graph.number_of_edges()
    curve = DegradationCurve(
        app=graph.name, method=mapping.method, topology_kind=healthy.kind
    )

    def fault_point(index: int, n_faults: int):
        if n_faults:
            # An unseeded draw is nondeterministic: memoizing it under a
            # stable key would replay one arbitrary draw forever (the
            # same guard run_pipeline applies via deterministic_faults).
            if cache is not None and fault_seed is not None:
                topology, failed = cache.degraded_topology(
                    healthy, n_faults, fault_seed
                )
            else:
                topology, failed = inject_random_faults(
                    healthy, n_faults, seed=fault_seed
                )
        else:
            topology, failed = healthy, []
        if cache is not None:
            schedule = cache.schedule(
                graph, mapping.assignment, topology,
                architecture.cycles_per_ms,
            )
        else:
            schedule = build_injections(
                graph,
                mapping.assignment,
                topology,
                cycles_per_ms=architecture.cycles_per_ms,
            )
        stats = _simulate_schedule(topology, schedule, noc_config, cache)
        return degradation_point(
            n_faults, failed, stats, architecture, topology, healthy_links
        )

    if state_dir is not None:
        from repro.framework.artifacts import config_token
        from repro.framework.service import run_sweep_resumable

        run = run_sweep_resumable(
            list(fault_counts),
            fault_point,
            state_dir,
            campaign=campaign,
            # The configs shape every checkpointed point (backend
            # parameters, swarm hyper-parameters), so their content must
            # invalidate stale checkpoints — a killed sweep restarted
            # with a different NoC backend or PSO config must recompute.
            fingerprint=(
                graph.name, architecture.name, mapping.method,
                tuple(fault_counts), fault_seed,
                config_token(noc_config), config_token(pso_config),
            ),
        )
        curve.points.extend(run.results)
    else:
        for i, n_faults in enumerate(fault_counts):
            curve.points.append(fault_point(i, n_faults))
    return curve


def run_fault_campaign(
    graph: SpikeGraph,
    architecture: Architecture,
    mappings: Optional[dict] = None,
    fault_levels: Sequence[int] = (1, 2, 4),
    draws: int = 8,
    campaign_seed: int = 0,
    method: str = "pso",
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    spare_capacity: float = 0.0,
    workers: int = 1,
    threads=None,
    cache=None,
    state_dir: Optional[str] = None,
    campaign: str = "fault-campaign",
) -> "CampaignSummary":
    """Monte-Carlo fault campaign: N seeded draws per fault level.

    Where :func:`run_fault_sweep` rests a resilience claim on a single
    seeded fault draw per level, a campaign samples the fault
    *distribution*: every ``(level, draw)`` cell gets its own child
    seed via :func:`~repro.utils.rng.derive_seed`, so draws are
    independent yet individually reproducible — the same
    ``campaign_seed`` always regenerates the same fault sets,
    regardless of execution order.

    Parameters
    ----------
    mappings:
        ``{label: MappingResult}`` mappings to measure under identical
        fault draws (e.g. a fault-aware vs. a baseline mapping).
        ``None`` maps the graph once with ``method``/``seed``/
        ``spare_capacity`` and labels it ``method``.
    fault_levels / draws:
        Link-fault counts to sweep, and seeded draws per level.
    workers:
        Draw-level thread fan-out (``workers > 1``).  Each draw's
        schedules batch through the engine's ``simulate_many`` (the
        threaded batch kernel when compiled with OpenMP), and draws run
        concurrently on a thread pool — the C kernel releases the GIL,
        so independent draws overlap.  Results are assembled by draw
        index and therefore bit-identical to the serial path.
    state_dir:
        Checkpoint directory: every completed draw is persisted through
        :func:`~repro.framework.service.run_sweep_resumable` (serial
        execution), so a killed campaign recomputes only missing draws.
        The manifest fingerprint covers the mappings' assignments, the
        levels/draws grid, the campaign seed and the NoC config.
    """
    from repro.metrics.report import CampaignDraw, CampaignSummary
    from repro.utils.rng import derive_seed

    if draws <= 0:
        raise ValueError(f"draws must be positive, got {draws}")
    if mappings is None:
        mappings = {
            method: map_snn(
                graph, architecture, method=method, seed=seed,
                pso_config=pso_config, noc_config=noc_config, cache=cache,
                spare_capacity=spare_capacity,
            )
        }
    if not mappings:
        raise ValueError("campaign needs at least one mapping to measure")
    labels = tuple(mappings)

    if cache is not None:
        healthy = cache.topology(architecture)
    else:
        healthy = architecture.build_topology()

    def schedule_for(label: str, topology: Topology) -> ColumnarSchedule:
        if cache is not None:
            return cache.schedule(
                graph, mappings[label].assignment, topology,
                architecture.cycles_per_ms,
            )
        return build_injections(
            graph,
            mappings[label].assignment,
            topology,
            cycles_per_ms=architecture.cycles_per_ms,
        )

    def simulate_all(topology: Topology) -> List[NocStats]:
        """One engine per fabric; all labels' schedules in one batch."""
        schedules = [schedule_for(label, topology) for label in labels]
        engine = build_interconnect(topology, config=noc_config)
        if hasattr(engine, "simulate_many"):
            return list(engine.simulate_many(schedules, threads=threads))
        return [engine.simulate(s) for s in schedules]

    def make_draw(
        label: str, level: int, draw: int, fault_seed, failed,
        stats: NocStats, topology: Topology,
    ) -> CampaignDraw:
        return CampaignDraw(
            mapping=label,
            level=level,
            draw=draw,
            fault_seed=fault_seed,
            failed_links=tuple(tuple(link) for link in failed),
            mean_latency_cycles=stats.mean_latency(),
            max_latency_cycles=stats.max_latency(),
            global_energy_pj=architecture.energy.global_energy_pj(
                stats, topology
            ),
            delivered_packets=stats.delivered_count,
            undelivered_packets=stats.undelivered_count,
        )

    obs = get_observer()
    campaign_span = obs.span(
        "run_fault_campaign",
        graph=graph.name,
        levels=len(tuple(fault_levels)),
        draws=draws,
        mappings=len(labels),
    )
    with campaign_span:
        if obs.enabled:
            obs.inc("campaign.runs")

        summary = CampaignSummary(
            app=graph.name,
            topology_kind=healthy.kind,
            levels=tuple(int(v) for v in fault_levels),
            draws_per_level=draws,
            labels=labels,
        )
        for label, stats in zip(labels, simulate_all(healthy)):
            summary.healthy[label] = make_draw(
                label, 0, -1, None, (), stats, healthy
            )

        items = [
            (int(level), draw)
            for level in fault_levels
            for draw in range(draws)
        ]

        def draw_point(index: int, item) -> Tuple["CampaignDraw", ...]:
            level, draw = item
            child = derive_seed(campaign_seed, level, draw)
            with obs.span("campaign.draw", level=level, draw=draw):
                if level:
                    if cache is not None:
                        topology, failed = cache.degraded_topology(
                            healthy, level, child
                        )
                    else:
                        topology, failed = inject_random_faults(
                            healthy, level, seed=child
                        )
                else:
                    topology, failed = healthy, ()
                results = tuple(
                    make_draw(label, level, draw, child, failed, stats,
                              topology)
                    for label, stats in zip(labels, simulate_all(topology))
                )
            if obs.enabled:
                obs.inc("campaign.draws")
                obs.inc(
                    "campaign.survivals",
                    sum(1 for r in results if r.survived),
                )
            return results

        if state_dir is not None:
            from repro.framework.artifacts import config_token, stable_hash
            from repro.framework.service import run_sweep_resumable

            run = run_sweep_resumable(
                items,
                draw_point,
                state_dir,
                campaign=campaign,
                fingerprint=(
                    graph.name,
                    architecture.name,
                    tuple(
                        (label, stable_hash(
                            ("assignment", mappings[label].assignment)
                        ))
                        for label in labels
                    ),
                    tuple(int(v) for v in fault_levels),
                    draws,
                    campaign_seed,
                    config_token(noc_config),
                ),
            )
            per_item = run.results
        elif workers > 1:
            from concurrent.futures import ThreadPoolExecutor

            # The heavy per-draw work (the batched C kernel call)
            # releases the GIL, so independent draws overlap on a thread
            # pool; assembling by index keeps the output order — and
            # therefore the summary — bit-identical to the serial loop.
            with ThreadPoolExecutor(max_workers=workers) as pool:
                per_item = list(pool.map(
                    draw_point, range(len(items)), items
                ))
        else:
            per_item = [draw_point(i, item) for i, item in enumerate(items)]

        for results in per_item:
            summary.draws.extend(results)
        if obs.enabled:
            campaign_span.set(total_draws=len(items))
    return summary
