"""The Fig. 4 flow: spike graph → partitioner → NoC → metrics.

The SNN-simulation stage happens upstream (applications produce
:class:`~repro.snn.graph.SpikeGraph` objects); the pipeline takes the
graph through mapping, interconnect simulation and metric aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.mapper import MappingResult, map_snn
from repro.core.pso import PSOConfig
from repro.hardware.architecture import Architecture
from repro.metrics.report import MetricReport, build_report
from repro.noc.fastsim import build_interconnect
from repro.noc.interconnect import NocConfig
from repro.noc.stats import NocStats
from repro.noc.topology import Topology
from repro.noc.traffic import ColumnarSchedule, build_injections
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike


@dataclass
class PipelineResult:
    """Everything one end-to-end run produced."""

    graph: SpikeGraph
    architecture: Architecture
    mapping: MappingResult
    schedule: ColumnarSchedule
    noc_stats: NocStats
    report: MetricReport
    topology: Optional[Topology] = None

    def describe(self) -> str:
        return "\n".join(
            [
                self.graph.describe(),
                self.architecture.describe(),
                self.mapping.describe(),
                self.noc_stats.describe(),
                self.report.table(),
            ]
        )


def run_pipeline(
    graph: SpikeGraph,
    architecture: Architecture,
    method: str = "pso",
    seed: SeedLike = None,
    pso_config: Optional[PSOConfig] = None,
    noc_config: Optional[NocConfig] = None,
    simulate_noc: bool = True,
    objective: str = "packets",
    workers=1,
) -> PipelineResult:
    """Map ``graph`` onto ``architecture`` and measure the result.

    Parameters
    ----------
    method:
        Partitioner: "pso", "pacman", "neutrams", "random", "greedy" or
        "annealing".
    simulate_noc:
        When false, skip the cycle-accurate interconnect simulation and
        return empty NoC statistics (useful for mapping-only sweeps where
        the fitness value is the quantity of interest).
    noc_config:
        Interconnect parameters, including ``backend="reference"|"fast"``
        to pick the simulation engine (see :mod:`repro.noc.fastsim`).
        Also forwarded to the ``"noc"`` objective's fitness (backend
        forced to "fast" there), so the swarm optimizes the same fabric
        the final mapping is measured on.
    objective:
        PSO objective — "packets", "spikes", or "noc" for
        NoC-in-the-loop swarm scoring (see :func:`~repro.core.mapper.map_snn`).
    workers:
        Worker processes for "noc"-objective swarm scoring (``1`` =
        serial, ``0``/``"auto"`` = one per CPU).
    """
    mapping = map_snn(
        graph, architecture, method=method, seed=seed, pso_config=pso_config,
        objective=objective, workers=workers, noc_config=noc_config,
    )
    topology = architecture.build_topology()
    schedule = build_injections(
        graph,
        mapping.assignment,
        topology,
        cycles_per_ms=architecture.cycles_per_ms,
    )
    if simulate_noc:
        interconnect = build_interconnect(topology, config=noc_config)
        # Both backends accept the schedule object: the fast backend
        # adopts the columnar arrays directly, the reference loop reads
        # the lazily materialized legacy injection list.
        stats = interconnect.simulate(schedule)
    else:
        stats = NocStats()
    report = build_report(graph.name, mapping, stats, architecture, topology)
    return PipelineResult(
        graph=graph,
        architecture=architecture,
        mapping=mapping,
        schedule=schedule,
        noc_stats=stats,
        report=report,
        topology=topology,
    )
