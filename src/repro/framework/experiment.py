"""Experiment result records.

Benchmarks persist their measured rows as :class:`ExperimentRecord`
objects so EXPERIMENTS.md can be regenerated from machine-readable data
and so test assertions can reference the exact same values that were
printed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Union


@dataclass
class ExperimentRecord:
    """One measured data point of one paper experiment."""

    experiment: str             # e.g. "fig5", "table2", "fig6", "fig7"
    workload: str               # application / topology label
    method: str                 # partitioner
    metrics: Dict[str, float] = field(default_factory=dict)
    parameters: Dict[str, Union[int, float, str]] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ExperimentRecord":
        return cls(**json.loads(payload))


def save_records(records: List[ExperimentRecord], path: Union[str, Path]) -> None:
    """Append records to a JSON-lines file (one record per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        for rec in records:
            fh.write(rec.to_json() + "\n")


def load_records(path: Union[str, Path]) -> List[ExperimentRecord]:
    """Load all records from a JSON-lines file; missing file -> empty list."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with path.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(ExperimentRecord.from_json(line))
    return records
