"""End-to-end mapping framework (paper Fig. 4).

Ties the substrates together: application → SNN simulation → spike graph →
partitioner → NoC simulation → metric report.

- :func:`run_pipeline` — one (application, architecture, method) run;
- :mod:`repro.framework.exploration` — the paper's design-space studies
  (Fig. 6 crossbar-size sweep, Fig. 7 swarm-size sweep);
- :mod:`repro.framework.service` — the serving layer: a coalescing
  :class:`MappingService` job queue over a content-addressed
  :class:`ArtifactCache`, plus resumable sweep campaigns;
- :mod:`repro.framework.experiment` — result records for EXPERIMENTS.md.
"""

from repro.framework.artifacts import ArtifactCache
from repro.framework.pipeline import (
    PipelineResult,
    run_fault_campaign,
    run_fault_sweep,
    run_pipeline,
)
from repro.framework.experiment import ExperimentRecord
from repro.framework.exploration import (
    ArchitecturePoint,
    ChipPoint,
    SwarmPoint,
    architecture_point,
    chip_point,
    estimate_interconnect_energy_pj,
    estimate_synapse_energy_pj,
    explore_architecture,
    explore_chips,
    explore_swarm_size,
)
from repro.framework.service import (
    MapRequest,
    MappingService,
    SwarmCoalescer,
    SweepRun,
    run_sweep_resumable,
)
from repro.framework.replay import (
    delivered_spike_trains,
    perceived_spike_trains,
    pooled_arrivals_at,
)
from repro.framework.reproduce import reproduce

__all__ = [
    "run_pipeline",
    "run_fault_campaign",
    "run_fault_sweep",
    "PipelineResult",
    "ExperimentRecord",
    "ArtifactCache",
    "MapRequest",
    "MappingService",
    "SwarmCoalescer",
    "SweepRun",
    "run_sweep_resumable",
    "architecture_point",
    "chip_point",
    "explore_architecture",
    "explore_chips",
    "explore_swarm_size",
    "estimate_interconnect_energy_pj",
    "estimate_synapse_energy_pj",
    "ArchitecturePoint",
    "ChipPoint",
    "SwarmPoint",
    "delivered_spike_trains",
    "perceived_spike_trains",
    "pooled_arrivals_at",
    "reproduce",
]
