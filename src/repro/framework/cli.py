"""Command-line interface.

Gives the mapping flow a no-code entry point::

    python -m repro info
    python -m repro map --app hello_world --crossbars 4 --capacity 40
    python -m repro compare --app heartbeat --methods pacman pso
    python -m repro explore --app hello_world --sizes 16 32 64 128
    python -m repro map --app synth_2x100 --arch-config my_chip.yaml

Every subcommand prints the same tables the benchmark harness emits, so a
user can reproduce any paper row from the shell.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.apps import APPLICATIONS, build_application
from repro.apps.registry import ABBREVIATIONS
from repro.core import PSOConfig
from repro.core.mapper import METHODS, compare_methods
from repro.framework.exploration import (
    architecture_point,
    chip_point,
    explore_architecture,
    explore_chips,
)
from repro.framework.pipeline import run_pipeline
from repro.hardware.config import load_architecture
from repro.noc.interconnect import NocConfig
from repro.noc.parallel import resolve_workers
from repro.hardware.presets import architecture_for, custom
from repro.utils.tables import format_table


def _add_app_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--app", required=True,
        help="application name (hello_world, image_smoothing, "
             "digit_recognition, heartbeat, HW/IS/HD/HE, or synth_MxN)",
    )
    parser.add_argument("--seed", type=int, default=1, help="RNG seed")
    parser.add_argument(
        "--duration", type=float, default=None,
        help="SNN simulation duration in ms (app default when omitted)",
    )


def _add_arch_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--crossbars", type=int, default=None,
                        help="number of crossbars")
    parser.add_argument("--capacity", type=int, default=None,
                        help="neurons per crossbar")
    parser.add_argument("--interconnect", default="tree",
                        choices=["tree", "mesh", "star", "torus"])
    parser.add_argument("--cycles-per-ms", type=float, default=10.0)
    parser.add_argument(
        "--chips", type=int, default=1,
        help="spread the crossbars over this many chips joined by "
             "bridge links (1 = single-chip platform)",
    )
    parser.add_argument(
        "--chip-topology", default=None,
        choices=["tree", "mesh", "star", "torus"],
        help="per-chip topology family when --chips > 1 "
             "(default: the --interconnect value)",
    )
    parser.add_argument(
        "--bridge-latency", type=int, default=4,
        help="cycles per chip-to-chip bridge crossing (--chips > 1)",
    )
    parser.add_argument(
        "--bridge-energy", type=float, default=None,
        help="pJ per chip-to-chip bridge crossing (default: the "
             "energy model's e_bridge_pj)",
    )
    parser.add_argument("--arch-config", default=None,
                        help="platform config file (overrides the flags)")


def _add_noc_backend_argument(parser: argparse.ArgumentParser) -> None:
    """Only for subcommands that actually run the NoC simulation."""
    parser.add_argument(
        "--noc-backend", default="reference", choices=["reference", "fast"],
        help="interconnect simulation engine (fast = vectorized backend, "
             "bit-identical under deterministic routing)",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """Fault injection: measure the mapping on a degraded fabric."""
    parser.add_argument(
        "--faults", type=int, default=0,
        help="random survivable link faults to inject before simulating "
             "(0 = healthy fabric); traffic reroutes over shortest-path "
             "detours",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="RNG seed for the fault draw (default: unseeded)",
    )


def _add_spare_capacity_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spare-capacity", type=float, default=0.0,
        help="fault-aware headroom fraction in [0, 1): every crossbar "
             "keeps that share of its slots free and the mapping spreads "
             "load so runtime evacuation stays cheap (0 = paper behavior)",
    )


def _parse_threads(value: str) -> int:
    """--threads value: an int, or 'auto' meaning one thread per core."""
    v = value.strip().lower()
    if v == "auto":
        return -1
    return int(v)


def _add_pso_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--particles", type=int, default=100)
    parser.add_argument("--iterations", type=int, default=50)
    parser.add_argument(
        "--objective", default="packets", choices=["packets", "spikes", "noc"],
        help="PSO objective: closed-form packet/spike counts, or 'noc' = "
             "cycle-accurate NoC-in-the-loop swarm scoring",
    )
    parser.add_argument(
        "--workers", default=1, type=resolve_workers,
        help="worker processes for --objective noc swarm scoring "
             "(1 = serial, 0 or 'auto' = one per CPU)",
    )
    parser.add_argument(
        "--threads", default=None, type=_parse_threads,
        help="thread cap for the compiled batch NoC kernel in "
             "--objective noc swarm scoring ('auto' = one per core, "
             "0 = disable the threaded batch path; default defers to "
             "REPRO_NOC_THREADS)",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record nested wall-clock spans for the whole command and "
             "write them as JSONL to PATH (one span per line)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="collect counters/gauges/histograms for the whole command "
             "and write a Prometheus-style text snapshot to PATH",
    )


def _add_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed artifact cache directory: repeat runs "
             "reuse routing tables, hop matrices, schedules and whole "
             "deterministic results (bit-identical to recomputing)",
    )


def _build_cache(args):
    """ArtifactCache from --cache-dir, or None when not requested."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.framework.artifacts import ArtifactCache

    return ArtifactCache(args.cache_dir)


def _build_graph(args):
    kwargs = {}
    if args.duration is not None:
        kwargs["duration_ms"] = args.duration
    return build_application(args.app, seed=args.seed, **kwargs)


def _chip_interconnect(args) -> str:
    """Per-chip topology family: --chip-topology wins when multi-chip."""
    if args.chips > 1 and args.chip_topology:
        return args.chip_topology
    return args.interconnect


def _bridge_energy_model(args):
    """EnergyModel override carrying --bridge-energy, or None."""
    if args.bridge_energy is None:
        return None
    from repro.hardware.energy_model import EnergyModel

    return EnergyModel(e_bridge_pj=args.bridge_energy)


def _build_architecture(args, graph):
    if args.arch_config:
        return load_architecture(args.arch_config)
    interconnect = _chip_interconnect(args)
    energy = _bridge_energy_model(args)
    if args.crossbars and args.capacity:
        return custom(args.crossbars, args.capacity,
                      interconnect=interconnect,
                      cycles_per_ms=args.cycles_per_ms, name="cli",
                      energy=energy, n_chips=args.chips,
                      bridge_latency=args.bridge_latency)
    capacity = args.capacity or max(16, -(-graph.n_neurons // 6))
    arch = architecture_for(
        graph.n_neurons, neurons_per_crossbar=capacity,
        interconnect=interconnect, cycles_per_ms=args.cycles_per_ms,
        name="cli-auto", n_chips=args.chips,
        bridge_latency=args.bridge_latency,
    )
    if energy is not None:
        from dataclasses import replace

        arch = replace(arch, energy=energy)
    return arch


def _cmd_info(_args) -> int:
    print("Applications:")
    for name in sorted(APPLICATIONS):
        print(f"  {name}")
    print("  synth_MxN (e.g. synth_2x200)")
    print("Abbreviations:", ", ".join(sorted(ABBREVIATIONS)))
    print("Methods:", ", ".join(METHODS))
    return 0


def _cmd_map(args) -> int:
    if _reject_non_pso_noc(args.objective, [args.method]):
        return 2
    graph = _build_graph(args)
    arch = _build_architecture(args, graph)
    print(graph.describe())
    print(arch.describe())
    result = run_pipeline(
        graph, arch, method=args.method, seed=args.seed,
        pso_config=PSOConfig(n_particles=args.particles,
                             n_iterations=args.iterations),
        noc_config=NocConfig(backend=args.noc_backend),
        objective=args.objective,
        workers=args.workers,
        threads=args.threads,
        faults=args.faults,
        fault_seed=args.fault_seed,
        cache=_build_cache(args),
        spare_capacity=args.spare_capacity,
    )
    print(result.mapping.describe())
    if result.failed_links:
        links = ", ".join(f"{u}-{v}" for u, v in result.failed_links)
        print(f"injected {len(result.failed_links)} link faults: {links}")
    print(result.noc_stats.describe())
    print(result.report.table())
    return 0


def _reject_non_pso_noc(objective: str, methods) -> bool:
    """Friendly pre-check for the map_snn noc-objective restriction."""
    if objective == "noc" and any(m != "pso" for m in methods):
        print(
            "error: --objective noc only applies to PSO; "
            "use --method pso (or --methods pso)",
            file=sys.stderr,
        )
        return True
    return False


def _cmd_compare(args) -> int:
    if _reject_non_pso_noc(args.objective, args.methods):
        return 2
    graph = _build_graph(args)
    arch = _build_architecture(args, graph)
    print(graph.describe())
    print(arch.describe())
    results = compare_methods(
        graph, arch, methods=tuple(args.methods), seed=args.seed,
        pso_config=PSOConfig(n_particles=args.particles,
                             n_iterations=args.iterations),
        objective=args.objective,
        workers=args.workers,
        threads=args.threads,
        cache=_build_cache(args),
    )
    rows = [
        (m, f"{r.fitness:.0f}", f"{r.extras.get('packets', 0):.0f}",
         r.global_synapses, f"{r.wall_time_s:.2f}")
        for m, r in results.items()
    ]
    print(format_table(
        ["method", "global spikes", "AER packets", "global synapses",
         "time (s)"],
        rows,
    ))
    return 0


def _resumable_sweep(args, items, point_fn, campaign: str, fingerprint):
    """Run a sweep through the checkpointed runner (--resume path)."""
    from repro.framework.service import run_sweep_resumable

    state_dir = os.path.join(args.cache_dir, "sweeps")
    run = run_sweep_resumable(
        items, point_fn, state_dir, campaign=campaign, fingerprint=fingerprint
    )
    if run.skipped:
        print(
            f"resumed campaign {campaign!r}: {len(run.skipped)} points "
            f"restored, {len(run.computed)} computed"
        )
    return run.results


def _cmd_explore(args) -> int:
    if _reject_non_pso_noc(args.objective, [args.method]):
        return 2
    if args.resume and args.cache_dir is None:
        print("error: --resume requires --cache-dir", file=sys.stderr)
        return 2
    graph = _build_graph(args)
    if args.chip_counts:
        return _explore_chip_counts(args, graph)
    energy = _bridge_energy_model(args)
    base = custom(4, max(args.sizes), interconnect=_chip_interconnect(args),
                  cycles_per_ms=args.cycles_per_ms, name="explore",
                  energy=energy, n_chips=args.chips,
                  bridge_latency=args.bridge_latency)
    cache = _build_cache(args)
    pso_config = PSOConfig(n_particles=args.particles,
                           n_iterations=args.iterations)
    noc_config = NocConfig(backend=args.noc_backend)
    if args.resume:
        points = _resumable_sweep(
            args,
            list(args.sizes),
            lambda i, size: architecture_point(
                graph, base, size, i, method=args.method, seed=args.seed,
                pso_config=pso_config, noc_config=noc_config,
                objective=args.objective, workers=args.workers,
                threads=args.threads, cache=cache,
            ),
            campaign=f"explore-{args.app}",
            fingerprint=(args.app, args.seed, tuple(args.sizes),
                         args.method, args.objective),
        )
    else:
        points = explore_architecture(
            graph, base, crossbar_sizes=args.sizes, method=args.method,
            seed=args.seed,
            pso_config=pso_config,
            noc_config=noc_config,
            objective=args.objective,
            workers=args.workers,
            threads=args.threads,
            cache=cache,
        )
    rows = [
        (p.neurons_per_crossbar, p.n_crossbars, f"{p.local_energy_uj:.3f}",
         f"{p.global_energy_uj:.3f}", f"{p.total_energy_uj:.3f}",
         p.max_latency_cycles)
        for p in points
    ]
    print(format_table(
        ["neurons/xbar", "crossbars", "local uJ", "global uJ", "total uJ",
         "latency (cy)"],
        rows,
    ))
    return 0


def _explore_chip_counts(args, graph) -> int:
    """Chip-count sweep: same platform, 1..N chips (Fig. 6 style)."""
    base = _build_architecture(args, graph)
    cache = _build_cache(args)
    pso_config = PSOConfig(n_particles=args.particles,
                           n_iterations=args.iterations)
    noc_config = NocConfig(backend=args.noc_backend)
    if args.resume:
        points = _resumable_sweep(
            args,
            list(args.chip_counts),
            lambda i, chips: chip_point(
                graph, base, chips, i, method=args.method, seed=args.seed,
                pso_config=pso_config, noc_config=noc_config,
                objective=args.objective, workers=args.workers,
                threads=args.threads, cache=cache,
            ),
            campaign=f"explore-chips-{args.app}",
            fingerprint=(args.app, args.seed, tuple(args.chip_counts),
                         args.method, args.objective),
        )
    else:
        points = explore_chips(
            graph, base, chip_counts=args.chip_counts, method=args.method,
            seed=args.seed,
            pso_config=pso_config,
            noc_config=noc_config,
            objective=args.objective,
            workers=args.workers,
            threads=args.threads,
            cache=cache,
        )
    rows = [
        (p.n_chips, p.n_bridges, f"{p.global_energy_uj:.3f}",
         f"{p.total_energy_uj:.3f}", p.inter_chip_hops,
         p.bridge_crossings, p.max_latency_cycles)
        for p in points
    ]
    print(format_table(
        ["chips", "bridges", "global uJ", "total uJ", "inter-chip hops",
         "crossings", "latency (cy)"],
        rows,
    ))
    return 0


def _cmd_faults(args) -> int:
    """Monte-Carlo fault campaign, optionally fault-aware vs. baseline."""
    from repro.core.mapper import map_snn
    from repro.framework.pipeline import run_fault_campaign

    if _reject_non_pso_noc(args.objective, [args.method]):
        return 2
    if args.resume and args.cache_dir is None:
        print("error: --resume requires --cache-dir", file=sys.stderr)
        return 2
    graph = _build_graph(args)
    arch = _build_architecture(args, graph)
    print(graph.describe())
    print(arch.describe())
    cache = _build_cache(args)
    pso_config = PSOConfig(n_particles=args.particles,
                           n_iterations=args.iterations)
    noc_config = NocConfig(backend=args.noc_backend)

    def build_mapping(spare: float):
        return map_snn(
            graph, arch, method=args.method, seed=args.seed,
            pso_config=pso_config, objective=args.objective,
            workers=args.workers, threads=args.threads,
            noc_config=noc_config, cache=cache, spare_capacity=spare,
        )

    if args.spare_capacity > 0:
        # Same method and seed twice, with and without headroom: the
        # campaign then measures what the spare-capacity knob buys.
        mappings = {
            "baseline": build_mapping(0.0),
            "fault-aware": build_mapping(args.spare_capacity),
        }
    else:
        mappings = {args.method: build_mapping(0.0)}
    for label, mapping in mappings.items():
        print(f"{label}: {mapping.describe()}")

    summary = run_fault_campaign(
        graph, arch,
        mappings=mappings,
        fault_levels=args.levels,
        draws=args.draws,
        campaign_seed=args.campaign_seed,
        noc_config=noc_config,
        workers=args.workers,
        threads=args.threads,
        cache=cache,
        state_dir=(
            os.path.join(args.cache_dir, "sweeps") if args.resume else None
        ),
        campaign=f"faults-{args.app}",
    )
    print(summary.table())
    return 0


#: Recognized keys of one request object in a --requests JSON file,
#: with their defaults (a deliberately small, flat vocabulary — the
#: service API takes real objects; this is the shell-friendly subset).
_SERVE_DEFAULTS = {
    "app": None,
    "seed": 1,
    "map_seed": None,
    "duration": None,
    "crossbars": None,
    "capacity": None,
    "interconnect": "tree",
    "cycles_per_ms": 10.0,
    "chips": 1,
    "chip_topology": None,
    "bridge_latency": 4,
    "bridge_energy": None,
    "arch_config": None,
    "method": "pso",
    "objective": "packets",
    "particles": 30,
    "iterations": 20,
    "noc_backend": "fast",
    "faults": 0,
    "fault_seed": None,
    "spare_capacity": 0.0,
    "warm": False,
    "workers": 1,
    "threads": None,
}


def _cmd_serve(args) -> int:
    import json

    from repro.framework.service import MapRequest, MappingService

    with open(args.requests) as fh:
        specs = json.load(fh)
    if not isinstance(specs, list) or not specs:
        print(
            "error: --requests file must hold a non-empty JSON list of "
            "request objects",
            file=sys.stderr,
        )
        return 2
    requests = []
    for i, spec in enumerate(specs):
        unknown = sorted(set(spec) - set(_SERVE_DEFAULTS))
        if unknown:
            print(
                f"error: request #{i} has unknown keys {unknown}; "
                f"known: {sorted(_SERVE_DEFAULTS)}",
                file=sys.stderr,
            )
            return 2
        merged = {**_SERVE_DEFAULTS, **spec}
        if not merged["app"]:
            print(f"error: request #{i} is missing 'app'", file=sys.stderr)
            return 2
        ns = argparse.Namespace(**merged)
        if _reject_non_pso_noc(ns.objective, [ns.method]):
            return 2
        graph = _build_graph(ns)
        arch = _build_architecture(ns, graph)
        requests.append(
            MapRequest(
                graph=graph,
                architecture=arch,
                method=ns.method,
                # `seed` seeds both the workload and the mapper; `map_seed`
                # decouples them so same-workload requests with different
                # mapper seeds stay coalescible (identical graph content).
                seed=ns.seed if ns.map_seed is None else ns.map_seed,
                pso_config=PSOConfig(
                    n_particles=ns.particles, n_iterations=ns.iterations
                ),
                noc_config=NocConfig(backend=ns.noc_backend),
                objective=ns.objective,
                workers=ns.workers,
                threads=ns.threads,
                faults=ns.faults,
                fault_seed=ns.fault_seed,
                spare_capacity=float(ns.spare_capacity),
                warm=bool(ns.warm),
                label=f"{ns.app}#{i}",
            )
        )
    with MappingService(cache_dir=args.cache_dir) as service:
        results = service.serve_batch(requests)
        rows = [
            (
                req.label,
                req.method,
                req.objective,
                f"{res.mapping.fitness:.0f}",
                f"{res.report.total_energy_pj * 1e-6:.3f}",
                res.report.max_latency_cycles,
            )
            for req, res in zip(requests, results)
        ]
        print(format_table(
            ["request", "method", "objective", "global spikes", "total uJ",
             "latency (cy)"],
            rows,
        ))
        stats = dict(service.cache.stats)
        line = ", ".join(f"{k}={v}" for k, v in sorted(stats.items()))
        print(f"cache: {line}")
        if service.coalescer_stats:
            line = ", ".join(
                f"{k}={v}" for k, v in sorted(service.coalescer_stats.items())
            )
            print(f"coalescer: {line}")
        # Live cumulative service counters (the daemon-facing view of
        # the same MetricsRegistry the obs exporters read).
        print(f"service: requests_served={service.requests_served}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Map SNNs onto crossbar neuromorphic hardware "
                    "(Das et al., DATE 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list applications and methods")

    p_map = sub.add_parser("map", help="map one application and measure it")
    _add_app_arguments(p_map)
    _add_arch_arguments(p_map)
    _add_pso_arguments(p_map)
    _add_noc_backend_argument(p_map)
    _add_fault_arguments(p_map)
    _add_cache_argument(p_map)
    _add_obs_arguments(p_map)
    _add_spare_capacity_argument(p_map)
    p_map.add_argument("--method", default="pso", choices=METHODS)

    p_cmp = sub.add_parser("compare", help="compare partitioning methods")
    _add_app_arguments(p_cmp)
    _add_arch_arguments(p_cmp)
    _add_pso_arguments(p_cmp)
    _add_cache_argument(p_cmp)
    _add_obs_arguments(p_cmp)
    p_cmp.add_argument("--methods", nargs="+", default=["neutrams", "pacman", "pso"],
                       choices=METHODS)

    p_exp = sub.add_parser("explore", help="crossbar-size exploration (Fig. 6)")
    _add_app_arguments(p_exp)
    _add_arch_arguments(p_exp)
    _add_pso_arguments(p_exp)
    _add_noc_backend_argument(p_exp)
    _add_cache_argument(p_exp)
    _add_obs_arguments(p_exp)
    p_exp.add_argument("--method", default="pso", choices=METHODS)
    p_exp.add_argument("--sizes", nargs="+", type=int,
                       default=[90, 180, 360, 720, 1440])
    p_exp.add_argument(
        "--chip-counts", nargs="+", type=int, default=None,
        help="sweep chip counts instead of crossbar sizes (platform "
             "taken from the architecture flags)",
    )
    p_exp.add_argument(
        "--resume", action="store_true",
        help="checkpoint each sweep point under --cache-dir/sweeps and "
             "resume a killed campaign where it stopped (requires "
             "--cache-dir)",
    )

    p_flt = sub.add_parser(
        "faults", help="Monte-Carlo fault campaign over a mapping"
    )
    _add_app_arguments(p_flt)
    _add_arch_arguments(p_flt)
    _add_pso_arguments(p_flt)
    _add_noc_backend_argument(p_flt)
    _add_cache_argument(p_flt)
    _add_obs_arguments(p_flt)
    _add_spare_capacity_argument(p_flt)
    p_flt.add_argument("--method", default="pso", choices=METHODS)
    p_flt.add_argument(
        "--levels", nargs="+", type=int, default=[0, 1, 2, 4],
        help="fault counts to sweep; include 0 for the healthy baseline",
    )
    p_flt.add_argument(
        "--draws", type=int, default=16,
        help="Monte-Carlo fault draws per non-zero level",
    )
    p_flt.add_argument(
        "--campaign-seed", type=int, default=2018,
        help="root seed; each (level, draw) gets an independent child "
             "stream so results never depend on execution order",
    )
    p_flt.add_argument(
        "--resume", action="store_true",
        help="checkpoint each draw under --cache-dir/sweeps and resume "
             "a killed campaign where it stopped (requires --cache-dir)",
    )

    p_srv = sub.add_parser(
        "serve", help="answer a batch of mapping requests as a service"
    )
    p_srv.add_argument(
        "--requests", required=True,
        help="JSON file holding a list of request objects "
             '(e.g. [{"app": "hello_world", "seed": 1}, ...])',
    )
    _add_cache_argument(p_srv)
    _add_obs_arguments(p_srv)

    p_rep = sub.add_parser(
        "reproduce", help="regenerate a paper table/figure"
    )
    p_rep.add_argument("artifact", choices=["fig5", "table2", "fig6", "fig7"])
    p_rep.add_argument(
        "--effort", type=float, default=1.0,
        help="budget multiplier: 0.5 = quick shape check, 2.0 = thorough",
    )
    return parser


def _cmd_reproduce(args) -> int:
    from repro.framework.reproduce import reproduce

    reproduce(args.artifact, effort=args.effort)
    return 0


def _run_observed(args, handler) -> int:
    """Run ``handler`` under an observer when --trace/--metrics-out ask
    for one; otherwise call it directly (observability stays zero-cost)."""
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    if not trace_path and not metrics_path:
        return handler(args)
    from repro.obs import observe, span_tree_summary, write_metrics_text
    from repro.obs import write_trace_jsonl

    with observe(
        tracer=None if trace_path else False,
        metrics=None if metrics_path else False,
    ) as obs:
        rc = handler(args)
    if trace_path:
        n_spans = write_trace_jsonl(obs.tracer, trace_path)
        print(f"trace: {n_spans} spans -> {trace_path}")
        summary = span_tree_summary(obs.tracer, max_depth=3)
        if summary:
            print(summary)
    if metrics_path:
        write_metrics_text(obs.metrics, metrics_path)
        print(f"metrics: {len(obs.metrics.counters())} counters -> "
              f"{metrics_path}")
    return rc


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "map": _cmd_map,
        "compare": _cmd_compare,
        "explore": _cmd_explore,
        "faults": _cmd_faults,
        "serve": _cmd_serve,
        "reproduce": _cmd_reproduce,
    }
    return _run_observed(args, handlers[args.command])


if __name__ == "__main__":
    sys.exit(main())
