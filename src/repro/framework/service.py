"""Mapping-as-a-service: job queue, request coalescing, resumable sweeps.

Every entry point of the framework used to be one-shot: each
``map_snn`` / ``run_pipeline`` call re-derived the topology, routing
tables, hop matrices and columnar schedules it needed, then threw them
away.  This module is the long-lived serving layer on top:

- :class:`MappingService` — accepts many concurrent map requests
  (thread-safe :meth:`~MappingService.submit` returning futures, plus a
  synchronous :meth:`~MappingService.serve_batch` for deterministic
  tests), backed by one shared content-addressed
  :class:`~repro.framework.artifacts.ArtifactCache`.
- :class:`SwarmCoalescer` — merges the NoC-in-the-loop swarm-scoring
  batches of requests targeting the same fabric into shared
  ``build_injections_batch`` + ``simulate_many`` calls, extending the
  existing cross-particle batching across *requests*.  Every row is
  built and simulated exactly as the solo path would, so coalesced
  results are bit-identical to one-shot ``map_snn``/``run_pipeline``.
- :func:`run_sweep_resumable` — a processed-index manifest runner: a
  killed ``explore_architecture`` / ``run_fault_sweep`` campaign
  restarted mid-way recomputes only the unfinished points.

The CLI surfaces all three (``repro serve``, ``--cache-dir``,
``--resume``).
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pso import PSOConfig
from repro.framework.artifacts import (
    ArtifactCache,
    architecture_token,
    config_token,
    graph_token,
    stable_hash,
    topology_token,
)
from repro.framework.pipeline import PipelineResult, run_pipeline
from repro.hardware.architecture import Architecture
from repro.noc.interconnect import NocConfig
from repro.obs import get_observer
from repro.obs.metrics import MetricsRegistry
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike

__all__ = [
    "ArtifactCache",
    "MapRequest",
    "MappingService",
    "SwarmCoalescer",
    "SweepRun",
    "run_sweep_resumable",
]


# -- requests ----------------------------------------------------------------


@dataclass
class MapRequest:
    """One unit of service traffic: map ``graph`` onto ``architecture``.

    Mirrors :func:`~repro.framework.pipeline.run_pipeline`'s surface.
    ``warm=True`` additionally seeds a PSO swarm from the cache's best
    recorded assignment for this (graph, architecture, objective) —
    an opt-in, because it changes results (never for the worse: warm
    seeds are evaluated exactly, so the swarm starts no worse than the
    recorded state).
    """

    graph: SpikeGraph
    architecture: Architecture
    method: str = "pso"
    seed: SeedLike = None
    pso_config: Optional[PSOConfig] = None
    noc_config: Optional[NocConfig] = None
    objective: str = "packets"
    simulate_noc: bool = True
    workers: Any = 1
    threads: Any = None
    faults: int = 0
    fault_seed: SeedLike = None
    spare_capacity: float = 0.0
    warm: bool = False
    label: Optional[str] = None


# -- cross-request swarm coalescing ------------------------------------------


class _PendingScore:
    """One member's swarm batch awaiting the shared flush."""

    __slots__ = (
        "fitness",
        "assignments",
        "build_key",
        "sim_key",
        "schedules",
        "result",
        "error",
        "done",
    )

    def __init__(self, fitness, assignments, build_key, sim_key) -> None:
        self.fitness = fitness
        self.assignments = assignments
        self.build_key = build_key
        self.sim_key = sim_key
        self.schedules = None
        self.result = None
        self.error = None
        self.done = False


class SwarmCoalescer:
    """Merge concurrent NoC-in-the-loop scoring batches across requests.

    Requests mapping the same graph onto the same fabric each run their
    own PSO, but their per-generation fitness batches land here: when
    every active member has a batch pending, the batches are stacked
    into one ``build_injections_batch`` call per (graph, topology,
    cycles) group and one ``simulate_many`` call per (topology, config)
    group, then split back per member.  Each row is processed exactly as
    :meth:`~repro.core.fitness.InterconnectFitness._simulate_batch`
    would process it solo, so per-request scores are bit-identical to
    the one-shot path — the shared batch only amortizes the spike-column
    and routing-table work.

    Membership protocol: the service calls :meth:`join` before a
    request's optimizer starts and :meth:`leave` (in a ``finally``) when
    it returns.  A member that finishes early shrinks the quorum, so
    surviving members keep flushing; mixed phases (one member evaluating
    warm seeds while another runs generation 12) are fine — the barrier
    only decides *when* to execute, never what a row scores.
    """

    #: Stable key order of :attr:`stats` (pinned by the serve CLI table).
    STAT_KEYS = (
        "flushes",
        "merged_flushes",
        "rows",
        "member_batches",
        "build_calls",
        "simulate_calls",
    )

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._members = 0
        self._pending: List[_PendingScore] = []
        self._engines: Dict[str, Any] = {}
        self.metrics = MetricsRegistry()

    @property
    def stats(self) -> Dict[str, int]:
        """Counter snapshot with the legacy dict shape (all keys present)."""
        return {
            key: int(self.metrics.counter_value(key)) for key in self.STAT_KEYS
        }

    # -- membership ----------------------------------------------------------

    def join(self) -> None:
        with self._cond:
            self._members += 1

    def leave(self) -> None:
        with self._cond:
            self._members -= 1
            self._flush_if_ready()
            self._cond.notify_all()

    # -- scoring -------------------------------------------------------------

    def _keys_for(self, fitness) -> Tuple[str, str]:
        keys = getattr(fitness, "_coalesce_keys", None)
        if keys is None:
            topo = topology_token(fitness.topology)
            build_key = stable_hash(
                (
                    "coalesce-build",
                    graph_token(fitness.graph),
                    topo,
                    fitness.cycles_per_ms,
                )
            )
            sim_key = stable_hash(
                ("coalesce-sim", topo, config_token(fitness._noc.config))
            )
            keys = (build_key, sim_key)
            fitness._coalesce_keys = keys
        return keys

    def score(self, fitness, assignments: np.ndarray) -> np.ndarray:
        """Score one member's (P, N) batch through the shared flush."""
        assignments = np.atleast_2d(np.asarray(assignments, dtype=np.int64))
        build_key, sim_key = self._keys_for(fitness)
        entry = _PendingScore(fitness, assignments, build_key, sim_key)
        with self._cond:
            self._pending.append(entry)
            self._flush_if_ready()
            while not entry.done:
                self._cond.wait()
        if entry.error is not None:
            raise entry.error
        return entry.result

    def _flush_if_ready(self) -> None:
        """Execute the shared batch once every active member is pending.

        Runs with the condition lock held; by construction every other
        member is blocked waiting for this flush, so holding the lock
        serializes nothing that could otherwise proceed.
        """
        if self._members <= 0 or not self._pending:
            return
        if len(self._pending) < self._members:
            return
        pending, self._pending = self._pending, []
        n_rows = sum(e.assignments.shape[0] for e in pending)
        self.metrics.inc("flushes")
        self.metrics.inc("member_batches", len(pending))
        self.metrics.inc("rows", n_rows)
        if len(pending) > 1:
            self.metrics.inc("merged_flushes")
        try:
            with get_observer().span(
                "coalescer.flush", members=len(pending), rows=n_rows
            ):
                self._execute(pending)
        except BaseException as exc:
            for entry in pending:
                if entry.result is None:
                    entry.error = exc
        finally:
            for entry in pending:
                entry.done = True
            self._cond.notify_all()

    def _execute(self, pending: List[_PendingScore]) -> None:
        from repro.noc.parallel import summarize
        from repro.noc.traffic import build_injections_batch

        # Stage 1 — one columnar build per (graph, topology, cycles)
        # group: spike columns and synapse-pair dedup are shared across
        # every member's whole swarm.
        by_build: Dict[str, List[_PendingScore]] = {}
        for entry in pending:
            by_build.setdefault(entry.build_key, []).append(entry)
        for entries in by_build.values():
            rep = entries[0].fitness
            stacked = np.vstack([e.assignments for e in entries])
            self.metrics.inc("build_calls")
            schedules = build_injections_batch(
                rep.graph,
                stacked,
                rep.topology,
                cycles_per_ms=rep.cycles_per_ms,
            )
            offset = 0
            for entry in entries:
                n = entry.assignments.shape[0]
                entry.schedules = schedules[offset : offset + n]
                offset += n

        # Stage 2 — one simulate_many per (topology, config) group on a
        # shared engine (adopted from the first member; engines are
        # content-identical across members of a group).
        by_sim: Dict[str, List[_PendingScore]] = {}
        for entry in pending:
            by_sim.setdefault(entry.sim_key, []).append(entry)
        for sim_key, entries in by_sim.items():
            engine = self._engines.setdefault(sim_key, entries[0].fitness._noc)
            batch = [s for e in entries for s in e.schedules]
            self.metrics.inc("simulate_calls")
            summaries = [
                summarize(s, engine.topology) for s in engine.simulate_many(batch)
            ]
            offset = 0
            for entry in entries:
                n = len(entry.schedules)
                entry.result = np.asarray(
                    [
                        entry.fitness._score(s)
                        for s in summaries[offset : offset + n]
                    ],
                    dtype=np.float64,
                )
                offset += n
                entry.schedules = None


# -- the service -------------------------------------------------------------


class MappingService:
    """Long-lived mapping service over one shared artifact cache.

    Two serving modes:

    - :meth:`serve_batch` — synchronous and deterministic: requests are
      answered in order; coalescible groups (same graph + architecture +
      NoC config, ``objective="noc"``) run through one
      :class:`SwarmCoalescer`.  This is the mode tests pin.
    - :meth:`submit` — thread-safe fire-and-forget returning a
      :class:`~concurrent.futures.Future`.  A background worker drains
      the queue in arrival order, serving everything queued at each
      wake-up as one batch — a burst of same-architecture requests
      coalesces exactly as in :meth:`serve_batch`.

    Either way the answers are bit-identical to one-shot
    :func:`~repro.framework.pipeline.run_pipeline` calls, and repeat
    requests are answered from the cache.
    """

    def __init__(
        self,
        cache: Optional[ArtifactCache] = None,
        cache_dir: Optional[str] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either a cache or a cache_dir, not both")
        if cache is not None and max_entries is not None:
            raise ValueError(
                "max_entries only applies to a service-owned cache; "
                "bound the passed cache at construction instead"
            )
        self.cache = (
            cache
            if cache is not None
            else ArtifactCache(cache_dir, max_entries=max_entries)
        )
        self.metrics = MetricsRegistry()
        self.requests_served = 0
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: List[Tuple[MapRequest, Future]] = []
        self._worker: Optional[threading.Thread] = None
        self._closed = False

    _COALESCER_PREFIX = "coalescer."

    @property
    def coalescer_stats(self) -> Dict[str, int]:
        """Cumulative coalescer counters with the legacy dict shape.

        Empty until the first coalesced group runs (so ``if
        service.coalescer_stats:`` keeps meaning "any coalescing
        happened"), then holds the same keys ``SwarmCoalescer.stats``
        exposes, summed over every group served.
        """
        prefix = self._COALESCER_PREFIX
        return {
            name[len(prefix):]: int(value)
            for name, value in self.metrics.counters().items()
            if name.startswith(prefix)
        }

    # -- synchronous serving -------------------------------------------------

    def serve(self, request: MapRequest) -> PipelineResult:
        """Answer one request (cache-backed, no coalescing partner)."""
        return self.serve_batch([request])[0]

    def serve_batch(self, requests: Sequence[MapRequest]) -> List[PipelineResult]:
        """Answer a batch of requests, in order, deterministically."""
        results, errors = self._serve_many(list(requests))
        for error in errors:
            if error is not None:
                raise error
        return results

    # -- asynchronous serving ------------------------------------------------

    def submit(self, request: MapRequest) -> "Future[PipelineResult]":
        """Enqueue one request; the returned future resolves off-thread."""
        future: "Future[PipelineResult]" = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("MappingService is closed")
            self._queue.append((request, future))
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._drain, name="mapping-service", daemon=True
                )
                self._worker.start()
            self._wakeup.notify_all()
        return future

    def _drain(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if not self._queue and self._closed:
                    return
                batch, self._queue = self._queue, []
            requests = [request for request, _ in batch]
            results, errors = self._serve_many(requests)
            for (_, future), result, error in zip(batch, results, errors):
                if error is not None:
                    future.set_exception(error)
                else:
                    future.set_result(result)

    def close(self) -> None:
        """Stop the background worker after the queue drains."""
        with self._lock:
            self._closed = True
            worker = self._worker
            self._wakeup.notify_all()
        if worker is not None and worker.is_alive():
            worker.join()

    def __enter__(self) -> "MappingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _coalesce_group(self, request: MapRequest) -> Optional[str]:
        """Group key for requests whose swarm scoring can share batches."""
        if request.method != "pso" or request.objective != "noc":
            return None
        return stable_hash(
            (
                "coalesce-group",
                graph_token(request.graph),
                architecture_token(request.architecture),
                config_token(request.noc_config),
            )
        )

    def _serve_many(
        self, requests: List[MapRequest]
    ) -> Tuple[List[Optional[PipelineResult]], List[Optional[BaseException]]]:
        results: List[Optional[PipelineResult]] = [None] * len(requests)
        errors: List[Optional[BaseException]] = [None] * len(requests)
        groups: Dict[str, List[int]] = {}
        for i, request in enumerate(requests):
            key = self._coalesce_group(request) or f"solo-{i}"
            groups.setdefault(key, []).append(i)
        with get_observer().span(
            "service.serve_batch", n_requests=len(requests), n_groups=len(groups)
        ):
            return self._serve_groups(requests, groups, results, errors)

    def _serve_groups(
        self,
        requests: List[MapRequest],
        groups: Dict[str, List[int]],
        results: List[Optional[PipelineResult]],
        errors: List[Optional[BaseException]],
    ) -> Tuple[List[Optional[PipelineResult]], List[Optional[BaseException]]]:

        def serve_into(i: int, coalescer) -> None:
            try:
                results[i] = self._serve_one(requests[i], coalescer)
            except BaseException as exc:
                errors[i] = exc

        for indices in groups.values():
            if len(indices) == 1:
                serve_into(indices[0], None)
                continue
            coalescer = SwarmCoalescer()
            threads = []
            for i in indices:
                coalescer.join()

                def member(i=i) -> None:
                    try:
                        serve_into(i, coalescer)
                    finally:
                        coalescer.leave()

                threads.append(
                    threading.Thread(target=member, name=f"map-request-{i}")
                )
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            self.metrics.merge(coalescer.metrics, prefix=self._COALESCER_PREFIX)
            obs = get_observer()
            if obs.enabled:
                obs.metrics.merge(
                    coalescer.metrics, prefix=self._COALESCER_PREFIX
                )
        self.requests_served += len(requests)
        self.metrics.inc("requests_served", len(requests))
        return results, errors

    def _serve_one(self, request: MapRequest, coalescer) -> PipelineResult:
        warm_seeds = None
        if request.warm and request.method == "pso":
            warm = self.cache.warm_assignment(
                request.graph, request.architecture, request.objective
            )
            if warm is not None:
                warm_seeds = warm[None, :]
        return run_pipeline(
            request.graph,
            request.architecture,
            method=request.method,
            seed=request.seed,
            pso_config=request.pso_config,
            noc_config=request.noc_config,
            simulate_noc=request.simulate_noc,
            objective=request.objective,
            workers=request.workers,
            threads=request.threads,
            faults=request.faults,
            fault_seed=request.fault_seed,
            spare_capacity=request.spare_capacity,
            cache=self.cache,
            coalescer=coalescer,
            warm_seeds=warm_seeds,
        )


# -- resumable sweep runner --------------------------------------------------


@dataclass
class SweepRun:
    """Outcome of one :func:`run_sweep_resumable` pass.

    ``results[i]`` is the point value (``None`` if it failed),
    ``skipped`` the indices answered from the manifest, ``computed``
    the indices computed this pass, ``failures`` the per-index error
    report (``on_error="continue"`` only).
    """

    campaign: str
    results: List[Optional[Any]]
    computed: List[int] = field(default_factory=list)
    skipped: List[int] = field(default_factory=list)
    failures: Dict[int, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.failures and all(
            i in self.computed or i in self.skipped
            for i in range(len(self.results))
        )


def _atomic_write(path: str, payload: bytes) -> None:
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path), prefix=os.path.basename(path), suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def run_sweep_resumable(
    items: Sequence[Any],
    point_fn: Callable[[int, Any], Any],
    state_dir: str,
    campaign: str = "sweep",
    fingerprint: Any = None,
    resume: bool = True,
    on_error: str = "raise",
) -> SweepRun:
    """Run ``point_fn(i, item)`` per item with a processed-index manifest.

    Each completed point is pickled to ``state_dir`` and recorded in
    ``<campaign>.manifest.json`` *before* the next point starts, so a
    killed campaign restarted with the same arguments recomputes only
    the unfinished indices.  The manifest carries a fingerprint of
    (campaign, item count, caller-provided token): resuming with a
    different fingerprint raises instead of silently mixing campaigns.

    Parameters
    ----------
    resume:
        ``False`` discards any existing state for this campaign first.
    on_error:
        ``"raise"`` (default) propagates a point failure after the
        completed points are persisted — the crash-equivalent path;
        ``"continue"`` records the failure per index and keeps going.
    """
    if on_error not in ("raise", "continue"):
        raise ValueError(f"unknown on_error {on_error!r}; use 'raise' or 'continue'")
    os.makedirs(state_dir, exist_ok=True)
    manifest_path = os.path.join(state_dir, f"{campaign}.manifest.json")
    fp = stable_hash(("sweep-fingerprint", campaign, len(items), fingerprint))

    processed: Dict[int, str] = {}
    if os.path.exists(manifest_path) and not resume:
        _discard_campaign(state_dir, campaign, manifest_path)
    elif os.path.exists(manifest_path):
        try:
            with open(manifest_path) as fh:
                manifest = json.load(fh)
            stored_fp = manifest["fingerprint"]
            entries = {int(k): str(v) for k, v in manifest["processed"].items()}
        except Exception:
            # A corrupt manifest is discarded, never crashed on.
            _discard_campaign(state_dir, campaign, manifest_path)
        else:
            if stored_fp != fp:
                raise ValueError(
                    f"campaign {campaign!r} in {state_dir} was started with "
                    "different items/fingerprint; pass resume=False to "
                    "discard it"
                )
            processed = entries

    run = SweepRun(campaign=campaign, results=[None] * len(items))

    def save_manifest() -> None:
        payload = json.dumps(
            {
                "campaign": campaign,
                "fingerprint": fp,
                "n_items": len(items),
                "processed": {str(i): name for i, name in processed.items()},
            },
            indent=2,
        ).encode()
        _atomic_write(manifest_path, payload)

    for i, item in enumerate(items):
        name = processed.get(i)
        if name is not None:
            try:
                with open(os.path.join(state_dir, name), "rb") as fh:
                    run.results[i] = pickle.load(fh)
            except Exception:
                # Corrupt point artifact: recompute it below.
                del processed[i]
            else:
                run.skipped.append(i)
                continue
        try:
            value = point_fn(i, item)
        except Exception as exc:
            if on_error == "raise":
                raise
            run.failures[i] = f"{type(exc).__name__}: {exc}"
            continue
        run.results[i] = value
        run.computed.append(i)
        name = f"{campaign}.point{i:04d}.pkl"
        _atomic_write(os.path.join(state_dir, name), pickle.dumps(value))
        processed[i] = name
        save_manifest()
    return run


def _discard_campaign(state_dir: str, campaign: str, manifest_path: str) -> None:
    try:
        os.unlink(manifest_path)
    except OSError:
        pass
    for entry in os.listdir(state_dir):
        if entry.startswith(f"{campaign}.point") and entry.endswith(".pkl"):
            try:
                os.unlink(os.path.join(state_dir, entry))
            except OSError:
                pass
