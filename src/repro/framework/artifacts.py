"""Content-addressed artifact cache for the mapping service layer.

Every entry point of the framework (``map_snn``, ``run_pipeline``, the
``explore_*`` sweeps) derives the same expensive artifacts over and over:
the topology instance, its routing table, the crossbar hop matrix,
columnar injection schedules, simulated NoC statistics.  This module
gives them one shared, *content-addressed* home:

- **stable keys** — :func:`stable_hash` folds a token tree of primitives
  and numpy arrays into a sha256 digest.  No ``hash()`` anywhere, so the
  same architecture hashes identically across processes and Python
  releases regardless of ``PYTHONHASHSEED``.
- **token helpers** — :func:`architecture_token`,
  :func:`topology_token`, :func:`graph_token`, :func:`mapping_token` and
  :func:`pipeline_token` build the canonical token trees; the companion
  ``*_key`` helpers hash them.  Tokens cover everything that changes the
  derived artifact (topology kind and parameters, routing algorithm,
  fault set, seeds, optimizer configuration) and nothing that does not
  (worker counts — the parallel paths are bit-identical by contract).
- **:class:`ArtifactCache`** — a thread-safe memo store with an
  optional on-disk layer (``cache_dir``).  Disk entries are atomic
  pickles named by their key; corrupted or truncated entries are
  discarded and rebuilt, never crashed on.  Cached and freshly built
  artifacts are interchangeable by construction: a cache hit returns
  exactly what the builder would have produced for the same content.

The cache is deliberately import-light (no ``repro.core`` /
``repro.framework.pipeline`` imports at module scope) so the fitness
layer can reach it lazily without cycles.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import fields, is_dataclass
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from repro.obs import get_observer

#: Bump when token layouts change incompatibly: old on-disk entries then
#: miss instead of deserializing into the wrong shape.
CACHE_SCHEMA = 1


# -- stable hashing ----------------------------------------------------------


def _fold(h, obj: Any) -> None:
    """Fold one token-tree node into the running digest (type-tagged)."""
    if obj is None:
        h.update(b"N;")
    elif isinstance(obj, bool):
        h.update(b"B1;" if obj else b"B0;")
    elif isinstance(obj, int):
        h.update(b"I" + str(obj).encode() + b";")
    elif isinstance(obj, float):
        h.update(b"F" + repr(obj).encode() + b";")
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(b"S" + str(len(raw)).encode() + b":" + raw + b";")
    elif isinstance(obj, bytes):
        h.update(b"Y" + str(len(obj)).encode() + b":" + obj + b";")
    elif isinstance(obj, np.ndarray):
        a = np.ascontiguousarray(obj)
        head = f"A{a.dtype.str}{a.shape}".encode()
        h.update(head + a.tobytes() + b";")
    elif isinstance(obj, np.generic):
        _fold(h, obj.item())
    elif isinstance(obj, (list, tuple)):
        h.update(b"L" + str(len(obj)).encode() + b"[")
        for item in obj:
            _fold(h, item)
        h.update(b"];")
    elif isinstance(obj, (set, frozenset)):
        _fold(h, sorted(obj, key=repr))
    elif isinstance(obj, Mapping):
        _fold(h, sorted(obj.items(), key=lambda kv: repr(kv[0])))
    else:
        raise TypeError(
            f"unhashable token node of type {type(obj).__name__}: {obj!r}"
        )


def stable_hash(token: Any) -> str:
    """sha256 hex digest of a token tree, stable across processes.

    Accepts primitives, numpy arrays/scalars, lists/tuples, sets and
    mappings; anything else raises ``TypeError`` (silent repr-based
    fallbacks could collide across objects, which a content-addressed
    store must never do).
    """
    h = hashlib.sha256()
    _fold(h, (CACHE_SCHEMA, token))
    return h.hexdigest()


def config_token(config: Any) -> Any:
    """Canonical token of a config dataclass (``None`` passes through).

    Field values are folded by ``repr``, which round-trips floats
    exactly and renders dtype-like fields stably.
    """
    if config is None:
        return None
    if not is_dataclass(config):
        raise TypeError(f"expected a config dataclass, got {config!r}")
    return (
        type(config).__name__,
        tuple((f.name, repr(getattr(config, f.name))) for f in fields(config)),
    )


# -- token builders ----------------------------------------------------------


def topology_token(topology) -> Any:
    """Canonical structure token of a topology (instance-cached).

    Delegates to :meth:`~repro.noc.topology.Topology.content_signature`,
    which covers the router graph, attach points, kind, grid positions
    and (for multi-chip fabrics) the chip/bridge bookkeeping.
    """
    return topology.content_signature()


def architecture_token(architecture, include_name: bool = False) -> Any:
    """Canonical token of an architecture's *structural* identity.

    The report label (``name``) is excluded by default so platforms that
    differ only in how they are labelled share topology, routing and
    hop-matrix artifacts; result-level memo keys pass
    ``include_name=True``.
    """
    token = (
        architecture.n_crossbars,
        architecture.neurons_per_crossbar,
        architecture.interconnect,
        architecture.cycles_per_ms,
        architecture.n_chips,
        architecture.bridge_latency,
        config_token(architecture.energy),
    )
    if include_name:
        token = token + (architecture.name,)
    return token


def graph_token(graph) -> Any:
    """Canonical content token of a spike graph (instance-cached)."""
    cached = getattr(graph, "_content_token", None)
    if cached is None:
        counts = np.asarray([len(t) for t in graph.spike_times], dtype=np.int64)
        if int(counts.sum()):
            times = np.concatenate(
                [np.asarray(t, dtype=np.float64) for t in graph.spike_times]
            )
        else:
            times = np.empty(0, dtype=np.float64)
        cached = (
            graph.name,
            graph.n_neurons,
            graph.src,
            graph.dst,
            graph.traffic,
            graph.layers,
            counts,
            times,
        )
        graph._content_token = cached
    return cached


def fault_token(faults: int, fault_seed) -> Any:
    """Token of a random-fault draw spec as ``run_pipeline`` takes it."""
    return ("faults", int(faults), fault_seed)


def mapping_token(
    graph,
    architecture,
    *,
    method: str,
    seed,
    pso_config=None,
    warm_start: bool = True,
    placement: bool = True,
    objective: str = "packets",
    noc_config=None,
    warm_seeds=None,
    spare_capacity: float = 0.0,
) -> Any:
    """Memo token of one ``map_snn`` call (worker counts excluded)."""
    return (
        "mapping",
        graph_token(graph),
        architecture_token(architecture, include_name=True),
        method,
        seed,
        config_token(pso_config),
        warm_start,
        placement,
        objective,
        config_token(noc_config),
        None if warm_seeds is None else np.asarray(warm_seeds, dtype=np.int64),
        float(spare_capacity),
    )


def pipeline_token(
    graph,
    architecture,
    *,
    method: str,
    seed,
    pso_config=None,
    noc_config=None,
    simulate_noc: bool = True,
    objective: str = "packets",
    faults: int = 0,
    fault_seed=None,
    warm_seeds=None,
    spare_capacity: float = 0.0,
) -> Any:
    """Memo token of one ``run_pipeline`` call (worker counts excluded)."""
    return (
        "pipeline",
        graph_token(graph),
        architecture_token(architecture, include_name=True),
        method,
        seed,
        config_token(pso_config),
        config_token(noc_config),
        simulate_noc,
        objective,
        fault_token(faults, fault_seed),
        None if warm_seeds is None else np.asarray(warm_seeds, dtype=np.int64),
        float(spare_capacity),
    )


def architecture_key(architecture) -> str:
    """Stable content key of an architecture (structural identity)."""
    return stable_hash(("architecture", architecture_token(architecture)))


def hop_matrix_key(topology, routing=None) -> str:
    """Stable content key of a crossbar hop matrix artifact."""
    name = routing.name if routing is not None else _default_routing_name(topology)
    return stable_hash(("hop-matrix", topology_token(topology), name))


def _default_routing_name(topology) -> str:
    """Routing algorithm name :func:`routing_for` would pick (no build)."""
    if topology.kind.endswith("-degraded"):
        return f"shortest-path/{topology.kind}"
    if topology.kind == "mesh" and topology.positions:
        return "xy/mesh"
    return f"shortest-path/{topology.kind}"


# -- the cache ---------------------------------------------------------------


class ArtifactCache:
    """Thread-safe content-addressed memo store with an optional disk layer.

    Parameters
    ----------
    cache_dir:
        Directory for persistent entries (created on demand).  ``None``
        keeps the cache purely in-memory.  Only artifacts whose builders
        opt in (``persist=True``) are written to disk — cheap-to-pickle,
        expensive-to-derive things like routing tables, hop matrices and
        mapping results; simulation statistics stay in-memory.
    max_entries:
        Bound on the in-memory layer.  ``None`` (default) keeps every
        entry, preserving the historical unbounded behaviour; ``N >= 1``
        keeps the N most recently used entries and evicts the least
        recently used beyond that (counted in ``stats["evictions"]``).
        Eviction only drops the memory copy — persisted entries are
        still served from disk, and any entry can be rebuilt, so a
        bounded cache changes memory footprint, never results.

    Notes
    -----
    Entries are keyed by :func:`stable_hash` over canonical token trees,
    so two content-identical architectures built in different processes
    address the same entry.  Corrupted disk entries (truncated writes,
    foreign junk) are discarded and rebuilt — the cache must never turn
    a cache *problem* into a serving failure.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = None if max_entries is None else int(max_entries)
        self._mem: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "disk_hits": 0,
            "corrupt_discarded": 0,
            "stores": 0,
            "evictions": 0,
        }

    # -- generic store -------------------------------------------------------

    def key(self, kind: str, token: Any) -> str:
        return stable_hash((kind, token))

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _load_disk(self, key: str) -> Any:
        """Disk lookup: ``(found, value)``; corrupt entries are discarded."""
        path = self._path(key)
        if not os.path.exists(path):
            return False, None
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if not (isinstance(payload, tuple) and len(payload) == 2):
                raise ValueError("malformed cache payload")
            stored_key, value = payload
            if stored_key != key:
                raise ValueError("cache entry key mismatch")
            return True, value
        except Exception:
            with self._lock:
                self.stats["corrupt_discarded"] += 1
            get_observer().inc("cache.corrupt_discarded")
            try:
                os.unlink(path)
            except OSError:
                pass
            return False, None

    def _store_disk(self, key: str, value: Any) -> None:
        """Atomic pickle write (tmp file + rename); failures are silent."""
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, suffix=".tmp", prefix=key[:16]
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump((key, value), fh)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            pass  # a cache that cannot persist still serves from memory

    def _remember(self, key: str, value: Any) -> int:
        """Insert into the memory layer (LRU position: newest).

        Returns how many older entries were evicted to stay within
        ``max_entries``; must be called with the lock held.
        """
        self._mem[key] = value
        self._mem.move_to_end(key)
        evicted = 0
        if self.max_entries is not None:
            while len(self._mem) > self.max_entries:
                self._mem.popitem(last=False)
                evicted += 1
        self.stats["evictions"] += evicted
        return evicted

    def get(self, key: str):
        """``(found, value)`` for a key, consulting memory then disk."""
        obs = get_observer()
        with self._lock:
            if key in self._mem:
                self.stats["hits"] += 1
                self._mem.move_to_end(key)  # freshen LRU position
                if obs.enabled:
                    obs.inc("cache.hits", layer="memory")
                return True, self._mem[key]
        if self.cache_dir is not None:
            found, value = self._load_disk(key)
            if found:
                with self._lock:
                    evicted = self._remember(key, value)
                    self.stats["hits"] += 1
                    self.stats["disk_hits"] += 1
                if obs.enabled:
                    obs.inc("cache.hits", layer="disk")
                    if evicted:
                        obs.inc("cache.evictions", value=evicted)
                return True, value
        with self._lock:
            self.stats["misses"] += 1
        if obs.enabled:
            obs.inc("cache.misses")
        return False, None

    def put(self, key: str, value: Any, persist: bool = False) -> None:
        with self._lock:
            evicted = self._remember(key, value)
            self.stats["stores"] += 1
        obs = get_observer()
        if obs.enabled:
            obs.inc("cache.stores", persist=bool(persist))
            if evicted:
                obs.inc("cache.evictions", value=evicted)
        if persist and self.cache_dir is not None:
            self._store_disk(key, value)

    def get_or_build(
        self,
        kind: str,
        token: Any,
        build: Callable[[], Any],
        persist: bool = False,
    ) -> Any:
        """Memoized ``build()`` keyed by ``(kind, token)`` content.

        The builder runs outside the cache lock (builders can be slow
        and may themselves consult the cache); a racing duplicate build
        produces an identical value, so last-write-wins is harmless.
        """
        key = self.key(kind, token)
        found, value = self.get(key)
        if found:
            return value
        value = build()
        self.put(key, value, persist=persist)
        return value

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries survive)."""
        with self._lock:
            self._mem.clear()

    # -- typed artifact helpers ---------------------------------------------

    def topology(self, architecture):
        """Shared topology instance for an architecture's structure."""
        return self.get_or_build(
            "topology",
            architecture_token(architecture),
            architecture.build_topology,
            persist=True,
        )

    def routing(self, topology):
        """Shared default routing table for a topology's content."""
        from repro.noc.routing import routing_for

        return self.get_or_build(
            "routing",
            topology_token(topology),
            lambda: routing_for(topology),
            persist=True,
        )

    def hop_matrix(self, topology, routing=None):
        """Crossbar hop matrix shared across content-identical fabrics.

        Unlike :meth:`~repro.noc.topology.Topology.crossbar_hop_matrix`
        (which caches per *instance*), this keys on topology content +
        routing algorithm, so every sweep point that rebuilds the same
        fabric reuses one matrix.
        """
        key = hop_matrix_key(topology, routing)
        found, value = self.get(key)
        if found:
            return value
        value = topology.crossbar_hop_matrix(routing)
        self.put(key, value, persist=True)
        return value

    def schedule(self, graph, assignment, topology, cycles_per_ms: float):
        """Memoized columnar injection schedule for one mapped graph."""
        from repro.noc.traffic import build_injections

        assignment = np.asarray(assignment, dtype=np.int64)
        return self.get_or_build(
            "schedule",
            (
                graph_token(graph),
                assignment,
                topology_token(topology),
                cycles_per_ms,
            ),
            lambda: build_injections(
                graph, assignment, topology, cycles_per_ms=cycles_per_ms
            ),
            persist=True,
        )

    def degraded_topology(self, topology, faults: int, fault_seed):
        """Memoized random-fault draw (seeded draws only are cacheable)."""
        from repro.noc.faults import inject_random_faults

        if fault_seed is None:
            return inject_random_faults(topology, faults, seed=fault_seed)
        return self.get_or_build(
            "degraded-topology",
            (topology_token(topology), fault_token(faults, fault_seed)),
            lambda: inject_random_faults(topology, faults, seed=fault_seed),
            persist=True,
        )

    # -- warm swarm states ---------------------------------------------------

    def warm_token(self, graph, architecture, objective: str) -> Any:
        """Identity of a warm-start pool: problem + objective, not seed."""
        return (
            graph_token(graph),
            architecture_token(architecture),
            objective,
        )

    def record_warm_state(
        self, graph, architecture, objective: str, assignment, fitness: float
    ) -> None:
        """Remember the best converged swarm assignment for this problem.

        Later requests can opt in (``MapRequest(warm=True)``) to seed
        their swarm from it; warm-start evaluates seeds exactly, so a
        warmed swarm can never end worse than the recorded state.
        """
        key = self.key("warm-state", self.warm_token(graph, architecture, objective))
        found, value = self.get(key)
        if found and value[1] <= fitness:
            return
        self.put(
            key,
            (np.asarray(assignment, dtype=np.int64).copy(), float(fitness)),
            persist=True,
        )

    def warm_assignment(self, graph, architecture, objective: str):
        """Best recorded swarm assignment for this problem, or ``None``."""
        found, value = self.get(
            self.key("warm-state", self.warm_token(graph, architecture, objective))
        )
        return value[0] if found else None


# -- process-default cache ---------------------------------------------------

_DEFAULT_CACHE: Optional[ArtifactCache] = None
_DEFAULT_LOCK = threading.Lock()


def default_cache() -> ArtifactCache:
    """The process-wide in-memory cache (created on first use).

    Used by :class:`~repro.core.fitness.InterconnectFitness` when no
    explicit cache is given, so hop matrices are derived once per
    (topology content, routing) pair per process instead of once per
    fitness instance.
    """
    global _DEFAULT_CACHE
    with _DEFAULT_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = ArtifactCache()
        return _DEFAULT_CACHE
