"""Post-interconnect spike replay.

The paper's SNN metrics (ISI distortion, disorder) quantify *how much*
the interconnect perturbs spike timing; this module reconstructs the
perturbed spike trains themselves, so application-level code can measure
what the degradation *does* — e.g. re-estimating heart rate from the
spikes a readout crossbar actually receives (Section V-B ties a 20% ISI
distortion reduction to >5% estimation accuracy).

Given a :class:`~repro.framework.pipeline.PipelineResult`:

- spikes that stayed *local* arrive untouched (crossbars deliver
  in-array within a cycle);
- spikes that crossed the interconnect arrive at their destination
  crossbar at the simulated delivery cycle.

``perceived_spike_trains`` merges both into the per-(source neuron,
destination crossbar) trains a receiving neuron observes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.framework.pipeline import PipelineResult
from repro.noc.traffic import global_destinations


def delivered_spike_trains(
    result: PipelineResult,
) -> Dict[Tuple[int, int], np.ndarray]:
    """Delivery times (ms) per (source neuron, destination crossbar) flow.

    Only flows that crossed the interconnect appear; times convert from
    NoC cycles through the architecture's clock ratio.
    """
    cycles_per_ms = result.architecture.cycles_per_ms
    topology = result.architecture.build_topology()
    node_to_crossbar = {
        topology.node_of_crossbar(k): k
        for k in range(result.architecture.n_crossbars)
    }
    flows: Dict[Tuple[int, int], List[float]] = {}
    for rec in result.noc_stats.deliveries:
        crossbar = node_to_crossbar[rec.dst_node]
        flows.setdefault((rec.src_neuron, crossbar), []).append(
            rec.delivered_cycle / cycles_per_ms
        )
    return {
        flow: np.sort(np.asarray(times)) for flow, times in flows.items()
    }


def perceived_spike_trains(
    result: PipelineResult,
) -> Dict[Tuple[int, int], np.ndarray]:
    """What each destination crossbar observes from each source neuron.

    Local flows (source neuron on the same crossbar as its targets) pass
    through with original timing; global flows carry the NoC's delivery
    timing.  Keyed by (source neuron, destination crossbar); only flows
    with at least one synapse exist.
    """
    graph = result.graph
    assignment = result.mapping.assignment
    trains = dict(delivered_spike_trains(result))

    # Local flows: neuron -> its own crossbar, original spike times,
    # for neurons that have at least one local target there.
    local_pairs = set()
    for s, d in zip(graph.src, graph.dst):
        if assignment[s] == assignment[d] and int(s) != int(d):
            local_pairs.add((int(s), int(assignment[s])))
    for neuron, crossbar in local_pairs:
        trains[(neuron, crossbar)] = np.asarray(
            graph.spike_times[neuron], dtype=np.float64
        )
    return trains


def pooled_arrivals_at(
    result: PipelineResult, crossbar: int
) -> np.ndarray:
    """All spike arrival times (ms) observed at one crossbar, pooled.

    The raw material for population-level decoding at a readout tile
    (e.g. heart-rate estimation from whatever the readout crossbar sees).
    """
    pooled = [
        times
        for (_, xbar), times in perceived_spike_trains(result).items()
        if xbar == crossbar
    ]
    if not pooled:
        return np.empty(0, dtype=np.float64)
    return np.sort(np.concatenate(pooled))


def timing_error_summary(result: PipelineResult) -> Dict[str, float]:
    """Per-flow timing perturbation of the global flows, in ms.

    For each delivered global flow, compares the sorted delivery times
    against the source's injected spike times (first N spikes, N =
    deliveries) and reports mean/max absolute shift — a time-domain
    companion to the cycle-domain ISI distortion metric.
    """
    cycles_per_ms = result.architecture.cycles_per_ms
    graph = result.graph
    assignment = result.mapping.assignment
    topology = result.architecture.build_topology()
    dests = global_destinations(graph, assignment)

    shifts: List[float] = []
    for (neuron, crossbar), delivered in delivered_spike_trains(
        result
    ).items():
        if neuron not in dests:
            continue
        source_times = np.asarray(graph.spike_times[neuron])[: delivered.size]
        if source_times.size != delivered.size:
            continue
        shifts.extend(np.abs(delivered - source_times).tolist())
    if not shifts:
        return {"mean_shift_ms": 0.0, "max_shift_ms": 0.0, "n_flows": 0}
    arr = np.asarray(shifts)
    return {
        "mean_shift_ms": float(arr.mean()),
        "max_shift_ms": float(arr.max()),
        "n_flows": len(delivered_spike_trains(result)),
    }
