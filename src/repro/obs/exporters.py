"""Trace/metrics serialization: JSONL traces, Prometheus text, span trees.

Three consumers, three formats:

- **JSONL traces** (`write_trace_jsonl` / `read_trace_jsonl` /
  `load_trace_tree`) — one span per line with depth-first ids and parent
  pointers, so a trace streams to disk without building an intermediate
  document and round-trips back into the same tree shape;
- **Prometheus text** (`prometheus_text` / `write_metrics_text`) — the
  plain exposition format, counters suffixed ``_total``, histograms as
  ``_bucket``/``_sum``/``_count`` families, names sanitized to the
  Prometheus charset under a ``repro_`` namespace;
- **span-tree summary** (`span_tree_summary`) — a human-readable
  aggregate for terminals: sibling spans grouped by name per level with
  call counts and total/average durations.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Optional

from repro.obs.metrics import parse_flat_name
from repro.obs.tracer import Span

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


# -- JSONL traces ------------------------------------------------------------


def trace_rows(tracer) -> List[Dict[str, Any]]:
    """Flatten a tracer's span forest into JSON-able rows.

    Ids are assigned depth-first (a parent's id always precedes its
    children's), ``parent`` is ``None`` for roots.
    """
    rows: List[Dict[str, Any]] = []

    def emit(span: Span, parent: Optional[int]) -> None:
        span_id = len(rows)
        rows.append(
            {
                "id": span_id,
                "parent": parent,
                "name": span.name,
                "t_start": span.t_start,
                "t_end": span.t_end,
                "duration_s": span.duration_s,
                "attributes": span.attributes,
            }
        )
        for child in span.children:
            emit(child, span_id)

    for root in tracer.roots:
        emit(root, None)
    return rows


def write_trace_jsonl(tracer, path: str) -> int:
    """Write one span per line; returns the number of spans written."""
    rows = trace_rows(tracer)
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    return len(rows)


def read_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read the flat rows back (blank lines tolerated)."""
    rows: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def load_trace_tree(path: str) -> List[Span]:
    """Rebuild the span forest from a JSONL trace file.

    Returns root :class:`Span` objects (detached — not registered with
    any tracer) with children, attributes and timestamps restored.
    """
    spans: Dict[int, Span] = {}
    roots: List[Span] = []
    for row in read_trace_jsonl(path):
        span = Span(row["name"], row.get("attributes") or {})
        span.t_start = row.get("t_start")
        span.t_end = row.get("t_end")
        spans[row["id"]] = span
        parent = row.get("parent")
        if parent is None:
            roots.append(span)
        else:
            spans[parent].children.append(span)
    return roots


# -- Prometheus text ---------------------------------------------------------


def _metric_name(name: str, suffix: str = "") -> str:
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized.startswith("repro_"):
        sanitized = "repro_" + sanitized
    return sanitized + suffix


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_LABEL_RE.sub("_", k)}="{v}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(metrics) -> str:
    """Render a registry snapshot in the Prometheus exposition format."""
    lines: List[str] = []
    typed: set = set()

    def header(pname: str, kind: str) -> None:
        if pname not in typed:
            typed.add(pname)
            lines.append(f"# TYPE {pname} {kind}")

    for flat, value in metrics.counters().items():
        name, labels = parse_flat_name(flat)
        pname = _metric_name(name, "_total")
        header(pname, "counter")
        lines.append(f"{pname}{_label_str(labels)} {_fmt(value)}")

    for flat, value in metrics.gauges().items():
        name, labels = parse_flat_name(flat)
        pname = _metric_name(name)
        header(pname, "gauge")
        lines.append(f"{pname}{_label_str(labels)} {_fmt(value)}")

    for flat, hist in metrics.histograms().items():
        name, labels = parse_flat_name(flat)
        pname = _metric_name(name)
        header(pname, "histogram")
        cumulative = 0
        for bound, count in hist["buckets"].items():
            cumulative += count
            le = dict(labels)
            le["le"] = "+Inf" if bound == "+Inf" else _fmt(float(bound))
            lines.append(f"{pname}_bucket{_label_str(le)} {cumulative}")
        lines.append(f"{pname}_sum{_label_str(labels)} {_fmt(hist['sum'])}")
        lines.append(f"{pname}_count{_label_str(labels)} {hist['count']}")

    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_text(metrics, path: str) -> int:
    """Write the Prometheus snapshot; returns the number of lines."""
    text = prometheus_text(metrics)
    with open(path, "w") as fh:
        fh.write(text)
    return text.count("\n")


# -- human-readable span tree ------------------------------------------------


def span_tree_summary(tracer, max_depth: int = 6) -> str:
    """Aggregate sibling spans by name into an indented summary table.

    Every level groups same-named siblings: one output line per group
    with call count, total and mean duration.  Depth is capped so a
    100k-span swarm trace summarizes to a screenful.
    """
    lines: List[str] = []

    def group(spans: List[Span], depth: int) -> None:
        if depth >= max_depth or not spans:
            return
        order: List[str] = []
        buckets: Dict[str, List[Span]] = {}
        for span in spans:
            if span.name not in buckets:
                order.append(span.name)
                buckets[span.name] = []
            buckets[span.name].append(span)
        for name in order:
            members = buckets[name]
            total = sum(s.duration_s for s in members)
            label = "  " * depth + name
            count = f"{len(members)}x"
            mean = (
                f"  (avg {total / len(members) * 1e3:.2f}ms)"
                if len(members) > 1
                else ""
            )
            lines.append(f"{label:<44} {count:>8} {total * 1e3:>10.2f}ms{mean}")
            group([c for s in members for c in s.children], depth + 1)

    group(list(tracer.roots), 0)
    if getattr(tracer, "n_dropped", 0):
        lines.append(f"... {tracer.n_dropped} spans dropped (max_spans reached)")
    return "\n".join(lines)
