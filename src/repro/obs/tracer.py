"""Nested wall-clock spans with attributes — the tracing half of obs.

A :class:`Tracer` records a forest of :class:`Span` trees.  Spans nest
per *thread* (each thread keeps its own span stack, so concurrent
``MappingService`` member threads produce independent root spans instead
of interleaving into one another's trees), carry arbitrary key/value
attributes, and may hold zero-duration child *events* (fault injections,
cache decisions, evacuation moves).

Two cost regimes:

- the module's :data:`NULL_SPAN` / :class:`NullTracer` singletons make
  disabled instrumentation a handful of attribute reads and no-op calls
  — no allocation, no clock read;
- an enabled :class:`Tracer` costs one ``perf_counter`` pair plus a list
  append per span, cheap enough for per-simulation granularity but not
  meant for per-packet loops.

A ``max_spans`` cap bounds memory on long daemons: once reached, new
spans degrade to :data:`NULL_SPAN` and ``n_dropped`` counts what was
shed, so a truncated trace is detectable rather than silently partial.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed region: name, attributes, children, start/end stamps.

    Use as a context manager.  ``t_start``/``t_end`` are
    ``perf_counter`` readings (relative, monotonic — durations and
    sibling ordering are meaningful, absolute epochs are not).  A span
    created by a :class:`Tracer` attaches itself to the current thread's
    open span (or becomes a root) on ``__enter__``; a *detached* span
    (``tracer=None``, see :meth:`Tracer.timed` and
    ``Observer.timed_span``) still measures real wall time but records
    nothing anywhere — that is how derived timings stay available with
    tracing off.
    """

    __slots__ = ("name", "attributes", "t_start", "t_end", "children", "_tracer")

    #: Distinguishes real spans from :data:`NULL_SPAN` without isinstance.
    recorded = True

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        _tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.t_start: Optional[float] = None
        self.t_end: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = _tracer

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._thread_stack()
            if stack:
                stack[-1].children.append(self)
            else:
                with tracer._lock:
                    tracer.roots.append(self)
            stack.append(self)
        self.t_start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.t_end = time.perf_counter()
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._thread_stack()
            # Tolerate exotic exits (a span closed on a different thread
            # than it was opened on would corrupt that thread's stack).
            if stack and stack[-1] is self:
                stack.pop()
        return False

    def set(self, **attributes: Any) -> "Span":
        """Merge ``attributes`` into the span (no-op on :data:`NULL_SPAN`)."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> "Span":
        """Attach a zero-duration child marking an instant (fault hit,
        cache miss, forced evacuation) on this span's timeline."""
        child = Span(name, attributes)
        child.t_start = child.t_end = time.perf_counter()
        self.children.append(child)
        return child

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds; an open span reads the clock now."""
        if self.t_start is None:
            return 0.0
        end = self.t_end if self.t_end is not None else time.perf_counter()
        return end - self.t_start

    def walk(self) -> Iterator["Span"]:
        """Yield this span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _NullSpan:
    """Inert singleton standing in for a span when tracing is off.

    Supports the full :class:`Span` surface as no-ops so instrumented
    code never branches on enablement just to call ``.set(...)``.
    """

    __slots__ = ()

    recorded = False
    name = ""
    t_start = None
    t_end = None
    duration_s = 0.0

    @property
    def attributes(self) -> Dict[str, Any]:
        return {}

    @property
    def children(self) -> List[Span]:
        return []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **attributes: Any) -> "_NullSpan":
        return self

    def walk(self) -> Iterator[Span]:
        return iter(())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: The shared inert span. Identity-comparable: ``span is NULL_SPAN``.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span trees; thread-safe, one span stack per thread."""

    enabled = True

    def __init__(self, max_spans: int = 1_000_000) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.roots: List[Span] = []
        self.max_spans = max_spans
        self.n_spans = 0
        self.n_dropped = 0
        self._lock = threading.Lock()
        self._tls = threading.local()

    def _thread_stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str, **attributes: Any):
        """A new span to enter with ``with``; nests under the current one."""
        with self._lock:
            if self.n_spans >= self.max_spans:
                self.n_dropped += 1
                return NULL_SPAN
            self.n_spans += 1
        return Span(name, attributes, _tracer=self)

    def event(self, name: str, **attributes: Any):
        """A zero-duration span marking an instant at the current nesting."""
        with self._lock:
            if self.n_spans >= self.max_spans:
                self.n_dropped += 1
                return NULL_SPAN
            self.n_spans += 1
        span = Span(name, attributes)
        span.t_start = span.t_end = time.perf_counter()
        stack = self._thread_stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        return span

    def current(self) -> Optional[Span]:
        """The innermost open span on *this* thread, if any."""
        stack = self._thread_stack()
        return stack[-1] if stack else None

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.walk()


class NullTracer:
    """Disabled tracer: every call returns :data:`NULL_SPAN` or nothing."""

    enabled = False
    max_spans = 0
    n_spans = 0
    n_dropped = 0

    @property
    def roots(self) -> List[Span]:
        return []

    def span(self, name: str, **attributes: Any):
        return NULL_SPAN

    def event(self, name: str, **attributes: Any):
        return NULL_SPAN

    def current(self) -> Optional[Span]:
        return None

    def iter_spans(self) -> Iterator[Span]:
        return iter(())


#: Shared disabled tracer (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()
