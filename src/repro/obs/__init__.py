"""Unified tracing + metrics for the mapping/serving stack.

One process-wide *observer* — a (tracer, metrics) pair — is active at a
time.  Instrumented code asks for it and emits through it::

    from repro.obs import get_observer

    obs = get_observer()
    if obs.enabled:
        obs.inc("noc.simulations", backend="fast")
    with obs.span("map.pso_optimize", particles=n) as sp:
        ...
        sp.set(best_fitness=best)

The default observer is :data:`DISABLED` — both halves are inert
singletons, so instrumentation costs a module-global read plus no-op
calls and perturbs nothing (the neutrality tests pin bit-identical
results with obs on vs off).  Enable observability for a region with
:func:`observe`::

    from repro.obs import observe

    with observe() as obs:
        result = run_pipeline(...)
    print(span_tree_summary(obs.tracer))
    print(obs.metrics.counters())

The observer is intentionally a plain module global, *not* thread-local:
a ``MappingService`` fans requests across member threads and all of them
must feed the same registry/tracer (the tracer keeps per-thread span
stacks internally, so trees never interleave).  Pool workers never
inherit the parent's observer usefully — ``ParallelNocSimulator`` ships
per-chunk counter deltas back with its results instead.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from repro.obs.exporters import (
    load_trace_tree,
    prometheus_text,
    read_trace_jsonl,
    span_tree_summary,
    trace_rows,
    write_metrics_text,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Observer",
    "DISABLED",
    "get_observer",
    "observe",
    "set_observer",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_SPAN",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Histogram",
    "trace_rows",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "load_trace_tree",
    "prometheus_text",
    "write_metrics_text",
    "span_tree_summary",
]


class Observer:
    """A tracer + metrics pair with convenience pass-throughs.

    ``enabled`` is precomputed: hot paths guard bulk instrumentation
    with one attribute read (``if obs.enabled: ...``) and fall through
    to no-op singleton calls otherwise.
    """

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(self, tracer, metrics) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.enabled = bool(tracer.enabled or metrics.enabled)

    # -- tracing -------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """A nested span (``NULL_SPAN`` when tracing is off)."""
        return self.tracer.span(name, **attributes)

    def event(self, name: str, **attributes: Any):
        """A zero-duration timeline marker at the current nesting."""
        return self.tracer.event(name, **attributes)

    def timed_span(self, name: str, **attributes: Any) -> Span:
        """A span that *always* measures real wall time.

        With tracing on this is a normal recorded span; with tracing off
        it is a detached :class:`Span` — timed but stored nowhere — so
        code that derives reported values from span durations (e.g. the
        mapper's ``pso_wall_time_s`` extra) works identically in both
        modes.
        """
        span = self.tracer.span(name, **attributes)
        if span.recorded:
            return span
        return Span(name, attributes)

    # -- metrics -------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        self.metrics.inc(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.set_gauge(name, value, **labels)

    def observe_value(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.observe(name, value, **labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"Observer({state})"


#: The default, inert observer: everything no-ops, nothing allocates.
DISABLED = Observer(NULL_TRACER, NULL_METRICS)

_active: Observer = DISABLED
_swap_lock = threading.Lock()


def get_observer() -> Observer:
    """The currently active observer (the :data:`DISABLED` singleton by
    default)."""
    return _active


def _resolve(part, default_factory, null):
    """False -> disabled half; None -> fresh default; else use as given."""
    if part is False:
        return null
    if part is None:
        return default_factory()
    return part


@contextmanager
def observe(
    tracer: Union[Tracer, None, bool] = None,
    metrics: Union[MetricsRegistry, None, bool] = None,
) -> Iterator[Observer]:
    """Activate an observer for the duration of the ``with`` block.

    Each half defaults to a fresh instance; pass ``False`` to disable
    one side (``observe(metrics=False)`` traces without counting) or an
    existing :class:`Tracer` / :class:`MetricsRegistry` to accumulate
    into it across several blocks.  Nesting restores the previous
    observer on exit.
    """
    global _active
    obs = Observer(
        _resolve(tracer, Tracer, NULL_TRACER),
        _resolve(metrics, MetricsRegistry, NULL_METRICS),
    )
    with _swap_lock:
        previous, _active = _active, obs
    try:
        yield obs
    finally:
        with _swap_lock:
            _active = previous


def set_observer(observer: Optional[Observer]) -> Observer:
    """Install ``observer`` (or :data:`DISABLED` for ``None``) as the
    active observer and return the one it replaced.

    Prefer :func:`observe` for scoped use; this imperative form exists
    for long-lived daemons that enable observability at startup and
    never tear it down.
    """
    global _active
    with _swap_lock:
        previous, _active = _active, (observer if observer is not None else DISABLED)
    return previous
