"""Thread-safe counters / gauges / histograms — the metrics half of obs.

A :class:`MetricsRegistry` is a plain in-memory store keyed by
``(name, sorted label items)``.  It is deliberately *always functional*
(no global gating inside): subsystems that own their own stats — the
``SwarmCoalescer``, per-worker chunk deltas — hold a private registry
and merge it wherever it needs to surface, while hot-path
instrumentation reaches the registry only through the active observer
(``repro.obs.get_observer()``), which is a no-op singleton when
observability is off.

Histograms keep count/sum/min/max plus fixed log-spaced bucket counts —
enough for a Prometheus-style export without storing samples.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, Iterable, List, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Upper bucket bounds (seconds-ish scale); +Inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


def _key(name: str, labels: Dict[str, Any]) -> LabelKey:
    if not labels:
        return name, ()
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _flat(key: LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """Bucketed distribution summary (no raw samples retained)."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing = +Inf
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {
                ("+Inf" if i == len(self.bounds) else repr(self.bounds[i])): n
                for i, n in enumerate(self.bucket_counts)
            },
        }


class MetricsRegistry:
    """Counters, gauges and histograms behind one lock.

    Counter/gauge values are plain numbers; labels are optional keyword
    arguments on every mutator (``inc("noc.simulations", backend="fast")``).
    ``merge`` folds another registry in (optionally under a name prefix),
    which is how per-worker and per-coalescer deltas aggregate upward.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[LabelKey, float] = {}
        self._gauges: Dict[LabelKey, float] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}

    # -- mutators ------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        with self._lock:
            self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    # -- readers -------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0)

    def counters(self) -> Dict[str, float]:
        """Flat ``name{label="v",...} -> value`` view of every counter."""
        with self._lock:
            return {_flat(k): v for k, v in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return {_flat(k): v for k, v in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {
                _flat(k): h.to_dict() for k, h in sorted(self._histograms.items())
            }

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able dump of everything recorded."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._counters or self._gauges or self._histograms)

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold ``other`` into this registry.

        Counters and histogram contents add; gauges take ``other``'s
        value (last write wins).  ``prefix`` is prepended to every
        metric name, so a subsystem-local registry can surface as e.g.
        ``coalescer.*`` in the global one.
        """
        with other._lock:
            counters = list(other._counters.items())
            gauges = list(other._gauges.items())
            hists = [(k, h) for k, h in other._histograms.items()]
        with self._lock:
            for (name, labels), value in counters:
                key = (prefix + name, labels)
                self._counters[key] = self._counters.get(key, 0) + value
            for (name, labels), value in gauges:
                self._gauges[(prefix + name, labels)] = value
        for (name, labels), hist in hists:
            key = (prefix + name, labels)
            with self._lock:
                mine = self._histograms.get(key)
                if mine is None:
                    mine = self._histograms[key] = Histogram(hist.bounds)
            mine.merge(hist)

    def merge_counters(
        self, deltas: Iterable[Tuple[str, Tuple[Tuple[str, str], ...], float]]
    ) -> None:
        """Add raw counter deltas (the cross-process wire format)."""
        with self._lock:
            for name, labels, value in deltas:
                key = (name, tuple(tuple(kv) for kv in labels))
                self._counters[key] = self._counters.get(key, 0) + value

    def counter_deltas(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """Counters as plain picklable tuples (ships from pool workers)."""
        with self._lock:
            return [(name, labels, v) for (name, labels), v in self._counters.items()]


class NullMetricsRegistry:
    """Disabled registry: mutators are no-ops, readers come back empty."""

    enabled = False

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def counter_value(self, name: str, **labels: Any) -> float:
        return 0

    def counters(self) -> Dict[str, float]:
        return {}

    def gauges(self) -> Dict[str, float]:
        return {}

    def histograms(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __bool__(self) -> bool:
        return False

    def merge(self, other, prefix: str = "") -> None:
        pass

    def merge_counters(self, deltas) -> None:
        pass

    def counter_deltas(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        return []


#: Shared disabled registry (stateless, safe to reuse everywhere).
NULL_METRICS = NullMetricsRegistry()


def parse_flat_name(flat: str) -> Tuple[str, Dict[str, str]]:
    """Invert the flat ``name{k="v",...}`` form back to (name, labels)."""
    if not flat.endswith("}"):
        return flat, {}
    name, _, inner = flat[:-1].partition("{")
    labels: Dict[str, str] = {}
    for part in inner.split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v.strip('"')
    return name, labels
