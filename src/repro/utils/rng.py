"""Random-number-generator helpers.

Every stochastic component in the library (Poisson sources, PSO velocity
binarization, synthetic workloads) accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments reproducible: a single seed at the pipeline level fans out to
independent, deterministic streams for each component.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a non-deterministic generator; an ``int`` seeds a new
    PCG64 generator; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> Sequence[np.random.Generator]:
    """Create ``n`` independent generators derived from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the streams are
    statistically independent regardless of how many are requested.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream deterministically.
        child_seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def derive_seed(seed: SeedLike, salt: int, *salts: int) -> Optional[int]:
    """Derive a deterministic child seed from ``seed`` and integer salts.

    Extra salts fan one parent seed out into a whole family of
    independent child streams (e.g. ``derive_seed(seed, level, draw)``
    for Monte-Carlo campaigns — each (level, draw) cell gets its own
    reproducible stream).  Returns ``None`` when ``seed`` is ``None``
    (preserving non-determinism).
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    entropy = [seed, salt, *(int(s) for s in salts)]
    return int(np.random.SeedSequence(entropy).generate_state(1)[0])
