"""Dependency-free ASCII charts.

The paper's figures are bar charts (Fig. 5) and line plots (Figs. 6-7).
These helpers render comparable charts in a terminal so the reproduction
is inspectable without matplotlib: horizontal bar charts for grouped
comparisons and a down-sampled line plot for sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.utils.validation import check_positive


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the max value."""
    check_positive("width", width)
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    lines: List[str] = [title] if title else []
    if not values:
        return "\n".join(lines + ["(empty)"])
    peak = max(values) or 1.0
    label_w = max(len(lab) for lab in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{label.ljust(label_w)} | {bar} {value:g}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Fig. 5-style grouped bars: one block per group, one bar per series."""
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    lines: List[str] = [title] if title else []
    peak = max(
        (v for values in series.values() for v in values), default=1.0
    ) or 1.0
    name_w = max((len(n) for n in series), default=0)
    for g, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[g]
            bar = "#" * max(1 if value > 0 else 0,
                            round(value / peak * width))
            lines.append(f"  {name.ljust(name_w)} | {bar} {value:g}")
    return "\n".join(lines)


def line_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 12,
    width: int = 60,
    title: str = "",
) -> str:
    """Down-sampled ASCII line plot with y-axis labels.

    Points are binned to the character grid and marked with ``*``; the
    y-axis shows the min/max range.
    """
    check_positive("height", height)
    check_positive("width", width)
    if len(xs) != len(ys):
        raise ValueError(f"{len(xs)} xs but {len(ys)} ys")
    lines: List[str] = [title] if title else []
    if not xs:
        return "\n".join(lines + ["(empty)"])
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    label_hi = f"{y_hi:g}"
    label_lo = f"{y_lo:g}"
    pad = max(len(label_hi), len(label_lo))
    for r, row_chars in enumerate(grid):
        label = label_hi if r == 0 else (label_lo if r == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row_chars)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad + f"  {x_lo:g}" + " " * max(1, width - 12) + f"{x_hi:g}"
    )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend: eight-level block characters."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        blocks[min(7, int((v - lo) / span * 7.999))] for v in values
    )
