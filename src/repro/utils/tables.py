"""Plain-text table formatting for benchmark and experiment output.

The benchmark harness prints the same rows the paper reports; this module
renders them as aligned monospace tables without third-party dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    str_rows: List[List[str]] = [[_render_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
