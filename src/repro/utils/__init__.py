"""Shared utilities: RNG management, validation helpers, table formatting."""

from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.validation import (
    check_nonnegative,
    check_positive,
    check_probability,
    check_shape,
)
from repro.utils.tables import format_table

__all__ = [
    "default_rng",
    "spawn_rngs",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_shape",
    "format_table",
]
