"""Small argument-validation helpers used across the library.

These raise ``ValueError`` with a message naming the offending argument,
so failures surface at the public API boundary rather than deep inside
numpy broadcasting.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Require ``array.shape == shape``."""
    if array.shape != shape:
        raise ValueError(f"{name} must have shape {shape}, got {array.shape}")
    return array


def check_index_range(name: str, indices: Sequence[int], upper: int) -> None:
    """Require every index in ``indices`` to lie in ``[0, upper)``."""
    arr = np.asarray(indices)
    if arr.size == 0:
        return
    if arr.min() < 0 or arr.max() >= upper:
        raise ValueError(
            f"{name} contains out-of-range indices "
            f"(min={arr.min()}, max={arr.max()}, allowed=[0, {upper}))"
        )
