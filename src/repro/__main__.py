"""Package entry point: ``python -m repro <subcommand>``."""

import sys

from repro.framework.cli import main

if __name__ == "__main__":
    sys.exit(main())
