"""Synthetic m x n feedforward workloads (paper Section V).

"Neurons of the first layer in each of these topologies receive their
input from 10 neurons creating spike trains, whose inter-spike interval
follows a Poisson process with mean firing rates between 10 Hz and 100 Hz.
Additionally, these synthetic SNNs implement fully connected feedforward
topologies."  — paper, Section V-A.

Weights are auto-scaled per layer so activity propagates at biologically
plausible rates through arbitrary depth/width combinations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.snn.generators import PoissonSource
from repro.snn.graph import SpikeGraph
from repro.snn.network import Network
from repro.snn.neuron import LIFModel
from repro.snn.simulator import Simulation
from repro.utils.rng import SeedLike, default_rng, derive_seed
from repro.utils.validation import check_positive

N_INPUT_SOURCES = 10
INPUT_RATE_RANGE_HZ = (10.0, 100.0)


def _feedforward_weight(n_pre: int, assumed_rate_hz: float, model: LIFModel) -> float:
    """Weight giving a mean drive comfortably above the firing threshold.

    With ``n_pre`` inputs at ``assumed_rate_hz`` the mean synaptic current
    is ``n_pre * rate * dt * w``; we size ``w`` so that mean current is
    ~1.5x the rheobase (threshold - rest), which yields mid-range firing
    without saturation.
    """
    rheobase = (model.v_thresh - model.v_rest) / model.resistance
    target_current = 1.5 * rheobase
    mean_spikes_per_ms = n_pre * assumed_rate_hz / 1000.0
    return target_current / max(mean_spikes_per_ms, 1e-9)


def synthetic_feedforward(
    n_layers: int,
    neurons_per_layer: int,
    seed: SeedLike = None,
    weight_jitter: float = 0.2,
) -> Network:
    """Build the m x n fully connected feedforward network."""
    check_positive("n_layers", n_layers)
    check_positive("neurons_per_layer", neurons_per_layer)
    rng = default_rng(seed)
    model = LIFModel()
    net = Network(f"synth_{n_layers}x{neurons_per_layer}")

    rates = rng.uniform(*INPUT_RATE_RANGE_HZ, size=N_INPUT_SOURCES)
    prev = net.add_source("input", PoissonSource(N_INPUT_SOURCES, rates), layer=0)
    prev_rate = float(rates.mean())
    for layer in range(1, n_layers + 1):
        pop = net.add_population(
            f"layer{layer}", neurons_per_layer, model, layer=layer
        )
        w = _feedforward_weight(prev.size, prev_rate, model)
        weights = w * (
            1.0 + weight_jitter * rng.standard_normal((prev.size, pop.size))
        )
        np.clip(weights, 0.05 * w, 3.0 * w, out=weights)
        net.connect(prev, pop, weights=weights, name=f"ff{layer}")
        prev = pop
        prev_rate = 25.0  # assumed steady-state hidden rate for next scale
    return net


def build_synthetic(
    n_layers: int,
    neurons_per_layer: int,
    seed: SeedLike = None,
    duration_ms: float = 500.0,
) -> SpikeGraph:
    """Simulate a synthetic topology and return its spike graph."""
    net = synthetic_feedforward(n_layers, neurons_per_layer, seed=seed)
    sim = Simulation(net, seed=derive_seed(seed, 1))
    result = sim.run(duration_ms)
    return SpikeGraph.from_simulation(net, result, coding="rate")


def conv_connectivity(
    pre_side: int,
    post_side: int,
    kernel_radius: int,
    weight: float,
) -> np.ndarray:
    """Receptive-field connectivity between two square 2D layers.

    Post-neuron (r, c) integrates the pre-layer disc of ``kernel_radius``
    around its proportionally scaled position — convolution-style local
    wiring (shared *structure*, per-synapse weights) as in the ConvNet
    workloads PACMAN was demonstrated on.
    """
    check_positive("pre_side", pre_side)
    check_positive("post_side", post_side)
    check_positive("weight", weight)
    if kernel_radius < 0:
        raise ValueError(f"kernel_radius must be >= 0, got {kernel_radius}")
    scale = pre_side / post_side
    w = np.zeros((pre_side * pre_side, post_side * post_side))
    for pr in range(post_side):
        for pc in range(post_side):
            center_r = int(pr * scale + scale / 2)
            center_c = int(pc * scale + scale / 2)
            post_idx = pr * post_side + pc
            for dr in range(-kernel_radius, kernel_radius + 1):
                for dc in range(-kernel_radius, kernel_radius + 1):
                    rr, cc = center_r + dr, center_c + dc
                    if 0 <= rr < pre_side and 0 <= cc < pre_side:
                        w[rr * pre_side + cc, post_idx] = weight
    return w


def convolutional_feedforward(
    layer_sides,
    kernel_radius: int = 1,
    seed: SeedLike = None,
) -> Network:
    """A ConvNet-like SNN: square layers joined by receptive fields.

    ``layer_sides`` lists the side length of each square layer (e.g.
    ``[16, 8, 4]`` builds 256 -> 64 -> 16 neurons).  The first layer is
    driven pixel-wise by Poisson sources; deeper layers see shrinking
    receptive-field projections.  Spatial locality makes these workloads
    highly mappable — a good partitioner keeps entire tiles local.
    """
    if len(layer_sides) < 1:
        raise ValueError("need at least one layer side")
    rng = default_rng(seed)
    model = LIFModel()
    net = Network("convnet_" + "x".join(str(s) for s in layer_sides))

    first_side = layer_sides[0]
    rates = rng.uniform(20.0, 80.0, size=first_side * first_side)
    prev = net.add_source(
        "pixels", PoissonSource(first_side * first_side, rates), layer=0
    )
    prev_side, prev_rate = first_side, float(rates.mean())
    for depth, side in enumerate(layer_sides[1:], start=1):
        if side > prev_side:
            raise ValueError(
                f"layer {depth} side {side} exceeds previous side {prev_side}"
            )
        pop = net.add_population(f"conv{depth}", side * side, model,
                                 layer=depth)
        taps = (2 * kernel_radius + 1) ** 2
        w = _feedforward_weight(taps, prev_rate, model)
        weights = conv_connectivity(prev_side, side, kernel_radius, w)
        net.connect(prev, pop, weights=weights, name=f"conv{depth}")
        prev, prev_side, prev_rate = pop, side, 25.0
    return net


def build_convnet(
    layer_sides,
    kernel_radius: int = 1,
    seed: SeedLike = None,
    duration_ms: float = 400.0,
) -> SpikeGraph:
    """Simulate a convolutional topology and return its spike graph."""
    net = convolutional_feedforward(layer_sides, kernel_radius, seed=seed)
    sim = Simulation(net, seed=derive_seed(seed, 1))
    result = sim.run(duration_ms)
    return SpikeGraph.from_simulation(net, result, coding="rate")


def parse_synthetic_name(name: str) -> Optional[tuple]:
    """Parse "synth_MxN" labels used by the registry and benches."""
    if not name.startswith("synth_"):
        return None
    try:
        m, n = name[len("synth_"):].split("x")
        return int(m), int(n)
    except ValueError:
        return None
