"""CARLsim-native "hello world" application (paper Table I, row 1).

A small rate-coded feedforward network — topology (117, 9): 117 input
spike generators driving 9 output neurons through full connectivity with
randomized weights.  Small enough to fit a single CxQuad crossbar, it only
produces global traffic on architectures with smaller tiles — exactly the
regime the paper's Fig. 5/Table II evaluates it in.
"""

from __future__ import annotations

from repro.snn.generators import PoissonSource
from repro.snn.graph import SpikeGraph
from repro.snn.network import Network
from repro.snn.neuron import LIFModel
from repro.snn.simulator import Simulation
from repro.utils.rng import SeedLike, default_rng, derive_seed

N_INPUTS = 117
N_OUTPUTS = 9


def build_hello_world_network(seed: SeedLike = None) -> Network:
    """117 Poisson generators (10-50 Hz) fully connected to 9 LIF neurons."""
    rng = default_rng(seed)
    net = Network("hello_world")
    rates = rng.uniform(10.0, 50.0, size=N_INPUTS)
    inputs = net.add_source("input", PoissonSource(N_INPUTS, rates), layer=0)
    model = LIFModel()
    outputs = net.add_population("output", N_OUTPUTS, model, layer=1)
    # Mean drive: 117 inputs x ~30 Hz -> 3.5 spikes/ms; weight ~8 gives a
    # mean current ~28, ~1.9x rheobase, for mid-range output rates.
    weights = rng.uniform(4.0, 12.0, size=(N_INPUTS, N_OUTPUTS))
    net.connect(inputs, outputs, weights=weights, name="in->out")
    return net


def build_hello_world(
    seed: SeedLike = None, duration_ms: float = 500.0
) -> SpikeGraph:
    """Simulate hello world and return its spike graph."""
    net = build_hello_world_network(seed=seed)
    sim = Simulation(net, seed=derive_seed(seed, 1))
    result = sim.run(duration_ms)
    return SpikeGraph.from_simulation(net, result, coding="rate")
