"""CARLsim-native image smoothing application (paper Table I, row 2).

Topology (1024, 1024): a 32 x 32 pixel image is rate-encoded onto 1024
Poisson generators, which drive 1024 LIF neurons through a Gaussian
spatial kernel — each output neuron integrates a neighborhood of input
pixels, producing a smoothed copy of the image in its firing rates.  The
local kernel structure makes this the most "mappable" workload: a good
partitioner keeps whole image tiles on one crossbar.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.snn.coding import rate_encode
from repro.snn.generators import PoissonSource
from repro.snn.graph import SpikeGraph
from repro.snn.network import Network
from repro.snn.neuron import LIFModel
from repro.snn.simulator import Simulation
from repro.snn.synapse import gaussian_kernel_2d
from repro.utils.rng import SeedLike, default_rng, derive_seed

IMAGE_SHAPE: Tuple[int, int] = (32, 32)
KERNEL_SIGMA = 1.0
KERNEL_RADIUS = 2


def synthetic_image(
    shape: Tuple[int, int] = IMAGE_SHAPE, seed: SeedLike = None
) -> np.ndarray:
    """A noisy multi-blob test image with intensities in [0, 1].

    Smooth Gaussian blobs over speckle noise give the smoothing kernel
    realistic structure to work on (sharp noise to suppress, smooth
    gradients to preserve).
    """
    rng = default_rng(seed)
    rows, cols = shape
    yy, xx = np.mgrid[0:rows, 0:cols]
    image = 0.15 * rng.random(shape)  # speckle noise floor
    for _ in range(4):
        cy, cx = rng.uniform(0, rows), rng.uniform(0, cols)
        sigma = rng.uniform(2.0, 6.0)
        amp = rng.uniform(0.4, 0.9)
        image += amp * np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2))
    return np.clip(image, 0.0, 1.0)


def build_image_smoothing_network(
    seed: SeedLike = None,
    image: np.ndarray = None,
    max_rate_hz: float = 80.0,
) -> Network:
    """1024 rate-encoded pixel sources -> Gaussian kernel -> 1024 LIF."""
    if image is None:
        image = synthetic_image(seed=seed)
    if image.shape != IMAGE_SHAPE:
        raise ValueError(f"image must be {IMAGE_SHAPE}, got {image.shape}")
    n_pixels = image.size
    net = Network("image_smoothing")
    rates = rate_encode(image.ravel(), max_rate_hz=max_rate_hz, min_rate_hz=2.0)
    inputs = net.add_source("pixels", PoissonSource(n_pixels, rates), layer=0)
    model = LIFModel()
    outputs = net.add_population("smoothed", n_pixels, model, layer=1)
    # Kernel weight sizing: ~13 taps, center tap weight w; mean drive per
    # output ~ sum(kernel) * mean_rate * dt * w.  w=75 with ~5.8 kernel sum
    # and ~40 Hz mean rate gives ~1.7x rheobase.
    weights = gaussian_kernel_2d(
        IMAGE_SHAPE, sigma=KERNEL_SIGMA, weight=75.0, radius=KERNEL_RADIUS
    )
    net.connect(inputs, outputs, weights=weights, name="smooth")
    return net


def build_image_smoothing(
    seed: SeedLike = None, duration_ms: float = 200.0
) -> SpikeGraph:
    """Simulate image smoothing and return its spike graph."""
    net = build_image_smoothing_network(seed=seed)
    sim = Simulation(net, seed=derive_seed(seed, 1))
    result = sim.run(duration_ms)
    return SpikeGraph.from_simulation(net, result, coding="rate")
