"""Application registry: Table I names -> spike-graph builders.

Accepts the paper's long names, the two-letter abbreviations it uses in
Fig. 5 (HW, IS, HD, HE), and "synth_MxN" labels for the synthetic
topologies.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.digit_recognition import build_digit_recognition
from repro.apps.heartbeat import build_heartbeat
from repro.apps.hello_world import build_hello_world
from repro.apps.image_smoothing import build_image_smoothing
from repro.apps.synthetic import build_synthetic, parse_synthetic_name
from repro.snn.graph import SpikeGraph
from repro.utils.rng import SeedLike

APPLICATIONS: Dict[str, Callable[..., SpikeGraph]] = {
    "hello_world": build_hello_world,
    "image_smoothing": build_image_smoothing,
    "digit_recognition": build_digit_recognition,
    "heartbeat": build_heartbeat,
}

ABBREVIATIONS = {
    "HW": "hello_world",
    "IS": "image_smoothing",
    "HD": "digit_recognition",
    "HE": "heartbeat",
}


def build_application(name: str, seed: SeedLike = None, **kwargs) -> SpikeGraph:
    """Build any registered application (or synth_MxN) by name."""
    canonical = ABBREVIATIONS.get(name, name)
    if canonical in APPLICATIONS:
        return APPLICATIONS[canonical](seed=seed, **kwargs)
    parsed = parse_synthetic_name(canonical)
    if parsed is not None:
        m, n = parsed
        return build_synthetic(m, n, seed=seed, **kwargs)
    options = sorted(APPLICATIONS) + sorted(ABBREVIATIONS) + ["synth_MxN"]
    raise KeyError(f"unknown application {name!r}; options: {options}")
