"""Diehl & Cook unsupervised digit recognition (paper Table I, row 3).

The (250, 250) recurrent topology of Diehl & Cook (2015): 28 x 28 = 784
rate-encoded pixel sources project plastically (STDP) onto 250 excitatory
neurons; each excitatory neuron drives its partner inhibitory neuron
one-to-one, and every inhibitory neuron suppresses all excitatory neurons
except its partner — the winner-take-all lateral inhibition that makes
receptive fields self-organize.

The paper doesn't ship MNIST; training here uses synthetic "digit"
stimuli (class-conditioned stroke patterns) which exercise the identical
topology and firing statistics the mapper consumes.  Accuracy on real
MNIST is irrelevant to mapping quality; spike *structure* is what matters.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.snn.coding import rate_encode
from repro.snn.generators import PoissonSource
from repro.snn.graph import SpikeGraph
from repro.snn.network import Network
from repro.snn.neuron import AdaptiveLIFModel, LIFModel
from repro.snn.simulator import Simulation
from repro.snn.stdp import STDPRule
from repro.utils.rng import SeedLike, default_rng, derive_seed

IMAGE_SIDE = 28
N_INPUTS = IMAGE_SIDE * IMAGE_SIDE  # 784
N_EXCITATORY = 250
N_INHIBITORY = 250


def synthetic_digit(klass: int, seed: SeedLike = None) -> np.ndarray:
    """A 28 x 28 stroke pattern for "digit class" ``klass`` in [0, 1].

    Each class is a fixed set of line strokes (deterministic given the
    class) plus per-sample jitter — enough structure for STDP to form
    class-selective receptive fields.
    """
    rng = default_rng(seed)
    base = np.random.default_rng(1000 + klass)  # class-defining strokes
    image = np.zeros((IMAGE_SIDE, IMAGE_SIDE))
    yy, xx = np.mgrid[0:IMAGE_SIDE, 0:IMAGE_SIDE]
    for _ in range(3):
        x0, y0 = base.uniform(4, 24, size=2)
        angle = base.uniform(0, np.pi)
        length = base.uniform(8, 16)
        x1 = x0 + length * np.cos(angle)
        y1 = y0 + length * np.sin(angle)
        # Distance from each pixel to the stroke segment.
        px, py = xx - x0, yy - y0
        vx, vy = x1 - x0, y1 - y0
        t = np.clip((px * vx + py * vy) / (vx * vx + vy * vy), 0.0, 1.0)
        dist = np.sqrt((px - t * vx) ** 2 + (py - t * vy) ** 2)
        image += np.exp(-(dist**2) / 2.0)
    jitter = 0.08 * rng.random(image.shape)
    return np.clip(image / max(image.max(), 1e-9) + jitter, 0.0, 1.0)


def build_digit_recognition_network(
    seed: SeedLike = None,
    initial_image: np.ndarray = None,
) -> Network:
    """784 pixel sources -> 250 exc (plastic) <-> 250 inh, Diehl & Cook wiring."""
    rng = default_rng(seed)
    if initial_image is None:
        initial_image = synthetic_digit(0, seed=rng)
    net = Network("digit_recognition")
    rates = rate_encode(initial_image.ravel(), max_rate_hz=63.75, min_rate_hz=0.0)
    inputs = net.add_source("pixels", PoissonSource(N_INPUTS, rates), layer=0)

    # Excitatory neurons use the adaptive threshold of Diehl & Cook: the
    # homeostatic theta keeps any one neuron from monopolizing the WTA.
    exc_model = AdaptiveLIFModel(
        tau_m=20.0, v_thresh=-52.0, t_ref=5.0, theta_plus=0.6,
        tau_theta=2_000.0,
    )
    inh_model = LIFModel(tau_m=10.0, v_thresh=-40.0, t_ref=2.0)
    exc = net.add_population("excitatory", N_EXCITATORY, exc_model, layer=1)
    inh = net.add_population("inhibitory", N_INHIBITORY, inh_model, layer=2)

    # Plastic input projection: uniform random initial weights; STDP will
    # concentrate weight on class strokes during training.
    w_in = rng.uniform(1.0, 4.0, size=(N_INPUTS, N_EXCITATORY))
    net.connect(inputs, exc, weights=w_in, plastic=True, name="input->exc")

    # One-to-one excitatory -> inhibitory partner drive, strong enough
    # that a single partner spike fires the inhibitory neuron (Diehl &
    # Cook's WTA trigger): delta-v = w / tau_m must exceed the 25 mV gap.
    w_ei = np.zeros((N_EXCITATORY, N_INHIBITORY))
    np.fill_diagonal(w_ei, 320.0)
    net.connect(exc, inh, weights=w_ei, name="exc->inh")

    # Inhibitory -> all excitatory except the partner (lateral WTA).
    w_ie = np.full((N_INHIBITORY, N_EXCITATORY), -12.0)
    np.fill_diagonal(w_ie, 0.0)
    net.connect(inh, exc, weights=w_ie, name="inh->exc")
    return net


def training_stimuli(
    n_samples: int, seed: SeedLike = None
) -> List[Tuple[int, np.ndarray]]:
    """(class, image) pairs cycling over 10 synthetic digit classes."""
    rng = default_rng(seed)
    return [
        (k % 10, synthetic_digit(k % 10, seed=rng)) for k in range(n_samples)
    ]


def build_digit_recognition(
    seed: SeedLike = None,
    duration_ms: float = 300.0,
    n_training_samples: int = 3,
    train_ms_per_sample: float = 100.0,
) -> SpikeGraph:
    """Train briefly with STDP, then profile spikes for the mapper.

    Each training sample re-targets the Poisson pixel rates and runs one
    STDP episode; the final profiling run (plasticity frozen) produces the
    spike graph the partitioners consume.
    """
    rng = default_rng(seed)
    net = build_digit_recognition_network(seed=rng)
    stdp = STDPRule(a_plus=0.01, a_minus=0.012, w_max=8.0)
    pixels = net.population("pixels")

    for klass, image in training_stimuli(n_training_samples, seed=rng):
        pixels.source.rates_hz[:] = rate_encode(
            image.ravel(), max_rate_hz=63.75, min_rate_hz=0.0
        )
        sim = Simulation(net, seed=derive_seed(seed, 100 + klass), stdp=stdp)
        sim.run(train_ms_per_sample, learning=True)

    # Profiling pass with plasticity frozen on a held-out sample.
    test_image = synthetic_digit(7, seed=rng)
    pixels.source.rates_hz[:] = rate_encode(
        test_image.ravel(), max_rate_hz=63.75, min_rate_hz=0.0
    )
    sim = Simulation(net, seed=derive_seed(seed, 999))
    result = sim.run(duration_ms)
    return SpikeGraph.from_simulation(net, result, coding="rate")
