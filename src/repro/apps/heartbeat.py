"""Heartbeat estimation with a liquid state machine (paper Table I, row 4).

Das et al. (2017) estimate heart rate from ECG in wearables using a liquid
state machine with a probabilistic readout.  The paper marks this as the
*temporally coded* application — the one whose accuracy degrades with ISI
distortion on the interconnect (Section V-B: 20% less ISI distortion gave
>5% better estimation accuracy).

Topology (64, 16): a synthetic ECG (parameterized QRS pulse train with
drifting RR intervals) is level-crossing encoded onto 16 input channels,
which drive a 64-neuron liquid (distance-dependent recurrent wiring on a
4 x 4 x 4 lattice, 80/20 excitatory/inhibitory) read out by 16 LIF
neurons.  Heart-rate information lives in the liquid's inter-spike
intervals, so the app also provides an RR-interval estimator used by the
accuracy experiments.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.snn.generators import ScheduledSource
from repro.snn.graph import SpikeGraph
from repro.snn.network import Network
from repro.snn.neuron import LIFModel
from repro.snn.simulator import Simulation
from repro.snn.synapse import distance_dependent
from repro.utils.rng import SeedLike, default_rng, derive_seed
from repro.utils.validation import check_positive

N_CHANNELS = 16      # level-crossing encoder outputs (8 up + 8 down)
N_LIQUID = 64
N_READOUT = 16
LIQUID_GRID = (4, 4, 4)


def synthetic_ecg(
    duration_ms: float,
    mean_rr_ms: float = 800.0,
    rr_drift: float = 0.15,
    noise: float = 0.03,
    fs_hz: float = 250.0,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate a synthetic single-lead ECG.

    Returns ``(t_ms, signal, beat_times_ms)``.  Each beat is a stylized
    P-QRS-T complex; RR intervals drift sinusoidally by ``rr_drift``
    around ``mean_rr_ms`` (respiratory modulation) plus white jitter —
    preserving the inter-beat-interval structure the LSM encodes.
    """
    check_positive("duration_ms", duration_ms)
    check_positive("mean_rr_ms", mean_rr_ms)
    rng = default_rng(seed)
    dt_ms = 1000.0 / fs_hz
    t = np.arange(0.0, duration_ms, dt_ms)
    signal = noise * rng.standard_normal(t.size)

    beat_times: List[float] = []
    now = float(rng.uniform(0.0, mean_rr_ms / 4))
    phase = rng.uniform(0, 2 * np.pi)
    while now < duration_ms:
        beat_times.append(now)
        modulation = 1.0 + rr_drift * np.sin(phase + 2 * np.pi * now / 10_000.0)
        now += mean_rr_ms * modulation + rng.normal(0.0, 0.01 * mean_rr_ms)

    def add_wave(center_ms: float, width_ms: float, amplitude: float) -> None:
        lo = np.searchsorted(t, center_ms - 4 * width_ms)
        hi = np.searchsorted(t, center_ms + 4 * width_ms)
        signal[lo:hi] += amplitude * np.exp(
            -((t[lo:hi] - center_ms) ** 2) / (2 * width_ms**2)
        )

    for beat in beat_times:
        add_wave(beat - 160.0, 30.0, 0.12)   # P wave
        add_wave(beat - 20.0, 8.0, -0.18)    # Q
        add_wave(beat, 10.0, 1.0)            # R
        add_wave(beat + 25.0, 9.0, -0.25)    # S
        add_wave(beat + 220.0, 45.0, 0.3)    # T wave
    return t, signal, np.asarray(beat_times)


def level_crossing_encode(
    t_ms: np.ndarray,
    signal: np.ndarray,
    n_levels: int = N_CHANNELS // 2,
    delta: float = 0.12,
) -> List[np.ndarray]:
    """Level-crossing (delta) encoder: the Das et al. spike generator.

    Channel ``2k`` spikes when the signal crosses level ``k`` upward;
    channel ``2k + 1`` when it crosses downward.  Returns one spike-time
    array per channel (``2 * n_levels`` channels total).
    """
    check_positive("n_levels", n_levels)
    check_positive("delta", delta)
    base = float(np.median(signal))
    levels = base + delta * (np.arange(n_levels) - n_levels / 2.0 + 0.5)
    trains: List[List[float]] = [[] for _ in range(2 * n_levels)]
    above = signal[0] > levels  # state per level
    for i in range(1, signal.size):
        now_above = signal[i] > levels
        for k in np.nonzero(now_above != above)[0]:
            channel = 2 * int(k) + (0 if now_above[k] else 1)
            trains[channel].append(float(t_ms[i]))
        above = now_above
    return [np.asarray(tr) for tr in trains]


def build_heartbeat_network(
    spike_trains: List[np.ndarray],
    seed: SeedLike = None,
) -> Network:
    """16 encoded channels -> 64-neuron liquid -> 16 readout neurons."""
    if len(spike_trains) != N_CHANNELS:
        raise ValueError(f"expected {N_CHANNELS} channels, got {len(spike_trains)}")
    rng = default_rng(seed)
    net = Network("heartbeat")
    inputs = net.add_source("ecg", ScheduledSource(spike_trains), layer=0)

    liquid_model = LIFModel(tau_m=30.0, t_ref=3.0)
    liquid = net.add_population("liquid", N_LIQUID, liquid_model, layer=1)
    readout = net.add_population("readout", N_READOUT, LIFModel(), layer=2)

    # Input -> liquid: each channel excites a random subset of the liquid.
    # Level-crossing channels fire in near-coincident bursts around each
    # QRS complex; weights are sized so 2-3 coincident channel spikes
    # drive a liquid neuron past threshold.
    w_in = np.where(rng.random((N_CHANNELS, N_LIQUID)) < 0.4, 260.0, 0.0)
    net.connect(inputs, liquid, weights=w_in, name="ecg->liquid")

    # Liquid recurrence: Maass distance-dependent wiring on a 4x4x4
    # lattice, 80% excitatory / 20% inhibitory.
    grid = np.array(
        [(x, y, z)
         for x in range(LIQUID_GRID[0])
         for y in range(LIQUID_GRID[1])
         for z in range(LIQUID_GRID[2])],
        dtype=np.float64,
    )
    w_rec = distance_dependent(
        grid, grid, lambda_=2.0, max_weight=70.0, probability_scale=0.45,
        seed=rng,
    )
    np.fill_diagonal(w_rec, 0.0)
    inhibitory = rng.random(N_LIQUID) < 0.2
    w_rec[inhibitory, :] *= -1.5
    net.connect(liquid, liquid, weights=w_rec, delay_ms=2.0, name="liquid-rec")

    # Liquid -> readout: dense projection (the trained probabilistic
    # readout of Das et al.; weights here stand in for a trained readout).
    w_out = rng.uniform(15.0, 45.0, size=(N_LIQUID, N_READOUT))
    net.connect(liquid, readout, weights=w_out, name="liquid->readout")
    return net


def build_heartbeat(
    seed: SeedLike = None,
    duration_ms: float = 4000.0,
    mean_rr_ms: float = 800.0,
) -> SpikeGraph:
    """End-to-end heartbeat app: ECG -> encoder -> LSM -> spike graph."""
    rng = default_rng(seed)
    t, signal, beats = synthetic_ecg(
        duration_ms, mean_rr_ms=mean_rr_ms, seed=rng
    )
    trains = level_crossing_encode(t, signal)
    net = build_heartbeat_network(trains, seed=rng)
    sim = Simulation(net, seed=derive_seed(seed, 1))
    result = sim.run(duration_ms)
    graph = SpikeGraph.from_simulation(net, result, coding="temporal")
    graph.metadata["true_beat_times_ms"] = beats
    graph.metadata["mean_rr_ms"] = mean_rr_ms
    return graph


def estimate_rr_from_spikes(
    spike_times: np.ndarray,
    min_rr_ms: float = 300.0,
    max_rr_ms: float = 2000.0,
    bin_ms: float = 10.0,
) -> float:
    """Estimate the RR interval from spike-train periodicity.

    Liquid activity is beat-locked: binning the spikes and locating the
    dominant autocorrelation peak in the physiological RR range recovers
    the inter-beat interval even when neurons also fire between beats.
    ``spike_times`` may be one neuron's train or the pooled liquid.
    """
    t = np.sort(np.asarray(spike_times, dtype=np.float64))
    if t.size < 4:
        return float("nan")
    duration = t[-1] - t[0]
    if duration < 2 * min_rr_ms:
        return float("nan")
    n_bins = int(np.ceil(duration / bin_ms)) + 1
    binned = np.bincount(
        ((t - t[0]) / bin_ms).astype(int), minlength=n_bins
    ).astype(np.float64)
    binned -= binned.mean()
    ac = np.correlate(binned, binned, mode="full")[n_bins - 1:]
    lag_lo = max(1, int(min_rr_ms / bin_ms))
    lag_hi = min(ac.size - 1, int(max_rr_ms / bin_ms))
    if lag_hi <= lag_lo:
        return float("nan")
    peak = lag_lo + int(np.argmax(ac[lag_lo : lag_hi + 1]))
    if ac[peak] <= 0:
        return float("nan")
    return float(peak * bin_ms)


def heart_rate_accuracy(
    true_rr_ms: float, estimated_rr_ms: float
) -> float:
    """Estimation accuracy in [0, 1]: 1 - relative RR error (floored at 0)."""
    if not np.isfinite(estimated_rr_ms):
        return 0.0
    return float(max(0.0, 1.0 - abs(estimated_rr_ms - true_rr_ms) / true_rr_ms))
