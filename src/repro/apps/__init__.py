"""Evaluation applications (paper Table I + synthetic topologies).

Four realistic applications with different computation models, topologies
and coding schemes, matching the paper's evaluation set:

=======================  ==========================  =========
application              topology                    coding
=======================  ==========================  =========
hello world (HW)         feedforward (117, 9)        rate
image smoothing (IS)     feedforward (1024, 1024)    rate
handwritten digit (HD)   recurrent (250, 250), STDP  rate
heartbeat est. (HE)      LSM (64, 16)                temporal
=======================  ==========================  =========

plus :func:`synthetic_feedforward` — the paper's m x n layered topologies
driven by 10 Poisson spike sources at 10-100 Hz.

Every builder returns a simulated :class:`~repro.snn.graph.SpikeGraph`
ready for the mapping pipeline; ``build_network`` variants expose the raw
:class:`~repro.snn.Network` for application-level experiments.
"""

from repro.apps.hello_world import build_hello_world
from repro.apps.image_smoothing import build_image_smoothing
from repro.apps.digit_recognition import build_digit_recognition
from repro.apps.heartbeat import build_heartbeat
from repro.apps.synthetic import (
    build_convnet,
    build_synthetic,
    convolutional_feedforward,
    synthetic_feedforward,
)
from repro.apps.registry import APPLICATIONS, build_application

__all__ = [
    "build_hello_world",
    "build_image_smoothing",
    "build_digit_recognition",
    "build_heartbeat",
    "build_synthetic",
    "synthetic_feedforward",
    "build_convnet",
    "convolutional_feedforward",
    "APPLICATIONS",
    "build_application",
]
