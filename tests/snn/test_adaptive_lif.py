"""Tests for the adaptive-threshold LIF model."""

import numpy as np
import pytest

from repro.snn.neuron import AdaptiveLIFModel, LIFModel


class TestAdaptiveLIF:
    def test_silent_at_rest(self):
        model = AdaptiveLIFModel()
        state = model.allocate_state(3)
        for _ in range(200):
            assert not model.step(state, np.zeros(3), dt=1.0).any()

    def test_threshold_grows_with_spikes(self):
        model = AdaptiveLIFModel(theta_plus=1.0, tau_theta=10_000.0)
        state = model.allocate_state(1)
        current = np.array([200.0])
        for _ in range(50):
            model.step(state, current, dt=1.0)
        assert state.extra["theta"][0] > 0.0

    def test_adaptation_slows_firing(self):
        """Under constant drive, later windows contain fewer spikes."""
        model = AdaptiveLIFModel(theta_plus=2.0, tau_theta=50_000.0, t_ref=0.0)
        state = model.allocate_state(1)
        current = np.array([40.0])
        first, second = 0, 0
        for step in range(2000):
            spiked = model.step(state, current, dt=1.0).any()
            if step < 1000:
                first += int(spiked)
            else:
                second += int(spiked)
        assert second < first

    def test_theta_decays_back(self):
        model = AdaptiveLIFModel(theta_plus=5.0, tau_theta=20.0)
        state = model.allocate_state(1)
        state.extra["theta"][0] = 5.0
        for _ in range(200):
            model.step(state, np.zeros(1), dt=1.0)
        assert state.extra["theta"][0] < 0.01

    def test_matches_plain_lif_with_zero_adaptation(self):
        adaptive = AdaptiveLIFModel(theta_plus=0.0, v_thresh=-50.0, t_ref=2.0)
        plain = LIFModel(v_thresh=-50.0, t_ref=2.0)
        s_a = adaptive.allocate_state(1)
        s_p = plain.allocate_state(1)
        rng = np.random.default_rng(0)
        for _ in range(300):
            current = rng.uniform(0, 60, size=1)
            spiked_a = adaptive.step(s_a, current, dt=1.0)
            spiked_p = plain.step(s_p, current, dt=1.0)
            assert spiked_a == spiked_p
            assert np.allclose(s_a.v, s_p.v)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptiveLIFModel(theta_plus=-1.0)
        with pytest.raises(ValueError):
            AdaptiveLIFModel(tau_theta=0.0)

    def test_rate_homeostasis_across_population(self):
        """Adaptation compresses the absolute rate spread between strongly
        and weakly driven neurons (the Diehl & Cook purpose: no single
        neuron may monopolize the winner-take-all)."""
        def rate_gap(model_cls, **kwargs):
            model = model_cls(**kwargs)
            state = model.allocate_state(2)
            currents = np.array([30.0, 120.0])
            counts = np.zeros(2)
            for _ in range(3000):
                counts += model.step(state, currents, dt=1.0)
            return counts[1] - counts[0]

        plain = rate_gap(LIFModel, v_thresh=-52.0, t_ref=5.0)
        adaptive = rate_gap(
            AdaptiveLIFModel, v_thresh=-52.0, t_ref=5.0, theta_plus=2.0,
            tau_theta=500.0,
        )
        assert adaptive < plain
