"""Tests for SpikeGraph construction and queries."""

import numpy as np
import pytest

from repro.snn.generators import ScheduledSource
from repro.snn.graph import SpikeGraph
from repro.snn.network import Network
from repro.snn.neuron import LIFModel
from repro.snn.simulator import Simulation


class TestFromSimulation:
    def test_traffic_is_pre_spike_count(self):
        net = Network("t")
        net.add_source("in", ScheduledSource([[1.0, 2.0, 3.0], [4.0]]))
        net.add_population("out", 1, LIFModel(), layer=1)
        net.connect("in", "out", weights=np.array([[10.0], [10.0]]))
        result = Simulation(net, seed=0).run(10.0)
        graph = SpikeGraph.from_simulation(net, result)
        by_src = {int(s): t for s, t in zip(graph.src, graph.traffic)}
        assert by_src[0] == 3.0  # neuron 0 fired 3 times
        assert by_src[1] == 1.0

    def test_layers_copied(self, small_network):
        result = Simulation(small_network, seed=0).run(50.0)
        graph = SpikeGraph.from_simulation(small_network, result)
        assert (graph.layers == small_network.neuron_layers()).all()

    def test_mismatched_result_rejected(self, small_network):
        result = Simulation(small_network, seed=0).run(50.0)
        result.spike_times.append(np.empty(0))
        with pytest.raises(ValueError):
            SpikeGraph.from_simulation(small_network, result)


class TestFromEdges:
    def test_defaults_filled(self):
        g = SpikeGraph.from_edges(3, [0, 1], [1, 2], [5.0, 7.0])
        assert g.weight.tolist() == [1.0, 1.0]
        assert len(g.spike_times) == 3
        assert g.layers.tolist() == [0, 0, 0]

    def test_validation_rejects_bad_indices(self):
        with pytest.raises(ValueError):
            SpikeGraph.from_edges(2, [0, 5], [1, 1], [1.0, 1.0])

    def test_validation_rejects_negative_traffic(self):
        with pytest.raises(ValueError):
            SpikeGraph.from_edges(2, [0], [1], [-1.0])

    def test_validation_rejects_ragged_arrays(self):
        with pytest.raises(ValueError):
            SpikeGraph.from_edges(2, [0], [1, 1], [1.0])


class TestQueries(object):
    def test_total_traffic(self, tiny_graph):
        # 24 heavy edges x 100 + 1 bridge x 5.
        assert tiny_graph.total_traffic() == 24 * 100 + 5

    def test_degrees(self, chain_graph):
        assert chain_graph.out_degree().tolist() == [1, 1, 1, 1, 1, 0]
        assert chain_graph.in_degree().tolist() == [0, 1, 1, 1, 1, 1]

    def test_neuron_out_traffic(self, chain_graph):
        assert chain_graph.neuron_out_traffic().tolist() == [
            10.0, 10.0, 10.0, 10.0, 10.0, 0.0,
        ]

    def test_spike_counts(self, chain_graph):
        assert (chain_graph.spike_counts() == 10).all()

    def test_to_networkx(self, chain_graph):
        g = chain_graph.to_networkx()
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 5
        assert g[0][1]["traffic"] == 10.0

    def test_to_networkx_merges_parallel_edges(self):
        g = SpikeGraph.from_edges(2, [0, 0], [1, 1], [3.0, 4.0])
        nx_g = g.to_networkx()
        assert nx_g[0][1]["traffic"] == 7.0

    def test_undirected_traffic_symmetrizes(self):
        g = SpikeGraph.from_edges(2, [0, 1], [1, 0], [3.0, 4.0])
        und = g.undirected_traffic()
        assert und[0][1]["traffic"] == 7.0

    def test_undirected_skips_self_loops(self):
        g = SpikeGraph.from_edges(2, [0, 0], [0, 1], [3.0, 4.0])
        und = g.undirected_traffic()
        assert not und.has_edge(0, 0)

    def test_describe_mentions_name(self, tiny_graph):
        assert "two_communities" in tiny_graph.describe()
