"""Tests for spike sources."""

import numpy as np
import pytest

from repro.snn.generators import (
    PoissonSource,
    RegularSource,
    ScheduledSource,
    poisson_spike_times,
)


class TestPoissonSource:
    def test_rate_matches_statistics(self):
        rng = np.random.default_rng(0)
        src = PoissonSource(100, 50.0)  # 50 Hz
        total = sum(
            src.sample(step, 1.0, rng).size for step in range(1000)
        )
        # 100 neurons x 50 Hz x 1 s = 5000 expected; allow 5 sigma.
        assert abs(total - 5000) < 5 * np.sqrt(5000)

    def test_zero_rate_silent(self):
        rng = np.random.default_rng(0)
        src = PoissonSource(10, 0.0)
        for step in range(100):
            assert src.sample(step, 1.0, rng).size == 0

    def test_per_neuron_rates(self):
        rng = np.random.default_rng(1)
        src = PoissonSource(2, [0.0, 100.0])
        counts = np.zeros(2)
        for step in range(2000):
            fired = src.sample(step, 1.0, rng)
            for i in fired:
                counts[i] += 1
        assert counts[0] == 0 and counts[1] > 100

    def test_negative_rate_raises(self):
        with pytest.raises(ValueError):
            PoissonSource(3, -1.0)

    def test_size_zero_raises(self):
        with pytest.raises(ValueError):
            PoissonSource(0, 10.0)


class TestRegularSource:
    def test_period_respected(self):
        rng = np.random.default_rng(0)
        src = RegularSource(1, period_ms=10.0)
        fired_steps = [
            step for step in range(100) if src.sample(step, 1.0, rng).size
        ]
        diffs = np.diff(fired_steps)
        assert (diffs == 10).all()

    def test_phase_offsets(self):
        rng = np.random.default_rng(0)
        src = RegularSource(2, period_ms=20.0, phase_ms=[0.0, 5.0])
        first = {0: None, 1: None}
        for step in range(30):
            for i in src.sample(step, 1.0, rng):
                if first[int(i)] is None:
                    first[int(i)] = step
        assert first[1] - first[0] == 5

    def test_negative_phase_raises(self):
        with pytest.raises(ValueError):
            RegularSource(1, period_ms=5.0, phase_ms=-1.0)


class TestScheduledSource:
    def test_exact_schedule(self):
        rng = np.random.default_rng(0)
        src = ScheduledSource([[2.0, 5.0], [0.0]])
        fired = {}
        for step in range(8):
            for i in src.sample(step, 1.0, rng):
                fired.setdefault(int(i), []).append(step)
        assert fired == {0: [2, 5], 1: [0]}

    def test_reset_replays(self):
        rng = np.random.default_rng(0)
        src = ScheduledSource([[1.0]])
        assert src.sample(1, 1.0, rng).size == 1
        src.reset()
        assert src.sample(1, 1.0, rng).size == 1

    def test_multiple_spikes_one_tick_fire_once(self):
        # Two spikes in [0,1) collapse into one tick event (the neuron
        # cannot fire twice in one tick); the cursor must skip both.
        rng = np.random.default_rng(0)
        src = ScheduledSource([[0.2, 0.7, 3.0]])
        assert src.sample(0, 1.0, rng).size == 1
        assert src.sample(1, 1.0, rng).size == 0
        assert src.sample(3, 1.0, rng).size == 1

    def test_negative_time_raises(self):
        with pytest.raises(ValueError):
            ScheduledSource([[-1.0]])

    def test_spike_times_property_copies(self):
        src = ScheduledSource([[1.0, 2.0]])
        times = src.spike_times[0]
        times[0] = 99.0
        assert src.spike_times[0][0] == 1.0


class TestPoissonSpikeTimes:
    def test_rate_statistics(self):
        times = poisson_spike_times(100.0, 10_000.0, seed=0)
        # 100 Hz x 10 s = 1000 expected.
        assert 850 < times.size < 1150

    def test_zero_rate_empty(self):
        assert poisson_spike_times(0.0, 100.0).size == 0

    def test_all_within_duration(self):
        times = poisson_spike_times(200.0, 500.0, seed=1)
        assert (times < 500.0).all() and (times >= 0).all()

    def test_sorted(self):
        times = poisson_spike_times(50.0, 2000.0, seed=2)
        assert (np.diff(times) >= 0).all()
