"""Tests for the clock-driven simulation engine."""

import numpy as np
import pytest

from repro.snn.generators import ScheduledSource
from repro.snn.network import Network
from repro.snn.neuron import LIFModel
from repro.snn.simulator import Simulation, run_network


def _relay_network(weight: float = 400.0, delay_ms: float = 1.0) -> Network:
    """One scheduled input spike relayed to a single strong LIF neuron."""
    net = Network("relay")
    net.add_source("in", ScheduledSource([[5.0]]))
    net.add_population("out", 1, LIFModel(), layer=1)
    net.connect("in", "out", weights=np.array([[weight]]), delay_ms=delay_ms)
    return net


class TestSimulationBasics:
    def test_result_dimensions(self, small_network):
        result = Simulation(small_network, seed=0).run(100.0)
        assert result.n_neurons == small_network.n_neurons
        assert result.duration_ms == 100.0

    def test_deterministic_given_seed(self, small_network):
        r1 = Simulation(small_network, seed=5).run(200.0)
        r2 = Simulation(small_network, seed=5).run(200.0)
        for a, b in zip(r1.spike_times, r2.spike_times):
            assert np.array_equal(a, b)

    def test_different_seeds_differ(self, small_network):
        r1 = Simulation(small_network, seed=1).run(200.0)
        r2 = Simulation(small_network, seed=2).run(200.0)
        assert any(
            not np.array_equal(a, b)
            for a, b in zip(r1.spike_times, r2.spike_times)
        )

    def test_nonintegral_delay_rejected(self):
        net = Network()
        net.add_population("a", 1, LIFModel())
        net.connect("a", "a", weights=np.array([[1.0]]), delay_ms=1.5)
        with pytest.raises(ValueError, match="whole number"):
            Simulation(net, dt=1.0)

    def test_zero_duration_rejected(self, small_network):
        with pytest.raises(ValueError):
            Simulation(small_network, seed=0).run(0.0)


class TestSpikePropagation:
    def test_single_spike_relayed_with_delay(self):
        net = _relay_network(delay_ms=3.0)
        result = Simulation(net, seed=0).run(20.0)
        in_times = result.spike_times[0]
        out_times = result.spike_times[1]
        assert list(in_times) == [5.0]
        assert out_times.size == 1
        # Source fires at t=5; spike arrives after the 3-tick delay line and
        # the neuron integrates on arrival.
        assert out_times[0] == 5.0 + 3.0

    def test_weak_weight_does_not_relay(self):
        net = _relay_network(weight=1.0)
        result = Simulation(net, seed=0).run(20.0)
        assert result.spike_times[1].size == 0

    def test_negative_weight_inhibits(self):
        net = Network("inhib")
        net.add_source("exc", ScheduledSource([[5.0]]))
        net.add_source("inh", ScheduledSource([[5.0]]))
        net.add_population("out", 1, LIFModel(), layer=1)
        net.connect("exc", "out", weights=np.array([[400.0]]))
        net.connect("inh", "out", weights=np.array([[-400.0]]))
        result = Simulation(net, seed=0).run(20.0)
        assert result.spike_times[2].size == 0

    def test_chain_propagation_order(self):
        net = Network("chain")
        net.add_source("in", ScheduledSource([[2.0]]))
        net.add_population("a", 1, LIFModel(), layer=1)
        net.add_population("b", 1, LIFModel(), layer=2)
        net.connect("in", "a", weights=np.array([[400.0]]))
        net.connect("a", "b", weights=np.array([[400.0]]))
        result = Simulation(net, seed=0).run(20.0)
        t_a = result.spike_times[1][0]
        t_b = result.spike_times[2][0]
        assert t_b > t_a > 2.0


class TestSimulationResult:
    def test_spike_counts_and_total(self, small_network):
        result = Simulation(small_network, seed=0).run(500.0)
        counts = result.spike_counts()
        assert counts.sum() == result.total_spikes()
        assert counts.shape == (small_network.n_neurons,)

    def test_firing_rates(self):
        net = Network()
        net.add_source("in", ScheduledSource([np.arange(0.0, 1000.0, 10.0)]))
        result = Simulation(net, seed=0).run(1000.0)
        rates = result.firing_rates_hz()
        assert rates[0] == pytest.approx(100.0)

    def test_population_rates(self, small_network):
        result = Simulation(small_network, seed=0).run(1000.0)
        rates = result.population_rates_hz(small_network)
        assert set(rates) == {"in", "out"}
        assert rates["in"] == pytest.approx(40.0, rel=0.2)

    def test_run_network_wrapper(self, small_network):
        result = run_network(small_network, 100.0, seed=0)
        assert result.duration_ms == 100.0


class TestBiasCurrent:
    def test_bias_drives_firing_without_input(self):
        net = Network()
        net.add_population("driven", 1, LIFModel(), bias_current=30.0)
        result = Simulation(net, seed=0).run(200.0)
        assert result.spike_times[0].size > 0

    def test_no_bias_no_firing(self):
        net = Network()
        net.add_population("idle", 1, LIFModel())
        result = Simulation(net, seed=0).run(200.0)
        assert result.spike_times[0].size == 0
