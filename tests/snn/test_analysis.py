"""Tests for spike-train analysis utilities."""

import numpy as np
import pytest

from repro.snn.analysis import (
    active_fraction,
    firing_rate_hz,
    isi_cv,
    population_rate,
    rate_histogram,
    spike_raster,
    synchrony_index,
)
from repro.snn.generators import poisson_spike_times


class TestFiringRate:
    def test_basic(self):
        train = np.arange(0.0, 1000.0, 100.0)  # 10 spikes / s
        assert firing_rate_hz(train, 1000.0) == 10.0

    def test_empty(self):
        assert firing_rate_hz(np.empty(0), 500.0) == 0.0


class TestIsiCv:
    def test_regular_train_low_cv(self):
        train = np.arange(0.0, 1000.0, 20.0)
        assert isi_cv(train) == pytest.approx(0.0, abs=1e-12)

    def test_poisson_cv_near_one(self):
        train = poisson_spike_times(100.0, 60_000.0, seed=0)
        assert 0.85 < isi_cv(train) < 1.15

    def test_short_train_nan(self):
        assert np.isnan(isi_cv(np.array([1.0, 2.0])))


class TestPopulationRate:
    def test_uniform_rate(self):
        trains = [np.arange(0.0, 1000.0, 100.0) for _ in range(4)]
        centers, rates = population_rate(trains, 1000.0, bin_ms=100.0)
        assert centers.size == rates.size == 10
        assert rates.mean() == pytest.approx(10.0)

    def test_empty_population(self):
        centers, rates = population_rate([], 100.0)
        assert (rates == 0).all()

    def test_burst_localized(self):
        trains = [np.array([450.0, 455.0, 460.0])]
        centers, rates = population_rate(trains, 1000.0, bin_ms=100.0)
        assert rates.argmax() == 4  # the 400-500 ms bin


class TestSynchrony:
    def test_identical_trains_fully_synchronous(self):
        shared = np.arange(0.0, 1000.0, 50.0)
        trains = [shared.copy() for _ in range(8)]
        assert synchrony_index(trains, 1000.0) == pytest.approx(1.0)

    def test_independent_poisson_low(self):
        trains = [
            poisson_spike_times(40.0, 5000.0, seed=i) for i in range(16)
        ]
        assert synchrony_index(trains, 5000.0) < 0.5

    def test_silent_population_nan(self):
        assert np.isnan(synchrony_index([np.empty(0)] * 3, 100.0))


class TestActiveFraction:
    def test_counts_active(self):
        trains = [np.array([1.0]), np.empty(0), np.array([1.0, 2.0])]
        assert active_fraction(trains) == pytest.approx(2 / 3)

    def test_threshold(self):
        trains = [np.array([1.0]), np.array([1.0, 2.0])]
        assert active_fraction(trains, threshold_spikes=2) == 0.5

    def test_empty(self):
        assert active_fraction([]) == 0.0


class TestRateHistogram:
    def test_bins_cover_rates(self):
        trains = [np.arange(0.0, 1000.0, 1000.0 / r) for r in (5, 10, 20)]
        edges, counts = rate_histogram(trains, 1000.0, n_bins=5)
        assert counts.sum() == 3


class TestSpikeRaster:
    def test_coordinates(self):
        trains = [np.array([1.0, 5.0]), np.array([3.0])]
        times, ids = spike_raster(trains)
        assert sorted(zip(times.tolist(), ids.tolist())) == [
            (1.0, 0), (3.0, 1), (5.0, 0),
        ]

    def test_empty(self):
        times, ids = spike_raster([])
        assert times.size == ids.size == 0
