"""Tests for Network / Population / Projection construction."""

import numpy as np
import pytest

from repro.snn.generators import PoissonSource
from repro.snn.network import Network, Population
from repro.snn.neuron import LIFModel


class TestPopulation:
    def test_requires_model_xor_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            Population(name="bad", size=3)
        with pytest.raises(ValueError, match="exactly one"):
            Population(
                name="bad", size=3, model=LIFModel(),
                source=PoissonSource(3, 1.0),
            )

    def test_source_size_mismatch_raises(self):
        with pytest.raises(ValueError, match="size"):
            Population(name="bad", size=5, source=PoissonSource(3, 1.0))

    def test_global_ids_before_registration_raise(self):
        pop = Population(name="p", size=3, model=LIFModel())
        with pytest.raises(RuntimeError):
            _ = pop.global_ids


class TestNetwork:
    def test_contiguous_id_ranges(self):
        net = Network()
        a = net.add_source("a", PoissonSource(3, 1.0))
        b = net.add_population("b", 4, LIFModel())
        c = net.add_population("c", 2, LIFModel())
        assert list(a.global_ids) == [0, 1, 2]
        assert list(b.global_ids) == [3, 4, 5, 6]
        assert list(c.global_ids) == [7, 8]
        assert net.n_neurons == 9

    def test_duplicate_name_raises(self):
        net = Network()
        net.add_population("x", 2, LIFModel())
        with pytest.raises(ValueError, match="duplicate"):
            net.add_population("x", 2, LIFModel())

    def test_connect_by_name(self):
        net = Network()
        net.add_source("in", PoissonSource(2, 1.0))
        net.add_population("out", 3, LIFModel())
        proj = net.connect("in", "out", weights=np.ones((2, 3)))
        assert proj.synapse_count() == 6

    def test_connect_shape_mismatch_raises(self):
        net = Network()
        net.add_source("in", PoissonSource(2, 1.0))
        net.add_population("out", 3, LIFModel())
        with pytest.raises(ValueError, match="shape"):
            net.connect("in", "out", weights=np.ones((3, 2)))

    def test_foreign_population_rejected(self):
        net1, net2 = Network("n1"), Network("n2")
        pop1 = net1.add_population("p", 2, LIFModel())
        net2.add_population("q", 2, LIFModel())
        with pytest.raises(ValueError, match="belong"):
            net2.connect(pop1, "q", weights=np.ones((2, 2)))

    def test_unknown_name_raises(self):
        net = Network()
        with pytest.raises(KeyError):
            net.population("ghost")

    def test_nonpositive_delay_raises(self):
        net = Network()
        net.add_population("a", 2, LIFModel())
        with pytest.raises(ValueError, match="delay"):
            net.connect("a", "a", weights=np.ones((2, 2)), delay_ms=0.0)

    def test_neuron_layers(self):
        net = Network()
        net.add_source("in", PoissonSource(2, 1.0), layer=0)
        net.add_population("h", 3, LIFModel(), layer=1)
        layers = net.neuron_layers()
        assert list(layers) == [0, 0, 1, 1, 1]

    def test_neuron_population_index(self):
        net = Network()
        net.add_source("in", PoissonSource(2, 1.0))
        net.add_population("h", 2, LIFModel())
        assert list(net.neuron_population()) == [0, 0, 1, 1]

    def test_edges_concatenate_projections(self):
        net = Network()
        net.add_source("in", PoissonSource(2, 1.0))
        net.add_population("h", 2, LIFModel())
        w = np.array([[1.0, 0.0], [0.0, 2.0]])
        net.connect("in", "h", weights=w)
        net.connect("h", "h", weights=np.array([[0.0, 3.0], [0.0, 0.0]]))
        src, dst, weight = net.edges()
        triples = set(zip(src.tolist(), dst.tolist(), weight.tolist()))
        assert triples == {(0, 2, 1.0), (1, 3, 2.0), (2, 3, 3.0)}

    def test_empty_network_edges(self):
        net = Network()
        net.add_population("solo", 2, LIFModel())
        src, dst, w = net.edges()
        assert src.size == dst.size == w.size == 0

    def test_synapse_count_sums(self):
        net = Network()
        net.add_source("in", PoissonSource(2, 1.0))
        net.add_population("h", 2, LIFModel())
        net.connect("in", "h", weights=np.ones((2, 2)))
        net.connect("h", "h", weights=np.eye(2))
        assert net.synapse_count() == 6

    def test_summary_mentions_populations(self):
        net = Network("demo")
        net.add_population("alpha", 2, LIFModel())
        assert "alpha" in net.summary()
