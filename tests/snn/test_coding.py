"""Tests for rate / temporal coding."""

import numpy as np
import pytest

from repro.snn.coding import (
    first_spike_decode,
    interspike_intervals,
    latency_encode,
    rate_decode,
    rate_encode,
)


class TestRateEncode:
    def test_linear_mapping(self):
        rates = rate_encode(np.array([0.0, 0.5, 1.0]), max_rate_hz=100.0)
        assert list(rates) == [0.0, 50.0, 100.0]

    def test_min_rate_floor(self):
        rates = rate_encode(np.array([0.0]), max_rate_hz=100.0, min_rate_hz=5.0)
        assert rates[0] == 5.0

    def test_clipping_out_of_range_values(self):
        rates = rate_encode(np.array([-1.0, 2.0]), max_rate_hz=10.0)
        assert list(rates) == [0.0, 10.0]

    def test_bad_bounds_raise(self):
        with pytest.raises(ValueError):
            rate_encode(np.array([0.5]), max_rate_hz=10.0, min_rate_hz=20.0)


class TestRateRoundTrip:
    def test_encode_decode_identity(self):
        values = np.array([0.1, 0.4, 0.9])
        rates = rate_encode(values, max_rate_hz=100.0)
        # Build exact trains at those rates over 1 s.
        trains = [np.arange(0.0, 1000.0, 1000.0 / r) for r in rates]
        decoded = rate_decode(trains, duration_ms=1000.0, max_rate_hz=100.0)
        assert np.allclose(decoded, values, atol=0.02)


class TestLatencyEncode:
    def test_stronger_spikes_earlier(self):
        trains = latency_encode(np.array([1.0, 0.5, 0.0]), window_ms=20.0)
        assert trains[0][0] < trains[1][0] < trains[2][0]

    def test_window_bounds(self):
        trains = latency_encode(np.array([1.0, 0.0]), window_ms=20.0,
                                t_offset_ms=5.0)
        assert trains[0][0] == 5.0
        assert trains[1][0] == 25.0

    def test_repeats(self):
        trains = latency_encode(
            np.array([0.5]), window_ms=10.0, repeat_period_ms=100.0, n_repeats=3
        )
        assert trains[0].size == 3
        assert np.allclose(np.diff(trains[0]), 100.0)

    def test_repeat_without_period_raises(self):
        with pytest.raises(ValueError):
            latency_encode(np.array([0.5]), n_repeats=2)


class TestFirstSpikeDecode:
    def test_round_trip(self):
        values = np.array([0.9, 0.3, 0.6])
        trains = latency_encode(values, window_ms=20.0)
        decoded = first_spike_decode(trains, window_ms=20.0)
        assert np.allclose(decoded, values)

    def test_silent_neuron_decodes_zero(self):
        decoded = first_spike_decode([np.empty(0)], window_ms=20.0)
        assert decoded[0] == 0.0


class TestInterspikeIntervals:
    def test_regular_train(self):
        isis = interspike_intervals(np.array([0.0, 10.0, 20.0]))
        assert list(isis) == [10.0, 10.0]

    def test_unsorted_input_handled(self):
        isis = interspike_intervals(np.array([20.0, 0.0, 10.0]))
        assert list(isis) == [10.0, 10.0]

    @pytest.mark.parametrize("train", [[], [5.0]])
    def test_short_trains_empty(self, train):
        assert interspike_intervals(np.asarray(train)).size == 0
