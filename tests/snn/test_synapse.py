"""Tests for connectivity builders."""

import numpy as np
import pytest

from repro.snn.synapse import (
    all_to_all,
    count_synapses,
    distance_dependent,
    gaussian_kernel_2d,
    one_to_one,
    sparse_random,
)


class TestAllToAll:
    def test_shape_and_value(self):
        w = all_to_all(3, 4, weight=2.0)
        assert w.shape == (3, 4)
        assert (w == 2.0).all()

    def test_no_self_zeroes_diagonal(self):
        w = all_to_all(4, 4, weight=1.0, allow_self=False)
        assert np.diag(w).sum() == 0
        assert count_synapses(w) == 12

    def test_no_self_ignored_for_rectangular(self):
        w = all_to_all(2, 3, allow_self=False)
        assert count_synapses(w) == 6

    def test_zero_size_raises(self):
        with pytest.raises(ValueError):
            all_to_all(0, 3)


class TestOneToOne:
    def test_identity_pattern(self):
        w = one_to_one(5, weight=3.0)
        assert count_synapses(w) == 5
        assert (np.diag(w) == 3.0).all()


class TestSparseRandom:
    def test_probability_zero_empty(self):
        w = sparse_random(10, 10, probability=0.0, seed=0)
        assert count_synapses(w) == 0

    def test_probability_one_full(self):
        w = sparse_random(10, 10, probability=1.0, seed=0)
        assert count_synapses(w) == 100

    def test_density_close_to_probability(self):
        w = sparse_random(100, 100, probability=0.3, seed=1)
        density = count_synapses(w) / w.size
        assert 0.25 < density < 0.35

    def test_deterministic_given_seed(self):
        a = sparse_random(20, 20, probability=0.5, seed=9)
        b = sparse_random(20, 20, probability=0.5, seed=9)
        assert np.array_equal(a, b)

    def test_negative_weight_keeps_sign(self):
        w = sparse_random(30, 30, probability=0.5, weight=-2.0,
                          weight_std=0.5, seed=2)
        nz = w[w != 0]
        assert (nz <= 0).all()

    def test_no_self_connections(self):
        w = sparse_random(15, 15, probability=1.0, allow_self=False, seed=0)
        assert np.diag(w).sum() == 0

    def test_bad_probability_raises(self):
        with pytest.raises(ValueError):
            sparse_random(5, 5, probability=1.5)


class TestGaussianKernel:
    def test_center_strongest(self):
        w = gaussian_kernel_2d((5, 5), sigma=1.0, weight=1.0, radius=2)
        center = 2 * 5 + 2
        row = w[center]
        assert row[center] == row.max() == 1.0

    def test_kernel_respects_radius(self):
        w = gaussian_kernel_2d((7, 7), sigma=1.0, weight=1.0, radius=1)
        center = 3 * 7 + 3
        targets = np.nonzero(w[center])[0]
        for t in targets:
            r, c = divmod(t, 7)
            assert abs(r - 3) <= 1 and abs(c - 3) <= 1

    def test_edge_pixels_have_fewer_targets(self):
        w = gaussian_kernel_2d((5, 5), sigma=1.0, radius=2)
        corner_targets = count_synapses(w[0:1])
        center_targets = count_synapses(w[12:13])
        assert corner_targets < center_targets

    def test_symmetric_weights(self):
        w = gaussian_kernel_2d((6, 6), sigma=1.5, radius=2)
        assert np.allclose(w, w.T)


class TestDistanceDependent:
    def test_nearby_more_likely_than_far(self):
        n = 64
        pos = np.array([(x, y, z) for x in range(4) for y in range(4)
                        for z in range(4)], dtype=float)
        w = distance_dependent(pos, pos, lambda_=2.0, probability_scale=1.0,
                               seed=3)
        dist = np.sqrt(((pos[:, None] - pos[None, :]) ** 2).sum(-1))
        near = (w != 0) & (dist < 1.5)
        far = (w != 0) & (dist > 4.0)
        near_rate = near.sum() / max((dist < 1.5).sum(), 1)
        far_rate = far.sum() / max((dist > 4.0).sum(), 1)
        assert near_rate > far_rate

    def test_deterministic_given_seed(self):
        pos = np.random.default_rng(0).random((10, 3))
        a = distance_dependent(pos, pos, lambda_=1.0, seed=5)
        b = distance_dependent(pos, pos, lambda_=1.0, seed=5)
        assert np.array_equal(a, b)

    def test_invalid_lambda_raises(self):
        pos = np.zeros((3, 3))
        with pytest.raises(ValueError):
            distance_dependent(pos, pos, lambda_=0.0)
