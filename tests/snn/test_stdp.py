"""Tests for pair-based STDP."""

import numpy as np
import pytest

from repro.snn.generators import ScheduledSource
from repro.snn.network import Network
from repro.snn.neuron import LIFModel
from repro.snn.simulator import Simulation
from repro.snn.stdp import STDPRule


class TestSTDPRuleUnit:
    def test_pre_before_post_potentiates(self):
        rule = STDPRule(a_plus=0.1, a_minus=0.1, w_max=1.0)
        state = rule.allocate_state(1, 1)
        w = np.array([[0.5]])
        # Pre spike at t, post spike at t+5 ms.
        rule.step(state, w, pre_spikes=np.array([0]), post_spikes=np.array([], int), dt=1.0)
        for _ in range(4):
            rule.step(state, w, np.array([], int), np.array([], int), dt=1.0)
        rule.step(state, w, np.array([], int), post_spikes=np.array([0]), dt=1.0)
        assert w[0, 0] > 0.5

    def test_post_before_pre_depresses(self):
        rule = STDPRule(a_plus=0.1, a_minus=0.1, w_max=1.0)
        state = rule.allocate_state(1, 1)
        w = np.array([[0.5]])
        rule.step(state, w, np.array([], int), post_spikes=np.array([0]), dt=1.0)
        for _ in range(4):
            rule.step(state, w, np.array([], int), np.array([], int), dt=1.0)
        rule.step(state, w, pre_spikes=np.array([0]), post_spikes=np.array([], int), dt=1.0)
        assert w[0, 0] < 0.5

    def test_weights_bounded(self):
        rule = STDPRule(a_plus=0.5, a_minus=0.5, w_max=1.0)
        state = rule.allocate_state(2, 2)
        w = np.full((2, 2), 0.9)
        for _ in range(50):
            rule.step(state, w, np.array([0, 1]), np.array([0, 1]), dt=1.0)
        assert (w >= 0).all() and (w <= 1.0).all()

    def test_absent_synapse_never_created(self):
        rule = STDPRule(a_plus=0.5, a_minus=0.5)
        state = rule.allocate_state(2, 2)
        w = np.array([[0.5, 0.0], [0.0, 0.5]])
        for _ in range(20):
            rule.step(state, w, np.array([0, 1]), np.array([0, 1]), dt=1.0)
        assert w[0, 1] == 0.0 and w[1, 0] == 0.0

    def test_closer_pairing_changes_more(self):
        def potentiation(gap_ticks: int) -> float:
            rule = STDPRule(a_plus=0.1, a_minus=0.0, w_max=1.0)
            state = rule.allocate_state(1, 1)
            w = np.array([[0.5]])
            rule.step(state, w, np.array([0]), np.array([], int), dt=1.0)
            for _ in range(gap_ticks - 1):
                rule.step(state, w, np.array([], int), np.array([], int), dt=1.0)
            rule.step(state, w, np.array([], int), np.array([0]), dt=1.0)
            return w[0, 0] - 0.5

        assert potentiation(2) > potentiation(10) > 0

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            STDPRule(tau_plus=0.0)
        with pytest.raises(ValueError):
            STDPRule(a_plus=-0.1)


class TestSTDPInSimulation:
    def test_plastic_projection_changes_weights(self):
        net = Network()
        net.add_source("in", ScheduledSource([np.arange(0.0, 200.0, 10.0)]))
        net.add_population("out", 1, LIFModel(), layer=1)
        proj = net.connect(
            "in", "out", weights=np.array([[400.0]]), plastic=True
        )
        # w_max above initial weight so potentiation is possible.
        rule = STDPRule(a_plus=0.05, a_minus=0.01, w_max=500.0)
        before = proj.weights.copy()
        Simulation(net, seed=0, stdp=rule).run(200.0)
        assert not np.array_equal(before, proj.weights)

    def test_learning_flag_freezes_weights(self):
        net = Network()
        net.add_source("in", ScheduledSource([np.arange(0.0, 200.0, 10.0)]))
        net.add_population("out", 1, LIFModel(), layer=1)
        proj = net.connect(
            "in", "out", weights=np.array([[400.0]]), plastic=True
        )
        rule = STDPRule(a_plus=0.05, a_minus=0.01, w_max=500.0)
        before = proj.weights.copy()
        Simulation(net, seed=0, stdp=rule).run(200.0, learning=False)
        assert np.array_equal(before, proj.weights)

    def test_non_plastic_projection_untouched(self):
        net = Network()
        net.add_source("in", ScheduledSource([np.arange(0.0, 200.0, 10.0)]))
        net.add_population("out", 1, LIFModel(), layer=1)
        proj = net.connect("in", "out", weights=np.array([[400.0]]))
        rule = STDPRule(a_plus=0.05, a_minus=0.05, w_max=500.0)
        before = proj.weights.copy()
        Simulation(net, seed=0, stdp=rule).run(200.0)
        assert np.array_equal(before, proj.weights)
