"""Columnar vs reference SNN engine: bit-identical spike trains.

The columnar engine (precomputed source spikes, fused LIF stepping,
CSR/dense delivery, one sort/split at the end) must reproduce the
reference per-tick loop exactly — spike times AND learned STDP weights —
across dt, delays, source types, neuron models, sparsity regimes and
learning configurations.
"""

import numpy as np
import pytest

from repro.snn import simulator as simulator_module
from repro.snn.generators import (
    PoissonSource,
    RegularSource,
    ScheduledSource,
    SpikeSource,
)
from repro.snn.network import Network
from repro.snn.neuron import AdaptiveLIFModel, IzhikevichModel, LIFModel
from repro.snn.simulator import Simulation, run_network
from repro.snn.stdp import STDPRule


def assert_engines_identical(net, duration, dt=1.0, seed=7, stdp=None,
                             learning=True):
    """Run both engines from identical initial state; compare everything."""
    saved_weights = [proj.weights.copy() for proj in net.projections]
    ref = Simulation(net, dt=dt, seed=seed, stdp=stdp,
                     engine="reference").run(duration, learning=learning)
    ref_weights = [proj.weights.copy() for proj in net.projections]
    for proj, w in zip(net.projections, saved_weights):
        proj.weights[...] = w
    col = Simulation(net, dt=dt, seed=seed, stdp=stdp,
                     engine="columnar").run(duration, learning=learning)
    assert ref.duration_ms == col.duration_ms
    assert ref.dt == col.dt
    for gid, (a, b) in enumerate(zip(ref.spike_times, col.spike_times)):
        assert np.array_equal(a, b), (
            f"neuron {gid}: reference {a.size} spikes vs columnar {b.size}"
        )
    for proj, w_ref in zip(net.projections, ref_weights):
        assert np.array_equal(proj.weights, w_ref), (
            f"projection {proj.describe()}: weights diverged"
        )
    assert np.array_equal(ref.spike_counts(), col.spike_counts())
    return ref, col


def _lif_recurrent_net(seed=0):
    rng = np.random.default_rng(seed)
    net = Network("lif-recurrent")
    net.add_source("pa", PoissonSource(12, 80.0))
    net.add_source("pb", PoissonSource(8, np.linspace(20.0, 120.0, 8)))
    net.add_population("x", 20, LIFModel(), bias_current=2.0)
    net.add_population("y", 10, LIFModel(tau_m=30.0, t_ref=3.0,
                                         resistance=2.0))
    net.add_population("z", 6, LIFModel(t_ref=0.0))
    net.connect("pa", "x", weights=rng.uniform(0, 60, (12, 20)))
    net.connect("pb", "x", weights=rng.uniform(0, 40, (8, 20)), delay_ms=2.0)
    net.connect("x", "y", weights=rng.uniform(0, 80, (20, 10)), delay_ms=3.0)
    net.connect("y", "x", weights=rng.uniform(-40, 0, (10, 20)), delay_ms=1.0)
    net.connect("y", "z", weights=rng.uniform(0, 120, (10, 6)))
    return net


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("dt", [1.0, 0.5, 0.25])
    def test_multi_pop_recurrent_lif(self, dt):
        assert_engines_identical(_lif_recurrent_net(), 200.0, dt=dt)

    @pytest.mark.parametrize("seed", [0, 1, 42])
    def test_seed_sweep(self, seed):
        assert_engines_identical(_lif_recurrent_net(), 150.0, seed=seed)

    @pytest.mark.parametrize("t_ref", [0.7, 1.0, 2.0])
    def test_non_dyadic_dt_refractory_residue(self, t_ref):
        """Regression: at dt=0.1, sequential max(r - dt, 0) countdowns
        leave an eps-scale positive refractory residue past
        ceil(t_ref / dt) ticks; the fused fast path must not re-enable
        such neurons one tick before the reference engine does."""
        rng = np.random.default_rng(2)
        net = Network("residue")
        net.add_source("p", PoissonSource(8, 90.0))
        net.add_population("o", 10, LIFModel(t_ref=t_ref))
        net.connect("p", "o", weights=rng.uniform(20, 90, (8, 10)))
        assert_engines_identical(net, 40.0, dt=0.1)

    @pytest.mark.parametrize("delay", [1.0, 2.0, 5.0])
    def test_delay_sweep(self, delay):
        rng = np.random.default_rng(3)
        net = Network("delays")
        net.add_source("p", PoissonSource(10, 90.0))
        net.add_population("o", 12, LIFModel())
        net.connect("p", "o", weights=rng.uniform(0, 70, (10, 12)),
                    delay_ms=delay)
        net.connect("o", "o", weights=rng.uniform(-20, 20, (12, 12)),
                    delay_ms=delay)
        assert_engines_identical(net, 200.0)

    def test_scheduled_and_regular_sources(self):
        net = Network("sched-reg")
        net.add_source("sch", ScheduledSource(
            [[1.0, 5.5, 5.7, 9.0], [], [2.0, 2.5, 30.0]]
        ))
        net.add_source("reg", RegularSource(
            4, period_ms=7.0, phase_ms=[0.0, 1.0, 2.0, 3.0]
        ))
        net.add_population("o", 6, LIFModel())
        net.connect("sch", "o", weights=np.full((3, 6), 200.0))
        net.connect("reg", "o", weights=np.full((4, 6), 100.0), delay_ms=2.0)
        assert_engines_identical(net, 60.0)
        assert_engines_identical(net, 60.0, dt=0.5)

    def test_izhikevich_and_adaptive_lif_fall_back(self):
        rng = np.random.default_rng(5)
        net = Network("fallback")
        net.add_source("p", PoissonSource(10, 100.0))
        net.add_population("iz", 8, IzhikevichModel())
        net.add_population("al", 8, AdaptiveLIFModel())
        net.add_population("l", 8, LIFModel())
        net.connect("p", "iz", weights=rng.uniform(0, 25, (10, 8)))
        net.connect("p", "al", weights=rng.uniform(0, 80, (10, 8)))
        net.connect("iz", "l", weights=rng.uniform(0, 90, (8, 8)),
                    delay_ms=2.0)
        net.connect("al", "l", weights=rng.uniform(0, 90, (8, 8)))
        assert_engines_identical(net, 250.0)

    @pytest.mark.parametrize("learning", [True, False])
    def test_stdp_spike_trains_and_weights(self, learning):
        rng = np.random.default_rng(6)
        net = Network("stdp")
        net.add_source("p", PoissonSource(15, 90.0))
        net.add_population("e", 10, LIFModel())
        net.connect("p", "e", weights=rng.uniform(20, 60, (15, 10)),
                    plastic=True)
        net.connect("e", "e", weights=rng.uniform(-10, 10, (10, 10)),
                    delay_ms=2.0)
        assert_engines_identical(
            net, 250.0,
            stdp=STDPRule(a_plus=0.05, a_minus=0.06, w_max=80.0),
            learning=learning,
        )

    def test_sparse_projection_takes_csr_path(self):
        rng = np.random.default_rng(8)
        net = Network("sparse")
        net.add_source("p", PoissonSource(64, 70.0))
        net.add_population("h", 300, LIFModel())
        w_in = rng.uniform(0, 100, (64, 300)) * (rng.random((64, 300)) < 0.1)
        w_rec = rng.uniform(0, 10, (300, 300)) * (rng.random((300, 300)) < 0.05)
        np.fill_diagonal(w_rec, 0.0)
        net.connect("p", "h", weights=w_in)
        net.connect("h", "h", weights=w_rec, delay_ms=2.0)
        assert w_in.size >= simulator_module.CSR_MIN_DENSE_SIZE
        assert_engines_identical(net, 150.0)

    def test_dense_vs_csr_dispatch_toggle(self, monkeypatch):
        """Forcing every projection down either path changes nothing."""
        net = _lif_recurrent_net(seed=9)

        monkeypatch.setattr(simulator_module, "CSR_MIN_DENSE_SIZE", 0)
        monkeypatch.setattr(simulator_module, "CSR_DENSITY_THRESHOLD", 1.0)
        all_csr = Simulation(net, seed=7, engine="columnar").run(150.0)

        monkeypatch.setattr(simulator_module, "CSR_MIN_DENSE_SIZE", 10**12)
        all_dense = Simulation(net, seed=7, engine="columnar").run(150.0)

        for a, b in zip(all_csr.spike_times, all_dense.spike_times):
            assert np.array_equal(a, b)

    def test_custom_source_falls_back_to_per_tick_sampling(self):
        class EveryOther(SpikeSource):
            def __init__(self, size):
                self.size = size

            def sample(self, step, dt, rng):
                draw = int(rng.integers(0, 2))  # consumes the stream
                if (step + draw) % 2 == 0:
                    return np.arange(self.size)
                return np.empty(0, dtype=np.int64)

        net = Network("custom")
        net.add_source("c", EveryOther(3))
        net.add_source("p", PoissonSource(5, 60.0))
        net.add_population("o", 4, LIFModel())
        net.connect("c", "o", weights=np.full((3, 4), 100.0))
        net.connect("p", "o", weights=np.full((5, 4), 60.0))
        assert_engines_identical(net, 120.0)

    def test_bias_only_and_idle_networks(self):
        net = Network("bias")
        net.add_population("b", 3, LIFModel(), bias_current=30.0)
        ref, col = assert_engines_identical(net, 100.0)
        assert col.total_spikes() > 0

        idle = Network("idle")
        idle.add_population("q", 2, LIFModel())
        _, col = assert_engines_identical(idle, 50.0)
        assert col.total_spikes() == 0

    def test_source_only_network(self):
        net = Network("src-only")
        net.add_source("s", ScheduledSource([np.arange(0.0, 100.0, 10.0)]))
        _, col = assert_engines_identical(net, 100.0)
        assert col.spike_times[0].size == 10


class TestColumnarResult:
    def test_counts_cached_and_consistent(self):
        net = _lif_recurrent_net()
        result = Simulation(net, seed=1, engine="columnar").run(100.0)
        assert result.counts is not None
        assert np.array_equal(
            result.counts,
            np.asarray([t.size for t in result.spike_times]),
        )

    def test_spike_times_sorted_per_neuron(self):
        net = _lif_recurrent_net()
        result = Simulation(net, seed=1, engine="columnar").run(100.0)
        for t in result.spike_times:
            assert np.all(np.diff(t) > 0)

    def test_unknown_engine_rejected(self):
        net = Network("n")
        net.add_population("a", 1, LIFModel())
        with pytest.raises(ValueError, match="engine"):
            Simulation(net, engine="warp")

    def test_run_network_engine_kwarg(self):
        net = _lif_recurrent_net()
        a = run_network(net, 80.0, seed=2, engine="columnar")
        b = run_network(net, 80.0, seed=2, engine="reference")
        for x, y in zip(a.spike_times, b.spike_times):
            assert np.array_equal(x, y)


class TestSampleTicks:
    """The vectorized source plans must match per-tick sampling exactly."""

    def test_scheduled_source_plan_and_cursors(self):
        times = [[0.4, 1.0, 1.1, 7.7], [], [0.0, 99.0]]
        a, b = ScheduledSource(times), ScheduledSource(times)
        n_steps, dt = 20, 0.5
        per_tick = [b.sample(step, dt, None) for step in range(n_steps)]
        ids, ticks = a.sample_ticks(n_steps, dt)
        expect_ids, expect_ticks = [], []
        for step, fired in enumerate(per_tick):
            expect_ids.extend(int(i) for i in fired)
            expect_ticks.extend([step] * len(fired))
        order = np.lexsort((expect_ids, expect_ticks))
        assert np.array_equal(ids, np.asarray(expect_ids)[order])
        assert np.array_equal(ticks, np.asarray(expect_ticks)[order])
        assert np.array_equal(a._cursors, b._cursors)

    def test_regular_source_plan(self):
        a = RegularSource(5, period_ms=3.0, phase_ms=[0.0, 0.5, 1.0, 1.5, 2.0])
        n_steps, dt = 40, 0.5
        ids, ticks = a.sample_ticks(n_steps, dt)
        got = {(int(t), int(i)) for t, i in zip(ticks, ids)}
        expected = set()
        for step in range(n_steps):
            for i in a.sample(step, dt, None):
                expected.add((step, int(i)))
        assert got == expected

    def test_poisson_batched_draw_matches_per_tick_stream(self):
        """One (ticks, total) matrix consumes the PCG stream exactly like
        per-tick, per-source draws in population order."""
        sources = [PoissonSource(7, 80.0), PoissonSource(3, 40.0)]
        n_steps = 50
        rng = np.random.default_rng(123)
        per_tick = [
            [src.sample(step, 1.0, rng) for src in sources]
            for step in range(n_steps)
        ]
        rng2 = np.random.default_rng(123)
        u = rng2.random(size=(n_steps, 10))
        p = np.concatenate([src.rates_hz * (1.0 / 1000.0) for src in sources])
        for step in range(n_steps):
            fired_a = np.nonzero(u[step, :7] < p[:7])[0]
            fired_b = np.nonzero(u[step, 7:] < p[7:])[0]
            assert np.array_equal(fired_a, per_tick[step][0])
            assert np.array_equal(fired_b, per_tick[step][1])
