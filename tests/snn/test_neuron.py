"""Tests for LIF and Izhikevich neuron dynamics."""

import numpy as np
import pytest

from repro.snn.neuron import (
    IZHIKEVICH_PRESETS,
    IzhikevichModel,
    LIFModel,
)


class TestLIFModel:
    def test_resting_neuron_never_spikes(self):
        model = LIFModel()
        state = model.allocate_state(4)
        for _ in range(200):
            spiked = model.step(state, np.zeros(4), dt=1.0)
            assert not spiked.any()
        assert np.allclose(state.v, model.v_rest)

    def test_strong_current_spikes(self):
        model = LIFModel()
        state = model.allocate_state(1)
        fired = False
        for _ in range(100):
            fired = fired or model.step(state, np.array([100.0]), dt=1.0).any()
        assert fired

    def test_subthreshold_current_never_spikes(self):
        model = LIFModel()
        # Steady-state v = v_rest + R*I; keep below threshold gap (15 mV).
        state = model.allocate_state(1)
        for _ in range(500):
            spiked = model.step(state, np.array([10.0]), dt=1.0)
            assert not spiked.any()

    def test_reset_after_spike(self):
        model = LIFModel()
        state = model.allocate_state(1)
        for _ in range(100):
            if model.step(state, np.array([200.0]), dt=1.0).any():
                break
        assert state.v[0] == model.v_reset

    def test_refractory_blocks_integration(self):
        model = LIFModel(t_ref=5.0)
        state = model.allocate_state(1)
        # Drive to spike.
        while not model.step(state, np.array([500.0]), dt=1.0).any():
            pass
        v_after_spike = state.v[0]
        # During refractoriness the membrane must not move despite input.
        spiked = model.step(state, np.array([500.0]), dt=1.0)
        assert not spiked.any()
        assert state.v[0] == v_after_spike

    def test_refractory_period_length(self):
        model = LIFModel(t_ref=3.0)
        state = model.allocate_state(1)
        while not model.step(state, np.array([500.0]), dt=1.0).any():
            pass
        gaps = 0
        while not model.step(state, np.array([500.0]), dt=1.0).any():
            gaps += 1
        # 3 ms refractory at 1 ms ticks: 3 blocked steps, then integration
        # resumes and the strong current fires within a step or two.
        assert gaps >= 3

    def test_vectorized_independence(self):
        model = LIFModel()
        state = model.allocate_state(2)
        current = np.array([0.0, 120.0])
        fired_any = np.zeros(2, dtype=bool)
        for _ in range(100):
            fired_any |= model.step(state, current, dt=1.0)
        assert not fired_any[0] and fired_any[1]

    def test_invalid_thresholds_raise(self):
        with pytest.raises(ValueError):
            LIFModel(v_thresh=-80.0, v_reset=-70.0)

    def test_negative_tau_raises(self):
        with pytest.raises(ValueError):
            LIFModel(tau_m=-1.0)

    def test_negative_refractory_raises(self):
        with pytest.raises(ValueError):
            LIFModel(t_ref=-1.0)


class TestIzhikevichModel:
    def test_resting_silence(self):
        model = IzhikevichModel()
        state = model.allocate_state(3)
        for _ in range(300):
            assert not model.step(state, np.zeros(3), dt=1.0).any()

    def test_dc_current_produces_regular_spiking(self):
        model = IzhikevichModel()  # regular spiking
        state = model.allocate_state(1)
        spikes = 0
        for _ in range(500):
            spikes += int(model.step(state, np.array([10.0]), dt=1.0).any())
        assert 2 <= spikes <= 60  # regular spiking, not bursting/silent

    def test_reset_to_c(self):
        model = IzhikevichModel()
        state = model.allocate_state(1)
        for _ in range(500):
            if model.step(state, np.array([15.0]), dt=1.0).any():
                break
        assert state.v[0] == model.c

    def test_recovery_variable_increments_on_spike(self):
        model = IzhikevichModel()
        state = model.allocate_state(1)
        u_before = state.extra["u"][0]
        for _ in range(500):
            if model.step(state, np.array([15.0]), dt=1.0).any():
                break
        assert state.extra["u"][0] > u_before

    def test_fast_spiking_fires_more(self):
        rs, fs = IZHIKEVICH_PRESETS["regular_spiking"], IZHIKEVICH_PRESETS["fast_spiking"]
        counts = {}
        for name, model in (("rs", rs), ("fs", fs)):
            state = model.allocate_state(1)
            n = 0
            for _ in range(400):
                n += int(model.step(state, np.array([10.0]), dt=1.0).any())
            counts[name] = n
        assert counts["fs"] > counts["rs"]

    def test_presets_complete(self):
        assert set(IZHIKEVICH_PRESETS) == {
            "regular_spiking",
            "intrinsically_bursting",
            "chattering",
            "fast_spiking",
            "low_threshold_spiking",
        }

    def test_no_overflow_under_huge_current(self):
        model = IzhikevichModel()
        state = model.allocate_state(1)
        for _ in range(100):
            model.step(state, np.array([1e4]), dt=1.0)
        assert np.isfinite(state.v).all()
