"""Integration tests: the whole Fig. 4 flow on real applications.

These run the actual SNN simulations (short durations), the partitioners
and the cycle-accurate NoC — the same code path the benchmarks use, with
assertions on the paper's qualitative claims.
"""

import numpy as np
import pytest

from repro.apps import build_application
from repro.core import PSOConfig, compare_methods
from repro.framework import run_pipeline
from repro.hardware.presets import custom

FAST_PSO = PSOConfig(n_particles=40, n_iterations=30)


@pytest.fixture(scope="module")
def hello_graph():
    return build_application("hello_world", seed=11, duration_ms=400.0)


@pytest.fixture(scope="module")
def synth_graph():
    return build_application("synth_2x40", seed=11, duration_ms=400.0)


class TestHelloWorldEndToEnd:
    def test_pso_beats_traffic_blind_baselines(self, hello_graph):
        arch = custom(n_crossbars=4, neurons_per_crossbar=40)
        results = compare_methods(
            hello_graph, arch, methods=("neutrams", "pacman", "pso"),
            seed=2, pso_config=FAST_PSO,
        )
        assert results["pso"].fitness <= results["pacman"].fitness
        assert results["pso"].fitness <= results["neutrams"].fitness

    def test_noc_simulation_delivers_everything(self, hello_graph):
        arch = custom(n_crossbars=4, neurons_per_crossbar=40)
        result = run_pipeline(hello_graph, arch, method="pso", seed=2,
                              pso_config=FAST_PSO)
        assert result.noc_stats.undelivered_count == 0
        assert result.report.max_latency_cycles > 0

    def test_less_traffic_means_less_energy_and_latency(self, hello_graph):
        arch = custom(n_crossbars=4, neurons_per_crossbar=40)
        pso = run_pipeline(hello_graph, arch, method="pso", seed=2,
                           pso_config=FAST_PSO)
        rnd = run_pipeline(hello_graph, arch, method="random", seed=2)
        assert pso.report.global_energy_pj < rnd.report.global_energy_pj
        assert (pso.report.max_latency_cycles
                <= rnd.report.max_latency_cycles)


class TestSyntheticEndToEnd:
    def test_all_methods_feasible_and_measured(self, synth_graph):
        arch = custom(n_crossbars=4, neurons_per_crossbar=32)
        for method in ("random", "neutrams", "pacman", "greedy"):
            result = run_pipeline(synth_graph, arch, method=method, seed=0)
            assert result.noc_stats.undelivered_count == 0

    def test_interconnect_family_changes_latency_not_delivery(
        self, synth_graph
    ):
        for interconnect in ("tree", "mesh", "star"):
            arch = custom(n_crossbars=4, neurons_per_crossbar=32,
                          interconnect=interconnect)
            result = run_pipeline(synth_graph, arch, method="pacman")
            assert result.noc_stats.undelivered_count == 0


class TestTemporalCodingEndToEnd:
    def test_heartbeat_pipeline(self):
        graph = build_application("heartbeat", seed=5, duration_ms=2000.0)
        arch = custom(n_crossbars=4, neurons_per_crossbar=32)
        result = run_pipeline(graph, arch, method="pso", seed=1,
                              pso_config=FAST_PSO)
        assert result.noc_stats.undelivered_count == 0
        assert result.graph.coding == "temporal"

    def test_pso_reduces_isi_distortion_vs_random(self):
        graph = build_application("heartbeat", seed=5, duration_ms=2500.0)
        arch = custom(n_crossbars=8, neurons_per_crossbar=16,
                      cycles_per_ms=5.0)
        pso = run_pipeline(graph, arch, method="pso", seed=1,
                           pso_config=FAST_PSO)
        rnd = run_pipeline(graph, arch, method="random", seed=1)
        assert (pso.report.isi_distortion_cycles
                <= rnd.report.isi_distortion_cycles)


class TestArchitectureScalingEndToEnd:
    def test_bigger_crossbars_less_global_traffic(self, hello_graph):
        small = custom(n_crossbars=8, neurons_per_crossbar=16)
        large = custom(n_crossbars=2, neurons_per_crossbar=64)
        r_small = run_pipeline(hello_graph, small, method="pso", seed=0,
                               pso_config=FAST_PSO)
        r_large = run_pipeline(hello_graph, large, method="pso", seed=0,
                               pso_config=FAST_PSO)
        assert r_large.report.global_spikes <= r_small.report.global_spikes

    def test_single_crossbar_trivial(self, hello_graph):
        arch = custom(n_crossbars=1, neurons_per_crossbar=256)
        result = run_pipeline(hello_graph, arch, method="pso", seed=0,
                              pso_config=PSOConfig(n_particles=4,
                                                   n_iterations=2))
        assert result.report.global_spikes == 0.0
        assert result.noc_stats.n_injected == 0


class TestDeterminism:
    def test_same_seed_same_report(self, synth_graph):
        arch = custom(n_crossbars=4, neurons_per_crossbar=32)
        a = run_pipeline(synth_graph, arch, method="pso", seed=9,
                         pso_config=FAST_PSO)
        b = run_pipeline(synth_graph, arch, method="pso", seed=9,
                         pso_config=FAST_PSO)
        assert a.report.to_dict() == b.report.to_dict()
        assert np.array_equal(a.mapping.assignment, b.mapping.assignment)
