"""Tests for RNG helpers: determinism, independence, coercion."""

import numpy as np
import pytest

from repro.utils.rng import default_rng, derive_seed, spawn_rngs


class TestDefaultRng:
    def test_int_seed_is_deterministic(self):
        a = default_rng(42).random(8)
        b = default_rng(42).random(8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = default_rng(1).random(8)
        b = default_rng(2).random(8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero(self):
        assert len(spawn_rngs(0, 0)) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_independent(self):
        r1, r2 = spawn_rngs(7, 2)
        assert not np.array_equal(r1.random(16), r2.random(16))

    def test_deterministic_from_seed(self):
        a = [g.random() for g in spawn_rngs(3, 4)]
        b = [g.random() for g in spawn_rngs(3, 4)]
        assert a == b

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(5), 3)
        assert len(children) == 3


class TestDeriveSeed:
    def test_none_stays_none(self):
        assert derive_seed(None, 3) is None

    def test_deterministic(self):
        assert derive_seed(10, 1) == derive_seed(10, 1)

    def test_salt_changes_seed(self):
        assert derive_seed(10, 1) != derive_seed(10, 2)

    def test_from_generator_is_int(self):
        s = derive_seed(np.random.default_rng(0), 0)
        assert isinstance(s, int)
