"""Tests for the plain-text table formatter."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_headers_and_rows_present(self):
        out = format_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert len(lines) == 4  # header + separator + 2 rows

    def test_alignment_widths(self):
        out = format_table(["col"], [["a-very-long-cell"]])
        header, sep, row = out.splitlines()
        assert len(header) == len(sep) == len(row)

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159265]])
        assert "3.142" in out

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert out.splitlines()[0].strip() == "a"

    def test_mixed_types(self):
        out = format_table(["k", "v"], [["name", 1], ["rate", 2.5]])
        assert "name" in out and "2.5" in out
