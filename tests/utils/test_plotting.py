"""Tests for ASCII charts."""

import pytest

from repro.utils.plotting import (
    bar_chart,
    grouped_bar_chart,
    line_plot,
    sparkline,
)


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_value_no_bar(self):
        out = bar_chart(["z"], [0.0])
        assert "#" not in out

    def test_title(self):
        assert bar_chart(["a"], [1.0], title="T").splitlines()[0] == "T"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_empty(self):
        assert "(empty)" in bar_chart([], [])


class TestGroupedBarChart:
    def test_structure(self):
        out = grouped_bar_chart(
            ["g1", "g2"],
            {"pso": [1.0, 2.0], "pacman": [2.0, 4.0]},
        )
        assert "g1:" in out and "g2:" in out
        assert out.count("pso") == 2

    def test_series_length_validated(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["g1"], {"s": [1.0, 2.0]})


class TestLinePlot:
    def test_dimensions(self):
        out = line_plot([0, 1, 2], [0, 1, 4], height=5, width=20)
        rows = out.splitlines()
        assert len(rows) == 5 + 2  # grid + axis + x labels
        assert any("*" in r for r in rows)

    def test_extremes_marked(self):
        out = line_plot([0, 10], [0, 100], height=4, width=10)
        rows = out.splitlines()
        assert "*" in rows[0]       # max lands on the top row
        assert "*" in rows[3]       # min lands on the bottom grid row

    def test_constant_series(self):
        out = line_plot([0, 1], [5, 5], height=3, width=8)
        assert "*" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            line_plot([1], [1, 2])

    def test_empty(self):
        assert "(empty)" in line_plot([], [])


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
