"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_index_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_nonnegative("x", -1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", bad)


class TestCheckShape:
    def test_accepts_match(self):
        arr = np.zeros((2, 3))
        assert check_shape("a", arr, (2, 3)) is arr

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_shape("a", np.zeros((2, 3)), (3, 2))


class TestCheckIndexRange:
    def test_accepts_in_range(self):
        check_index_range("idx", [0, 1, 4], 5)

    def test_empty_ok(self):
        check_index_range("idx", [], 5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="idx"):
            check_index_range("idx", [-1, 0], 5)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError, match="idx"):
            check_index_range("idx", [5], 5)
