"""Tracer/span semantics: nesting, events, caps, the null fast path."""

import threading

import pytest

from repro.obs import (
    DISABLED,
    NULL_SPAN,
    Observer,
    Span,
    Tracer,
    get_observer,
    observe,
    set_observer,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer


class TestSpanNesting:
    def test_spans_nest_depth_first(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        assert tracer.roots == [root]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in a.children] == ["a1"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_durations_are_ordered(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.t_start <= inner.t_start
        assert inner.t_end <= outer.t_end
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("s", stage="map") as span:
            span.set(n_packets=7)
        assert span.attributes == {"stage": "map", "n_packets": 7}

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            event = tracer.event("fault", crossbar=3)
        assert event in parent.children
        assert event.t_start == event.t_end
        assert event.attributes == {"crossbar": 3}

    def test_event_without_open_span_is_a_root(self):
        tracer = Tracer()
        event = tracer.event("lonely")
        assert tracer.roots == [event]

    def test_walk_and_iter_spans(self):
        tracer = Tracer()
        with tracer.span("r"):
            with tracer.span("c1"):
                pass
            with tracer.span("c2"):
                pass
        names = [s.name for s in tracer.iter_spans()]
        assert names == ["r", "c1", "c2"]

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("thread-root"):
                done.wait(timeout=5)

        t = threading.Thread(target=worker)
        with tracer.span("main-root"):
            t.start()
            # Let the worker open its span while main-root is open.
            while len(tracer.roots) < 2:
                pass
            done.set()
            t.join()
        names = sorted(r.name for r in tracer.roots)
        # The worker's span is a root, not a child of main-root.
        assert names == ["main-root", "thread-root"]
        for root in tracer.roots:
            assert root.children == []


class TestMaxSpans:
    def test_cap_degrades_to_null_and_counts_drops(self):
        tracer = Tracer(max_spans=2)
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            with tracer.span("three") as dropped:
                pass
        assert dropped is NULL_SPAN
        assert tracer.n_spans == 2
        assert tracer.n_dropped == 1

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestNullPath:
    def test_null_tracer_returns_null_span(self):
        tracer = NullTracer()
        span = tracer.span("anything", key="value")
        assert span is NULL_SPAN
        with span as entered:
            assert entered is NULL_SPAN
            entered.set(x=1)
            entered.event("e")
        assert span.attributes == {}
        assert span.duration_s == 0.0
        assert list(tracer.iter_spans()) == []

    def test_default_observer_is_disabled(self):
        obs = get_observer()
        assert obs is DISABLED
        assert not obs.enabled

    def test_timed_span_measures_even_when_disabled(self):
        obs = DISABLED
        span = obs.timed_span("timed")
        assert isinstance(span, Span)
        with span:
            pass
        assert span.t_end is not None
        assert span.duration_s >= 0.0
        # ... but it was recorded nowhere.
        assert list(obs.tracer.iter_spans()) == []


class TestObserve:
    def test_observe_installs_and_restores(self):
        assert get_observer() is DISABLED
        with observe() as obs:
            assert get_observer() is obs
            assert obs.enabled
        assert get_observer() is DISABLED

    def test_observe_nests(self):
        with observe() as outer:
            with observe() as inner:
                assert get_observer() is inner
            assert get_observer() is outer

    def test_observe_halves_disable_independently(self):
        with observe(metrics=False) as obs:
            assert obs.tracer.enabled
            assert not obs.metrics.enabled
            assert obs.enabled
        with observe(tracer=False) as obs:
            assert not obs.tracer.enabled
            assert obs.metrics.enabled
            assert obs.enabled
        with observe(tracer=False, metrics=False) as obs:
            assert not obs.enabled

    def test_observe_accepts_existing_instances(self):
        tracer = Tracer()
        registry = MetricsRegistry()
        with observe(tracer=tracer, metrics=registry) as obs:
            assert obs.tracer is tracer
            assert obs.metrics is registry
            with obs.span("kept"):
                pass
        assert [r.name for r in tracer.roots] == ["kept"]

    def test_set_observer_imperative(self):
        obs = Observer(Tracer(), MetricsRegistry())
        previous = set_observer(obs)
        try:
            assert previous is DISABLED
            assert get_observer() is obs
        finally:
            set_observer(None)
        assert get_observer() is DISABLED
