"""Observation neutrality: results are bit-identical with obs on vs off.

Instrumentation must be read-only — it consumes no RNG draws, reorders
no work and rounds no numbers.  These tests run the same seeded
workloads under ``observe()`` and bare, then compare every deterministic
output exactly.  Wall-clock fields are excluded (they are real times and
legitimately differ run to run).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import build_application
from repro.core.pso import PSOConfig
from repro.framework.pipeline import run_pipeline
from repro.framework.service import MapRequest, MappingService
from repro.hardware.presets import architecture_for
from repro.noc.interconnect import NocConfig
from repro.noc.parallel import ParallelNocSimulator
from repro.noc.topology import mesh
from repro.noc.traffic import synthetic_injections
from repro.obs import (
    get_observer,
    load_trace_tree,
    observe,
    read_trace_jsonl,
    write_trace_jsonl,
)


SMALL_PSO = PSOConfig(n_particles=6, n_iterations=4)
_TIMING_KEYS = ("pso_wall_time_s", "particle_iterations_per_s")


@pytest.fixture
def graph():
    return build_application("hello_world", seed=1)


@pytest.fixture
def arch(graph):
    return architecture_for(
        graph.n_neurons, neurons_per_crossbar=16,
        interconnect="mesh", name="obs-test",
    )


def _deterministic_extras(mapping):
    return {k: v for k, v in mapping.extras.items() if k not in _TIMING_KEYS}


def _assert_pipeline_results_equal(a, b):
    assert np.array_equal(a.mapping.assignment, b.mapping.assignment)
    assert a.mapping.fitness == b.mapping.fitness
    assert a.mapping.local_spikes == b.mapping.local_spikes
    assert a.mapping.global_spikes == b.mapping.global_spikes
    ea, eb = _deterministic_extras(a.mapping), _deterministic_extras(b.mapping)
    assert set(ea) == set(eb)
    for key in ea:
        va, vb = ea[key], eb[key]
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), key
        else:
            assert va == vb, key
    assert a.schedule == b.schedule
    assert a.noc_stats.total_hops() == b.noc_stats.total_hops()
    assert a.noc_stats.delivered_count == b.noc_stats.delivered_count
    assert a.noc_stats.cycles_run == b.noc_stats.cycles_run
    assert a.report.disorder_fraction == b.report.disorder_fraction


class TestPipelineNeutrality:
    def test_pso_noc_objective_bit_identical(self, graph, arch):
        kwargs = dict(
            method="pso", seed=3, pso_config=SMALL_PSO,
            objective="noc", noc_config=NocConfig(backend="fast"),
        )
        bare = run_pipeline(graph, arch, **kwargs)
        with observe() as obs:
            traced = run_pipeline(graph, arch, **kwargs)
        _assert_pipeline_results_equal(bare, traced)
        # The traced run actually recorded something.
        assert obs.metrics.counter_value("pipeline.runs", method="pso") == 1
        names = {s.name for s in obs.tracer.iter_spans()}
        assert {"run_pipeline", "map_snn", "pso.iteration"} <= names

    def test_greedy_reference_backend_bit_identical(self, graph, arch):
        kwargs = dict(method="greedy", noc_config=NocConfig(backend="reference"))
        bare = run_pipeline(graph, arch, **kwargs)
        with observe():
            traced = run_pipeline(graph, arch, **kwargs)
        _assert_pipeline_results_equal(bare, traced)

    def test_fault_path_bit_identical(self, graph, arch):
        kwargs = dict(method="greedy", faults=2, fault_seed=5)
        bare = run_pipeline(graph, arch, **kwargs)
        with observe() as obs:
            traced = run_pipeline(graph, arch, **kwargs)
        assert bare.failed_links == traced.failed_links
        _assert_pipeline_results_equal(bare, traced)
        # Counts injected faults, not calls.
        assert obs.metrics.counter_value("faults.random_injections") == 2


class TestParallelNeutrality:
    def test_workers_gt_1_bit_identical(self):
        topology = mesh(3)
        rates = [0.3] * topology.n_attach_points
        schedules = [
            synthetic_injections(rates, topology, 60, fanout=2, seed=i).injections
            for i in range(6)
        ]
        with ParallelNocSimulator(topology, workers=2) as sim:
            bare = sim.summarize_many(schedules)
            with observe() as obs:
                traced = sim.summarize_many(schedules)
        assert traced == bare
        if not sim._pool_broken:
            # Worker counter deltas made it back to the parent registry.
            assert obs.metrics.counter_value("noc.parallel.batches") == 1
            injected = obs.metrics.counter_value("noc.packets_injected")
            assert injected == sum(s.n_injected for s in traced)


class TestServiceNeutrality:
    def test_coalesced_serve_batch_bit_identical(self, graph, arch):
        def batch():
            return [
                MapRequest(
                    graph=graph, architecture=arch, seed=s,
                    pso_config=SMALL_PSO, objective="noc",
                    noc_config=NocConfig(backend="fast"),
                )
                for s in (1, 2)
            ]

        bare_service = MappingService()
        bare = bare_service.serve_batch(batch())
        with observe() as obs:
            traced_service = MappingService()
            traced = traced_service.serve_batch(batch())
        for a, b in zip(bare, traced):
            _assert_pipeline_results_equal(a, b)
        # Coalescing really happened in both runs, stats API unchanged.
        assert bare_service.coalescer_stats == traced_service.coalescer_stats
        assert traced_service.coalescer_stats["merged_flushes"] > 0
        # ... and surfaced into the active observer under the prefix.
        assert obs.metrics.counter_value("coalescer.merged_flushes") > 0


class TestTraceWellFormedness:
    def test_jsonl_round_trip_and_nesting(self, graph, arch, tmp_path):
        with observe() as obs:
            run_pipeline(graph, arch, method="greedy")
        path = str(tmp_path / "trace.jsonl")
        n = write_trace_jsonl(obs.tracer, path)
        rows = read_trace_jsonl(path)
        assert len(rows) == n == sum(1 for _ in obs.tracer.iter_spans())

        # Depth-first ids: every parent precedes its children.
        by_id = {row["id"]: row for row in rows}
        for row in rows:
            assert row["t_end"] >= row["t_start"]
            parent = row["parent"]
            if parent is not None:
                assert parent < row["id"]
                # Children are contained in their parent's interval.
                assert by_id[parent]["t_start"] <= row["t_start"]
                assert row["t_end"] <= by_id[parent]["t_end"]

        # The rebuilt forest matches the live one shape-for-shape.
        roots = load_trace_tree(path)

        def shape(span):
            return (span.name, span.attributes, [shape(c) for c in span.children])

        assert [shape(r) for r in roots] == [shape(r) for r in obs.tracer.roots]

    def test_observer_restored_after_exception(self, graph, arch):
        with pytest.raises(RuntimeError):
            with observe():
                raise RuntimeError("boom")
        assert not get_observer().enabled
