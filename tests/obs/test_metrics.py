"""MetricsRegistry semantics and the exporter formats."""

import json
import math

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    prometheus_text,
    span_tree_summary,
    write_metrics_text,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    NULL_METRICS,
    parse_flat_name,
)


class TestCounters:
    def test_inc_defaults_and_values(self):
        reg = MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits")
        reg.inc("hits", 3)
        assert reg.counter_value("hits") == 5
        assert reg.counters() == {"hits": 5}

    def test_labels_partition_the_series(self):
        reg = MetricsRegistry()
        reg.inc("sims", backend="fast")
        reg.inc("sims", backend="fast")
        reg.inc("sims", backend="reference")
        assert reg.counter_value("sims", backend="fast") == 2
        assert reg.counter_value("sims", backend="reference") == 1
        assert reg.counter_value("sims") == 0  # unlabeled is its own series
        assert reg.counters() == {
            'sims{backend="fast"}': 2,
            'sims{backend="reference"}': 1,
        }

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("m", a="1", b="2")
        reg.inc("m", b="2", a="1")
        assert reg.counter_value("m", b="2", a="1") == 2

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nothing") == 0


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 4)
        reg.set_gauge("depth", 2)
        assert reg.gauges() == {"depth": 2}

    def test_histogram_buckets_and_summary(self):
        hist = Histogram()
        for v in (5e-7, 5e-4, 5e-4, 2.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == pytest.approx(5e-7 + 1e-3 + 2.0)
        assert hist.min == 5e-7
        assert hist.max == 2.0
        d = hist.to_dict()
        assert d["buckets"][repr(1e-6)] == 1
        assert d["buckets"][repr(1e-3)] == 2
        assert d["buckets"][repr(10.0)] == 1
        assert sum(d["buckets"].values()) == 4

    def test_histogram_merge(self):
        a, b = Histogram(), Histogram()
        a.observe(0.5)
        b.observe(50.0)
        a.merge(b)
        assert a.count == 2
        assert a.min == 0.5
        assert a.max == 50.0

    def test_histogram_merge_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError):
            a.merge(Histogram(bounds=DEFAULT_BUCKETS))

    def test_registry_observe(self):
        reg = MetricsRegistry()
        reg.observe("latency", 0.05, stage="map")
        reg.observe("latency", 0.07, stage="map")
        hists = reg.histograms()
        assert hists['latency{stage="map"}']["count"] == 2

    def test_snapshot_is_jsonable(self):
        reg = MetricsRegistry()
        reg.inc("c", backend="fast")
        reg.set_gauge("g", 1.5)
        reg.observe("h", 0.2)
        json.dumps(reg.snapshot())


class TestMergeAndDeltas:
    def test_merge_with_prefix(self):
        child = MetricsRegistry()
        child.inc("flushes", 2)
        child.inc("rows", 10, kind="noc")
        parent = MetricsRegistry()
        parent.merge(child, prefix="coalescer.")
        parent.merge(child, prefix="coalescer.")
        assert parent.counter_value("coalescer.flushes") == 4
        assert parent.counter_value("coalescer.rows", kind="noc") == 20
        # Source registry untouched.
        assert child.counter_value("flushes") == 2

    def test_merge_gauges_and_histograms(self):
        child = MetricsRegistry()
        child.set_gauge("depth", 3)
        child.observe("lat", 0.1)
        parent = MetricsRegistry()
        parent.set_gauge("depth", 9)
        parent.observe("lat", 0.2)
        parent.merge(child)
        assert parent.gauges() == {"depth": 3}
        assert parent.histograms()["lat"]["count"] == 2

    def test_counter_deltas_round_trip(self):
        src = MetricsRegistry()
        src.inc("packets", 42, backend="fast")
        src.inc("runs")
        deltas = src.counter_deltas()
        # Wire format is plain picklable tuples.
        import pickle

        deltas = pickle.loads(pickle.dumps(deltas))
        dst = MetricsRegistry()
        dst.inc("runs", 5)
        dst.merge_counters(deltas)
        assert dst.counter_value("packets", backend="fast") == 42
        assert dst.counter_value("runs") == 6

    def test_bool_reflects_content(self):
        reg = MetricsRegistry()
        assert not reg
        reg.inc("x")
        assert reg


class TestNullRegistry:
    def test_null_is_inert(self):
        NULL_METRICS.inc("x", 5, a="b")
        NULL_METRICS.set_gauge("g", 1)
        NULL_METRICS.observe("h", 0.5)
        NULL_METRICS.merge(MetricsRegistry())
        NULL_METRICS.merge_counters([("x", (), 1)])
        assert NULL_METRICS.counter_value("x") == 0
        assert NULL_METRICS.counters() == {}
        assert NULL_METRICS.counter_deltas() == []
        assert not NULL_METRICS
        assert not NULL_METRICS.enabled


class TestParseFlatName:
    def test_plain(self):
        assert parse_flat_name("hits") == ("hits", {})

    def test_labeled(self):
        name, labels = parse_flat_name('sims{backend="fast",mode="c"}')
        assert name == "sims"
        assert labels == {"backend": "fast", "mode": "c"}


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.inc("noc.simulations", 2, backend="fast")
        reg.set_gauge("queue.depth", 7)
        text = prometheus_text(reg)
        assert "# TYPE repro_noc_simulations_total counter" in text
        assert 'repro_noc_simulations_total{backend="fast"} 2' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 7" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("lat", 5e-7)
        reg.observe("lat", 5.0)
        text = prometheus_text(reg)
        lines = [ln for ln in text.splitlines() if ln.startswith("repro_lat_bucket")]
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in lines]
        assert counts == sorted(counts)  # cumulative, monotone
        assert counts[-1] == 2
        assert 'le="+Inf"' in lines[-1]
        assert "repro_lat_sum " in text
        assert "repro_lat_count 2" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_write_metrics_text(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("x")
        path = tmp_path / "metrics.prom"
        n = write_metrics_text(reg, str(path))
        assert n == path.read_text().count("\n") > 0

    def test_inf_formatting(self):
        assert math.isinf(math.inf)  # sanity
        reg = MetricsRegistry()
        reg.observe("empty_series_guard", 1e-7)
        text = prometheus_text(reg)
        assert "+Inf" in text


class TestSpanTreeSummary:
    def test_groups_same_named_siblings(self):
        tracer = Tracer()
        with tracer.span("root"):
            for i in range(3):
                with tracer.span("iteration"):
                    pass
        text = span_tree_summary(tracer)
        assert "root" in text
        assert "3x" in text
        assert text.count("iteration") == 1  # grouped, not repeated

    def test_depth_cap(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        text = span_tree_summary(tracer, max_depth=2)
        assert "c" not in text.replace("(avg", "")

    def test_reports_dropped_spans(self):
        tracer = Tracer(max_spans=1)
        with tracer.span("kept"):
            pass
        with tracer.span("gone"):
            pass
        assert "1 spans dropped" in span_tree_summary(tracer)
