"""Shared fixtures: small deterministic graphs, networks and platforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.presets import custom
from repro.snn.generators import PoissonSource
from repro.snn.graph import SpikeGraph
from repro.snn.network import Network
from repro.snn.neuron import LIFModel


@pytest.fixture
def tiny_graph() -> SpikeGraph:
    """8 neurons in two obvious communities joined by one weak synapse.

    Neurons 0-3 exchange heavy traffic, neurons 4-7 exchange heavy
    traffic, and a single light synapse (3 -> 4) bridges them.  The
    optimal 2-way partition is {0..3} | {4..7} with fitness 5.
    """
    src, dst, traffic = [], [], []
    for a in range(4):
        for b in range(4):
            if a != b:
                src.append(a), dst.append(b), traffic.append(100.0)
                src.append(a + 4), dst.append(b + 4), traffic.append(100.0)
    src.append(3), dst.append(4), traffic.append(5.0)
    spike_times = [np.linspace(0, 90, 10) for _ in range(8)]
    return SpikeGraph.from_edges(
        8, src, dst, traffic, spike_times=spike_times, name="two_communities"
    )


@pytest.fixture
def chain_graph() -> SpikeGraph:
    """6 neurons in a traffic chain 0->1->...->5, uniform traffic 10."""
    src = list(range(5))
    dst = list(range(1, 6))
    traffic = [10.0] * 5
    layers = list(range(6))
    spike_times = [np.arange(0, 100, 10.0) for _ in range(6)]
    return SpikeGraph.from_edges(
        6, src, dst, traffic, spike_times=spike_times, layers=layers, name="chain"
    )


@pytest.fixture
def small_arch():
    """4 crossbars x 4 neurons, tree interconnect."""
    return custom(n_crossbars=4, neurons_per_crossbar=4, name="tiny")


@pytest.fixture
def two_cluster_arch():
    """2 crossbars x 4 neurons — the tiny_graph's natural home."""
    return custom(n_crossbars=2, neurons_per_crossbar=4, name="pair")


@pytest.fixture
def small_network() -> Network:
    """10 Poisson sources driving 5 LIF neurons, all-to-all."""
    net = Network("small")
    src = net.add_source("in", PoissonSource(10, 40.0), layer=0)
    out = net.add_population("out", 5, LIFModel(), layer=1)
    net.connect(src, out, weights=np.full((10, 5), 30.0))
    return net
