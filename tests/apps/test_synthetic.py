"""Tests for synthetic m x n workloads."""

import numpy as np
import pytest

from repro.apps.synthetic import (
    build_synthetic,
    parse_synthetic_name,
    synthetic_feedforward,
)


class TestTopology:
    def test_neuron_count(self):
        net = synthetic_feedforward(3, 50, seed=0)
        assert net.n_neurons == 10 + 3 * 50  # 10 sources + layers

    def test_fully_connected_layers(self):
        net = synthetic_feedforward(2, 20, seed=0)
        # 10 x 20 + 20 x 20 synapses.
        assert net.synapse_count() == 10 * 20 + 20 * 20

    def test_layer_labels(self):
        net = synthetic_feedforward(2, 5, seed=0)
        layers = net.neuron_layers()
        assert (layers[:10] == 0).all()
        assert (layers[10:15] == 1).all()
        assert (layers[15:] == 2).all()

    def test_input_rates_in_paper_range(self):
        net = synthetic_feedforward(1, 5, seed=3)
        rates = net.population("input").source.rates_hz
        assert (rates >= 10.0).all() and (rates <= 100.0).all()


class TestActivity:
    @pytest.mark.parametrize("m,n", [(1, 30), (3, 20)])
    def test_all_layers_fire(self, m, n):
        graph = build_synthetic(m, n, seed=0, duration_ms=400.0)
        counts = graph.spike_counts()
        for layer in range(m + 1):
            layer_counts = counts[graph.layers == layer]
            assert layer_counts.sum() > 0, f"layer {layer} silent"

    def test_traffic_positive(self):
        graph = build_synthetic(1, 20, seed=0, duration_ms=300.0)
        assert graph.total_traffic() > 0

    def test_deterministic(self):
        a = build_synthetic(1, 10, seed=5, duration_ms=100.0)
        b = build_synthetic(1, 10, seed=5, duration_ms=100.0)
        assert np.array_equal(a.traffic, b.traffic)


class TestParseName:
    def test_valid(self):
        assert parse_synthetic_name("synth_3x200") == (3, 200)

    def test_invalid_prefix(self):
        assert parse_synthetic_name("mesh_3x200") is None

    def test_garbled(self):
        assert parse_synthetic_name("synth_axb") is None
