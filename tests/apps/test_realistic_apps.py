"""Tests for the four realistic applications (paper Table I)."""

import numpy as np
import pytest

from repro.apps.digit_recognition import (
    build_digit_recognition,
    build_digit_recognition_network,
    synthetic_digit,
)
from repro.apps.heartbeat import (
    build_heartbeat,
    estimate_rr_from_spikes,
    heart_rate_accuracy,
    level_crossing_encode,
    synthetic_ecg,
)
from repro.apps.hello_world import build_hello_world
from repro.apps.image_smoothing import build_image_smoothing, synthetic_image
from repro.apps.registry import build_application


class TestHelloWorld:
    def test_paper_topology(self):
        graph = build_hello_world(seed=0, duration_ms=200.0)
        assert graph.n_neurons == 117 + 9
        assert graph.n_synapses == 117 * 9

    def test_outputs_fire(self):
        graph = build_hello_world(seed=0, duration_ms=300.0)
        out_counts = graph.spike_counts()[graph.layers == 1]
        assert out_counts.sum() > 0

    def test_rate_coded(self):
        assert build_hello_world(seed=0, duration_ms=50.0).coding == "rate"


class TestImageSmoothing:
    def test_paper_topology(self):
        graph = build_image_smoothing(seed=0, duration_ms=60.0)
        assert graph.n_neurons == 1024 + 1024

    def test_synthetic_image_range(self):
        img = synthetic_image(seed=1)
        assert img.shape == (32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_smoothing_activity_follows_image(self):
        graph = build_image_smoothing(seed=0, duration_ms=150.0)
        counts = graph.spike_counts()
        inputs = counts[:1024]
        outputs = counts[1024:]
        # Bright input regions must drive bright output regions: rank
        # correlation between input and output activity is positive.
        bright = inputs > np.median(inputs)
        assert outputs[bright].mean() > outputs[~bright].mean()

    def test_kernel_locality(self):
        graph = build_image_smoothing(seed=0, duration_ms=30.0)
        # Each input connects only within its kernel neighborhood.
        fanouts = graph.out_degree()[:1024]
        assert fanouts.max() <= 13  # radius-2 disc


class TestDigitRecognition:
    def test_paper_topology(self):
        net = build_digit_recognition_network(seed=0)
        assert net.population("excitatory").size == 250
        assert net.population("inhibitory").size == 250
        assert net.population("pixels").size == 784

    def test_wta_wiring(self):
        net = build_digit_recognition_network(seed=0)
        w_ie = [p for p in net.projections if p.describe() == "inh->exc"][0]
        assert (np.diag(w_ie.weights) == 0).all()
        off_diag = w_ie.weights[~np.eye(250, dtype=bool)]
        assert (off_diag < 0).all()

    def test_digit_classes_distinct(self):
        a = synthetic_digit(0, seed=0)
        b = synthetic_digit(1, seed=0)
        assert not np.allclose(a, b)

    def test_same_class_similar(self):
        a = synthetic_digit(3, seed=0)
        b = synthetic_digit(3, seed=1)
        # Same strokes, different jitter: strong correlation.
        corr = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert corr > 0.9

    def test_training_changes_weights_and_network_fires(self):
        graph = build_digit_recognition(
            seed=0, duration_ms=100.0, n_training_samples=1,
            train_ms_per_sample=50.0,
        )
        counts = graph.spike_counts()
        assert counts[graph.layers == 1].sum() > 0  # excitatory active
        assert counts[graph.layers == 2].sum() > 0  # inhibitory active


class TestHeartbeat:
    def test_ecg_beat_structure(self):
        t, signal, beats = synthetic_ecg(5000.0, mean_rr_ms=800.0, seed=0)
        assert len(beats) >= 5
        rr = np.diff(beats)
        assert 600.0 < rr.mean() < 1000.0

    def test_level_crossing_round_trip_activity(self):
        t, signal, _ = synthetic_ecg(3000.0, seed=0)
        trains = level_crossing_encode(t, signal)
        assert len(trains) == 16
        total = sum(tr.size for tr in trains)
        assert total > 10  # R peaks cross several levels per beat

    def test_paper_topology(self):
        graph = build_heartbeat(seed=0, duration_ms=2000.0)
        assert graph.n_neurons == 16 + 64 + 16
        assert graph.coding == "temporal"

    def test_liquid_and_readout_fire(self):
        graph = build_heartbeat(seed=0, duration_ms=3000.0)
        counts = graph.spike_counts()
        assert counts[graph.layers == 1].sum() > 0
        assert counts[graph.layers == 2].sum() > 0

    def test_rr_estimation_from_liquid(self):
        graph = build_heartbeat(seed=0, duration_ms=8000.0,
                                mean_rr_ms=800.0)
        liquid_ids = np.nonzero(graph.layers == 1)[0]
        pooled = np.concatenate([graph.spike_times[i] for i in liquid_ids])
        rr = estimate_rr_from_spikes(pooled)
        assert np.isfinite(rr)
        accuracy = heart_rate_accuracy(800.0, rr)
        assert accuracy > 0.5

    def test_accuracy_bounds(self):
        assert heart_rate_accuracy(800.0, 800.0) == 1.0
        assert heart_rate_accuracy(800.0, float("nan")) == 0.0
        assert heart_rate_accuracy(800.0, 4000.0) == 0.0


class TestRegistry:
    @pytest.mark.parametrize("name", ["hello_world", "HW"])
    def test_name_and_abbreviation(self, name):
        graph = build_application(name, seed=0, duration_ms=50.0)
        assert graph.n_neurons == 126

    def test_synthetic_names(self):
        graph = build_application("synth_1x10", seed=0, duration_ms=50.0)
        assert graph.n_neurons == 20

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown application"):
            build_application("not_an_app")
