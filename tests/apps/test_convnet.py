"""Tests for the convolutional synthetic workload."""

import numpy as np
import pytest

from repro.apps.synthetic import (
    build_convnet,
    conv_connectivity,
    convolutional_feedforward,
)


class TestConvConnectivity:
    def test_receptive_field_size(self):
        w = conv_connectivity(8, 8, kernel_radius=1, weight=1.0)
        # Interior post-neuron integrates a full 3x3 patch.
        interior = 3 * 8 + 3
        assert np.count_nonzero(w[:, interior]) == 9

    def test_edge_clipping(self):
        w = conv_connectivity(8, 8, kernel_radius=1, weight=1.0)
        corner = 0
        assert np.count_nonzero(w[:, corner]) == 4  # 2x2 clipped patch

    def test_downsampling_alignment(self):
        """Post (0,0) of a 2x downsample looks at the pre top-left region."""
        w = conv_connectivity(8, 4, kernel_radius=1, weight=1.0)
        sources = np.nonzero(w[:, 0])[0]
        rows, cols = sources // 8, sources % 8
        assert rows.max() <= 2 and cols.max() <= 2

    def test_zero_radius_single_tap(self):
        w = conv_connectivity(4, 4, kernel_radius=0, weight=2.0)
        assert (np.count_nonzero(w, axis=0) == 1).all()

    def test_bad_args(self):
        with pytest.raises(ValueError):
            conv_connectivity(4, 4, kernel_radius=-1, weight=1.0)


class TestConvolutionalNetwork:
    def test_topology_sizes(self):
        net = convolutional_feedforward([16, 8, 4], seed=0)
        assert net.n_neurons == 256 + 64 + 16
        assert [p.layer for p in net.populations] == [0, 1, 2]

    def test_growing_layer_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            convolutional_feedforward([4, 8], seed=0)

    def test_locality_bounds_fanout(self):
        net = convolutional_feedforward([16, 8], kernel_radius=1, seed=0)
        proj = net.projections[0]
        # Each pre-neuron feeds at most the posts whose fields cover it.
        fanout = np.count_nonzero(proj.weights, axis=1)
        assert fanout.max() <= 9

    def test_all_layers_fire(self):
        graph = build_convnet([12, 6, 3], seed=0, duration_ms=400.0)
        counts = graph.spike_counts()
        for layer in range(3):
            assert counts[graph.layers == layer].sum() > 0, f"layer {layer}"

    def test_convnet_is_highly_mappable(self):
        """Spatial locality: PSO keeps most synapses local."""
        from repro.core import PSOConfig, map_snn
        from repro.hardware.presets import custom

        graph = build_convnet([12, 6], seed=0, duration_ms=300.0)
        arch = custom(n_crossbars=4, neurons_per_crossbar=52)
        pso = map_snn(graph, arch, method="pso", seed=1,
                      pso_config=PSOConfig(n_particles=40, n_iterations=30))
        rnd = map_snn(graph, arch, method="random", seed=1)
        assert pso.global_spikes < rnd.global_spikes
