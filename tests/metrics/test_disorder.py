"""Tests for spike disorder counting."""

from repro.metrics.disorder import (
    disorder_by_destination,
    disorder_count,
    disorder_fraction,
)
from repro.noc.stats import DeliveryRecord, NocStats


def _stats(records):
    stats = NocStats()
    for uid, (neuron, dst, injected, delivered) in enumerate(records):
        stats.record(DeliveryRecord(
            uid=uid, src_neuron=neuron, src_node=0, dst_node=dst,
            injected_cycle=injected, delivered_cycle=delivered, hops=1,
        ))
    return stats


class TestDisorderCount:
    def test_in_order_zero(self):
        stats = _stats([(0, 1, 0, 5), (1, 1, 2, 7), (2, 1, 4, 9)])
        assert disorder_count(stats) == 0

    def test_paper_abc_example(self):
        """A injected before B, but B's crossbar wins arbitration: A's
        spike arrives after B's and is disordered."""
        stats = _stats([
            (1, 2, 1, 4),   # B: injected at 1, delivered at 4
            (0, 2, 0, 6),   # A: injected at 0 (earlier), delivered at 6
        ])
        assert disorder_count(stats) == 1

    def test_multiple_overtaken(self):
        stats = _stats([
            (0, 1, 10, 11),
            (1, 1, 0, 12),  # overtaken
            (2, 1, 5, 13),  # overtaken
        ])
        assert disorder_count(stats) == 2

    def test_destinations_independent(self):
        stats = _stats([
            (0, 1, 10, 11),
            (1, 2, 0, 12),  # different destination: no overtaking
        ])
        assert disorder_count(stats) == 0

    def test_equal_injection_not_disordered(self):
        stats = _stats([(0, 1, 5, 6), (1, 1, 5, 7)])
        assert disorder_count(stats) == 0


class TestDisorderFraction:
    def test_fraction(self):
        stats = _stats([
            (0, 1, 10, 11),
            (1, 1, 0, 12),
        ])
        assert disorder_fraction(stats) == 0.5

    def test_empty_zero(self):
        assert disorder_fraction(NocStats()) == 0.0


class TestDisorderByDestination:
    def test_per_destination(self):
        stats = _stats([
            (0, 1, 10, 11),
            (1, 1, 0, 12),
            (2, 2, 0, 5),
        ])
        by_dst = disorder_by_destination(stats)
        assert by_dst[1] == 0.5
        assert by_dst[2] == 0.0
