"""Tests for metric report assembly."""

from repro.core.mapper import map_snn
from repro.framework.pipeline import run_pipeline
from repro.metrics.report import build_report
from repro.noc.stats import NocStats


class TestBuildReport:
    def test_full_pipeline_report(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(tiny_graph, two_cluster_arch, method="pacman")
        report = result.report
        assert report.app == "two_communities"
        assert report.method == "pacman"
        assert report.total_energy_pj == (
            report.local_energy_pj + report.global_energy_pj
        )
        assert report.disorder_percent == report.disorder_fraction * 100.0

    def test_empty_noc_stats(self, tiny_graph, two_cluster_arch):
        mapping = map_snn(tiny_graph, two_cluster_arch, method="pacman")
        report = build_report("app", mapping, NocStats(), two_cluster_arch)
        assert report.isi_distortion_cycles == 0.0
        assert report.max_latency_cycles == 0
        assert report.global_energy_pj == 0.0
        # Local energy still accounted from the mapping itself.
        assert report.local_energy_pj > 0.0

    def test_to_dict_keys(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(tiny_graph, two_cluster_arch, method="pacman")
        d = result.report.to_dict()
        for key in ("isi_distortion_cycles", "disorder_percent",
                    "throughput_aer_per_ms", "max_latency_cycles",
                    "total_energy_pj"):
            assert key in d

    def test_table_renders(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(tiny_graph, two_cluster_arch, method="pacman")
        table = result.report.table()
        assert "ISI distortion" in table
        assert "Latency" in table

    def test_local_energy_scales_with_crossbar_size(self, tiny_graph):
        from repro.hardware.presets import custom
        small = custom(n_crossbars=2, neurons_per_crossbar=4)
        big = custom(n_crossbars=2, neurons_per_crossbar=8)
        r_small = run_pipeline(tiny_graph, small, method="pacman")
        r_big = run_pipeline(tiny_graph, big, method="pacman")
        # Same split (pacman id-order is identical), bigger wordline
        # costs more per local event.
        assert (r_big.report.local_energy_pj
                > r_small.report.local_energy_pj)


class TestMultiChipReport:
    def test_report_carries_chip_breakdown(self, tiny_graph):
        from repro.hardware.presets import custom

        arch = custom(n_crossbars=4, neurons_per_crossbar=2,
                      interconnect="mesh", n_chips=2, bridge_latency=3,
                      name="board")
        result = run_pipeline(tiny_graph, arch, method="pacman")
        report = result.report
        assert report.n_chips == 2
        d = report.to_dict()
        assert "inter_chip_hops" in d
        assert "bridge_crossings" in d
        if report.bridge_crossings:
            assert report.inter_chip_hops == report.bridge_crossings * 3
            assert "Bridge crossings" in report.table()

    def test_flat_report_defaults(self, tiny_graph, two_cluster_arch):
        result = run_pipeline(tiny_graph, two_cluster_arch, method="pacman")
        assert result.report.n_chips == 1
        assert result.report.inter_chip_hops == 0
        assert "Bridge crossings" not in result.report.table()
