"""Tests for ISI distortion."""

import pytest

from repro.metrics.isi import (
    isi_distortion_mean,
    isi_distortion_per_flow,
    isi_distortion_worst,
)
from repro.noc.stats import DeliveryRecord, NocStats


def _stats(flow_records):
    """flow_records: list of (neuron, dst, injected, delivered)."""
    stats = NocStats()
    for uid, (neuron, dst, injected, delivered) in enumerate(flow_records):
        stats.record(DeliveryRecord(
            uid=uid, src_neuron=neuron, src_node=0, dst_node=dst,
            injected_cycle=injected, delivered_cycle=delivered, hops=1,
        ))
    return stats


class TestPerFlow:
    def test_constant_delay_zero_distortion(self):
        stats = _stats([(0, 1, 0, 3), (0, 1, 10, 13), (0, 1, 20, 23)])
        flows = isi_distortion_per_flow(stats)
        assert flows[(0, 1)] == 0.0

    def test_jitter_measured(self):
        # ISIs at source: 10, 10.  At destination: 13, 7 -> max diff 3.
        stats = _stats([(0, 1, 0, 2), (0, 1, 10, 15), (0, 1, 20, 22)])
        flows = isi_distortion_per_flow(stats)
        assert flows[(0, 1)] == 3.0

    def test_single_spike_flow_skipped(self):
        stats = _stats([(0, 1, 0, 5)])
        assert isi_distortion_per_flow(stats) == {}

    def test_flows_separated_by_neuron_and_dst(self):
        stats = _stats([
            (0, 1, 0, 1), (0, 1, 10, 11),
            (1, 1, 0, 9), (1, 1, 10, 12),
            (0, 2, 0, 4), (0, 2, 10, 20),
        ])
        flows = isi_distortion_per_flow(stats)
        assert flows[(0, 1)] == 0.0
        assert flows[(1, 1)] == pytest.approx(7.0)
        assert flows[(0, 2)] == pytest.approx(6.0)


class TestAggregates:
    def test_mean_and_worst(self):
        stats = _stats([
            (0, 1, 0, 1), (0, 1, 10, 11),           # distortion 0
            (1, 2, 0, 0), (1, 2, 10, 14),           # distortion 4
        ])
        assert isi_distortion_mean(stats) == 2.0
        assert isi_distortion_worst(stats) == 4.0

    def test_empty_zero(self):
        assert isi_distortion_mean(NocStats()) == 0.0
        assert isi_distortion_worst(NocStats()) == 0.0
